(** Net connectivity over conductors and cuts.

    Exposed separately from the extractor because LIFT re-runs it with a
    conductor or cut suppressed, to decide whether a spot defect that
    removes that shape actually splits a net. *)

(** [unify ~conductors ~cut_shapes ~skip_conductor ~skip_cut] merges
    conductors that touch on the same layer, plus the conductor groups
    joined by each cut (a contact joins metal1 with poly/diffusion; a via
    joins metal1 with metal2).  Suppressed conductors/cuts take no part.
    Returns the union-find and, for each cut, the conductor indices it
    joined. *)
val unify :
  conductors:Extraction.conductor array ->
  cut_shapes:(Layout.Layer.t * Geom.Rect.t) array ->
  skip_conductor:(int -> bool) ->
  skip_cut:(int -> bool) ->
  Geom.Union_find.t * int list array

(** The canonical same-layer adjacency order shared by every
    connectivity path (global, tiled, net-local), so union sequences
    agree between implementations. *)
val conducting_layers : Layout.Layer.t list

(** {1 Tile-aware adjacency}

    The per-tile half of the staged pipeline's Connectivity stage.
    [members] are the (ascending) global conductor indices inside one
    tile's margin window; results are {e window-local member positions},
    which is what makes them cacheable across runs in which global
    indices shift.  Unioning every tile's pairs and joins into one
    {!Geom.Union_find.t} reproduces {!unify} exactly (cross-tile nets
    stitch where their members share a window). *)

(** [pair_anchor a b] is the canonical ownership point of a pair of
    rectangles, [(max x0s, max y0s)]: on both rects when they touch,
    inside the facing gap's window when they face. *)
val pair_anchor : Geom.Rect.t -> Geom.Rect.t -> int * int

(** [tile_pairs ~conductors ~members ~owns] lists the same-layer
    touching pairs [(a, b)] (member positions, [a < b]) whose anchor
    point [(max x0s, max y0s)] the tile owns - each global pair is owned
    by exactly one tile. *)
val tile_pairs :
  conductors:Extraction.conductor array ->
  members:int array ->
  owns:(x:int -> y:int -> bool) ->
  (int * int) list

(** [tile_cut_joins ~conductors ~members ~cut_shapes ~owned_cuts] lists,
    for every cut of [owned_cuts] (global cut indices anchored in this
    tile), the member positions it joins, ascending - the tiled form of
    {!unify}'s per-cut join lists. *)
val tile_cut_joins :
  conductors:Extraction.conductor array ->
  members:int array ->
  cut_shapes:(Layout.Layer.t * Geom.Rect.t) array ->
  owned_cuts:int array ->
  int list array
