(** Transistor-level circuit extraction from a mask database.

    Steps: channel recognition (poly over diffusion), diffusion splitting
    at channels, connectivity (same-layer contact + cuts), net naming from
    labels, MOSFET recognition (gate/source/drain from the channel's
    neighbouring pieces), plate-capacitor recognition (poly-metal2 overlap
    under a [C*] device hint), and netlist generation. *)

exception Extract_error of string

type options = {
  nmos_model : Netlist.Device.mos_model;
  pmos_model : Netlist.Device.mos_model;
  nmos_bulk : string;  (** net tied to every NMOS bulk (default "0") *)
  pmos_bulk : string;  (** net tied to every PMOS bulk (default "1") *)
  cap_per_nm2 : float;  (** poly-metal2 plate capacitance, F/nm^2 *)
}

val default_options : options

(** [extract ?options mask] produces the extraction or raises
    {!Extract_error} on malformed layouts (a channel with no source/drain
    on opposite sides, a label over empty space, a capacitor hint without
    both plates). *)
val extract : ?options:options -> Layout.Mask.t -> Extraction.t

(** {1 Staged extraction}

    The two halves of {!extract}, split so the LIFT pipeline can compute
    connectivity from per-tile (cached, parallel) adjacency between
    them: [skeleton] is geometry only (channels, conductors, cut
    shapes), [assemble] turns a union-find over those conductors plus
    the per-cut join lists into the finished {!Extraction.t}.
    [extract] = [skeleton] |> global {!Connectivity.unify} |>
    [assemble]. *)

type skeleton = {
  sk_mask : Layout.Mask.t;
  sk_channels : ([ `N | `P ] * Geom.Rect.t) list;
  sk_conductors : Extraction.conductor array;
  sk_cut_shapes : (Layout.Layer.t * Geom.Rect.t) array;
}

val skeleton : Layout.Mask.t -> skeleton

(** [assemble sk ~uf ~joins] finishes extraction; [joins] must hold, for
    every cut of [sk.sk_cut_shapes], the conductor indices it joins
    (ascending), exactly as {!Connectivity.unify} returns them.  Raises
    {!Extract_error} as {!extract} does. *)
val assemble :
  ?options:options ->
  skeleton ->
  uf:Geom.Union_find.t ->
  joins:int list array ->
  Extraction.t
