(* The canonical same-layer adjacency order; every connectivity path
   (global, tiled, net-local) must walk layers in this order so union
   sequences - and with them any root-sensitive downstream choice -
   agree between implementations. *)
let conducting_layers =
  [ Layout.Layer.Ndiff; Layout.Layer.Pdiff; Layout.Layer.Poly; Layout.Layer.Metal1;
    Layout.Layer.Metal2 ]

let cut_targets = function
  | Layout.Layer.Contact ->
    [ Layout.Layer.Metal1; Layout.Layer.Poly; Layout.Layer.Ndiff; Layout.Layer.Pdiff ]
  | Layout.Layer.Via -> [ Layout.Layer.Metal1; Layout.Layer.Metal2 ]
  | Layout.Layer.Ndiff | Layout.Layer.Pdiff | Layout.Layer.Poly | Layout.Layer.Metal1
  | Layout.Layer.Metal2 | Layout.Layer.Nwell ->
    invalid_arg "Connectivity: not a cut layer"

let unify ~conductors ~cut_shapes ~skip_conductor ~skip_cut =
  let n = Array.length conductors in
  let uf = Geom.Union_find.create n in
  (* Same-layer adjacency. *)
  List.iter
    (fun layer ->
      let members =
        Array.of_seq
          (Seq.filter_map
             (fun (i, (c : Extraction.conductor)) ->
               if Layout.Layer.equal c.layer layer && not (skip_conductor i) then
                 Some (i, c.rect)
               else None)
             (Array.to_seqi conductors))
      in
      let rects = Array.map snd members in
      List.iter
        (fun (a, b) ->
          ignore (Geom.Union_find.union uf (fst members.(a)) (fst members.(b))))
        (Geom.Rect_set.touching_pairs rects))
    conducting_layers;
  (* Vertical connections through cuts. *)
  let joins =
    Array.mapi
      (fun ci (cut_layer, cut_rect) ->
        if skip_cut ci then []
        else begin
          let targets = cut_targets cut_layer in
          let joined = ref [] in
          Array.iteri
            (fun i (c : Extraction.conductor) ->
              if (not (skip_conductor i))
                 && List.exists (Layout.Layer.equal c.layer) targets
                 && Geom.Rect.touches c.rect cut_rect
              then joined := i :: !joined)
            conductors;
          (match !joined with
          | first :: rest -> List.iter (fun i -> ignore (Geom.Union_find.union uf first i)) rest
          | [] -> ());
          List.rev !joined
        end)
      cut_shapes
  in
  (uf, joins)

(* --- Tile-aware adjacency ---------------------------------------------- *)

(* The per-tile half of the staged pipeline's Connectivity stage: pairs
   and cut joins are computed inside a tile's margin window and owned by
   exactly one tile, so the union over all tiles reproduces the global
   adjacency with no duplicates and no misses.

   Ownership anchors on the point p = (max x0s, max y0s) of the two
   rectangles: for touching pairs p lies on both (closed intervals), for
   facing pairs p lies on one and within the facing gap of the other, so
   any window whose margin covers the maximum defect size contains both
   members.  Results are in window-local member positions - that is what
   makes them cacheable across runs in which global indices shift. *)

let pair_anchor (a : Geom.Rect.t) (b : Geom.Rect.t) =
  (max a.Geom.Rect.x0 b.Geom.Rect.x0, max a.Geom.Rect.y0 b.Geom.Rect.y0)

let tile_pairs ~(conductors : Extraction.conductor array) ~(members : int array)
    ~owns =
  List.concat_map
    (fun layer ->
      let positions =
        Array.of_seq
          (Seq.filter
             (fun p ->
               Layout.Layer.equal conductors.(members.(p)).Extraction.layer layer)
             (Seq.init (Array.length members) Fun.id))
      in
      let rects =
        Array.map (fun p -> conductors.(members.(p)).Extraction.rect) positions
      in
      List.filter_map
        (fun (a, b) ->
          let x, y = pair_anchor rects.(a) rects.(b) in
          if owns ~x ~y then Some (positions.(a), positions.(b)) else None)
        (Geom.Rect_set.touching_pairs rects))
    conducting_layers

let tile_cut_joins ~(conductors : Extraction.conductor array)
    ~(members : int array) ~cut_shapes ~(owned_cuts : int array) =
  Array.map
    (fun ci ->
      let cut_layer, cut_rect = cut_shapes.(ci) in
      let targets = cut_targets cut_layer in
      let joined = ref [] in
      for p = Array.length members - 1 downto 0 do
        let (c : Extraction.conductor) = conductors.(members.(p)) in
        if
          List.exists (Layout.Layer.equal c.Extraction.layer) targets
          && Geom.Rect.touches c.Extraction.rect cut_rect
        then joined := p :: !joined
      done;
      !joined)
    owned_cuts
