exception Extract_error of string

type options = {
  nmos_model : Netlist.Device.mos_model;
  pmos_model : Netlist.Device.mos_model;
  nmos_bulk : string;
  pmos_bulk : string;
  cap_per_nm2 : float;
}

let default_options =
  {
    nmos_model = Netlist.Device.default_nmos;
    pmos_model = Netlist.Device.default_pmos;
    nmos_bulk = "0";
    pmos_bulk = "1";
    cap_per_nm2 = 1e-21;
  }

let err fmt = Format.kasprintf (fun m -> raise (Extract_error m)) fmt

(* Channels: every poly-over-diffusion overlap region.  Two poly shapes
   running along the same track (a gate strip plus the wire feeding it)
   produce coincident intersection rectangles describing one physical
   channel; keep only maximal regions. *)
let dedupe_channels chans =
  let maximal (kind, r) =
    not
      (List.exists
         (fun (k2, r2) ->
           k2 = kind && not (Geom.Rect.equal r r2) && Geom.Rect.contains r2 r)
         chans)
  in
  List.filter maximal chans |> List.sort_uniq compare

let find_channels mask =
  let poly = Layout.Mask.on mask Layout.Layer.Poly in
  let overlaps kind diff_layer =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun p ->
            match Geom.Rect.inter p d with
            | Some i when not (Geom.Rect.is_degenerate i) -> Some (kind, i)
            | Some _ | None -> None)
          poly)
      (Layout.Mask.on mask diff_layer)
  in
  dedupe_channels (overlaps `N Layout.Layer.Ndiff @ overlaps `P Layout.Layer.Pdiff)

(* The conductor array: diffusion split at channels, then poly and metals
   verbatim. *)
let build_conductors mask channel_rects =
  let pieces layer =
    Geom.Rect_set.subtract_all (Layout.Mask.on mask layer) channel_rects
    |> List.map (fun rect -> { Extraction.layer; rect })
  in
  let whole layer =
    List.map (fun rect -> { Extraction.layer; rect }) (Layout.Mask.on mask layer)
  in
  Array.of_list
    (pieces Layout.Layer.Ndiff @ pieces Layout.Layer.Pdiff @ whole Layout.Layer.Poly
    @ whole Layout.Layer.Metal1 @ whole Layout.Layer.Metal2)

let cut_shapes mask =
  Array.of_list
    (List.map (fun r -> (Layout.Layer.Contact, r)) (Layout.Mask.on mask Layout.Layer.Contact)
    @ List.map (fun r -> (Layout.Layer.Via, r)) (Layout.Mask.on mask Layout.Layer.Via))

(* Net ids from union-find roots, numbered in order of smallest conductor
   index for determinism. *)
let number_nets uf n =
  let net_of = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = Geom.Union_find.find uf i in
    if net_of.(r) = -1 then begin
      net_of.(r) <- !next;
      incr next
    end;
    net_of.(i) <- net_of.(r)
  done;
  (net_of, !next)

let name_nets mask (conductors : Extraction.conductor array) net_of net_total =
  let names = Array.make net_total "" in
  let used = Hashtbl.create 16 in
  List.iter
    (fun (l : Layout.Mask.label) ->
      let found = ref false in
      Array.iteri
        (fun i (c : Extraction.conductor) ->
          if (not !found)
             && Layout.Layer.equal c.layer l.layer
             && Geom.Rect.contains_point c.rect l.at
          then begin
            found := true;
            let id = net_of.(i) in
            if names.(id) = "" then begin
              let name =
                if Hashtbl.mem used l.net then begin
                  (* Same label on two distinct nets: a designer error we
                     surface by suffixing rather than silently merging. *)
                  let k = Hashtbl.find used l.net + 1 in
                  Hashtbl.replace used l.net k;
                  Printf.sprintf "%s#%d" l.net k
                end
                else begin
                  Hashtbl.add used l.net 1;
                  l.net
                end
              in
              names.(id) <- name
            end
          end)
        conductors;
      if not !found then
        err "label %S at %s on %s hits no conductor" l.net
          (Geom.Point.to_string l.at) (Layout.Layer.to_string l.layer))
    mask.Layout.Mask.labels;
  Array.iteri (fun id n -> if n = "" then names.(id) <- Printf.sprintf "n%d" id) names;
  names

(* A coarse uniform grid over the conductor rectangles, so MOS
   recognition queries only the conductors near a channel instead of
   scanning the whole array per side (the O(channels * conductors)
   hot spot on synthesized mega-layouts).  Queries return ascending
   indices, preserving the first-match semantics of the linear scan. *)
module Conductor_index = struct
  type t = {
    origin : Geom.Rect.t;
    cell : int;
    buckets : (int * int, int list ref) Hashtbl.t;
  }

  let cells t (r : Geom.Rect.t) =
    ( (r.Geom.Rect.x0 - t.origin.Geom.Rect.x0) / t.cell,
      (r.Geom.Rect.x1 - t.origin.Geom.Rect.x0) / t.cell,
      (r.Geom.Rect.y0 - t.origin.Geom.Rect.y0) / t.cell,
      (r.Geom.Rect.y1 - t.origin.Geom.Rect.y0) / t.cell )

  let build (conductors : Extraction.conductor array) =
    let n = Array.length conductors in
    let origin =
      if n = 0 then Geom.Rect.make 0 0 1 1
      else
        Array.fold_left
          (fun acc (c : Extraction.conductor) -> Geom.Rect.hull acc c.rect)
          conductors.(0).rect conductors
    in
    let cell =
      if n = 0 then 1
      else begin
        let avg =
          Array.fold_left
            (fun acc (c : Extraction.conductor) ->
              acc + max (Geom.Rect.width c.rect) (Geom.Rect.height c.rect))
            0 conductors
          / n
        in
        max 1 avg
      end
    in
    let t = { origin; cell; buckets = Hashtbl.create 256 } in
    Array.iteri
      (fun i (c : Extraction.conductor) ->
        let cx0, cx1, cy0, cy1 = cells t c.rect in
        for cx = cx0 to cx1 do
          for cy = cy0 to cy1 do
            match Hashtbl.find_opt t.buckets (cx, cy) with
            | Some l -> l := i :: !l
            | None -> Hashtbl.add t.buckets (cx, cy) (ref [ i ])
          done
        done)
      conductors;
    t

  (* Ascending conductor indices with a rectangle near [r] (everything
     touching [r] is included; farther conductors may be too). *)
  let near t (r : Geom.Rect.t) =
    let cx0, cx1, cy0, cy1 = cells t (Geom.Rect.expand r 1) in
    let acc = ref [] in
    for cx = cx0 to cx1 do
      for cy = cy0 to cy1 do
        match Hashtbl.find_opt t.buckets (cx, cy) with
        | Some l -> acc := !l @ !acc
        | None -> ()
      done
    done;
    List.sort_uniq Int.compare !acc
end

(* MOSFET recognition: the diffusion pieces flanking a channel on opposite
   sides are its source and drain; the poly shape above is its gate. *)
let recognise_mos mask conductors (channels : ([ `N | `P ] * Geom.Rect.t) list) =
  let index = Conductor_index.build conductors in
  let find_gate ch =
    let found =
      List.find_opt
        (fun i ->
          let (c : Extraction.conductor) = conductors.(i) in
          Layout.Layer.equal c.layer Layout.Layer.Poly && Geom.Rect.overlaps c.rect ch)
        (Conductor_index.near index ch)
    in
    match found with
    | Some i -> i
    | None -> err "channel %s has no poly gate" (Geom.Rect.to_string ch)
  in
  let diff_layer = function
    | `N -> Layout.Layer.Ndiff
    | `P -> Layout.Layer.Pdiff
  in
  List.mapi
    (fun k (kind, ch) ->
      let layer = diff_layer kind in
      let nearby = Conductor_index.near index ch in
      let neighbours side =
        let ok (c : Extraction.conductor) =
          Layout.Layer.equal c.layer layer
          && Geom.Rect.touches c.rect ch
          &&
          match side with
          | `Left -> c.rect.Geom.Rect.x1 <= ch.Geom.Rect.x0
          | `Right -> c.rect.Geom.Rect.x0 >= ch.Geom.Rect.x1
          | `Below -> c.rect.Geom.Rect.y1 <= ch.Geom.Rect.y0
          | `Above -> c.rect.Geom.Rect.y0 >= ch.Geom.Rect.y1
        in
        List.find_opt (fun i -> ok conductors.(i)) nearby
      in
      let source, drain, w_nm, l_nm =
        match (neighbours `Left, neighbours `Right, neighbours `Below, neighbours `Above) with
        | Some l, Some r, _, _ ->
          (l, r, Geom.Rect.height ch, Geom.Rect.width ch)
        | _, _, Some b, Some a ->
          (b, a, Geom.Rect.width ch, Geom.Rect.height ch)
        | _ -> err "channel %s lacks source/drain on opposite sides" (Geom.Rect.to_string ch)
      in
      let device =
        match Layout.Mask.hint_for mask ch with
        | Some name -> name
        | None -> Printf.sprintf "MX%d" (k + 1)
      in
      {
        Extraction.device;
        kind;
        channel_rect = ch;
        w_nm;
        l_nm;
        gate = find_gate ch;
        source;
        drain;
      })
    channels

(* Plate capacitors: a hint named [C*] marks a poly-metal2 overlap. *)
let recognise_caps ~options mask (conductors : Extraction.conductor array) =
  List.filter_map
    (fun (h : Layout.Mask.device_hint) ->
      if String.length h.name > 0 && (h.name.[0] = 'C' || h.name.[0] = 'c') then begin
        (* The hint region may clip wire stubs feeding the plate; the
           plate proper is the conductor with the largest overlap. *)
        let plate layer =
          let best = ref None in
          Array.iteri
            (fun i (c : Extraction.conductor) ->
              if Layout.Layer.equal c.layer layer then begin
                match Geom.Rect.inter c.rect h.channel with
                | Some ov when not (Geom.Rect.is_degenerate ov) ->
                  let a = Geom.Rect.area ov in
                  (match !best with
                  | Some (_, a0) when a0 >= a -> ()
                  | Some _ | None -> best := Some (i, a))
                | Some _ | None -> ()
              end)
            conductors;
          match !best with
          | Some (i, _) -> i
          | None ->
            err "capacitor %s has no %s plate" h.name (Layout.Layer.to_string layer)
        in
        let p_poly = plate Layout.Layer.Poly and p_m2 = plate Layout.Layer.Metal2 in
        let area =
          match Geom.Rect.inter conductors.(p_poly).rect conductors.(p_m2).rect with
          | Some i -> Geom.Rect.area i
          | None -> err "capacitor %s plates do not overlap" h.name
        in
        Some (h.name, p_poly, p_m2, float_of_int area *. options.cap_per_nm2)
      end
      else None)
    mask.Layout.Mask.hints

(* The geometry-only first half of extraction: everything that does not
   need connectivity.  The staged pipeline computes it once per run, then
   builds the union-find from per-tile (possibly cached) adjacency and
   hands both back to [assemble]; the classic [extract] below is the same
   two halves around a global [Connectivity.unify]. *)
type skeleton = {
  sk_mask : Layout.Mask.t;
  sk_channels : ([ `N | `P ] * Geom.Rect.t) list;
  sk_conductors : Extraction.conductor array;
  sk_cut_shapes : (Layout.Layer.t * Geom.Rect.t) array;
}

let skeleton mask =
  let sk_channels = find_channels mask in
  let channel_rects = List.map snd sk_channels in
  {
    sk_mask = mask;
    sk_channels;
    sk_conductors = build_conductors mask channel_rects;
    sk_cut_shapes = cut_shapes mask;
  }

let assemble ?(options = default_options) sk ~uf ~joins =
  let mask = sk.sk_mask in
  let channel_list = sk.sk_channels in
  let conductors = sk.sk_conductors in
  let cut_shapes = sk.sk_cut_shapes in
  let net_of, net_total = number_nets uf (Array.length conductors) in
  let net_names = name_nets mask conductors net_of net_total in
  let channels = recognise_mos mask conductors channel_list in
  let caps = recognise_caps ~options mask conductors in
  let net i = net_names.(net_of.(i)) in
  let mos_devices =
    List.map
      (fun (c : Extraction.channel) ->
        let model, bulk =
          match c.kind with
          | `N -> (options.nmos_model, options.nmos_bulk)
          | `P -> (options.pmos_model, options.pmos_bulk)
        in
        Netlist.Device.M
          {
            name = c.device;
            d = net c.drain;
            g = net c.gate;
            s = net c.source;
            b = bulk;
            model;
            w = float_of_int c.w_nm *. 1e-9;
            l = float_of_int c.l_nm *. 1e-9;
          })
      channels
  in
  let cap_devices =
    List.map
      (fun (name, p_poly, p_m2, value) ->
        Netlist.Device.C { name; n1 = net p_poly; n2 = net p_m2; value; ic = None })
      caps
  in
  let circuit =
    Netlist.Circuit.of_devices
      ("extracted: " ^ mask.Layout.Mask.tech.Layout.Tech.name)
      (mos_devices @ cap_devices)
  in
  let terminals =
    List.concat_map
      (fun (c : Extraction.channel) ->
        [
          { Extraction.device = c.device; port = 0; conductor = c.drain };
          { Extraction.device = c.device; port = 1; conductor = c.gate };
          { Extraction.device = c.device; port = 2; conductor = c.source };
        ])
      channels
    @ List.concat_map
        (fun (name, p_poly, p_m2, _) ->
          [
            { Extraction.device = name; port = 0; conductor = p_poly };
            { Extraction.device = name; port = 1; conductor = p_m2 };
          ])
        caps
  in
  {
    Extraction.mask;
    conductors;
    net_of;
    net_names;
    cuts =
      Array.mapi
        (fun i (cut_layer, cut_rect) -> { Extraction.cut_layer; cut_rect; joins = joins.(i) })
        cut_shapes;
    channels;
    circuit;
    terminals;
  }

let extract ?options mask =
  let sk = skeleton mask in
  let uf, joins =
    Connectivity.unify ~conductors:sk.sk_conductors ~cut_shapes:sk.sk_cut_shapes
      ~skip_conductor:(fun _ -> false)
      ~skip_cut:(fun _ -> false)
  in
  assemble ?options sk ~uf ~joins
