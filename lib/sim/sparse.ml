(* Sparse LU backend for the MNA core.

   The matrix lives in two representations.  While the nonzero pattern is
   still being discovered ("building" mode) stamps accumulate into a
   hashtable keyed by (row, col).  The first factorisation compiles the
   union of every coordinate ever stamped into a CSC structure (columns
   sorted, one slot per coordinate) and from then on stamping is a binary
   search into the compiled pattern - an MNA topology stamps the same
   coordinates on every Newton iteration, so the compiled path is the
   steady state.  A stamp that misses the pattern (a fault patch touching
   new coordinates, the first transient step adding companion-model
   entries to a DC-only pattern) decompiles back to the hashtable and the
   next factorisation re-compiles the grown union; the pattern only ever
   grows, so a session settles after a handful of rebuilds.

   Factorisation is Gilbert-Peierls left-looking LU with threshold
   partial pivoting (after CSparse's cs_lu).  The first ("full")
   factorisation computes the pattern of each factor column by a DFS
   reachability pass and chooses pivots; every later solve replays the
   stored pattern and pivot order numerically ("refactorisation") with no
   graph traversal and no pivot search - the payoff the whole backend
   exists for.  A refactorisation whose reused pivot degenerates falls
   back to one full factorisation with fresh pivoting.

   Columns are pre-ordered by a greedy minimum-degree pass over the
   symmetrised pattern (static fill reduction); rows are permuted by
   pivoting only.

   Batch sessions solve at several active sizes (the nominal topology,
   then +1/+2 overlay rows per fault patch).  Rather than re-running the
   symbolic analysis whenever the active size shrinks, the factorisation
   always covers [pat_n] (the largest size seen): rows in
   [n, pat_n) are padded with a unit diagonal and a zero right-hand
   side, which leaves the active unknowns' solution bit-identical while
   keeping one pattern, one ordering and one pivot sequence alive across
   the whole fault list. *)

exception Singular of int
(* Original (pre-ordering) index of the unknown whose pivot vanished. *)

let pivot_eps = 1e-30

(* Prefer the diagonal when it is within [pivot_tol] of the column
   maximum: diagonal pivots keep the pivot order stable across
   refactorisations of the same topology. *)
let pivot_tol = 1e-3

type t = {
  cap : int;
  b : float array; (* right-hand side, overwritten with the solution *)
  mutable n : int; (* active unknowns of the current stamp *)
  mutable pat_n : int; (* factorised order: max [n] ever seen *)
  (* --- compiled matrix: CSC over the accumulated pattern --- *)
  mutable colptr : int array; (* length pat_n + 1 *)
  mutable rowind : int array; (* rows, sorted within each column *)
  mutable vals : float array;
  mutable diag_slot : int array; (* slot of (r, r) per row, for padding *)
  mutable compiled : bool;
  building : (int, float) Hashtbl.t; (* key = row * cap + col *)
  (* --- factorisation --- *)
  mutable q : int array; (* column order: factor col k holds A(:, q.(k)) *)
  mutable pinv : int array; (* row -> pivot position *)
  mutable lp : int array; (* L column pointers, length cap + 1 *)
  mutable li : int array;
  mutable lx : float array;
  mutable up : int array;
  mutable ui : int array;
  mutable ux : float array;
  mutable have_factor : bool;
  (* --- workspace (sized cap once) --- *)
  x : float array;
  flag : int array;
  rstack : int array;
  pstack : int array;
  xi : int array;
  work : float array;
  (* --- counters (cumulative; Solver reports deltas) --- *)
  mutable stat_full : int;
  mutable stat_refactor : int;
  mutable stat_solve : int;
  mutable stat_symbolic : int;
  mutable stat_repivot : int;
}

let create ~capacity =
  let cap = max capacity 1 in
  {
    cap;
    b = Array.make cap 0.0;
    n = 0;
    pat_n = 0;
    colptr = [| 0 |];
    rowind = [||];
    vals = [||];
    diag_slot = [||];
    compiled = false;
    building = Hashtbl.create 256;
    q = [||];
    pinv = Array.make cap (-1);
    lp = Array.make (cap + 1) 0;
    li = [||];
    lx = [||];
    up = Array.make (cap + 1) 0;
    ui = [||];
    ux = [||];
    have_factor = false;
    x = Array.make cap 0.0;
    flag = Array.make cap (-1);
    rstack = Array.make cap 0;
    pstack = Array.make cap 0;
    xi = Array.make cap 0;
    work = Array.make cap 0.0;
    stat_full = 0;
    stat_refactor = 0;
    stat_solve = 0;
    stat_symbolic = 0;
    stat_repivot = 0;
  }

let capacity t = t.cap

let rhs t = t.b

let nnz t = if t.compiled then Array.length t.rowind else Hashtbl.length t.building

let factor_nnz t = if t.have_factor then t.lp.(t.pat_n) + t.up.(t.pat_n) else 0

let stats t =
  (t.stat_full, t.stat_refactor, t.stat_solve, t.stat_symbolic, t.stat_repivot)

(* --- stamping ---------------------------------------------------------- *)

let decompile t =
  (* Dump every compiled slot (pattern and current values) back into the
     hashtable so the union pattern survives the rebuild. *)
  for j = 0 to t.pat_n - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      Hashtbl.replace t.building ((t.rowind.(p) * t.cap) + j) t.vals.(p)
    done
  done;
  t.compiled <- false;
  t.have_factor <- false

let begin_stamp t ~n =
  if n > t.cap then invalid_arg "Sparse.begin_stamp: n exceeds capacity";
  t.n <- n;
  if n > t.pat_n then begin
    (* New rows join the pattern; force a rebuild so they get diagonal
       slots and a place in the ordering. *)
    if t.compiled then decompile t;
    t.pat_n <- n
  end;
  Array.fill t.b 0 t.pat_n 0.0;
  if t.compiled then Array.fill t.vals 0 (Array.length t.vals) 0.0
  else
    (* Zero the values but keep the keys: the accumulated pattern must
       survive from one stamp to the next. *)
    Hashtbl.filter_map_inplace (fun _ _ -> Some 0.0) t.building

let add_building t i j v =
  let key = (i * t.cap) + j in
  match Hashtbl.find_opt t.building key with
  | Some v0 -> Hashtbl.replace t.building key (v0 +. v)
  | None -> Hashtbl.replace t.building key v

(* Binary search for row [i] within column [j] of the compiled pattern;
   returns the slot or -1. *)
let find_slot t i j =
  let lo = ref t.colptr.(j) and hi = ref (t.colptr.(j + 1) - 1) in
  let slot = ref (-1) in
  while !slot < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.rowind.(mid) in
    if r = i then slot := mid else if r < i then lo := mid + 1 else hi := mid - 1
  done;
  !slot

let add t i j v =
  if i >= 0 && j >= 0 then
    if not t.compiled then add_building t i j v
    else begin
      let slot = find_slot t i j in
      if slot >= 0 then t.vals.(slot) <- t.vals.(slot) +. v
      else begin
        (* Pattern growth: fall back to building mode for this stamp. *)
        decompile t;
        add_building t i j v
      end
    end

let add_rhs t i v = if i >= 0 then t.b.(i) <- t.b.(i) +. v

(* --- pattern compilation ----------------------------------------------- *)

(* Greedy minimum-degree ordering of the symmetrised pattern.  The
   quotient-graph refinements of real AMD are overkill here: this runs
   once per topology, on systems of at most a few thousand unknowns. *)
let min_degree_order m colptr rowind =
  let adj = Array.init m (fun _ -> Hashtbl.create 8) in
  for j = 0 to m - 1 do
    for p = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(p) in
      if i <> j && i < m then begin
        Hashtbl.replace adj.(i) j ();
        Hashtbl.replace adj.(j) i ()
      end
    done
  done;
  let alive = Array.make m true in
  let order = Array.make m 0 in
  for k = 0 to m - 1 do
    let best = ref (-1) and best_d = ref max_int in
    for v = 0 to m - 1 do
      if alive.(v) then begin
        let d = Hashtbl.length adj.(v) in
        if d < !best_d then begin
          best := v;
          best_d := d
        end
      end
    done;
    let v = !best in
    order.(k) <- v;
    alive.(v) <- false;
    (* Connect the eliminated vertex's neighbours into a clique. *)
    let nbrs = Hashtbl.fold (fun u () acc -> if alive.(u) then u :: acc else acc) adj.(v) [] in
    List.iter
      (fun u ->
        Hashtbl.remove adj.(u) v;
        List.iter
          (fun w -> if u <> w then Hashtbl.replace adj.(u) w ())
          nbrs)
      nbrs;
    Hashtbl.reset adj.(v)
  done;
  order

let compile t =
  let m = t.pat_n in
  (* Every row keeps a diagonal slot: branch rows get one even when no
     device stamps it (an explicit zero costs one slot and lets inactive
     overlay rows be padded with a unit pivot). *)
  for r = 0 to m - 1 do
    let key = (r * t.cap) + r in
    if not (Hashtbl.mem t.building key) then Hashtbl.add t.building key 0.0
  done;
  let entries =
    Hashtbl.fold (fun key v acc -> (key / t.cap, key mod t.cap, v) :: acc) t.building []
  in
  let entries =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) ->
        match Int.compare j1 j2 with 0 -> Int.compare i1 i2 | c -> c)
      entries
  in
  let nz = List.length entries in
  let colptr = Array.make (m + 1) 0 in
  let rowind = Array.make nz 0 in
  let vals = Array.make nz 0.0 in
  let diag_slot = Array.make m (-1) in
  let p = ref 0 in
  List.iter
    (fun (i, j, v) ->
      colptr.(j + 1) <- colptr.(j + 1) + 1;
      rowind.(!p) <- i;
      vals.(!p) <- v;
      if i = j then diag_slot.(i) <- !p;
      incr p)
    entries;
  for j = 0 to m - 1 do
    colptr.(j + 1) <- colptr.(j + 1) + colptr.(j)
  done;
  t.colptr <- colptr;
  t.rowind <- rowind;
  t.vals <- vals;
  t.diag_slot <- diag_slot;
  t.compiled <- true;
  t.have_factor <- false;
  Hashtbl.reset t.building;
  t.q <- min_degree_order m colptr rowind;
  t.stat_symbolic <- t.stat_symbolic + 1

let finish t = if not t.compiled then compile t

(* --- factorisation ----------------------------------------------------- *)

(* Growable factor storage. *)
let ensure arr len fill =
  if Array.length !arr >= len then ()
  else begin
    let cap = max len (max 16 (2 * Array.length !arr)) in
    let fresh = Array.make cap fill in
    Array.blit !arr 0 fresh 0 (Array.length !arr);
    arr := fresh
  end

(* DFS from [root] over the graph of already-computed L columns
   (cs_dfs): pushes the reach of [root] onto [xi] ending at [top] - 1,
   in topological (head-first) order.  Returns the new top. *)
let dfs t root k top0 =
  let head = ref 0 and top = ref top0 in
  t.rstack.(0) <- root;
  while !head >= 0 do
    let i = t.rstack.(!head) in
    let jcol = t.pinv.(i) in
    if t.flag.(i) <> k then begin
      t.flag.(i) <- k;
      t.pstack.(!head) <- (if jcol < 0 then 0 else t.lp.(jcol))
    end;
    let finished = ref true in
    if jcol >= 0 then begin
      let pend = t.lp.(jcol + 1) in
      let p = ref t.pstack.(!head) in
      while !finished && !p < pend do
        let i2 = t.li.(!p) in
        if t.flag.(i2) <> k then begin
          t.pstack.(!head) <- !p + 1;
          incr head;
          t.rstack.(!head) <- i2;
          finished := false
        end
        else incr p
      done;
      if !finished then t.pstack.(!head) <- pend
    end;
    if !finished then begin
      decr head;
      decr top;
      t.xi.(!top) <- i
    end
  done;
  !top

(* One full Gilbert-Peierls factorisation with threshold partial
   pivoting.  Raises {!Singular} naming the offending column's original
   unknown. *)
let full_factor t =
  let m = t.pat_n in
  let lnz = ref 0 and unz = ref 0 in
  Array.fill t.pinv 0 m (-1);
  for i = 0 to m - 1 do
    t.flag.(i) <- -1;
    t.x.(i) <- 0.0
  done;
  (* Conservative initial factor capacity; grown on demand.  The DFS
     walks the in-progress L through [t.li]/[t.lp], so growth writes the
     resized arrays straight back into [t]. *)
  let grow_l len =
    let r = ref t.li in
    ensure r len 0;
    t.li <- !r;
    let r = ref t.lx in
    ensure r len 0.0;
    t.lx <- !r
  in
  let grow_u len =
    let r = ref t.ui in
    ensure r len 0;
    t.ui <- !r;
    let r = ref t.ux in
    ensure r len 0.0;
    t.ux <- !r
  in
  let est = max 64 (4 * Array.length t.rowind) in
  grow_l est;
  grow_u est;
  for k = 0 to m - 1 do
    t.lp.(k) <- !lnz;
    t.up.(k) <- !unz;
    let col = t.q.(k) in
    (* Symbolic: reach of the column's pattern through L. *)
    let top = ref m in
    for p = t.colptr.(col) to t.colptr.(col + 1) - 1 do
      let i = t.rowind.(p) in
      if t.flag.(i) <> k then top := dfs t i k !top
    done;
    (* Numeric: x = L \ A(:, col), in topological order. *)
    for p = t.colptr.(col) to t.colptr.(col + 1) - 1 do
      t.x.(t.rowind.(p)) <- t.vals.(p)
    done;
    for px = !top to m - 1 do
      let i = t.xi.(px) in
      let jcol = t.pinv.(i) in
      if jcol >= 0 then begin
        let xj = t.x.(i) in
        if xj <> 0.0 then
          for p = t.lp.(jcol) + 1 to t.lp.(jcol + 1) - 1 do
            t.x.(t.li.(p)) <- t.x.(t.li.(p)) -. (t.lx.(p) *. xj)
          done
      end
    done;
    (* Pivot: largest magnitude among not-yet-pivotal rows, with a
       preference for the diagonal when it is close enough. *)
    let ipiv = ref (-1) and amax = ref 0.0 in
    for px = !top to m - 1 do
      let i = t.xi.(px) in
      if t.pinv.(i) < 0 then begin
        let a = Float.abs t.x.(i) in
        if a > !amax then begin
          amax := a;
          ipiv := i
        end
      end
    done;
    if !ipiv < 0 || !amax < pivot_eps then begin
      (* Clean the workspace before giving up. *)
      for px = !top to m - 1 do
        t.x.(t.xi.(px)) <- 0.0
      done;
      t.have_factor <- false;
      raise (Singular col)
    end;
    if t.pinv.(col) < 0 && Float.abs t.x.(col) >= pivot_tol *. !amax then
      ipiv := col;
    let pivot = t.x.(!ipiv) in
    t.pinv.(!ipiv) <- k;
    (* Emit U (rows already pivotal) then L (rows below the pivot). *)
    grow_u (!unz + m + 1);
    grow_l (!lnz + m + 1);
    for px = !top to m - 1 do
      let i = t.xi.(px) in
      let pi = t.pinv.(i) in
      if pi >= 0 && pi < k then begin
        t.ui.(!unz) <- pi;
        t.ux.(!unz) <- t.x.(i);
        incr unz
      end
    done;
    t.ui.(!unz) <- k;
    t.ux.(!unz) <- pivot;
    incr unz;
    t.li.(!lnz) <- !ipiv;
    t.lx.(!lnz) <- 1.0;
    incr lnz;
    for px = !top to m - 1 do
      let i = t.xi.(px) in
      if t.pinv.(i) < 0 then begin
        t.li.(!lnz) <- i;
        t.lx.(!lnz) <- t.x.(i) /. pivot;
        incr lnz
      end;
      t.x.(i) <- 0.0
    done
  done;
  t.lp.(m) <- !lnz;
  t.up.(m) <- !unz;
  (* Map L's rows into pivot coordinates and sort both factors' columns
     by row, so refactorisation and the triangular solves can walk them
     in elimination order. *)
  for p = 0 to !lnz - 1 do
    t.li.(p) <- t.pinv.(t.li.(p))
  done;
  let sort_cols ptr idx vx =
    for k = 0 to m - 1 do
      let lo = ptr.(k) and hi = ptr.(k + 1) in
      let len = hi - lo in
      if len > 1 then begin
        let pairs = Array.init len (fun d -> (idx.(lo + d), vx.(lo + d))) in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) pairs;
        Array.iteri
          (fun d (i, v) ->
            idx.(lo + d) <- i;
            vx.(lo + d) <- v)
          pairs
      end
    done
  in
  sort_cols t.lp t.li t.lx;
  sort_cols t.up t.ui t.ux;
  t.have_factor <- true;
  t.stat_full <- t.stat_full + 1

exception Stale_pivot

(* Numeric refactorisation: same pattern, same pivot order, new values.
   No DFS, no pivot search.  Raises {!Stale_pivot} when a reused pivot
   has degenerated, in which case the caller re-runs {!full_factor}. *)
let refactor t =
  let m = t.pat_n in
  for k = 0 to m - 1 do
    let col = t.q.(k) in
    (* Scatter A(:, col) into pivot coordinates.  Every target position
       lies inside column k's stored L/U pattern, which is also exactly
       what gets cleared below. *)
    for p = t.colptr.(col) to t.colptr.(col + 1) - 1 do
      t.x.(t.pinv.(t.rowind.(p))) <- t.vals.(p)
    done;
    let udiag = t.up.(k + 1) - 1 in
    for p = t.up.(k) to udiag - 1 do
      let j = t.ui.(p) in
      let xj = t.x.(j) in
      t.ux.(p) <- xj;
      if xj <> 0.0 then
        for pl = t.lp.(j) + 1 to t.lp.(j + 1) - 1 do
          t.x.(t.li.(pl)) <- t.x.(t.li.(pl)) -. (t.lx.(pl) *. xj)
        done
    done;
    let pivot = t.x.(k) in
    if Float.abs pivot < pivot_eps then begin
      for p = t.up.(k) to udiag do
        t.x.(t.ui.(p)) <- 0.0
      done;
      for pl = t.lp.(k) to t.lp.(k + 1) - 1 do
        t.x.(t.li.(pl)) <- 0.0
      done;
      raise Stale_pivot
    end;
    t.ux.(udiag) <- pivot;
    for pl = t.lp.(k) + 1 to t.lp.(k + 1) - 1 do
      let i = t.li.(pl) in
      t.lx.(pl) <- t.x.(i) /. pivot;
      t.x.(i) <- 0.0
    done;
    for p = t.up.(k) to udiag do
      t.x.(t.ui.(p)) <- 0.0
    done
  done;
  t.stat_refactor <- t.stat_refactor + 1

let factor_solve t =
  if not t.compiled then compile t;
  let m = t.pat_n in
  if m > 0 then begin
    (* Pad inactive overlay rows with a unit pivot and zero RHS: rows in
       [n, pat_n) then solve to exactly zero without disturbing the
       active window. *)
    for r = t.n to m - 1 do
      t.vals.(t.diag_slot.(r)) <- 1.0;
      t.b.(r) <- 0.0
    done;
    (if not t.have_factor then full_factor t
     else
       match refactor t with
       | () -> ()
       | exception Stale_pivot ->
         t.stat_repivot <- t.stat_repivot + 1;
         full_factor t);
    (* Solve P A Q z = P b, then x = Q z. *)
    let w = t.work in
    for i = 0 to m - 1 do
      w.(t.pinv.(i)) <- t.b.(i)
    done;
    for k = 0 to m - 1 do
      let xk = w.(k) in
      if xk <> 0.0 then
        for p = t.lp.(k) + 1 to t.lp.(k + 1) - 1 do
          w.(t.li.(p)) <- w.(t.li.(p)) -. (t.lx.(p) *. xk)
        done
    done;
    for k = m - 1 downto 0 do
      let udiag = t.up.(k + 1) - 1 in
      let xk = w.(k) /. t.ux.(udiag) in
      w.(k) <- xk;
      if xk <> 0.0 then
        for p = t.up.(k) to udiag - 1 do
          w.(t.ui.(p)) <- w.(t.ui.(p)) -. (t.ux.(p) *. xk)
        done
    done;
    for k = 0 to m - 1 do
      t.b.(t.q.(k)) <- w.(k)
    done;
    t.stat_solve <- t.stat_solve + 1
  end
