type t = {
  node_index : (string, int) Hashtbl.t;
  branch_index : (string, int) Hashtbl.t;
  nodes : string array;
  branches : string array;
}

let make circuit =
  let node_index = Hashtbl.create 32 in
  let nodes =
    Netlist.Circuit.nodes circuit
    |> List.filter (fun n -> n <> Netlist.Device.ground)
  in
  List.iteri (fun i n -> Hashtbl.replace node_index n i) nodes;
  let n = List.length nodes in
  let branch_owners =
    List.filter_map
      (fun d ->
        match d with
        | Netlist.Device.V { name; _ } | Netlist.Device.L { name; _ } -> Some name
        | Netlist.Device.R _ | Netlist.Device.C _ | Netlist.Device.I _
        | Netlist.Device.D _ | Netlist.Device.M _ ->
          None)
      (Netlist.Circuit.devices circuit)
  in
  let branch_index = Hashtbl.create 8 in
  List.iteri (fun i nm -> Hashtbl.replace branch_index nm (n + i)) branch_owners;
  {
    node_index;
    branch_index;
    nodes = Array.of_list nodes;
    branches = Array.of_list branch_owners;
  }

let node_count t = Array.length t.nodes

let size t = Array.length t.nodes + Array.length t.branches

let node_id t name =
  if String.equal name Netlist.Device.ground then -1
  else Hashtbl.find t.node_index name

let branch_id t name = Hashtbl.find t.branch_index name

let node_names t = t.nodes

let branch_names t = t.branches

let unknown_name t i =
  let n = Array.length t.nodes in
  if i < 0 then Netlist.Device.ground
  else if i < n then t.nodes.(i)
  else if i - n < Array.length t.branches then "I(" ^ t.branches.(i - n) ^ ")"
  else Printf.sprintf "overlay[%d]" i

type system = { a : float array array; b : float array }

let fresh_system ?(extra = 0) t =
  let n = size t + extra in
  { a = Array.make_matrix n n 0.0; b = Array.make n 0.0 }

let clear ?n sys =
  let n = Option.value n ~default:(Array.length sys.b) in
  for i = 0 to n - 1 do
    sys.b.(i) <- 0.0;
    Array.fill sys.a.(i) 0 n 0.0
  done

let add_jacobian sys i j v = if i >= 0 && j >= 0 then sys.a.(i).(j) <- sys.a.(i).(j) +. v

let add_rhs sys i v = if i >= 0 then sys.b.(i) <- sys.b.(i) +. v

let add_conductance sys i j g =
  add_jacobian sys i i g;
  add_jacobian sys j j g;
  add_jacobian sys i j (-.g);
  add_jacobian sys j i (-.g)

let add_current sys i x = add_rhs sys i x
