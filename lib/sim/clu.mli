(** Dense complex LU factorisation with partial pivoting, for AC
    (small-signal) analysis.  Mirrors {!Lu}: the factorisation works in
    place on caller buffers, with pivot and substitution intermediates in
    a reusable scratch so a frequency sweep allocates once. *)

exception Singular of int
(** Row index, in the caller's original row numbering, whose pivot
    vanished. *)

type scratch
(** Reusable pivot/permutation and substitution buffers. *)

(** [make_scratch n] allocates scratch for systems of up to [n]
    unknowns. *)
val make_scratch : int -> scratch

(** Capacity the scratch was allocated for. *)
val scratch_capacity : scratch -> int

(** [factor_solve ?n scratch a b] overwrites the leading [n]x[n] block
    of [a] with its LU factors and the first [n] entries of [b] with the
    solution of [a x = b] ([n] defaults to the length of [b]).  No
    allocation happens; all intermediates live in [scratch].  Raises
    {!Singular} on a numerically singular matrix and [Invalid_argument]
    if [scratch] is smaller than [n]. *)
val factor_solve :
  ?n:int -> scratch -> Complex.t array array -> Complex.t array -> unit

(** [solve a b] overwrites [a] with its LU factors and [b] with the
    solution of [a x = b], allocating fresh scratch. *)
val solve : Complex.t array array -> Complex.t array -> unit

(** [solve_copy a b] is {!solve} on copies, leaving inputs intact. *)
val solve_copy : Complex.t array array -> Complex.t array -> Complex.t array
