(** The kernel simulator: DC operating point and transient analysis.

    This plays the role ELDO played for the paper's AnaFAULT: it accepts a
    netlist (possibly rewritten by fault injection) and produces transient
    waveforms.  Nonlinear solves use damped Newton-Raphson; DC falls back
    to gmin stepping then source stepping; transient steps adaptively
    (iteration-count control) between source breakpoints. *)

type integration = Backward_euler | Trapezoidal

(** A work budget for one analysis.  Each limit is cumulative over the
    whole analysis (all Newton solves, accepted and rejected steps);
    [None] means unlimited.  When any limit trips, the analysis raises
    {!Sim_error} with {!Budget_exceeded} - the deterministic alternative
    to letting a pathological fault stall its domain.  The deadline is
    checked once per proposed transient step, so the overshoot past the
    deadline is at most one Newton solve. *)
type budget = {
  max_newton_iterations : int option;
  max_steps : int option;  (** accepted + rejected transient steps *)
  deadline_seconds : float option;  (** wall clock, from transient start *)
}

(** No limits - the default. *)
val unlimited : budget

type options = {
  gmin : float;  (** conductance to ground on every node (default 1e-12) *)
  reltol : float;  (** relative convergence tolerance (1e-3) *)
  abstol : float;  (** absolute voltage tolerance, V (1e-6) *)
  max_iter : int;  (** Newton iteration limit per solve (150) *)
  dv_limit : float;  (** per-iteration Newton step clamp, V (1.0) *)
  cmin : float;  (** parasitic node-to-ground capacitance in transient, F
                     (1e-16); damps idealised regenerative loops *)
  integration : integration;
      (** default [Backward_euler]: its numerical damping settles the
          high-gain metastable equilibria fault injection creates, which
          trapezoidal integration rings on; use [Trapezoidal] for
          accuracy-sensitive lightly-damped circuits *)
  budget : budget;  (** work limits for each analysis (default {!unlimited}) *)
  solver : Solver.backend;
      (** linear-solver backend (default [Auto]: dense below
          {!Solver.auto_threshold} unknowns, sparse at or above it) *)
  cancel : Cancel.t;
      (** cooperative cancellation token polled once per Newton
          iteration and once per proposed transient step (default
          {!Cancel.never}); a cancelled token raises {!Sim_error} with
          {!Cancelled}.  Run-state, not configuration: campaign
          fingerprints ignore it *)
}

val default_options : options

(** Why the kernel gave up.  The taxonomy is carried verbatim into
    AnaFAULT's per-fault outcomes, so a campaign report can tell a
    singular injected topology from a transient that merely stalled. *)
type error =
  | Dc_no_convergence
      (** the operating point defeated Newton, gmin stepping and source
          stepping *)
  | Tran_step_underflow
      (** the adaptive transient halved its step below [tstop * 1e-12]
          without Newton converging *)
  | Singular_matrix
      (** the factorisation hit a structurally singular system (e.g. an
          injected voltage-source loop) and no fallback found a solvable
          one; the detail string names the offending node or branch *)
  | Budget_exceeded  (** a limit of {!budget} tripped *)
  | Cancelled
      (** the options' {!Cancel.t} token was cancelled; the detail
          string carries the {!Cancel.reason} *)

(** Stable lower-snake tag of an {!error} (["dc_no_convergence"], ...),
    used in telemetry attributes and the campaign journal. *)
val error_to_string : error -> string

exception Sim_error of error * string
(** [Sim_error (reason, detail)]: an analysis failed; [detail] is a
    human-readable elaboration (where, at which time point). *)

exception Patch_overflow of string
(** A session patch needed more than the reserved overlay capacity (one
    new node, one new branch) or changed the circuit structurally; the
    caller should fall back to a full rebuild. *)

type solution

(** Node voltage in a DC solution ([0.0] for ground). *)
val voltage : solution -> string -> float

(** Branch current through a voltage source or inductor. *)
val branch_current : solution -> string -> float

(** Work counters of an analysis (for the paper's runtime comparison of
    fault models). *)
type stats = {
  newton_iterations : int;
  accepted_steps : int;
  rejected_steps : int;
}

(** {1 The unified analysis entry point}

    Every one-shot analysis the engine offers is a value of
    {!Analysis.t}, executed by {!run}.  This is the single place a
    caller describes {e what} to compute; options and the telemetry
    sink ride alongside, so instrumentation reaches every analysis kind
    uniformly. *)

module Analysis : sig
  (** An analysis request. *)
  type t =
    | Op  (** DC operating point *)
    | Tran of { tstep : float; tstop : float; uic : bool }
        (** transient from 0 to [tstop]; [tstep] is the suggested output
            resolution and maximum internal step; with [uic] the initial
            state is zero node voltages overridden by capacitor [IC=]
            values instead of the DC operating point *)
    | Dc_sweep of { source : string; values : float list }
        (** DC transfer characteristic over the named V or I source *)
    | Ac of { source : string; freqs : float list }
        (** small-signal analysis, unit drive on the named source *)

  type result =
    | Op_result of solution
    | Tran_result of Waveform.t * stats
    | Sweep_result of (float * solution) list
    | Ac_result of Spectrum.t

  (** ["op"], ["tran"], ["dc_sweep"] or ["ac"] - the tag {!run} stamps
      on its telemetry span. *)
  val kind : t -> string

  (** Result projections.  Each raises [Invalid_argument] when the
      result came from a different analysis kind. *)

  val solution : result -> solution

  val waveform : result -> Waveform.t

  val stats : result -> stats

  val sweep : result -> (float * solution) list

  val spectrum : result -> Spectrum.t
end

(** [run ?options ?obs circuit analysis] executes [analysis] on
    [circuit].  All kernel telemetry (Newton iterations per solve, LU
    time, dv-clamp hits, gmin/source-stepping fallbacks, step
    accept/reject) flows into [obs] (default {!Obs.null}, which is
    free); the whole analysis is additionally wrapped in an
    ["engine.analysis"] span tagged with {!Analysis.kind}.  Raises like
    the analysis-specific entry points it replaces: {!Sim_error},
    [Invalid_argument]. *)
val run :
  ?options:options ->
  ?obs:Obs.sink ->
  Netlist.Circuit.t ->
  Analysis.t ->
  Analysis.result

(** {1 Deprecated pre-{!Analysis} entry points}

    Thin wrappers over {!run} kept for source compatibility; they run
    without telemetry. *)

val dc_operating_point : ?options:options -> Netlist.Circuit.t -> solution
[@@deprecated "use Engine.run _ Analysis.Op"]

(** [transient circuit ~tstep ~tstop ~uic] integrates from 0 to [tstop].
    [tstep] is the suggested output resolution and the maximum internal
    step.  With [uic] the initial state is zero node voltages overridden
    by capacitor [IC=] values (SPICE "use initial conditions"); otherwise
    the DC operating point is computed first.  The waveform carries every
    node voltage plus ["I(name)"] for each branch device. *)
val transient :
  ?options:options ->
  Netlist.Circuit.t ->
  tstep:float ->
  tstop:float ->
  uic:bool ->
  Waveform.t
[@@deprecated "use Engine.run _ (Analysis.Tran _)"]

(** Like {!transient}, also returning work counters. *)
val transient_with_stats :
  ?options:options ->
  Netlist.Circuit.t ->
  tstep:float ->
  tstop:float ->
  uic:bool ->
  Waveform.t * stats
[@@deprecated "use Engine.run _ (Analysis.Tran _)"]

(** Batch solving of one circuit topology.

    A session builds the MNA node map, the compiled device array and the
    solver scratch buffers (system matrix, RHS, LU pivot and
    substitution arrays) once, then reuses them across any number of
    solves.  This is the paper's cost model made cheap: a fault
    simulation campaign is one nominal run plus one run per fault, where
    each faulty circuit differs from the nominal one by a device or two.
    [with_patch] swaps in those few devices without re-deriving the node
    map; the buffers reserve one overlay node row (a split-net open adds
    at most one node) and one overlay branch row (a bridge modelled as a
    0 V source adds one branch current).

    Sessions are single-threaded: parallel fault simulation creates one
    session per domain. *)
module Session : sig
  type t

  (** [create ?options ?obs circuit] compiles [circuit] and allocates
      the shared solver state.  Kernel telemetry of every solve through
      this session flows into [obs]; [with_patch] additionally reports
      patch counts and overlay-row occupancy. *)
  val create : ?options:options -> ?obs:Obs.sink -> Netlist.Circuit.t -> t

  (** The base (nominal) circuit the session was built from. *)
  val circuit : t -> Netlist.Circuit.t

  val options : t -> options

  (** DC operating point of the session's active circuit, reusing the
      session buffers.  Raises {!Sim_error} like {!dc_operating_point}.
      [?options] overrides the session's solver options for this one
      solve (the buffers depend only on the topology) - retry ladders
      use it to relax tolerances without rebuilding the session. *)
  val solve_dc : ?options:options -> t -> solution

  (** Transient analysis of the session's active circuit, reusing the
      session buffers; same semantics as {!transient_with_stats}, same
      [?options] override as {!solve_dc}. *)
  val transient :
    ?options:options ->
    t ->
    tstep:float ->
    tstop:float ->
    uic:bool ->
    Waveform.t * stats

  (** [with_patch t patched f] runs [f] with the session's active circuit
      swapped for [patched], then restores the nominal view (also on
      exception).  [patched] must be the base circuit rewritten through
      [Circuit.replace] / [Circuit.add] - the shapes fault injection
      produces - introducing at most one new node and one new branch;
      anything else raises {!Patch_overflow}.  Devices untouched by the
      patch keep their compiled form; only replaced and appended devices
      are recompiled. *)
  val with_patch : t -> Netlist.Circuit.t -> (t -> 'a) -> 'a

  (** {2 Lock-step batched transients}

      [transient_batch] steps several patched variants of the session's
      base circuit through one shared checkpoint grid, interleaved on
      the session's single solver.  Each variant keeps its own adaptive
      step size, integration state and work budget; what is shared is
      the session's buffers and - on the sparse backend - one symbolic
      analysis of the union stamp pattern, primed before any solve.  The
      per-variant float operations are exactly those of a serial
      {!transient} of the same patch, so waveforms and detection results
      are unchanged by batching. *)

  (** How one variant of a batched transient ended. *)
  type batch_outcome =
    | Batch_finished of Waveform.t * stats
        (** ran to [tstop]; the waveform holds every accepted sample *)
    | Batch_dropped of { grid_index : int; stats : stats }
        (** the probe returned [`Drop] at checkpoint [grid_index]; the
            variant was retired early *)
    | Batch_failed of { error : error; detail : string; stats : stats }
        (** this variant's own solve failed ({!Sim_error} payload); the
            other variants are unaffected *)
    | Batch_overflow of string
        (** the patch exceeded the overlay reserve; the caller must fall
            back to a full per-fault rebuild *)

  type batch_result = {
    outcome : batch_outcome;
    seconds : float;  (** wall clock spent advancing this variant *)
  }

  (** [transient_batch t ~variants ~observe ~grid ~tstep ~tstop ~uic
      ~probe] runs every circuit of [variants] (each a patch of the base
      circuit, as for {!with_patch}) in lock-step.  At each time of
      [grid] (ascending, typically the nominal run's resampled times,
      ending at the nominal stop time) every live variant is advanced
      past that time and the observed signal [observe] (a waveform name:
      node voltage or ["I(branch)"]) is interpolated exactly as
      {!Waveform.resample} would; [probe] then decides whether the
      variant continues or is dropped.  Budgets apply per variant; a
      deadline is measured from that variant's own start.  Raises
      [Invalid_argument] when [observe] names no signal, the grid is
      empty, or the time parameters are invalid; per-variant failures
      are returned, not raised. *)
  val transient_batch :
    ?options:options ->
    t ->
    variants:Netlist.Circuit.t array ->
    observe:string ->
    grid:float array ->
    tstep:float ->
    tstop:float ->
    uic:bool ->
    probe:
      (variant:int -> grid_index:int -> value:float -> [ `Continue | `Drop ]) ->
    batch_result array
end

(** [dc_sweep circuit ~source ~values] computes the DC transfer
    characteristic: the operating point is re-solved for each value of
    the named V or I source, warm-starting from the previous point
    (continuation).  Raises [Invalid_argument] when [source] names no
    independent source. *)
val dc_sweep :
  ?options:options ->
  Netlist.Circuit.t ->
  source:string ->
  values:float list ->
  (float * solution) list
[@@deprecated "use Engine.run _ (Analysis.Dc_sweep _)"]

(** [ac circuit ~source ~freqs] performs small-signal AC analysis: the DC
    operating point is computed, every device is linearised around it,
    and the complex MNA system is solved at each frequency of [freqs]
    (Hz, increasing).  The V or I source called [source] drives with unit
    magnitude; all other independent sources are quenched, so each node's
    phasor IS the transfer function to that node.  Raises
    [Invalid_argument] when [source] names no independent source and
    {!Sim_error} if the operating point fails. *)
val ac :
  ?options:options ->
  Netlist.Circuit.t ->
  source:string ->
  freqs:float list ->
  Spectrum.t
[@@deprecated "use Engine.run _ (Analysis.Ac _)"]
