(** Modified nodal analysis bookkeeping.

    Unknowns are the non-ground node voltages followed by one branch
    current per voltage source and per inductor.  A {!system} is the dense
    Jacobian/right-hand-side pair that device stamps accumulate into. *)

type t

(** [make circuit] indexes the circuit's nodes and branches. *)
val make : Netlist.Circuit.t -> t

(** Number of unknowns (nodes + branches). *)
val size : t -> int

val node_count : t -> int

(** [node_id t name] is the unknown index of node [name], or [-1] for
    ground.  Raises [Not_found] for unknown names. *)
val node_id : t -> string -> int

(** [branch_id t device_name] is the unknown index of the branch current
    owned by voltage source or inductor [device_name]. *)
val branch_id : t -> string -> int

(** Node names in index order (excluding ground). *)
val node_names : t -> string array

(** Branch owner names in index order. *)
val branch_names : t -> string array

(** [unknown_name t i] is a human-readable name for unknown [i]: the
    node name, ["I(device)"] for a branch current, the ground name for
    [-1], or ["overlay[i]"] for a session overlay row beyond the base
    unknowns. *)
val unknown_name : t -> int -> string

type system = { a : float array array; b : float array }

(** [fresh_system ?extra t] allocates a zeroed system sized for the
    circuit's unknowns plus [extra] reserve rows (default 0).  The
    reserve lets a batch session keep one set of solver buffers while
    fault patches add an overlay node or branch. *)
val fresh_system : ?extra:int -> t -> system

(** [clear ?n sys] zeroes the leading [n]x[n] window (default: the whole
    buffer) - sessions solve below capacity and need not touch the
    reserved overlay rows. *)
val clear : ?n:int -> system -> unit

(** [add_conductance sys i j g] stamps conductance [g] between unknowns
    [i] and [j] (either may be [-1] = ground). *)
val add_conductance : system -> int -> int -> float -> unit

(** [add_current sys i x] adds current [x] flowing {e into} node [i]
    (ignored for ground). *)
val add_current : system -> int -> float -> unit

(** [add_jacobian sys i j v] adds [v] at matrix position [(i, j)];
    no-op when either index is ground. *)
val add_jacobian : system -> int -> int -> float -> unit

(** [add_rhs sys i v] adds [v] to the right-hand side at row [i]. *)
val add_rhs : system -> int -> float -> unit
