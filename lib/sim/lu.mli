(** Dense LU factorisation with partial pivoting.

    Circuit matrices here are tens of rows (the VCO has ~30 unknowns), so
    a dense solver is the right tool; sparsity machinery would cost more
    than it saves.  The factorisation works in place on caller-provided
    buffers so batch fault simulation can run thousands of Newton solves
    without allocating. *)

exception Singular of int
(** Row index, in the caller's original row numbering (i.e. the MNA
    unknown index), whose pivot vanished - the elimination column's
    failed pivot mapped back through the permutation. *)

type scratch
(** Reusable pivot/permutation and substitution buffers. *)

(** [make_scratch n] allocates scratch for systems of up to [n] unknowns. *)
val make_scratch : int -> scratch

(** Capacity the scratch was allocated for. *)
val scratch_capacity : scratch -> int

(** [factor_solve ?n scratch a b] overwrites the leading [n]x[n] block of
    [a] with its LU factors and the first [n] entries of [b] with the
    solution of [a x = b] ([n] defaults to the length of [b]).  No
    allocation happens; all intermediates live in [scratch].  Raises
    {!Singular} on a numerically singular matrix (pivot magnitude below
    1e-30) and [Invalid_argument] if [scratch] is smaller than [n]. *)
val factor_solve : ?n:int -> scratch -> float array array -> float array -> unit

(** [solve a b] overwrites [a] with its LU factors and [b] with the
    solution of [a x = b], allocating fresh scratch.  Raises {!Singular}
    on a numerically singular matrix. *)
val solve : float array array -> float array -> unit

(** [solve_copy a b] is {!solve} on copies, leaving inputs intact. *)
val solve_copy : float array array -> float array -> float array
