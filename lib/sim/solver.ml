(* The pluggable linear-solver layer.

   Everything between device stamping and the Newton update goes through
   this module: [Engine] stamps into an opaque solver value and reads the
   solution back out, never touching a concrete matrix representation.
   The [Dense] arm wraps the seed path (an [Mna.system] plus [Lu]
   scratch) and performs the identical float operations in the identical
   order, so selecting it reproduces seed results bit for bit.  The
   [Sparse] arm compiles the stamp pattern once per topology and then
   refactorises numerically (see {!Sparse}); [Auto] picks between them by
   capacity, so small circuits keep the dense solver that beats sparse
   machinery at their size. *)

type backend = Auto | Dense | Sparse

(* Below this many unknowns the dense solver's tight loops win over
   pattern compilation and indexed scatter; above it the O(n^3) factor
   dominates everything.  The crossover on this kernel sits well under
   100 unknowns, but the threshold leans dense so that seed-sized
   circuits keep seed behaviour exactly. *)
let auto_threshold = 100

let backend_to_string = function
  | Auto -> "auto"
  | Dense -> "dense"
  | Sparse -> "sparse"

let backend_of_string = function
  | "auto" -> Ok Auto
  | "dense" -> Ok Dense
  | "sparse" -> Ok Sparse
  | s -> Error (Printf.sprintf "unknown solver backend %S (want auto|dense|sparse)" s)

exception Singular of int

type dense = {
  sys : Mna.system;
  scratch : Lu.scratch;
  mutable dn : int; (* active size of the current stamp *)
  mutable solves : int; (* cumulative; [flush_stats] reports deltas *)
  mutable reported_solves : int;
}

type sparse = {
  sp : Sparse.t;
  mutable r_full : int;
  mutable r_refactor : int;
  mutable r_solve : int;
  mutable r_symbolic : int;
  mutable r_repivot : int;
}

type t = D of dense | S of sparse

let create backend ~capacity =
  let capacity = max capacity 1 in
  let backend =
    match backend with
    | Auto -> if capacity >= auto_threshold then Sparse else Dense
    | (Dense | Sparse) as b -> b
  in
  match backend with
  | Dense ->
    D
      {
        sys = { Mna.a = Array.make_matrix capacity capacity 0.0; b = Array.make capacity 0.0 };
        scratch = Lu.make_scratch capacity;
        dn = 0;
        solves = 0;
        reported_solves = 0;
      }
  | Sparse ->
    S
      {
        sp = Sparse.create ~capacity;
        r_full = 0;
        r_refactor = 0;
        r_solve = 0;
        r_symbolic = 0;
        r_repivot = 0;
      }
  | Auto -> assert false

let backend = function D _ -> Dense | S _ -> Sparse

let capacity = function
  | D d -> Lu.scratch_capacity d.scratch
  | S s -> Sparse.capacity s.sp

let begin_stamp t ~n =
  match t with
  | D d ->
    if n > Array.length d.sys.Mna.b then
      invalid_arg "Solver.begin_stamp: n exceeds capacity";
    d.dn <- n;
    Mna.clear ~n d.sys
  | S s -> Sparse.begin_stamp s.sp ~n

let add t i j v =
  match t with
  | D d -> Mna.add_jacobian d.sys i j v
  | S s -> Sparse.add s.sp i j v

let add_rhs t i v =
  match t with
  | D d -> Mna.add_rhs d.sys i v
  | S s -> Sparse.add_rhs s.sp i v

let add_conductance t i j g =
  add t i i g;
  add t j j g;
  add t i j (-.g);
  add t j i (-.g)

let add_current t i x = add_rhs t i x

let finish t = match t with D _ -> () | S s -> Sparse.finish s.sp

(* Pattern priming for a batch of stamp variants: run every pass (each
   performs its own [begin_stamp] + stamps; values are discarded), then
   compile the accumulated union pattern once.  The sparse backend keeps
   pattern keys across [begin_stamp], so after priming no variant's
   first real stamp decompiles the symbolic analysis.  Dense has no
   pattern - priming is free there. *)
let prime t passes =
  match t with
  | D _ -> ()
  | S _ ->
    List.iter (fun pass -> pass ()) passes;
    finish t

let factor_solve t =
  match t with
  | D d -> begin
    match Lu.factor_solve ~n:d.dn d.scratch d.sys.Mna.a d.sys.Mna.b with
    | () -> d.solves <- d.solves + 1
    | exception Lu.Singular row -> raise (Singular row)
  end
  | S s -> begin
    match Sparse.factor_solve s.sp with
    | () -> ()
    | exception Sparse.Singular i -> raise (Singular i)
  end

let solution = function D d -> d.sys.Mna.b | S s -> Sparse.rhs s.sp

(* Report work done since the previous flush.  Counter names are
   per-backend so a mixed campaign (dense nominal circuit, sparse
   synthesized one) keeps the two books separate in [--metrics]. *)
let flush_stats t obs =
  if Obs.enabled obs then begin
    match t with
    | D d ->
      let ds = d.solves - d.reported_solves in
      if ds > 0 then begin
        d.reported_solves <- d.solves;
        Obs.count obs "solver.dense.factor_solve" ds
      end
    | S s ->
      let full, refactor, solve, symbolic, repivot = Sparse.stats s.sp in
      let emit name now prev = if now - prev > 0 then Obs.count obs name (now - prev) in
      emit "solver.sparse.full_factor" full s.r_full;
      emit "solver.sparse.refactor" refactor s.r_refactor;
      emit "solver.sparse.solve" solve s.r_solve;
      emit "solver.sparse.symbolic" symbolic s.r_symbolic;
      emit "solver.sparse.repivot" repivot s.r_repivot;
      if solve > s.r_solve then begin
        let nnz = Sparse.nnz s.sp and fnnz = Sparse.factor_nnz s.sp in
        Obs.sample obs "solver.sparse.nnz" (float_of_int nnz);
        Obs.sample obs "solver.sparse.factor_nnz" (float_of_int fnnz);
        Obs.sample obs "solver.sparse.fill_in" (float_of_int (max 0 (fnnz - nnz)))
      end;
      s.r_full <- full;
      s.r_refactor <- refactor;
      s.r_solve <- solve;
      s.r_symbolic <- symbolic;
      s.r_repivot <- repivot
  end
