type integration = Backward_euler | Trapezoidal

(* A budget bounds the work one analysis may spend before the kernel
   gives up deterministically with [Budget_exceeded].  All limits are
   cumulative over the whole analysis, not per solve. *)
type budget = {
  max_newton_iterations : int option;
  max_steps : int option;
  deadline_seconds : float option;
}

let unlimited =
  { max_newton_iterations = None; max_steps = None; deadline_seconds = None }

type options = {
  gmin : float;
  reltol : float;
  abstol : float;
  max_iter : int;
  dv_limit : float;
  cmin : float;
  integration : integration;
  budget : budget;
  solver : Solver.backend;
  (* Pure run-state, not configuration: excluded from campaign
     fingerprints so cancellable and uncancellable runs of the same
     campaign share journals and cache entries. *)
  cancel : Cancel.t;
}

let default_options =
  {
    gmin = 1e-12;
    reltol = 1e-3;
    abstol = 1e-6;
    max_iter = 150;
    dv_limit = 1.0;
    cmin = 1e-16;
    integration = Backward_euler;
    budget = unlimited;
    solver = Solver.Auto;
    cancel = Cancel.never;
  }

type error =
  | Dc_no_convergence
  | Tran_step_underflow
  | Singular_matrix
  | Budget_exceeded
  | Cancelled

let error_to_string = function
  | Dc_no_convergence -> "dc_no_convergence"
  | Tran_step_underflow -> "tran_step_underflow"
  | Singular_matrix -> "singular_matrix"
  | Budget_exceeded -> "budget_exceeded"
  | Cancelled -> "cancelled"

exception Sim_error of error * string

exception Patch_overflow of string

type solution = { mna : Mna.t; v : float array }

let voltage sol name =
  let i = Mna.node_id sol.mna name in
  if i < 0 then 0.0 else sol.v.(i)

let branch_current sol name = sol.v.(Mna.branch_id sol.mna name)

type stats = {
  newton_iterations : int;
  accepted_steps : int;
  rejected_steps : int;
}

(* Reactive-element history: [q] is the previous across-variable
   (capacitor voltage / inductor current), [f] the previous
   through-variable (capacitor current / inductor voltage). *)
type state = { mutable q : float; mutable f : float }

type cdev =
  | CR of { i : int; j : int; g : float }
  | CC of { i : int; j : int; c : float; ic : float option; st : state }
  | CL of { i : int; j : int; br : int; ind : float; ic : float option; st : state }
  | CV of { i : int; j : int; br : int; wave : Netlist.Wave.t }
  | CI of { i : int; j : int; wave : Netlist.Wave.t }
  | CD of { i : int; j : int; is_sat : float; nvt : float }
  | CM of {
      d : int;
      g : int;
      s : int;
      model : Netlist.Device.mos_model;
      w : float;
      l : float;
      cg : float; (* gate-to-source and gate-to-drain capacitance, each *)
      st_gs : state;
      st_gd : state;
    }

(* [nid]/[bid] resolve node and branch names to unknown indices; a
   session patch supplies lookups that also know the overlay rows. *)
let compile_device ~nid ~bid = function
  | Netlist.Device.R { n1; n2; value; _ } ->
    if value = 0.0 then invalid_arg "Engine: zero-valued resistor";
    CR { i = nid n1; j = nid n2; g = 1.0 /. value }
  | Netlist.Device.C { n1; n2; value; ic; _ } ->
    CC { i = nid n1; j = nid n2; c = value; ic; st = { q = 0.0; f = 0.0 } }
  | Netlist.Device.L { name; n1; n2; value; ic } ->
    CL { i = nid n1; j = nid n2; br = bid name; ind = value; ic; st = { q = 0.0; f = 0.0 } }
  | Netlist.Device.V { name; np; nn; wave } ->
    CV { i = nid np; j = nid nn; br = bid name; wave }
  | Netlist.Device.I { np; nn; wave; _ } -> CI { i = nid np; j = nid nn; wave }
  | Netlist.Device.D { na; nc; model; _ } ->
    CD { i = nid na; j = nid nc; is_sat = model.is_sat; nvt = model.n_emission *. 0.025852 }
  | Netlist.Device.M { d; g; s; model; w; l; _ } ->
    (* The level-1 model ignores the bulk terminal (no body effect); the
       gate loads its neighbours with half the oxide capacitance each. *)
    CM
      {
        d = nid d;
        g = nid g;
        s = nid s;
        model;
        w;
        l;
        cg = 0.5 *. model.cox *. w *. l;
        st_gs = { q = 0.0; f = 0.0 };
        st_gd = { q = 0.0; f = 0.0 };
      }

let compile mna circuit =
  let nid = Mna.node_id mna and bid = Mna.branch_id mna in
  Array.of_list
    (List.map (compile_device ~nid ~bid) (Netlist.Circuit.devices circuit))

type mode =
  | Dc of { scale : float }
  | Tran of { h : float; time : float; vnode_prev : float array }

let gv v i = if i < 0 then 0.0 else v.(i)

(* Exponential with linear extension beyond x = 40 to avoid overflow while
   keeping the Jacobian consistent with the residual. *)
let exp_lim x =
  if x > 40.0 then begin
    let e40 = exp 40.0 in
    (e40 *. (1.0 +. x -. 40.0), e40)
  end
  else begin
    let e = exp x in
    (e, e)
  end

(* Companion model of a linear capacitor between unknowns [i] and [j]. *)
let stamp_cap ~opts ~mode sv i j c st =
  match mode with
  | Dc _ -> ()
  | Tran { h; _ } ->
    let geq =
      match opts.integration with
      | Backward_euler -> c /. h
      | Trapezoidal -> 2.0 *. c /. h
    in
    let const =
      match opts.integration with
      | Backward_euler -> geq *. st.q
      | Trapezoidal -> (geq *. st.q) +. st.f
    in
    Solver.add_conductance sv i j geq;
    Solver.add_rhs sv i const;
    Solver.add_rhs sv j (-.const)

let stamp ~opts ~gmin ~mode ~n sv devices v =
  Solver.begin_stamp sv ~n;
  Array.iter
    (fun dev ->
      match dev with
      | CR { i; j; g } -> Solver.add_conductance sv i j g
      | CC { i; j; c; st; _ } -> stamp_cap ~opts ~mode sv i j c st
      | CL { i; j; br; ind; st; _ } -> begin
        Solver.add sv i br 1.0;
        Solver.add sv j br (-1.0);
        Solver.add sv br i 1.0;
        Solver.add sv br j (-1.0);
        match mode with
        | Dc _ -> () (* ideal short: v_i - v_j = 0 *)
        | Tran { h; _ } -> begin
          match opts.integration with
          | Backward_euler ->
            let r = ind /. h in
            Solver.add sv br br (-.r);
            Solver.add_rhs sv br (-.r *. st.q)
          | Trapezoidal ->
            let r = 2.0 *. ind /. h in
            Solver.add sv br br (-.r);
            Solver.add_rhs sv br ((-.r *. st.q) -. st.f)
        end
      end
      | CV { i; j; br; wave } ->
        let e =
          match mode with
          | Dc { scale } -> scale *. Netlist.Wave.dc_value wave
          | Tran { time; _ } -> Netlist.Wave.value wave time
        in
        Solver.add sv i br 1.0;
        Solver.add sv j br (-1.0);
        Solver.add sv br i 1.0;
        Solver.add sv br j (-1.0);
        Solver.add_rhs sv br e
      | CI { i; j; wave } ->
        let cur =
          match mode with
          | Dc { scale } -> scale *. Netlist.Wave.dc_value wave
          | Tran { time; _ } -> Netlist.Wave.value wave time
        in
        Solver.add_current sv i (-.cur);
        Solver.add_current sv j cur
      | CD { i; j; is_sat; nvt } ->
        let vd = gv v i -. gv v j in
        let e, de = exp_lim (vd /. nvt) in
        let id = is_sat *. (e -. 1.0) in
        let gd = (is_sat *. de /. nvt) +. gmin in
        let ieq = id -. (gd *. vd) in
        Solver.add_conductance sv i j gd;
        Solver.add_current sv i (-.ieq);
        Solver.add_current sv j ieq
      | CM { d; g; s; model; w; l; cg; st_gs; st_gd } ->
        stamp_cap ~opts ~mode sv g s cg st_gs;
        stamp_cap ~opts ~mode sv g d cg st_gd;
        let vgs = gv v g -. gv v s and vds = gv v d -. gv v s in
        let e = Mosfet.eval model ~w ~l ~vgs ~vds in
        let gds = e.Mosfet.gds +. gmin in
        let ieq = e.Mosfet.ids -. (e.Mosfet.gm *. vgs) -. (gds *. vds) in
        (* Current leaving the drain node: gm*vgs + gds*vds + ieq. *)
        Solver.add sv d d gds;
        Solver.add sv d g e.Mosfet.gm;
        Solver.add sv d s (-.(e.Mosfet.gm +. gds));
        Solver.add sv s d (-.gds);
        Solver.add sv s g (-.e.Mosfet.gm);
        Solver.add sv s s (e.Mosfet.gm +. gds);
        Solver.add_current sv d (-.ieq);
        Solver.add_current sv s ieq)
    devices

let output_names mna =
  Array.append (Mna.node_names mna)
    (Array.map (fun b -> "I(" ^ b ^ ")") (Mna.branch_names mna))

(* The solver context: one circuit topology's compiled devices plus the
   solver owning the buffers every solve reuses.  [size] is the number of
   active unknowns (may be below the solver capacity when a session
   reserves overlay rows); node rows are [0 .. node_count-1] plus, for a
   patched session, the single overlay node row [extra_node].  [names]
   labels every active unknown, for diagnostics. *)
type ctx = {
  opts : options;
  sv : Solver.t;
  size : int;
  node_count : int;
  extra_node : int option;
  devices : cdev array;
  obs : Obs.sink;
  names : string array;
}

let unknown_label ctx row =
  if row >= 0 && row < Array.length ctx.names then ctx.names.(row)
  else Printf.sprintf "unknown #%d" row

let add_gmin_and_cmin ~gmin ~mode ctx =
  let sv = ctx.sv in
  let pin i =
    Solver.add sv i i gmin;
    match mode with
    | Tran { h; vnode_prev; _ } when ctx.opts.cmin > 0.0 ->
      let geq = ctx.opts.cmin /. h in
      Solver.add sv i i geq;
      Solver.add_rhs sv i (geq *. vnode_prev.(i))
    | Tran _ | Dc _ -> ()
  in
  for i = 0 to ctx.node_count - 1 do
    pin i
  done;
  Option.iter pin ctx.extra_node

(* Damped Newton-Raphson.  Returns the converged iterate and the number of
   iterations, or the reason the solve failed ([`Singular row] when the
   last factorisation hit a singular pivot at the named unknown,
   [`No_conv] otherwise) - callers use the distinction to raise a typed
   {!Sim_error}.  With a live sink, each solve reports its iteration
   count, the time spent in factor+solve and how often the dv clamp
   fired; the [traced] flag keeps the telemetry arithmetic entirely off
   the null-sink path. *)
let newton ~gmin ~mode ctx v0 =
  let opts = ctx.opts in
  let size = ctx.size in
  let sv = ctx.sv in
  let traced = Obs.enabled ctx.obs in
  let clamp_hits = ref 0 and lu_seconds = ref 0.0 in
  let finish result =
    if traced then begin
      let iters, ok =
        match result with Ok (_, k) -> (k, true) | Error (_, k) -> (k, false)
      in
      Obs.sample ctx.obs "engine.newton.iters_per_solve" (float_of_int iters);
      Obs.sample ctx.obs "engine.lu.seconds_per_solve" !lu_seconds;
      if !clamp_hits > 0 then Obs.count ctx.obs "engine.newton.dv_clamp" !clamp_hits;
      if not ok then Obs.count ctx.obs "engine.newton.failed" 1;
      Solver.flush_stats sv ctx.obs
    end;
    result
  in
  let v = Array.copy v0 in
  let node_dv x =
    (* Step-length damping applies to node voltages only: branch
       currents (e.g. through an injected 10 mohm short) legitimately
       move by hundreds of amperes in one Newton step. *)
    let max_dv = ref 0.0 in
    for i = 0 to ctx.node_count - 1 do
      max_dv := Float.max !max_dv (Float.abs (x.(i) -. v.(i)))
    done;
    Option.iter
      (fun i -> max_dv := Float.max !max_dv (Float.abs (x.(i) -. v.(i))))
      ctx.extra_node;
    !max_dv
  in
  let factor_solve () =
    Solver.finish sv;
    if not traced then Solver.factor_solve sv
    else begin
      let t0 = Obs.Clock.now () in
      Fun.protect
        ~finally:(fun () -> lu_seconds := !lu_seconds +. (Obs.Clock.now () -. t0))
        (fun () -> Solver.factor_solve sv)
    end
  in
  let rec iterate k total =
    (* The cancellation poll of the hottest loop: one atomic load per
       Newton iteration, raising the typed error the moment somebody
       cancelled - a stuck solve stops within one iteration. *)
    (match Cancel.get opts.cancel with
    | Some reason -> raise (Sim_error (Cancelled, Cancel.reason_to_string reason))
    | None -> ());
    if k >= opts.max_iter then Error (`No_conv, total)
    else begin
      stamp ~opts ~gmin ~mode ~n:size sv ctx.devices v;
      add_gmin_and_cmin ~gmin ~mode ctx;
      match factor_solve () with
      | exception Solver.Singular row -> Error (`Singular row, total + 1)
      | () ->
        let x = Solver.solution sv in
        let max_delta = ref 0.0 in
        for i = 0 to size - 1 do
          max_delta := Float.max !max_delta (Float.abs (x.(i) -. v.(i)))
        done;
        let max_dv = node_dv x in
        if Float.is_nan !max_delta then Error (`No_conv, total + 1)
        else if max_dv > opts.dv_limit then begin
          incr clamp_hits;
          let f = opts.dv_limit /. max_dv in
          for i = 0 to size - 1 do
            v.(i) <- v.(i) +. (f *. (x.(i) -. v.(i)))
          done;
          iterate (k + 1) (total + 1)
        end
        else begin
          let converged = ref true in
          for i = 0 to size - 1 do
            let tol = opts.abstol +. (opts.reltol *. Float.max (Float.abs x.(i)) (Float.abs v.(i))) in
            if Float.abs (x.(i) -. v.(i)) > tol then converged := false
          done;
          Array.blit x 0 v 0 size;
          if !converged then Ok (v, total + 1) else iterate (k + 1) (total + 1)
        end
    end
  in
  finish (iterate 0 0)

let dc_solve ctx =
  let opts = ctx.opts in
  (* Remember whether any attempt died on a singular factorisation (and
     at which unknown): a structurally singular system (e.g. an injected
     voltage-source loop) deserves a different diagnosis than a Newton
     iterate that merely wandered. *)
  let saw_singular = ref None in
  let try_newton ~gmin ~scale v0 =
    match newton ~gmin ~mode:(Dc { scale }) ctx v0 with
    | Ok res -> Some res
    | Error (`Singular row, _) ->
      saw_singular := Some row;
      None
    | Error (`No_conv, _) -> None
  in
  let zero = Array.make ctx.size 0.0 in
  match try_newton ~gmin:opts.gmin ~scale:1.0 zero with
  | Some (v, _) -> v
  | None -> begin
    Obs.count ctx.obs "engine.dc.gmin_stepping" 1;
    (* gmin stepping: solve with a heavy shunt first, then relax it. *)
    let rec gmin_steps v = function
      | [] -> Some v
      | g :: rest -> begin
        match try_newton ~gmin:g ~scale:1.0 v with
        | Some (v', _) -> gmin_steps v' rest
        | None -> None
      end
    in
    let ladder = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; opts.gmin ] in
    match gmin_steps zero ladder with
    | Some v -> v
    | None -> begin
      Obs.count ctx.obs "engine.dc.source_stepping" 1;
      (* Source stepping: ramp all independent sources from 10 % to 100 %. *)
      let rec source_steps v = function
        | [] -> Some v
        | s :: rest -> begin
          match try_newton ~gmin:opts.gmin ~scale:s v with
          | Some (v', _) -> source_steps v' rest
          | None -> None
        end
      in
      let ramp = List.init 10 (fun i -> 0.1 *. float_of_int (i + 1)) in
      match source_steps zero ramp with
      | Some v -> v
      | None ->
        Obs.count ctx.obs "engine.dc.failed" 1;
        (match !saw_singular with
        | Some row ->
          raise
            (Sim_error
               ( Singular_matrix,
                 Printf.sprintf
                   "DC system is singular at unknown %s (MNA matrix has no unique solution)"
                   (unknown_label ctx row) ))
        | None ->
          raise (Sim_error (Dc_no_convergence, "DC operating point did not converge")))
    end
  end

(* A throwaway context with exactly-sized buffers, for the one-shot
   analyses below. *)
let ctx_of_circuit ~opts ~obs circuit =
  let mna = Mna.make circuit in
  let devices = compile mna circuit in
  let size = Mna.size mna in
  ( {
      opts;
      sv = Solver.create opts.solver ~capacity:size;
      size;
      node_count = Mna.node_count mna;
      extra_node = None;
      devices;
      obs;
      names = output_names mna;
    },
    mna )

let op_impl ~opts ~obs circuit =
  let ctx, mna = ctx_of_circuit ~opts ~obs circuit in
  { mna; v = dc_solve ctx }

(* Initial transient state: DC operating point, or zeros plus capacitor
   ICs when [uic]. *)
let initial_state ~uic ctx =
  if uic then begin
    let v = Array.make ctx.size 0.0 in
    Array.iter
      (fun dev ->
        match dev with
        | CC { i; j; ic = Some vic; _ } ->
          if j < 0 then (if i >= 0 then v.(i) <- vic)
          else if i < 0 then v.(j) <- -.vic
          else v.(i) <- v.(j) +. vic
        | CL { br; ic = Some iic; _ } -> v.(br) <- iic
        | CC _ | CL _ | CR _ | CV _ | CI _ | CD _ | CM _ -> ())
      ctx.devices;
    v
  end
  else dc_solve ctx

let init_device_states devices v =
  Array.iter
    (fun dev ->
      match dev with
      | CC { i; j; st; _ } ->
        st.q <- gv v i -. gv v j;
        st.f <- 0.0
      | CL { i; j; br; st; _ } ->
        st.q <- v.(br);
        st.f <- gv v i -. gv v j
      | CM { d; g; s; st_gs; st_gd; _ } ->
        st_gs.q <- gv v g -. gv v s;
        st_gs.f <- 0.0;
        st_gd.q <- gv v g -. gv v d;
        st_gd.f <- 0.0
      | CR _ | CV _ | CI _ | CD _ -> ())
    devices

let update_cap ~opts ~h c st vd =
  let i_new =
    match opts.integration with
    | Backward_euler -> c /. h *. (vd -. st.q)
    | Trapezoidal -> (2.0 *. c /. h *. (vd -. st.q)) -. st.f
  in
  st.q <- vd;
  st.f <- i_new

let update_device_states ~opts ~h devices v =
  Array.iter
    (fun dev ->
      match dev with
      | CC { i; j; c; st; _ } -> update_cap ~opts ~h c st (gv v i -. gv v j)
      | CL { i; j; br; st; _ } ->
        st.q <- v.(br);
        st.f <- gv v i -. gv v j
      | CM { d; g; s; cg; st_gs; st_gd; _ } ->
        update_cap ~opts ~h cg st_gs (gv v g -. gv v s);
        update_cap ~opts ~h cg st_gd (gv v g -. gv v d)
      | CR _ | CV _ | CI _ | CD _ -> ())
    devices

let breakpoints circuit ~tstop =
  Netlist.Circuit.devices circuit
  |> List.concat_map (fun d ->
         match d with
         | Netlist.Device.V { wave; _ } | Netlist.Device.I { wave; _ } ->
           Netlist.Wave.breakpoints wave ~tstop
         | Netlist.Device.R _ | Netlist.Device.C _ | Netlist.Device.L _
         | Netlist.Device.D _ | Netlist.Device.M _ ->
           [])
  |> List.filter (fun t -> t > 0.0 && t < tstop)
  |> List.sort_uniq compare

(* One in-flight adaptive transient, reified: the loop state of the
   former inline transient loop as a record, so a caller can advance it
   step by step.  [transient_core] drives one stepper to completion;
   [Session.transient_batch] interleaves many of them through a shared
   checkpoint grid.  The float operations and their order are exactly
   those of the old inline loop, so reifying the state changes no
   result. *)
type stepper = {
  sctx : ctx;
  tstop : float;
  hmax : float;
  hmin : float;
  eps : float;
  mutable v : float array;
  vnode_prev : float array;
  mutable samples : (float * float array) list; (* newest first *)
  mutable bps : float list;
  mutable h : float;
  mutable t : float;
  mutable total_iters : int;
  mutable accepted : int;
  mutable rejected : int;
  (* Budget enforcement: checked once per proposed step, so a
     pathological fault terminates deterministically instead of stalling
     its domain.  All-None budgets compile to three cheap matches; the
     clock is only read when a deadline is set. *)
  deadline : float option;
}

let stepper_start ctx ~circuit ~tstep ~tstop ~uic =
  if tstep <= 0.0 || tstop <= 0.0 || tstep > tstop then
    invalid_arg "Engine.transient: need 0 < tstep <= tstop";
  let v = initial_state ~uic ctx in
  init_device_states ctx.devices v;
  {
    sctx = ctx;
    tstop;
    hmax = tstep;
    hmin = tstop *. 1e-12;
    eps = tstop *. 1e-12;
    v;
    vnode_prev = Array.copy v;
    samples = [ (0.0, Array.copy v) ];
    bps = breakpoints circuit ~tstop;
    h = tstep /. 10.0;
    t = 0.0;
    total_iters = 0;
    accepted = 0;
    rejected = 0;
    deadline =
      Option.map (fun s -> Obs.Clock.now () +. s) ctx.opts.budget.deadline_seconds;
  }

let stepper_done st = st.t >= st.tstop -. st.eps

let stepper_stats st =
  {
    newton_iterations = st.total_iters;
    accepted_steps = st.accepted;
    rejected_steps = st.rejected;
  }

(* Step counters are reported even when the transient stalls and raises:
   a diverging fault's work must not vanish from the trace. *)
let stepper_emit_counters st =
  if Obs.enabled st.sctx.obs then begin
    Obs.count st.sctx.obs "engine.tran.accepted_steps" st.accepted;
    if st.rejected > 0 then
      Obs.count st.sctx.obs "engine.tran.rejected_steps" st.rejected;
    Obs.count st.sctx.obs "engine.tran.newton_iterations" st.total_iters
  end

let stepper_exceeded st what =
  Obs.count st.sctx.obs "engine.budget_exceeded" 1;
  raise
    (Sim_error
       ( Budget_exceeded,
         Printf.sprintf
           "%s at t=%.4g (%d newton iterations, %d steps accepted, %d rejected)"
           what st.t st.total_iters st.accepted st.rejected ))

let stepper_check_budget st =
  (match Cancel.get st.sctx.opts.cancel with
  | Some reason ->
    raise (Sim_error (Cancelled, Cancel.reason_to_string reason))
  | None -> ());
  let budget = st.sctx.opts.budget in
  (match budget.max_newton_iterations with
  | Some cap when st.total_iters >= cap ->
    stepper_exceeded st (Printf.sprintf "newton-iteration budget (%d) exhausted" cap)
  | Some _ | None -> ());
  (match budget.max_steps with
  | Some cap when st.accepted + st.rejected >= cap ->
    stepper_exceeded st (Printf.sprintf "transient-step budget (%d) exhausted" cap)
  | Some _ | None -> ());
  match st.deadline with
  | Some d when Obs.Clock.now () > d ->
    stepper_exceeded st
      (Printf.sprintf "wall-clock budget (%g s) exhausted"
         (Option.get budget.deadline_seconds))
  | Some _ | None -> ()

(* One iteration of the adaptive loop: check the budget, drain every
   breakpoint at or behind [t] (several source edges can pile up inside
   one accepted step), propose a step clipped to the first future
   breakpoint and to tstop, solve, accept or reject.  Raises [Sim_error]
   on budget trips and step underflow exactly as the inline loop did. *)
let stepper_step st =
  let ctx = st.sctx in
  let opts = ctx.opts in
  let eps = st.eps and tstop = st.tstop in
  stepper_check_budget st;
  let h_try =
    while (match st.bps with bp :: _ -> bp <= st.t +. eps | [] -> false) do
      st.bps <- List.tl st.bps
    done;
    let clip = Float.min st.h (tstop -. st.t) in
    match st.bps with
    | bp :: _ when bp -. st.t < clip -. eps -> bp -. st.t
    | _ -> clip
  in
  let mode = Tran { h = h_try; time = st.t +. h_try; vnode_prev = st.vnode_prev } in
  match newton ~gmin:opts.gmin ~mode ctx st.v with
  | Ok (v', iters) ->
    st.total_iters <- st.total_iters + iters;
    st.accepted <- st.accepted + 1;
    update_device_states ~opts ~h:h_try ctx.devices v';
    Array.blit v' 0 st.vnode_prev 0 ctx.size;
    st.v <- v';
    st.t <- st.t +. h_try;
    st.samples <- (st.t, Array.copy v') :: st.samples;
    if iters <= 8 then st.h <- Float.min (st.h *. 1.5) st.hmax
    else if iters > 30 then st.h <- Float.max (st.h /. 2.0) st.hmin
  | Error (why, iters) ->
    (* Rejected solves count against the iteration budget: the work was
       spent even though no step was accepted. *)
    st.total_iters <- st.total_iters + iters;
    st.rejected <- st.rejected + 1;
    st.h <- h_try /. 2.0;
    if st.h < st.hmin then begin
      let err, where =
        match why with
        | `Singular row ->
          (Singular_matrix, Printf.sprintf " (singular at unknown %s)" (unknown_label ctx row))
        | `No_conv -> (Tran_step_underflow, "")
      in
      raise
        (Sim_error
           ( err,
             Printf.sprintf "transient stalled at t=%.4g (step %.3g)%s" st.t st.h where ))
    end

(* Interpolated value of unknown [idx] on the stepper's accepted-sample
   history at time [tau], replicating {!Waveform.value_at}'s bracketing
   and clamping on the reversed sample list - a checkpoint probe must see
   the same float the resampled waveform would hold at a grid point. *)
let stepper_value st idx tau =
  match st.samples with
  | [] -> assert false (* stepper_start always records the t=0 sample *)
  | (tn, vn) :: older ->
    if tau >= tn then vn.(idx)
    else begin
      let rec bracket t1 v1 = function
        | [] -> v1.(idx) (* unreachable: tau >= 0 and the t=0 sample is last *)
        | (t0, v0) :: older ->
          if t0 <= tau then
            if tau <= t0 then v0.(idx)
            else if t1 <= t0 then v1.(idx)
            else v0.(idx) +. ((v1.(idx) -. v0.(idx)) *. (tau -. t0) /. (t1 -. t0))
          else bracket t0 v0 older
      in
      bracket tn vn older
    end

let transient_core ctx ~circuit ~names ~tstep ~tstop ~uic =
  let st = stepper_start ctx ~circuit ~tstep ~tstop ~uic in
  Fun.protect ~finally:(fun () -> stepper_emit_counters st)
  @@ fun () ->
  while not (stepper_done st) do
    stepper_step st
  done;
  (Waveform.make ~names ~samples:(List.rev st.samples), stepper_stats st)

let transient_impl ~opts ~obs circuit ~tstep ~tstop ~uic =
  let ctx, mna = ctx_of_circuit ~opts ~obs circuit in
  transient_core ctx ~circuit ~names:(output_names mna) ~tstep ~tstop ~uic

(* --- Sessions: batch solving of one circuit topology ------------------ *)

(* One fault differs from the nominal circuit by a device or two, so the
   batch loop keeps the node map, the compiled device array and the
   solver buffers alive across the whole fault list and re-derives only
   what a patch touches.  The buffers reserve two overlay rows - fault
   injection adds at most one node (a split-net open) and one branch (a
   bridge modelled as a 0 V source) - so a patched system solves in the
   same storage.  Sessions are single-threaded; parallel callers create
   one session per domain. *)
module Session = struct
  (* Reserve: one overlay node row at [base_size], one overlay branch row
     at [base_size + 1]. *)
  let reserve = 2

  type t = {
    opts : options;
    obs : Obs.sink;
    circuit : Netlist.Circuit.t;
    mna : Mna.t;
    base_devices : cdev array;
    base_size : int;
    base_node_count : int;
    base_names : string array;
    (* The solver spans the base system plus the overlay reserve; on the
       sparse backend every fault patch stamps into the same accumulated
       pattern, so the whole fault list shares one symbolic analysis. *)
    sv : Solver.t;
    (* Active view, swapped by [with_patch]. *)
    mutable act_circuit : Netlist.Circuit.t;
    mutable act_devices : cdev array;
    mutable act_size : int;
    mutable act_extra_node : int option;
    mutable act_names : string array;
  }

  let create ?(options = default_options) ?(obs = Obs.null) circuit =
    let mna = Mna.make circuit in
    let base_size = Mna.size mna in
    let base_devices = compile mna circuit in
    let base_names = output_names mna in
    {
      opts = options;
      obs;
      circuit;
      mna;
      base_devices;
      base_size;
      base_node_count = Mna.node_count mna;
      base_names;
      sv = Solver.create options.solver ~capacity:(base_size + reserve);
      act_circuit = circuit;
      act_devices = base_devices;
      act_size = base_size;
      act_extra_node = None;
      act_names = base_names;
    }

  let circuit s = s.circuit

  let options s = s.opts

  let ctx ?options s =
    {
      opts = Option.value ~default:s.opts options;
      sv = s.sv;
      size = s.act_size;
      node_count = s.base_node_count;
      extra_node = s.act_extra_node;
      devices = s.act_devices;
      obs = s.obs;
      names = s.act_names;
    }

  (* [?options] overrides the session's solver options for this one
     analysis (the buffers depend only on the topology, never on the
     options); retry ladders use it to re-attempt a fault with relaxed
     tolerances without rebuilding the session. *)
  let solve_dc ?options s = { mna = s.mna; v = dc_solve (ctx ?options s) }

  let transient ?options s ~tstep ~tstop ~uic =
    transient_core (ctx ?options s) ~circuit:s.act_circuit ~names:s.act_names
      ~tstep ~tstop ~uic

  (* A compiled patch: everything [with_patch] swaps into the active
     view, reified as a value so the batched transient can hold many
     patched variants alive at once without toggling the view. *)
  type patch_view = {
    pv_circuit : Netlist.Circuit.t;
    pv_devices : cdev array;
    pv_size : int;
    pv_extra_node : int option;
    pv_names : string array;
  }

  (* Recompile only what [patched] changed relative to the base circuit.
     Fault injection rewrites circuits with Circuit.replace (same name,
     same position) and Circuit.add (appended), so a positional walk
     recognises untouched devices by physical equality and reuses their
     compiled form.  Anything structurally different raises
     Patch_overflow and the caller falls back to a full rebuild. *)
  let compile_patch s patched =
    (* Overlay rows are allocated in order of first use, so a patch that
       adds only a node (break/split) or only a branch (bridging V
       source) costs exactly one extra row - the same system size a full
       rebuild would produce. *)
    let extra_node = ref None and extra_branch = ref None in
    let next_row = ref s.base_size in
    let alloc_row () =
      let row = !next_row in
      incr next_row;
      row
    in
    let nid name =
      match Mna.node_id s.mna name with
      | i -> i
      | exception Not_found -> begin
        match !extra_node with
        | Some (n, row) when String.equal n name -> row
        | Some _ -> raise (Patch_overflow ("second new node " ^ name))
        | None ->
          let row = alloc_row () in
          if row >= s.base_size + reserve then
            raise (Patch_overflow ("new node " ^ name ^ " exceeds overlay"));
          extra_node := Some (name, row);
          row
      end
    in
    let bid name =
      match Mna.branch_id s.mna name with
      | i -> i
      | exception Not_found -> begin
        match !extra_branch with
        | Some (n, row) when String.equal n name -> row
        | Some _ -> raise (Patch_overflow ("second new branch " ^ name))
        | None ->
          let row = alloc_row () in
          if row >= s.base_size + reserve then
            raise (Patch_overflow ("new branch " ^ name ^ " exceeds overlay"));
          extra_branch := Some (name, row);
          row
      end
    in
    let rec zip i base patch acc =
      match (base, patch) with
      | [], rest ->
        List.rev_append acc (List.map (compile_device ~nid ~bid) rest)
      | _ :: _, [] -> raise (Patch_overflow "patch removed a device")
      | b :: bs, p :: ps ->
        let cd =
          if b == p then s.base_devices.(i)
          else if String.equal (Netlist.Device.name b) (Netlist.Device.name p)
          then compile_device ~nid ~bid p
          else raise (Patch_overflow "patch reordered devices")
        in
        zip (i + 1) bs ps (cd :: acc)
    in
    let compiled =
      match
        zip 0
          (Netlist.Circuit.devices s.circuit)
          (Netlist.Circuit.devices patched)
          []
      with
      | compiled -> compiled
      | exception Patch_overflow msg ->
        (* The caller pays a full rebuild for this patch. *)
        Obs.count s.obs "session.patch_overflow" 1;
        raise (Patch_overflow msg)
    in
    if Obs.enabled s.obs then begin
      Obs.count s.obs "session.patch" 1;
      Obs.sample s.obs "session.overlay_rows"
        (float_of_int (!next_row - s.base_size))
    end;
    let row_name = function
      | None -> []
      | Some (n, row) -> [ (row, n) ]
    in
    let extra_names =
      row_name !extra_node
      @ (match !extra_branch with
        | None -> []
        | Some (b, row) -> [ (row, "I(" ^ b ^ ")") ])
      |> List.sort compare |> List.map snd
    in
    {
      pv_circuit = patched;
      pv_devices = Array.of_list compiled;
      pv_size = !next_row;
      pv_extra_node = Option.map snd !extra_node;
      pv_names = Array.append s.base_names (Array.of_list extra_names);
    }

  let apply_view s pv =
    s.act_circuit <- pv.pv_circuit;
    s.act_devices <- pv.pv_devices;
    s.act_size <- pv.pv_size;
    s.act_extra_node <- pv.pv_extra_node;
    s.act_names <- pv.pv_names

  let base_view s =
    {
      pv_circuit = s.circuit;
      pv_devices = s.base_devices;
      pv_size = s.base_size;
      pv_extra_node = None;
      pv_names = s.base_names;
    }

  let with_patch s patched f =
    let pv = compile_patch s patched in
    apply_view s pv;
    Fun.protect ~finally:(fun () -> apply_view s (base_view s)) (fun () -> f s)

  (* --- Lock-step batched transient ----------------------------------- *)

  (* Compiled patches share untouched devices with the base array by
     physical equality, including their mutable integration state; a
     batch interleaves many transients, so every variant gets private
     state records (values are copied, so a clone taken after DC carries
     the operating point forward exactly like the serial path). *)
  let clone_state st = { q = st.q; f = st.f }

  let clone_cdev = function
    | CC r -> CC { r with st = clone_state r.st }
    | CL r -> CL { r with st = clone_state r.st }
    | CM r -> CM { r with st_gs = clone_state r.st_gs; st_gd = clone_state r.st_gd }
    | (CR _ | CV _ | CI _ | CD _) as d -> d

  let ctx_of_view ?options s pv =
    {
      opts = Option.value ~default:s.opts options;
      sv = s.sv;
      size = pv.pv_size;
      node_count = s.base_node_count;
      extra_node = pv.pv_extra_node;
      devices = Array.map clone_cdev pv.pv_devices;
      obs = s.obs;
      names = pv.pv_names;
    }

  (* How one variant of a batched transient ended. *)
  type batch_outcome =
    | Batch_finished of Waveform.t * stats
        (** ran to [tstop]; the waveform holds every accepted sample *)
    | Batch_dropped of { grid_index : int; stats : stats }
        (** the probe returned [`Drop] at this checkpoint - the variant
            was retired early, its detection already final *)
    | Batch_failed of { error : error; detail : string; stats : stats }
        (** the variant's own solve failed ({!Sim_error} payload) *)
    | Batch_overflow of string
        (** the patch exceeded the overlay reserve; the caller must fall
            back to a full per-fault rebuild *)

  type batch_result = { outcome : batch_outcome; seconds : float }

  (* Per-variant bookkeeping of the lock-step loop. *)
  type bvar = {
    mutable bst : stepper option;  (* None until started / after settle *)
    mutable bctx : ctx option;  (* None when the patch overflowed *)
    mutable bsettled : batch_outcome option;
    mutable bsecs : float;
  }

  let transient_batch ?options s ~variants ~observe ~grid ~tstep ~tstop ~uic
      ~probe =
    let opts = Option.value ~default:s.opts options in
    let obs_idx =
      let n = Array.length s.base_names in
      let rec find i =
        if i >= n then
          invalid_arg
            ("Engine.Session.transient_batch: unknown observed signal " ^ observe)
        else if String.equal s.base_names.(i) observe then i
        else find (i + 1)
      in
      find 0
    in
    let bvars =
      Array.map
        (fun circuit ->
          match compile_patch s circuit with
          | pv ->
            {
              bst = None;
              bctx = Some (ctx_of_view ~options:opts s pv);
              bsettled = None;
              bsecs = 0.0;
            }
          | exception Patch_overflow msg ->
            { bst = None; bctx = None; bsettled = Some (Batch_overflow msg); bsecs = 0.0 })
        variants
    in
    (* One symbolic pass for the whole batch: stamp every variant's
       pattern (values discarded) before any solve, so the sparse
       backend compiles the union pattern once instead of decompiling on
       each variant's first stamp.  Transient stamps are a superset of
       DC stamps, so priming in Tran mode covers every solve that
       follows. *)
    Solver.prime s.sv
      (Array.to_list bvars
      |> List.filter_map (fun bv ->
             Option.map
               (fun ctx () ->
                 let zeros = Array.make ctx.size 0.0 in
                 let mode = Tran { h = tstep; time = 0.0; vnode_prev = zeros } in
                 stamp ~opts ~gmin:opts.gmin ~mode ~n:ctx.size s.sv ctx.devices
                   zeros;
                 add_gmin_and_cmin ~gmin:opts.gmin ~mode ctx)
               bv.bctx));
    let settle bv st outcome =
      stepper_emit_counters st;
      bv.bst <- None;
      bv.bsettled <- Some outcome
    in
    (* DC operating point + initial state, per variant, in batch order -
       the same solves the serial path performs, against the shared
       (already primed) solver. *)
    Array.iteri
      (fun vi bv ->
        match bv.bctx with
        | None -> ()
        | Some ctx -> begin
          let t0 = Obs.Clock.now () in
          (match stepper_start ctx ~circuit:variants.(vi) ~tstep ~tstop ~uic with
          | st -> bv.bst <- Some st
          | exception Sim_error (error, detail) ->
            bv.bsettled <-
              Some
                (Batch_failed
                   {
                     error;
                     detail;
                     stats =
                       { newton_iterations = 0; accepted_steps = 0; rejected_steps = 0 };
                   }));
          bv.bsecs <- bv.bsecs +. (Obs.Clock.now () -. t0)
        end)
      bvars;
    (* The lock-step grid walk: advance every live variant to the next
       checkpoint, read the observed signal with the same interpolation
       {!Waveform.resample} would apply, and let the probe retire
       variants whose fate is already decided. *)
    let ngrid = Array.length grid in
    for gi = 0 to ngrid - 1 do
      let tau = grid.(gi) in
      Array.iteri
        (fun vi bv ->
          match bv.bst with
          | None -> ()
          | Some st -> begin
            let t0 = Obs.Clock.now () in
            (try
               while (not (stepper_done st)) && st.t < tau do
                 stepper_step st
               done;
               let value = stepper_value st obs_idx tau in
               match probe ~variant:vi ~grid_index:gi ~value with
               | `Continue ->
                 if gi = ngrid - 1 then
                   settle bv st
                     (Batch_finished
                        ( Waveform.make ~names:st.sctx.names
                            ~samples:(List.rev st.samples),
                          stepper_stats st ))
               | `Drop ->
                 settle bv st (Batch_dropped { grid_index = gi; stats = stepper_stats st })
             with Sim_error (error, detail) ->
               settle bv st (Batch_failed { error; detail; stats = stepper_stats st }));
            bv.bsecs <- bv.bsecs +. (Obs.Clock.now () -. t0)
          end)
        bvars
    done;
    if Obs.enabled s.obs && Solver.backend s.sv = Solver.Sparse then begin
      let shared = ref 0 in
      Array.iter
        (fun bv ->
          match bv.bsettled with
          | Some (Batch_finished (_, st) )
          | Some (Batch_dropped { stats = st; _ })
          | Some (Batch_failed { stats = st; _ }) ->
            shared := !shared + st.newton_iterations
          | Some (Batch_overflow _) | None -> ())
        bvars;
      if !shared > 0 then Obs.count s.obs "batch.shared_factorisations" !shared
    end;
    Array.map
      (fun bv ->
        match bv.bsettled with
        | Some outcome -> { outcome; seconds = bv.bsecs }
        | None ->
          (* A variant can only be unsettled if the grid was empty. *)
          invalid_arg "Engine.Session.transient_batch: empty grid")
      bvars
end

(* --- DC transfer sweep ------------------------------------------------ *)

(* Each point re-solves the operating point with the swept source pinned
   to the next value, warm-starting Newton from the previous solution -
   the standard continuation that keeps multi-stable circuits on one
   branch.  The sweep is a natural session batch: only the swept source's
   wave changes between points, so the node map and solver buffers are
   shared across the whole sweep. *)
let dc_sweep_impl ~opts ~obs circuit ~source ~values =
  let options = opts in
  (match Netlist.Circuit.find circuit source with
  | Some (Netlist.Device.V _) | Some (Netlist.Device.I _) -> ()
  | Some _ | None ->
    invalid_arg ("Engine.dc_sweep: no independent source named " ^ source));
  let at value =
    match Netlist.Circuit.find circuit source with
    | Some (Netlist.Device.V v) ->
      Netlist.Circuit.replace circuit
        (Netlist.Device.V { v with wave = Netlist.Wave.Dc value })
    | Some (Netlist.Device.I i) ->
      Netlist.Circuit.replace circuit
        (Netlist.Device.I { i with wave = Netlist.Wave.Dc value })
    | Some _ | None -> assert false
  in
  let session = Session.create ~options ~obs circuit in
  let prev = ref None in
  List.map
    (fun value ->
      Session.with_patch session (at value) (fun s ->
          let ctx = Session.ctx s in
          let v =
            let warm =
              match !prev with
              | Some v0 when Array.length v0 = ctx.size ->
                newton ~gmin:options.gmin ~mode:(Dc { scale = 1.0 }) ctx v0
              | Some _ | None -> Error (`No_conv, 0)
            in
            match warm with Ok (v, _) -> v | Error _ -> dc_solve ctx
          in
          prev := Some v;
          (value, { mna = s.Session.mna; v })))
    values

(* --- AC (small-signal) analysis -------------------------------------- *)

(* Linearise every device at the DC operating point and solve the complex
   MNA system once per frequency.  The designated source drives with unit
   magnitude and zero phase; every other independent source is quenched
   (V -> short, I -> open), as in SPICE. *)
let ac_impl ~opts ~obs circuit ~source ~freqs =
  (* Validate the source name against the circuit before any solving so
     a typo fails fast - even with an empty frequency list. *)
  (match Netlist.Circuit.find circuit source with
  | Some (Netlist.Device.V _) | Some (Netlist.Device.I _) -> ()
  | Some _ | None ->
    invalid_arg ("Engine.ac: no independent source named " ^ source));
  let ctx, mna = ctx_of_circuit ~opts ~obs circuit in
  let devices = ctx.devices in
  let v_op = dc_solve ctx in
  let n = Mna.size mna in
  let node_count = Mna.node_count mna in
  let cx re = { Complex.re; im = 0.0 } in
  let jw w c = { Complex.re = 0.0; im = w *. c } in
  let dev_names =
    Array.of_list (List.map Netlist.Device.name (Netlist.Circuit.devices circuit))
  in
  (* One complex system plus one Clu scratch for the whole sweep - the
     same begin-stamp / factor-solve lifecycle the real-valued solver
     runs, sized once per topology. *)
  let a = Array.make_matrix n n Complex.zero in
  let b = Array.make n Complex.zero in
  let scratch = Clu.make_scratch n in
  let solve_at freq =
    let w = 2.0 *. Float.pi *. freq in
    for i = 0 to n - 1 do
      Array.fill a.(i) 0 n Complex.zero;
      b.(i) <- Complex.zero
    done;
    let add i j z = if i >= 0 && j >= 0 then a.(i).(j) <- Complex.add a.(i).(j) z in
    let add_rhs i z = if i >= 0 then b.(i) <- Complex.add b.(i) z in
    let add_g i j z =
      add i i z;
      add j j z;
      add i j (Complex.neg z);
      add j i (Complex.neg z)
    in
    Array.iteri
      (fun di dev ->
        let name = dev_names.(di) in
        match dev with
        | CR { i; j; g } -> add_g i j (cx g)
        | CC { i; j; c; _ } -> add_g i j (jw w c)
        | CL { i; j; br; ind; _ } ->
          add i br Complex.one;
          add j br (Complex.neg Complex.one);
          add br i Complex.one;
          add br j (Complex.neg Complex.one);
          add br br (Complex.neg (jw w ind))
        | CV { i; j; br; _ } ->
          add i br Complex.one;
          add j br (Complex.neg Complex.one);
          add br i Complex.one;
          add br j (Complex.neg Complex.one);
          if String.equal name source then add_rhs br Complex.one
        | CI { i; j; _ } ->
          if String.equal name source then begin
            add_rhs i (Complex.neg Complex.one);
            add_rhs j Complex.one
          end
        | CD { i; j; is_sat; nvt } ->
          let vd = gv v_op i -. gv v_op j in
          let _, de = exp_lim (vd /. nvt) in
          let gd = (is_sat *. de /. nvt) +. opts.gmin in
          add_g i j (cx gd)
        | CM { d; g; s; model; w = mw; l = ml; cg; _ } ->
          let vgs = gv v_op g -. gv v_op s and vds = gv v_op d -. gv v_op s in
          let e = Mosfet.eval model ~w:mw ~l:ml ~vgs ~vds in
          let gds = e.Mosfet.gds +. opts.gmin in
          add d d (cx gds);
          add d g (cx e.Mosfet.gm);
          add d s (cx (-.(e.Mosfet.gm +. gds)));
          add s d (cx (-.gds));
          add s g (cx (-.e.Mosfet.gm));
          add s s (cx (e.Mosfet.gm +. gds));
          add_g g s (jw w cg);
          add_g g d (jw w cg))
      devices;
    for i = 0 to node_count - 1 do
      a.(i).(i) <- Complex.add a.(i).(i) (cx opts.gmin)
    done;
    Clu.factor_solve ~n scratch a b;
    Array.sub b 0 n
  in
  let points = List.map (fun f -> (f, solve_at f)) freqs in
  if Obs.enabled obs then Obs.count obs "engine.ac.points" (List.length points);
  Spectrum.make ~names:(output_names mna) ~points

(* --- The unified analysis entry point --------------------------------- *)

module Analysis = struct
  type t =
    | Op
    | Tran of { tstep : float; tstop : float; uic : bool }
    | Dc_sweep of { source : string; values : float list }
    | Ac of { source : string; freqs : float list }

  type result =
    | Op_result of solution
    | Tran_result of Waveform.t * stats
    | Sweep_result of (float * solution) list
    | Ac_result of Spectrum.t

  let kind = function
    | Op -> "op"
    | Tran _ -> "tran"
    | Dc_sweep _ -> "dc_sweep"
    | Ac _ -> "ac"

  let mismatch want = function
    | Op_result _ -> invalid_arg ("Engine.Analysis: op result, wanted " ^ want)
    | Tran_result _ -> invalid_arg ("Engine.Analysis: tran result, wanted " ^ want)
    | Sweep_result _ -> invalid_arg ("Engine.Analysis: sweep result, wanted " ^ want)
    | Ac_result _ -> invalid_arg ("Engine.Analysis: ac result, wanted " ^ want)

  let solution = function Op_result s -> s | r -> mismatch "solution" r

  let waveform = function Tran_result (wf, _) -> wf | r -> mismatch "waveform" r

  let stats = function Tran_result (_, st) -> st | r -> mismatch "stats" r

  let sweep = function Sweep_result pts -> pts | r -> mismatch "sweep" r

  let spectrum = function Ac_result sp -> sp | r -> mismatch "spectrum" r
end

let run ?(options = default_options) ?(obs = Obs.null) circuit analysis =
  let opts = options in
  Obs.span obs "engine.analysis"
    ~attrs:[ ("kind", Obs.Str (Analysis.kind analysis)) ]
    (fun _ ->
      match analysis with
      | Analysis.Op -> Analysis.Op_result (op_impl ~opts ~obs circuit)
      | Analysis.Tran { tstep; tstop; uic } ->
        let wf, stats = transient_impl ~opts ~obs circuit ~tstep ~tstop ~uic in
        Analysis.Tran_result (wf, stats)
      | Analysis.Dc_sweep { source; values } ->
        Analysis.Sweep_result (dc_sweep_impl ~opts ~obs circuit ~source ~values)
      | Analysis.Ac { source; freqs } ->
        Analysis.Ac_result (ac_impl ~opts ~obs circuit ~source ~freqs))

(* --- Deprecated pre-Analysis entry points ----------------------------- *)

let dc_operating_point ?(options = default_options) circuit =
  op_impl ~opts:options ~obs:Obs.null circuit

let transient_with_stats ?(options = default_options) circuit ~tstep ~tstop ~uic =
  transient_impl ~opts:options ~obs:Obs.null circuit ~tstep ~tstop ~uic

let transient ?options circuit ~tstep ~tstop ~uic =
  fst (transient_with_stats ?options circuit ~tstep ~tstop ~uic)

let dc_sweep ?(options = default_options) circuit ~source ~values =
  dc_sweep_impl ~opts:options ~obs:Obs.null circuit ~source ~values

let ac ?(options = default_options) circuit ~source ~freqs =
  ac_impl ~opts:options ~obs:Obs.null circuit ~source ~freqs
