exception Singular of int

(* Pivot permutation and forward-substitution buffers.  A batch caller
   (Engine.Session) allocates one scratch per circuit topology and
   factors thousands of Newton systems into it without allocating. *)
type scratch = { piv : int array; y : float array }

let make_scratch n = { piv = Array.make n 0; y = Array.make n 0.0 }

let scratch_capacity s = Array.length s.piv

let factor_solve ?n scratch a b =
  let n = match n with Some n -> n | None -> Array.length b in
  if Array.length scratch.piv < n || Array.length scratch.y < n then
    invalid_arg "Lu.factor_solve: scratch smaller than the system";
  let piv = scratch.piv and y = scratch.y in
  for i = 0 to n - 1 do
    piv.(i) <- i
  done;
  for k = 0 to n - 1 do
    (* Partial pivot: largest magnitude in column k at or below row k. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(piv.(i)).(k) > Float.abs a.(piv.(!best)).(k) then best := i
    done;
    if !best <> k then begin
      let t = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- t
    end;
    let akk = a.(piv.(k)).(k) in
    (* Report the post-pivot row: the permutation maps column k's failed
       pivot back to a row in the caller's numbering, i.e. an MNA
       unknown the caller can name. *)
    if Float.abs akk < 1e-30 then raise (Singular piv.(k));
    for i = k + 1 to n - 1 do
      let f = a.(piv.(i)).(k) /. akk in
      if f <> 0.0 then begin
        a.(piv.(i)).(k) <- f;
        for j = k + 1 to n - 1 do
          a.(piv.(i)).(j) <- a.(piv.(i)).(j) -. (f *. a.(piv.(k)).(j))
        done
      end
      else a.(piv.(i)).(k) <- 0.0
    done
  done;
  (* Forward substitution on the permuted rows. *)
  for i = 0 to n - 1 do
    let s = ref b.(piv.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (a.(piv.(i)).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.(piv.(i)).(j) *. b.(j))
    done;
    b.(i) <- !s /. a.(piv.(i)).(i)
  done

let solve a b = factor_solve (make_scratch (Array.length b)) a b

let solve_copy a b =
  let a = Array.map Array.copy a and b = Array.copy b in
  solve a b;
  b
