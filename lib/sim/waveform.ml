type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  times : float array;
  data : float array array; (* data.(signal).(sample) *)
}

let make ~names ~samples =
  let ns = Array.length names in
  let k = List.length samples in
  let times = Array.make k 0.0 in
  let data = Array.init ns (fun _ -> Array.make k 0.0) in
  List.iteri
    (fun i (t, row) ->
      if Array.length row <> ns then invalid_arg "Waveform.make: ragged sample";
      if i > 0 && t < times.(i - 1) then
        invalid_arg "Waveform.make: non-increasing time axis";
      times.(i) <- t;
      for s = 0 to ns - 1 do
        data.(s).(i) <- row.(s)
      done)
    samples;
  let index = Hashtbl.create ns in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  { names; index; times; data }

let names t = t.names

let mem t name = Hashtbl.mem t.index name

let length t = Array.length t.times

let times t = t.times

let samples t name = t.data.(Hashtbl.find t.index name)

let t_start t = if length t = 0 then 0.0 else t.times.(0)

let t_stop t = if length t = 0 then 0.0 else t.times.(length t - 1)

(* Binary search for the last index with times.(i) <= time. *)
let locate t time =
  let n = Array.length t.times in
  let rec go lo hi =
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= time then go mid hi else go lo mid
    end
  in
  if n = 0 then invalid_arg "Waveform.locate: empty waveform"
  else if time <= t.times.(0) then 0
  else if time >= t.times.(n - 1) then n - 1
  else go 0 (n - 1)

let value_at t name time =
  let row = samples t name in
  let n = Array.length t.times in
  if n = 1 then row.(0)
  else begin
    let i = locate t time in
    if i >= n - 1 then row.(n - 1)
    else begin
      let t0 = t.times.(i) and t1 = t.times.(i + 1) in
      if time <= t0 then row.(i)
      else if t1 <= t0 then row.(i + 1)
      else row.(i) +. ((row.(i + 1) -. row.(i)) *. (time -. t0) /. (t1 -. t0))
    end
  end

let resample t ~n =
  if n < 2 then invalid_arg "Waveform.resample: need n >= 2";
  let a = t_start t and b = t_stop t in
  let step = (b -. a) /. float_of_int (n - 1) in
  let rows =
    List.init n (fun i ->
        let time = a +. (step *. float_of_int i) in
        (time, Array.map (fun name -> value_at t name time) t.names))
  in
  make ~names:t.names ~samples:rows

(* Float.min/Float.max propagate NaN (the polymorphic min/max silently
   drop it), so an extremum over a diverged trace reports the poison
   instead of whatever finite sample happened to sort last. *)
let signal_min t name = Array.fold_left Float.min infinity (samples t name)

let signal_max t name = Array.fold_left Float.max neg_infinity (samples t name)

let signal_finite t name =
  Array.for_all Float.is_finite (samples t name)

let to_rows t =
  List.init (length t) (fun i ->
      (t.times.(i), Array.map (fun row -> row.(i)) t.data))

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time";
  Array.iter (fun n -> Buffer.add_string buf ("," ^ n)) t.names;
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, row) ->
      Buffer.add_string buf (Printf.sprintf "%.9g" time);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.9g" v)) row;
      Buffer.add_char buf '\n')
    (to_rows t);
  Buffer.contents buf

let rising_edges t name ~threshold =
  let row = samples t name in
  let c = ref 0 in
  for i = 1 to Array.length row - 1 do
    if row.(i - 1) < threshold && row.(i) >= threshold then incr c
  done;
  !c

let estimate_frequency t name ~threshold =
  let span = t_stop t -. t_start t in
  if span <= 0.0 then 0.0
  else float_of_int (rising_edges t name ~threshold) /. span
