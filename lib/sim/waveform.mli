(** Simulation results: a shared time axis and one sample row per signal.

    Node voltages are stored under the node name; branch currents under
    ["I(devname)"]. *)

type t

(** [make ~names ~samples] builds a waveform from time-ordered samples;
    each sample carries one value per name.  Raises [Invalid_argument] on
    ragged data or a non-increasing time axis. *)
val make : names:string array -> samples:(float * float array) list -> t

val names : t -> string array

val mem : t -> string -> bool

(** Number of samples. *)
val length : t -> int

val times : t -> float array

(** [samples t name] is the raw sample row of [name].  Raises [Not_found]
    for unknown signals. *)
val samples : t -> string -> float array

(** [value_at t name time] linearly interpolates signal [name] at [time];
    clamps outside the simulated span. *)
val value_at : t -> string -> float -> float

(** [resample t ~n] re-samples every signal onto a uniform [n]-point grid
    spanning the same time interval. *)
val resample : t -> n:int -> t

val t_start : t -> float

val t_stop : t -> float

val signal_min : t -> string -> float
(** NaN-propagating: a NaN sample poisons the extremum instead of being
    silently dropped. *)

val signal_max : t -> string -> float
(** NaN-propagating, like {!signal_min}. *)

val signal_finite : t -> string -> bool
(** Whether every sample of the signal is finite (no NaN, no infinity).
    The guard detection runs before trusting threshold comparisons,
    which are silently false on NaN. *)

(** [to_rows t] lists (time, values-in-name-order) for printing. *)
val to_rows : t -> (float * float array) list

(** [to_csv t] renders a "time,<name>,..." table for external plotting. *)
val to_csv : t -> string

(** [rising_edges t name ~threshold] counts upward crossings of
    [threshold] by signal [name]. *)
val rising_edges : t -> string -> threshold:float -> int

(** [estimate_frequency t name ~threshold] is rising edges divided by the
    simulated span, Hz (0 for spans of zero length). *)
val estimate_frequency : t -> string -> threshold:float -> float
