(** The pluggable linear-solver layer of the MNA core.

    A solver value owns all storage for one circuit topology's linear
    systems: [Engine] drives the
    {!begin_stamp}/{!add}/{!finish}/{!factor_solve} lifecycle on every
    Newton iteration and reads the result through {!solution}, never
    touching a concrete matrix representation.

    Two backends exist.  [Dense] wraps the seed path ({!Mna.system} plus
    {!Lu} scratch) and executes the identical float operations in the
    identical order, so it reproduces seed results bit for bit.
    [Sparse] compiles the accumulated stamp pattern into compressed form
    once per topology and afterwards refactorises numerically with a
    frozen pivot order (see {!Sparse}); fault patches stamp into a
    pattern superset, so a whole campaign shares one symbolic analysis.
    [Auto] resolves to one of the two at {!create} time by comparing the
    capacity against {!auto_threshold}. *)

type backend = Auto | Dense | Sparse

(** [Auto] capacity cutoff: below it dense wins, at or above it sparse
    does. *)
val auto_threshold : int

(** ["auto"], ["dense"] or ["sparse"]. *)
val backend_to_string : backend -> string

(** Inverse of {!backend_to_string}; [Error] explains the choices. *)
val backend_of_string : string -> (backend, string) result

exception Singular of int
(** The system has no usable pivot; the payload is the index of the
    offending unknown in the caller's (original MNA) numbering, ready
    for {!Mna.unknown_name}. *)

type t

(** [create backend ~capacity] allocates a solver for systems of up to
    [capacity] unknowns.  [Auto] resolves here, against [capacity]. *)
val create : backend -> capacity:int -> t

(** The resolved backend (never [Auto]). *)
val backend : t -> backend

val capacity : t -> int

(** [begin_stamp t ~n] opens a stamping pass for an [n]-unknown system,
    clearing the previous values. *)
val begin_stamp : t -> n:int -> unit

(** [add t i j v] accumulates [v] at matrix position [(i, j)]; no-op
    when either index is [-1] (ground). *)
val add : t -> int -> int -> float -> unit

(** [add_rhs t i v] accumulates [v] into right-hand-side row [i]. *)
val add_rhs : t -> int -> float -> unit

(** [add_conductance t i j g] stamps conductance [g] between unknowns
    [i] and [j] (either may be ground). *)
val add_conductance : t -> int -> int -> float -> unit

(** [add_current t i x] adds current [x] flowing {e into} node [i]. *)
val add_current : t -> int -> float -> unit

(** Seals the stamping pass (pattern compilation on the sparse path). *)
val finish : t -> unit

(** [prime t passes] accumulates the stamp pattern of every pass (each
    performs its own {!begin_stamp} and stamps; the values are
    discarded) and compiles the union pattern once, so none of the
    passes' later real stamps triggers a symbolic recompilation.  Batched
    fault simulation primes one pass per variant before stepping any of
    them.  No-op on the dense backend. *)
val prime : t -> (unit -> unit) list -> unit

(** Factors the stamped system and leaves the solution in {!solution}.
    Raises {!Singular} when the matrix has no usable pivot. *)
val factor_solve : t -> unit

(** The buffer holding the right-hand side during stamping and the
    solution after {!factor_solve} (leading [n] entries). *)
val solution : t -> float array

(** [flush_stats t obs] emits the work done since the previous flush as
    per-backend counters ([solver.dense.factor_solve];
    [solver.sparse.full_factor]/[refactor]/[solve]/[symbolic]/[repivot]
    plus [nnz]/[factor_nnz]/[fill_in] samples).  Free under a null
    sink. *)
val flush_stats : t -> Obs.sink -> unit
