(** Sparse LU backend for the MNA core.

    The nonzero pattern of an MNA system is fixed per circuit topology,
    so this backend splits the work the dense solver redoes on every
    Newton iteration into three amortised tiers:

    - {e pattern compilation} (per topology, and per pattern growth): the
      union of every coordinate ever stamped becomes a CSC structure with
      a greedy minimum-degree column ordering;
    - {e full factorisation} (once per compiled pattern, and on pivot
      decay): Gilbert-Peierls left-looking LU with threshold partial
      pivoting, recording the factor pattern and the pivot order;
    - {e numeric refactorisation} (every other solve): the stored pattern
      and pivot order are replayed on the new values - no graph
      traversal, no pivot search.

    A solver instance owns all of its storage; batch sessions keep one
    instance per topology and stamp fault patches into a pattern superset
    (the pattern only grows), so consecutive faults share the symbolic
    work.  Inactive overlay rows are padded with a unit diagonal, which
    keeps one pivot sequence valid across active-size changes without
    perturbing the active unknowns. *)

type t

exception Singular of int
(** Original (pre-ordering) index of the unknown whose pivot vanished. *)

(** [create ~capacity] allocates an instance for systems of up to
    [capacity] unknowns. *)
val create : capacity:int -> t

val capacity : t -> int

(** The right-hand-side buffer (length [capacity]); {!factor_solve}
    overwrites its leading active entries with the solution. *)
val rhs : t -> float array

(** [begin_stamp t ~n] opens a stamping pass for an [n]-unknown system:
    zeroes the values (keeping the accumulated pattern) and the leading
    right-hand side. *)
val begin_stamp : t -> n:int -> unit

(** [add t i j v] accumulates [v] at matrix position [(i, j)]; no-op
    when either index is negative (ground). *)
val add : t -> int -> int -> float -> unit

(** [add_rhs t i v] accumulates [v] into the right-hand side. *)
val add_rhs : t -> int -> float -> unit

(** Seals the stamping pass, compiling the pattern if it grew. *)
val finish : t -> unit

(** Factors the stamped system and overwrites the leading [n] entries of
    {!rhs} with the solution.  Chooses refactorisation when the stored
    pivot sequence is still valid, full factorisation otherwise.
    Raises {!Singular} when no usable pivot exists. *)
val factor_solve : t -> unit

(** Nonzeros of the compiled stamp pattern. *)
val nnz : t -> int

(** Nonzeros of the current L + U factors (0 before any factorisation);
    [factor_nnz - nnz] is the fill-in. *)
val factor_nnz : t -> int

(** Cumulative (full factorisations, refactorisations, solves, symbolic
    compilations, pivot-sequence rebuilds). *)
val stats : t -> int * int * int * int * int
