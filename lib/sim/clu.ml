exception Singular of int

(* Same reusable-scratch shape as Lu: an AC analysis factors one complex
   system per frequency point, all of the same size, so the pivot and
   substitution buffers are allocated once and reused for the whole
   sweep. *)
type scratch = { piv : int array; y : Complex.t array }

let make_scratch n = { piv = Array.make n 0; y = Array.make n Complex.zero }

let scratch_capacity s = Array.length s.piv

let factor_solve ?n scratch a b =
  let n = match n with Some n -> n | None -> Array.length b in
  if Array.length scratch.piv < n || Array.length scratch.y < n then
    invalid_arg "Clu.factor_solve: scratch smaller than the system";
  let piv = scratch.piv and y = scratch.y in
  for i = 0 to n - 1 do
    piv.(i) <- i
  done;
  for k = 0 to n - 1 do
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm a.(piv.(i)).(k) > Complex.norm a.(piv.(!best)).(k) then best := i
    done;
    if !best <> k then begin
      let t = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- t
    end;
    let akk = a.(piv.(k)).(k) in
    (* Post-pivot row index, as in Lu: the unknown the caller can name. *)
    if Complex.norm akk < 1e-30 then raise (Singular piv.(k));
    for i = k + 1 to n - 1 do
      let f = Complex.div a.(piv.(i)).(k) akk in
      if f <> Complex.zero then begin
        a.(piv.(i)).(k) <- f;
        for j = k + 1 to n - 1 do
          a.(piv.(i)).(j) <- Complex.sub a.(piv.(i)).(j) (Complex.mul f a.(piv.(k)).(j))
        done
      end
      else a.(piv.(i)).(k) <- Complex.zero
    done
  done;
  for i = 0 to n - 1 do
    let s = ref b.(piv.(i)) in
    for j = 0 to i - 1 do
      s := Complex.sub !s (Complex.mul a.(piv.(i)).(j) y.(j))
    done;
    y.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul a.(piv.(i)).(j) b.(j))
    done;
    b.(i) <- Complex.div !s a.(piv.(i)).(i)
  done

let solve a b = factor_solve (make_scratch (Array.length b)) a b

let solve_copy a b =
  let a = Array.map Array.copy a and b = Array.copy b in
  solve a b;
  b
