(** The anafaultd wire protocol: newline-delimited JSON over a Unix
    domain socket.

    A client writes one request object per line; the daemon answers a
    [Submit] with a stream of {!Anafault.Campaign.event} objects (one
    per line, ending in a ["finished"] or ["failed"] event), a [Stats]
    with one counters object, and [Ping]/[Shutdown] with one
    acknowledgement object.  The connection stays open for further
    requests; either side closing it ends the session.

    Requests:
    {v
    {"cmd": "submit", "spec": { ...campaign spec... }}
    {"cmd": "stats"}
    {"cmd": "ping"}
    {"cmd": "shutdown"}
    v} *)

type request =
  | Submit of Anafault.Campaign.spec
  | Stats
  | Ping
  | Shutdown

val request_to_json : request -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string) result

(** The one-object answers to non-submit requests. *)
val ok : Obs.Json.t

(** Counters object: jobs accepted, cache hits, faults simulated, ... *)
val stats_to_json :
  jobs:int ->
  cache_hits:int ->
  coalesced:int ->
  faults_simulated:int ->
  shard_runs:int ->
  Obs.Json.t

(** {1 Line transport} *)

(** [send oc json] writes one JSON line and flushes. *)
val send : out_channel -> Obs.Json.t -> unit

(** [recv ic] reads one line and parses it; [Ok None] at end of
    stream.  Blank lines are skipped. *)
val recv : in_channel -> (Obs.Json.t option, string) result
