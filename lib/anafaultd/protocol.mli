(** The anafaultd wire protocol: newline-delimited JSON over a Unix
    domain socket.

    A client writes one request object per line; the daemon answers a
    [Submit] with a stream of {!Anafault.Campaign.event} objects (one
    per line, ending in a ["finished"] or ["failed"] event) - or a
    single ["rejected"] object when backpressure turns the job away - a
    [Stats] with one counters object, and [Ping]/[Shutdown] with one
    acknowledgement object.  The connection stays open for further
    requests; either side closing it ends the session.

    Requests:
    {v
    {"cmd": "submit", "spec": { ...campaign spec... }, "client": "ci",
     "deadline_s": 30.0}
    {"cmd": "cancel", "fingerprint": "..."}
    {"cmd": "stats"}
    {"cmd": "ping"}
    {"cmd": "shutdown"}
    v}

    A [Cancel] names the job by its campaign fingerprint (the one the
    ["accepted"] event reported).  It is answered with one [ok] object
    carrying a ["cancelled": true/false] field - [false] when no such
    job is queued or running - while the job's own subscribers see a
    terminal ["cancelled"] event on their streams.

    Malformed input - lines that are not JSON, objects without a known
    [cmd], oversized requests - yields typed decode errors, never
    exceptions; the daemon answers with a ["failed"] event and keeps
    serving. *)

type request =
  | Submit of {
      spec : Anafault.Campaign.spec;
      client : string option;
      deadline_s : float option;
    }
      (** [client] identifies the submitter for quota accounting
          ([None] pools into the anonymous bucket); [deadline_s] is a
          wall-clock budget for the whole job measured from acceptance
          (the server may cap it further with its --job-deadline) *)
  | Cancel of { fingerprint : string }
      (** stop the queued-or-running job with this campaign
          fingerprint; its subscribers receive a terminal
          ["cancelled"] event *)
  | Stats
  | Ping
  | Shutdown

val request_to_json : request -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string) result

(** {1 Backpressure}

    Why a submission was turned away at the door.  The daemon answers
    exactly one ["rejected"] object and is ready for the next request;
    no events stream.  [Queue_full] is transient - a well-behaved
    client backs off and retries; [Quota_exceeded] is per-client and
    persists until that client's jobs drain. *)

type reject_reason = Queue_full | Quota_exceeded

val reject_reason_to_string : reject_reason -> string

val reject_reason_of_string : string -> (reject_reason, string) result

(** [{"event":"rejected","reason":...,"message":...}] *)
val rejected_to_json : reason:reject_reason -> message:string -> Obs.Json.t

(** [Ok (Some _)] for a rejection object, [Ok None] for anything else
    (fall through to the event codec), [Error] for a malformed
    rejection. *)
val rejected_of_json :
  Obs.Json.t -> ((reject_reason * string) option, string) result

(** The one-object answers to non-submit requests. *)
val ok : Obs.Json.t

(** Counters object: jobs accepted, cache hits, faults simulated, ... *)
val stats_to_json :
  jobs:int ->
  cache_hits:int ->
  coalesced:int ->
  faults_simulated:int ->
  shard_runs:int ->
  rejected:int ->
  replayed:int ->
  shard_restarts:int ->
  evictions:int ->
  corrupt:int ->
  cancelled:int ->
  Obs.Json.t

(** {1 Line transport} *)

(** [send oc json] writes one JSON line and flushes. *)
val send : out_channel -> Obs.Json.t -> unit

(** The default {!recv} request bound: 64 MiB, comfortably above any
    real campaign spec. *)
val default_limit_bytes : int

(** [recv ic] reads one line and parses it; [Ok None] at end of
    stream.  Blank lines are skipped.  A line longer than
    [limit_bytes] is drained and reported as a typed error, leaving
    the channel at the next line boundary. *)
val recv :
  ?limit_bytes:int -> in_channel -> (Obs.Json.t option, string) result
