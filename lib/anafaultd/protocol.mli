(** The anafaultd wire protocol: newline-delimited JSON over a Unix
    domain socket.

    A client writes one request object per line; the daemon answers a
    [Submit] with a stream of {!Anafault.Campaign.event} objects (one
    per line, ending in a ["finished"] or ["failed"] event) - or a
    single ["rejected"] object when backpressure turns the job away - a
    [Stats] with one counters object, and [Ping]/[Shutdown] with one
    acknowledgement object.  The connection stays open for further
    requests; either side closing it ends the session.

    Requests:
    {v
    {"cmd": "submit", "spec": { ...campaign spec... }, "client": "ci",
     "deadline_s": 30.0}
    {"cmd": "extract", "lift": { ...lift spec... },
     "simulate": { ...campaign spec... }, "client": "ci"}
    {"cmd": "cancel", "fingerprint": "..."}
    {"cmd": "stats"}
    {"cmd": "ping"}
    {"cmd": "shutdown"}
    v}

    An [Extract] runs LIFT fault extraction on an inline layout and is
    answered with one ["extracted"] object carrying the fault list (in
    the fault-list interface format) and the per-class counts; the
    result is content-addressed in the daemon's cache under a
    ["lift-"]-prefixed fingerprint of the spec, so a repeated layout is
    answered without re-extracting.  When [simulate] is present the
    extracted faults then flow straight into the campaign machinery -
    the embedded spec's own [faults] field is replaced by the extracted
    list - and the usual submit event stream follows the ["extracted"]
    object on the same connection: extract-then-simulate in one round
    trip.

    A [Cancel] names the job by its campaign fingerprint (the one the
    ["accepted"] event reported).  It is answered with one [ok] object
    carrying a ["cancelled": true/false] field - [false] when no such
    job is queued or running - while the job's own subscribers see a
    terminal ["cancelled"] event on their streams.

    Malformed input - lines that are not JSON, objects without a known
    [cmd], oversized requests - yields typed decode errors, never
    exceptions; the daemon answers with a ["failed"] event and keeps
    serving. *)

(** What LIFT extraction needs to be reproducible: the layout itself
    (inline, CIF-like format) and the pricing options.  [tile_nm] is
    the staged pipeline's tile side (0 = one tile); it does not affect
    the result, only how much of the daemon's stage-artefact cache a
    re-extraction of an edited layout can reuse. *)
type lift_spec = {
  layout : string;
  p_min : float;
  uniform_pdf : bool;
  merge_equivalent : bool;
  tile_nm : int;
}

val lift_spec_to_json : lift_spec -> Obs.Json.t

val lift_spec_of_json : Obs.Json.t -> (lift_spec, string) result

(** Content address of an extraction: ["lift-"] + a digest of the
    canonical spec serialisation.  The prefix keeps extraction results
    and campaign results apart in the shared daemon cache. *)
val lift_fingerprint : lift_spec -> string

type request =
  | Submit of {
      spec : Anafault.Campaign.spec;
      client : string option;
      deadline_s : float option;
    }
      (** [client] identifies the submitter for quota accounting
          ([None] pools into the anonymous bucket); [deadline_s] is a
          wall-clock budget for the whole job measured from acceptance
          (the server may cap it further with its --job-deadline) *)
  | Extract of {
      lift : lift_spec;
      simulate : Anafault.Campaign.spec option;
      client : string option;
      deadline_s : float option;
    }
      (** extract faults from [lift.layout]; with [simulate], feed the
          extracted list into that campaign spec (its [faults] field is
          replaced) and stream the simulation events after the
          ["extracted"] answer.  [client]/[deadline_s] scope the chained
          simulation exactly as in [Submit]. *)
  | Cancel of { fingerprint : string }
      (** stop the queued-or-running job with this campaign
          fingerprint; its subscribers receive a terminal
          ["cancelled"] event *)
  | Stats
  | Ping
  | Shutdown

val request_to_json : request -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string) result

(** {1 Backpressure}

    Why a submission was turned away at the door.  The daemon answers
    exactly one ["rejected"] object and is ready for the next request;
    no events stream.  [Queue_full] is transient - a well-behaved
    client backs off and retries; [Quota_exceeded] is per-client and
    persists until that client's jobs drain. *)

type reject_reason = Queue_full | Quota_exceeded

val reject_reason_to_string : reject_reason -> string

val reject_reason_of_string : string -> (reject_reason, string) result

(** [{"event":"rejected","reason":...,"message":...}] *)
val rejected_to_json : reason:reject_reason -> message:string -> Obs.Json.t

(** [Ok (Some _)] for a rejection object, [Ok None] for anything else
    (fall through to the event codec), [Error] for a malformed
    rejection. *)
val rejected_of_json :
  Obs.Json.t -> ((reject_reason * string) option, string) result

(** The one-object answers to non-submit requests. *)
val ok : Obs.Json.t

(** {1 Extraction answers} *)

(** The daemon's answer to an [Extract]: the ranked fault list in the
    fault-list interface format, plus the per-class counts the report
    would print. *)
type extracted = {
  ex_fingerprint : string;
  ex_cached : bool;
  ex_faults : string;  (** fault-list interface text, ranked order *)
  ex_sites : int;  (** sites considered before thresholding *)
  ex_bridging : int;
  ex_line_opens : int;
  ex_contact_opens : int;
  ex_stuck_opens : int;
}

(** [{"event":"extracted", ...}] *)
val extracted_to_json : extracted -> Obs.Json.t

(** [Ok (Some _)] for an extraction answer, [Ok None] for anything
    else (fall through to the event codec), [Error] for a malformed
    one. *)
val extracted_of_json : Obs.Json.t -> (extracted option, string) result

(** Counters object: jobs accepted, cache hits, faults simulated, ... *)
val stats_to_json :
  jobs:int ->
  cache_hits:int ->
  coalesced:int ->
  faults_simulated:int ->
  shard_runs:int ->
  rejected:int ->
  replayed:int ->
  shard_restarts:int ->
  evictions:int ->
  corrupt:int ->
  cancelled:int ->
  extracts:int ->
  extract_hits:int ->
  Obs.Json.t

(** {1 Line transport} *)

(** [send oc json] writes one JSON line and flushes. *)
val send : out_channel -> Obs.Json.t -> unit

(** The default {!recv} request bound: 64 MiB, comfortably above any
    real campaign spec. *)
val default_limit_bytes : int

(** [recv ic] reads one line and parses it; [Ok None] at end of
    stream.  Blank lines are skipped.  A line longer than
    [limit_bytes] is drained and reported as a typed error, leaving
    the channel at the next line boundary. *)
val recv :
  ?limit_bytes:int -> in_channel -> (Obs.Json.t option, string) result
