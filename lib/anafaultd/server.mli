(** The anafaultd campaign server: a resident engine that accepts
    campaign jobs over a Unix-domain socket ({!Protocol}), runs them
    through the shared {!Anafault.Campaign} machinery, and answers
    repeat submissions from a content-addressed result cache
    ({!Cache}, keyed on the campaign fingerprint).

    Structure: one accept loop, one connection-handler thread per
    client, one scheduler thread draining a FIFO job queue.  Identical
    in-flight submissions coalesce - a second client submitting the
    fingerprint currently queued or running subscribes to the same job
    instead of enqueuing a duplicate.  Every job's telemetry is scoped
    with a [job] attribute carrying its fingerprint ({!Obs.tagged}).

    Crash-safety: every accepted job is recorded in a write-ahead
    queue journal ([<work_dir>/queue.wal], {!Queue}) {e before} the
    client hears "accepted", and the campaign itself journals to
    [<work_dir>/<fingerprint>.journal].  A daemon killed -9 therefore
    restarts into the same queue: pending jobs re-enqueue, the one
    that was running resumes from its campaign journal, and finished
    results wait in the cache for the resubmitting client.

    Fault extraction is a first-class job kind: an [extract] request
    runs LIFT ({!Defects.Pipeline}) on an inline layout, answers with
    the ranked fault list, and content-addresses the result in the
    same cache under a ["lift-"] fingerprint - with the pipeline's
    stage artefacts kept under [<work_dir>/lift-stages], so an edited
    layout re-extracts only its dirty tiles.  An [extract] carrying a
    [simulate] spec chains straight into the submit path with the
    extracted faults: extract-then-simulate in one round trip.

    Backpressure: with [queue_limit] set, a submission past the bound
    answers with a typed [queue_full] rejection; with [client_quota]
    set, each client (the [client] string of the submit request) is
    capped at that many queued-or-running jobs, beyond which it gets
    [quota_exceeded].  Coalescing submissions are never rejected.

    Sharding ([shards > 1]) splits each job across [anafault --shard]
    child processes whose per-shard journals are merged
    ({!Anafault.Journal.merge}) into the same campaign journal the
    in-process path writes.  Children are supervised: a dead child is
    respawned with [--resume] up to [shard_retries] extra lives; one
    that stays dead degrades the campaign - its journal is salvaged
    leniently and the unsalvaged faults surface as typed [Crashed]
    failures in the result (which is then {e not} cached).

    Cancellation: a [cancel] request (or an expired deadline, or a job
    orphaned by its last subscriber vanishing for longer than [grace])
    fires the job's cooperative cancel token.  The engine's Newton
    loop polls the token, so an in-process job stops within
    milliseconds; shard children get SIGTERM (they drain and exit),
    then SIGKILL after [grace].  Everything journalled before the stop
    is salvaged; the job terminates with a ["cancelled"] event, is
    never cached, and its WAL record is tombstoned at the moment the
    cancel is acknowledged - an identical resubmission re-simulates
    exactly the faults the stop interrupted.  Deadlines: a submit's
    [deadline_s] is capped by the server-wide [job_deadline] and
    enforced from acceptance, for queued and running jobs alike. *)

type config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  work_dir : string;  (** journals, shard specs, queue WAL, default cache *)
  cache_dir : string option;  (** result cache root; [None]: work_dir/cache *)
  cache_budget : int;  (** cache byte budget; 0 = unbounded ({!Cache}) *)
  queue_limit : int;
      (** max queued-or-running jobs before [queue_full]; 0 = unbounded *)
  client_quota : int;
      (** max queued-or-running jobs per client before [quota_exceeded];
          0 = unbounded *)
  shards : int;
      (** > 1: split each job across this many worker processes *)
  shard_retries : int;
      (** extra lives per shard child before its slice degrades *)
  worker_exe : string option;
      (** the [anafault] binary used for [--shard] children; required
          when [shards > 1] *)
  lift_domains : int;
      (** worker domains for the per-tile stages of an [extract]
          request's staged LIFT pipeline; 1 = serial *)
  job_deadline : float option;
      (** server-side cap (seconds) on any job's wall clock, measured
          from acceptance; tightens - never loosens - a submit's own
          [deadline_s].  [None]: no cap *)
  grace : float;
      (** seconds an orphaned job may outlive its last subscriber, and
          seconds a SIGTERMed shard child may drain before SIGKILL *)
  obs : Obs.sink;  (** daemon telemetry (per-job scoped via {!Obs.tagged}) *)
  verbose : bool;  (** log accepts, jobs and cache traffic to stderr *)
}

(** Unbounded queue, quota and cache; 1 shard with 2 retries; no job
    deadline; a 2 s grace. *)
val default_config : socket_path:string -> work_dir:string -> config

(** [run config] binds the socket, replays the queue WAL, and serves
    until a client sends a [shutdown] request.  Returns [Error] when
    the socket cannot be bound or the work directory, cache or WAL
    cannot be opened.  SIGPIPE is ignored for the lifetime of the call
    (clients may vanish mid-stream).  Malformed requests answer with
    typed ["failed"] events; they never end the serve loop. *)
val run : config -> (unit, string) result
