(** The anafaultd campaign server: a resident engine that accepts
    campaign jobs over a Unix-domain socket ({!Protocol}), runs them
    through the shared {!Anafault.Campaign} machinery, and answers
    repeat submissions from a content-addressed result cache
    ({!Cache}, keyed on the campaign fingerprint).

    Structure: one accept loop, one connection-handler thread per
    client, one scheduler thread draining a FIFO job queue.  Identical
    in-flight submissions coalesce - a second client submitting the
    fingerprint currently queued or running subscribes to the same job
    instead of enqueuing a duplicate.  Every job's telemetry is scoped
    with a [job] attribute carrying its fingerprint ({!Obs.tagged}).

    Jobs persist through the campaign journal: an in-process job
    journals to [<work_dir>/<fingerprint>.journal] (resuming it if a
    previous daemon died mid-campaign), and with [shards > 1] the job
    is split across [anafault --shard I/N] child processes whose
    per-shard journals are merged ({!Anafault.Journal.merge}) into the
    same campaign journal the in-process path writes. *)

type config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  work_dir : string;  (** journals, shard specs, and the default cache *)
  cache_dir : string option;  (** result cache root; [None]: work_dir/cache *)
  shards : int;
      (** > 1: split each job across this many worker processes *)
  worker_exe : string option;
      (** the [anafault] binary used for [--shard] children; required
          when [shards > 1] *)
  obs : Obs.sink;  (** daemon telemetry (per-job scoped via {!Obs.tagged}) *)
  verbose : bool;  (** log accepts, jobs and cache traffic to stderr *)
}

val default_config : socket_path:string -> work_dir:string -> config

(** [run config] binds the socket and serves until a client sends a
    [shutdown] request.  Returns [Error] when the socket cannot be
    bound or the work directory cannot be created.  SIGPIPE is ignored
    for the lifetime of the call (clients may vanish mid-stream). *)
val run : config -> (unit, string) result
