(** The daemon's persistent job queue: a write-ahead JSONL journal of
    submissions, replayed at startup, so queued and running jobs
    survive [kill -9].

    Protocol: {!push} appends (and fsyncs) a record {e before} the
    submission is acknowledged; {!mark_done} appends a tombstone when
    the job leaves the system.  {!open_} replays push-minus-done in
    arrival order and compacts the file (tmp + fsync + rename).  A
    crash tears at most the trailing line, which replay skips;
    duplicate pushes of one fingerprint collapse to the first.

    Failpoints: [queue.append] fires before a push record is written,
    [queue.appended] after it is durable. *)

type entry = {
  fingerprint : string;  (** the campaign fingerprint - the dedup key *)
  client : string;  (** submitting client id ("" = anonymous) *)
  spec : Anafault.Campaign.spec;
}

type t

(** [open_ ~path] replays and compacts the journal at [path] (creating
    it when missing) and returns the handle plus the pending entries in
    arrival order - the jobs a restarted daemon must re-enqueue. *)
val open_ : path:string -> (t * entry list, string) result

(** [push t entry] makes the submission durable.  [Ok ()] without
    writing when the fingerprint is already pending.  Thread-safe. *)
val push : t -> entry -> (unit, string) result

(** [mark_done t fingerprint] retires a pending entry (job finished,
    failed, or was rejected post-queue).  Unknown fingerprints are
    ignored.  Thread-safe. *)
val mark_done : t -> string -> unit

(** Jobs currently pending (queued or running). *)
val pending : t -> int

val path : t -> string

val close : t -> unit
