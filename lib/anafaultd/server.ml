(* The resident campaign server.  Threads, not domains, carry the
   service structure (connection handlers block on sockets; the
   simulation itself spawns domains through Parsim underneath the
   scheduler thread):

     accept loop ──▶ handler thread per connection
                        │  submit: fingerprint, cache probe, enqueue
                        ▼
                    job queue ──▶ scheduler thread
                                     │ in-process: Campaign.run_local
                                     │ sharded:   anafault --shard I/N × N
                                     ▼
                                  broadcast events, store cache entry

   Identical in-flight submissions coalesce: the second client
   subscribes to the running job instead of enqueuing a duplicate, so
   repeated work is deduped even before it reaches the cache. *)

module Campaign = Anafault.Campaign
module Journal = Anafault.Journal
module J = Obs.Json

type config = {
  socket_path : string;
  work_dir : string;
  cache_dir : string option;
  shards : int;
  worker_exe : string option;
  obs : Obs.sink;
  verbose : bool;
}

let default_config ~socket_path ~work_dir =
  {
    socket_path;
    work_dir;
    cache_dir = None;
    shards = 1;
    worker_exe = None;
    obs = Obs.null;
    verbose = false;
  }

(* One client connection; the write lock serialises the handler's own
   acknowledgements with the scheduler's event broadcasts. *)
type sub = { sout : out_channel; swrite : Mutex.t }

type job = {
  spec : Campaign.spec;
  compiled : Campaign.compiled;
  jlock : Mutex.t;
  jcond : Condition.t;
  mutable subs : sub list;
  mutable finished : bool;
}

type t = {
  cfg : config;
  cache : Cache.t;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  (* fingerprint -> queued-or-running job; entries leave only after the
     job finished, so late twins always coalesce. *)
  inflight : (string, job) Hashtbl.t;
  mutable stopping : bool;
  slock : Mutex.t;
  mutable jobs : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable faults_simulated : int;
  mutable shard_runs : int;
}

let log t fmt =
  if t.cfg.verbose then
    Format.kfprintf
      (fun ppf -> Format.fprintf ppf "@.")
      Format.err_formatter
      ("anafaultd: " ^^ fmt)
  else Format.ifprintf Format.err_formatter fmt

(* --- Event fan-out ----------------------------------------------------- *)

let subscribers job = Mutex.protect job.jlock (fun () -> job.subs)

(* A subscriber whose connection died is dropped; the job carries on
   for the others (and for the cache). *)
let broadcast job ev =
  let json = Campaign.event_to_json ev in
  List.iter
    (fun s ->
      try Mutex.protect s.swrite (fun () -> Protocol.send s.sout json)
      with _ ->
        Mutex.protect job.jlock (fun () ->
            job.subs <- List.filter (fun s' -> s' != s) job.subs))
    (subscribers job)

let finish job =
  Mutex.protect job.jlock (fun () ->
      job.finished <- true;
      Condition.broadcast job.jcond)

(* --- Job execution ----------------------------------------------------- *)

let journal_path t fp = Filename.concat t.cfg.work_dir (fp ^ ".journal")

(* The journal is the persistence layer: a daemon killed mid-campaign
   resumes its own partial work on resubmission.  A corrupt or
   mismatched journal is discarded, not fatal. *)
let open_journal t fp faults =
  let path = journal_path t fp in
  match Journal.start ~path ~fingerprint:fp ~resume:true ~faults with
  | Ok j -> Ok j
  | Error _ -> begin
    (try Sys.remove path with Sys_error _ -> ());
    Journal.start ~path ~fingerprint:fp ~resume:false ~faults
  end

let progress_of job total =
  (* Stream at most ~50 progress events per job, always including the
     final one. *)
  let step = max 1 (total / 50) in
  fun completed t ->
    if completed = t || completed mod step = 0 then
      broadcast job (Campaign.Progress { completed; total = t })

let run_in_process t job =
  let compiled = job.compiled in
  let fp = compiled.Campaign.fingerprint in
  let faults = Array.of_list compiled.Campaign.faults in
  let total = Array.length faults in
  match open_journal t fp faults with
  | Error msg -> Error ("journal: " ^ msg)
  | Ok journal ->
    Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
    (match
       Campaign.run_local ~progress:(progress_of job total) ~journal compiled
     with
    | exception Sim.Engine.Sim_error (err, detail) ->
      Error
        (Printf.sprintf "nominal simulation failed (%s): %s"
           (Sim.Engine.error_to_string err) detail)
    | { Campaign.result; _ } ->
      let simulated = total - Journal.restored_count journal in
      Mutex.protect t.slock (fun () ->
          t.faults_simulated <- t.faults_simulated + simulated);
      Ok result)

let wait_child exe pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED n -> Error (Printf.sprintf "%s exited with %d" exe n)
  | Unix.WSIGNALED n -> Error (Printf.sprintf "%s killed by signal %d" exe n)
  | Unix.WSTOPPED n -> Error (Printf.sprintf "%s stopped by signal %d" exe n)

(* Farm the job to [shards] anafault --shard child processes, each
   journalling its slice under whole-campaign indices, then merge the
   shard journals into the campaign journal and rebuild the result from
   it - no waveform ever crosses a process boundary, only journal
   lines. *)
let run_sharded t job exe shards =
  let compiled = job.compiled in
  let fp = compiled.Campaign.fingerprint in
  let faults = Array.of_list compiled.Campaign.faults in
  let spec_path = Filename.concat t.cfg.work_dir (fp ^ ".spec.json") in
  let oc = open_out spec_path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      Protocol.send oc (Campaign.spec_to_json job.spec));
  broadcast job (Campaign.Sharded { shards });
  let shard_paths =
    List.init shards (fun i ->
        Filename.concat t.cfg.work_dir (Printf.sprintf "%s.shard%d.journal" fp i))
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pids =
    List.mapi
      (fun i shard_journal ->
        let argv =
          [|
            exe;
            "--spec";
            spec_path;
            "--shard";
            Campaign.shard_to_string (i, shards);
            "--journal";
            shard_journal;
          |]
        in
        Unix.create_process exe argv devnull devnull devnull)
      shard_paths
  in
  let statuses = List.map (wait_child exe) pids in
  Unix.close devnull;
  Mutex.protect t.slock (fun () -> t.shard_runs <- t.shard_runs + shards);
  match List.find_opt Result.is_error statuses with
  | Some (Error msg) -> Error ("shard worker: " ^ msg)
  | Some (Ok ()) | None -> begin
    match
      Journal.merge ~out:(journal_path t fp) ~fingerprint:fp ~faults
        shard_paths
    with
    | Error msg -> Error ("journal merge: " ^ msg)
    | Ok merged -> begin
      Mutex.protect t.slock (fun () ->
          t.faults_simulated <- t.faults_simulated + merged);
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) shard_paths;
      match
        Journal.start ~path:(journal_path t fp) ~fingerprint:fp ~resume:true
          ~faults
      with
      | Error msg -> Error ("merged journal: " ^ msg)
      | Ok journal ->
        Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
        Campaign.result_of_journal compiled journal
    end
  end

let execute t job =
  let fp = job.compiled.Campaign.fingerprint in
  let total = List.length job.compiled.Campaign.faults in
  log t "job %s: %d faults" fp total;
  Obs.span t.cfg.obs "daemon.job"
    ~attrs:[ ("job", Obs.Str fp); ("faults", Obs.Int total) ]
  @@ fun _ ->
  let outcome =
    match (t.cfg.worker_exe, t.cfg.shards) with
    | Some exe, shards when shards > 1 && total >= shards ->
      run_sharded t job exe shards
    | _ -> run_in_process t job
  in
  (match outcome with
  | Ok result ->
    Cache.store t.cache fp (Campaign.result_to_json result);
    Obs.count t.cfg.obs "daemon.jobs_done" 1 ~attrs:[ ("job", Obs.Str fp) ];
    broadcast job (Campaign.Finished result);
    log t "job %s: done (%d results)" fp result.Campaign.total
  | Error message ->
    Obs.count t.cfg.obs "daemon.jobs_failed" 1 ~attrs:[ ("job", Obs.Str fp) ];
    broadcast job (Campaign.Failed { message });
    log t "job %s: failed: %s" fp message);
  (* Only now may a twin submission start a fresh job (it will hit the
     cache instead when we succeeded). *)
  Mutex.protect t.qlock (fun () -> Hashtbl.remove t.inflight fp);
  finish job

let scheduler t =
  let rec loop () =
    let next =
      Mutex.protect t.qlock @@ fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.stopping then None
        else begin
          Condition.wait t.qcond t.qlock;
          wait ()
        end
      in
      wait ()
    in
    match next with
    | None -> ()
    | Some job ->
      (try execute t job
       with e ->
         broadcast job
           (Campaign.Failed { message = "daemon: " ^ Printexc.to_string e });
         Mutex.protect t.qlock (fun () ->
             Hashtbl.remove t.inflight job.compiled.Campaign.fingerprint);
         finish job);
      loop ()
  in
  loop ()

(* --- Connection handling ----------------------------------------------- *)

let stats_json t =
  Mutex.protect t.slock @@ fun () ->
  Protocol.stats_to_json ~jobs:t.jobs ~cache_hits:t.cache_hits
    ~coalesced:t.coalesced ~faults_simulated:t.faults_simulated
    ~shard_runs:t.shard_runs

let send_event sub ev =
  Mutex.protect sub.swrite (fun () ->
      Protocol.send sub.sout (Campaign.event_to_json ev))

let handle_submit t sub spec =
  (* Compile once to learn the fingerprint, then re-scope the config's
     telemetry sink so every event of this job carries it. *)
  match Campaign.compile ~obs:t.cfg.obs spec with
  | Error message -> send_event sub (Campaign.Failed { message })
  | Ok compiled ->
    let fp = compiled.Campaign.fingerprint in
    let obs = Obs.tagged t.cfg.obs [ ("job", Obs.Str fp) ] in
    let compiled =
      {
        compiled with
        Campaign.config = { compiled.Campaign.config with Anafault.Simulate.obs };
      }
    in
    let faults = Array.of_list compiled.Campaign.faults in
    send_event sub
      (Campaign.Accepted { fingerprint = fp; total = Array.length faults });
    let cached =
      match Cache.find t.cache fp with
      | None -> None
      | Some json -> begin
        match Campaign.result_of_json ~faults json with
        | Ok result -> Some { result with Campaign.cached = true }
        | Error _ -> None (* stale or torn entry: treat as a miss *)
      end
    in
    match cached with
    | Some result ->
      Mutex.protect t.slock (fun () -> t.cache_hits <- t.cache_hits + 1);
      Obs.count t.cfg.obs "daemon.cache_hit" 1 ~attrs:[ ("job", Obs.Str fp) ];
      log t "job %s: cache hit" fp;
      send_event sub (Campaign.Cache_hit { fingerprint = fp });
      send_event sub (Campaign.Finished result)
    | None -> begin
      let job =
        Mutex.protect t.qlock @@ fun () ->
        if t.stopping then None (* the scheduler may already be gone *)
        else begin
          match Hashtbl.find_opt t.inflight fp with
          | Some job ->
            (* Same campaign already queued or running: subscribe. *)
            Mutex.protect job.jlock (fun () -> job.subs <- sub :: job.subs);
            Mutex.protect t.slock (fun () -> t.coalesced <- t.coalesced + 1);
            Obs.count t.cfg.obs "daemon.coalesced" 1
              ~attrs:[ ("job", Obs.Str fp) ];
            Some job
          | None ->
            let job =
              {
                spec;
                compiled;
                jlock = Mutex.create ();
                jcond = Condition.create ();
                subs = [ sub ];
                finished = false;
              }
            in
            Hashtbl.replace t.inflight fp job;
            Queue.push job t.queue;
            Mutex.protect t.slock (fun () -> t.jobs <- t.jobs + 1);
            Condition.signal t.qcond;
            Some job
        end
      in
      match job with
      | None ->
        send_event sub (Campaign.Failed { message = "daemon is shutting down" })
      | Some job ->
        (* Hold the connection until the job finished; the scheduler
           streams the events. *)
        Mutex.protect job.jlock (fun () ->
            while not job.finished do
              Condition.wait job.jcond job.jlock
            done)
    end

let request_shutdown t =
  Mutex.protect t.qlock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcond);
  (* Wake the accept loop: shutting the listening socket down unblocks
     a pending accept on Linux; the throwaway connection covers
     platforms where it does not (closing the fd from another thread
     would NOT interrupt a blocked accept). *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let handle_client t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sub = { sout = oc; swrite = Mutex.create () } in
  let rec loop () =
    match Protocol.recv ic with
    | Ok None | Error _ -> ()
    | Ok (Some json) -> begin
      match Protocol.request_of_json json with
      | Error message ->
        send_event sub (Campaign.Failed { message });
        loop ()
      | Ok (Protocol.Submit spec) ->
        handle_submit t sub spec;
        loop ()
      | Ok Protocol.Stats ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc (stats_json t));
        loop ()
      | Ok Protocol.Ping ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc Protocol.ok);
        loop ()
      | Ok Protocol.Shutdown ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc Protocol.ok);
        log t "shutdown requested";
        request_shutdown t
    end
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- Lifecycle --------------------------------------------------------- *)

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ " exists and is not a directory")
  else begin
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error (dir ^ ": " ^ Unix.error_message err)
  end

let ( let* ) = Result.bind

let run cfg =
  let* () = ensure_dir cfg.work_dir in
  let cache_dir =
    Option.value cfg.cache_dir ~default:(Filename.concat cfg.work_dir "cache")
  in
  let* cache = Cache.create ~dir:cache_dir in
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path) with
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close listen_fd;
    Error (cfg.socket_path ^ ": " ^ Unix.error_message err)
  | () ->
    Unix.listen listen_fd 16;
    let previous_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let t =
      {
        cfg;
        cache;
        listen_fd;
        queue = Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        inflight = Hashtbl.create 8;
        stopping = false;
        slock = Mutex.create ();
        jobs = 0;
        cache_hits = 0;
        coalesced = 0;
        faults_simulated = 0;
        shard_runs = 0;
      }
    in
    log t "listening on %s (cache %s, shards %d)" cfg.socket_path cache_dir
      cfg.shards;
    let scheduler_thread = Thread.create scheduler t in
    let handlers = ref [] in
    let rec accept_loop () =
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> () (* shut down *)
      | fd, _ ->
        if Mutex.protect t.qlock (fun () -> t.stopping) then
          (* The wake-up connection of request_shutdown, or a client
             racing the shutdown: refuse it. *)
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          handlers := Thread.create (handle_client t) fd :: !handlers;
          accept_loop ()
        end
    in
    accept_loop ();
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Drain: no new connections arrive; finish what is queued. *)
    List.iter Thread.join !handlers;
    Mutex.protect t.qlock (fun () ->
        t.stopping <- true;
        Condition.broadcast t.qcond);
    Thread.join scheduler_thread;
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    Option.iter (Sys.set_signal Sys.sigpipe) previous_sigpipe;
    log t "stopped";
    Ok ()
