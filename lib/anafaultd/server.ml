(* The resident campaign server.  Threads, not domains, carry the
   service structure (connection handlers block on sockets; the
   simulation itself spawns domains through Parsim underneath the
   scheduler thread):

     accept loop ──▶ handler thread per connection
                        │  submit: fingerprint, cache probe, admission
                        ▼
                    job queue ──▶ scheduler thread
                    (WAL-backed)    │ in-process: Campaign.run_local
                                    │ sharded:   anafault --shard I/N × N
                                    ▼             (supervised, respawned)
                                 broadcast events, store cache entry

   Identical in-flight submissions coalesce: the second client
   subscribes to the running job instead of enqueuing a duplicate, so
   repeated work is deduped even before it reaches the cache.

   Every accepted job is journalled to a write-ahead queue (Queue)
   before the client hears "accepted", so a daemon killed -9 replays
   its queue at the next start and finishes the work with no client
   attached - the results land in the cache, where the resubmitting
   client finds them.  Admission is bounded: a full queue or an
   exhausted per-client quota answers with a typed rejection instead
   of unbounded buffering. *)

module Campaign = Anafault.Campaign
module Journal = Anafault.Journal
module J = Obs.Json

type config = {
  socket_path : string;
  work_dir : string;
  cache_dir : string option;
  cache_budget : int;
  queue_limit : int;
  client_quota : int;
  shards : int;
  shard_retries : int;
  worker_exe : string option;
  lift_domains : int;
      (* worker domains for the per-tile stages of an Extract request's
         staged LIFT pipeline; 1 = serial *)
  job_deadline : float option;
      (* server-side cap on any job's wall clock, from acceptance;
         tightens (never loosens) a submit's own deadline_s *)
  grace : float;
      (* seconds: how long an orphaned job may outlive its last
         subscriber, and how long a SIGTERMed shard child may drain
         before SIGKILL *)
  obs : Obs.sink;
  verbose : bool;
}

let default_config ~socket_path ~work_dir =
  {
    socket_path;
    work_dir;
    cache_dir = None;
    cache_budget = 0;
    queue_limit = 0;
    client_quota = 0;
    shards = 1;
    shard_retries = 2;
    worker_exe = None;
    lift_domains = 1;
    job_deadline = None;
    grace = 2.0;
    obs = Obs.null;
    verbose = false;
  }

(* One client connection; the write lock serialises the handler's own
   acknowledgements with the scheduler's event broadcasts. *)
type sub = { sout : out_channel; swrite : Mutex.t }

type job = {
  spec : Campaign.spec;
  compiled : Campaign.compiled;
  client : string; (* quota bucket; "" = anonymous *)
  token : Cancel.t; (* also threaded into [compiled]'s engine options *)
  deadline_at : float option; (* absolute wall clock; monitor enforces *)
  deadline_total : float; (* the budget behind [deadline_at], for the reason *)
  replayed : bool; (* WAL replays have no subscribers by design *)
  jlock : Mutex.t;
  jcond : Condition.t;
  mutable subs : sub list;
  mutable orphaned_at : float option; (* monitor-private: subs first seen [] *)
  mutable finished : bool;
  mutable retired : bool; (* under qlock; slot and quota already freed *)
}

type t = {
  cfg : config;
  cache : Cache.t;
  wal : Queue.t;
  listen_fd : Unix.file_descr;
  queue : job Stdlib.Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  (* fingerprint -> queued-or-running job; entries leave only after the
     job finished, so late twins always coalesce. *)
  inflight : (string, job) Hashtbl.t;
  (* client -> jobs currently queued or running on its behalf *)
  quota : (string, int) Hashtbl.t;
  mutable stopping : bool;
  slock : Mutex.t;
  mutable jobs : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable faults_simulated : int;
  mutable shard_runs : int;
  mutable rejected : int;
  mutable replayed : int;
  mutable shard_restarts : int;
  mutable cancelled : int;
  mutable extracts : int;
  mutable extract_hits : int;
}

let log t fmt =
  if t.cfg.verbose then
    Format.kfprintf
      (fun ppf -> Format.fprintf ppf "@.")
      Format.err_formatter
      ("anafaultd: " ^^ fmt)
  else Format.ifprintf Format.err_formatter fmt

(* --- Event fan-out ----------------------------------------------------- *)

let subscribers job = Mutex.protect job.jlock (fun () -> job.subs)

(* A subscriber whose connection died is dropped; the job carries on
   for the others (and for the cache). *)
let broadcast job ev =
  let json = Campaign.event_to_json ev in
  List.iter
    (fun s ->
      try Mutex.protect s.swrite (fun () -> Protocol.send s.sout json)
      with _ ->
        Mutex.protect job.jlock (fun () ->
            job.subs <- List.filter (fun s' -> s' != s) job.subs))
    (subscribers job)

let finish job =
  Mutex.protect job.jlock (fun () ->
      job.finished <- true;
      Condition.broadcast job.jcond)

(* A job leaving the system: free its inflight slot and quota and
   retire its WAL record.  Idempotent (the scheduler's catch-all may
   run it after [execute] already has).  Callers retire {e before} the
   terminal broadcast, so a client that reads [Finished] and instantly
   resubmits can never subscribe to a job that has already spoken its
   last event - it hits the cache or starts fresh.  [finish] (waking
   the connection handlers parked on [jcond]) is a separate step,
   called {e after} the terminal event went out. *)
let retire t job =
  let fp = job.compiled.Campaign.fingerprint in
  let fresh =
    Mutex.protect t.qlock (fun () ->
        if job.retired then false
        else begin
          job.retired <- true;
          (match Hashtbl.find_opt t.inflight fp with
          | Some j when j == job -> Hashtbl.remove t.inflight fp
          | Some _ | None -> ());
          (match Hashtbl.find_opt t.quota job.client with
          | Some used when used > 1 ->
            Hashtbl.replace t.quota job.client (used - 1)
          | Some _ -> Hashtbl.remove t.quota job.client
          | None -> ());
          true
        end)
  in
  if fresh then Queue.mark_done t.wal fp

(* --- Job execution ----------------------------------------------------- *)

let journal_path t fp = Filename.concat t.cfg.work_dir (fp ^ ".journal")

(* The journal is the persistence layer: a daemon killed mid-campaign
   resumes its own partial work on resubmission.  A corrupt or
   mismatched journal is discarded, not fatal. *)
let open_journal t fp faults =
  let path = journal_path t fp in
  match Journal.start ~path ~fingerprint:fp ~resume:true ~faults with
  | Ok j -> Ok j
  | Error _ -> begin
    (try Sys.remove path with Sys_error _ -> ());
    Journal.start ~path ~fingerprint:fp ~resume:false ~faults
  end

let progress_of job total =
  (* Stream at most ~50 progress events per job, always including the
     final one. *)
  let step = max 1 (total / 50) in
  fun completed t ->
    if completed = t || completed mod step = 0 then
      broadcast job (Campaign.Progress { completed; total = t })

let run_in_process t job =
  let compiled = job.compiled in
  let fp = compiled.Campaign.fingerprint in
  let faults = Array.of_list compiled.Campaign.faults in
  let total = Array.length faults in
  match open_journal t fp faults with
  | Error msg -> Error ("journal: " ^ msg)
  | Ok journal ->
    Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
    (match
       Campaign.run_local ~progress:(progress_of job total) ~journal compiled
     with
    | exception Sim.Engine.Sim_error (err, detail) ->
      Error
        (Printf.sprintf "nominal simulation failed (%s): %s"
           (Sim.Engine.error_to_string err) detail)
    | { Campaign.result; _ } ->
      (* Count only what actually simulated this life: restored results
         were a previous life's work, Cancelled stand-ins never ran. *)
      let completed =
        List.length
          (List.filter
             (fun (r : Anafault.Outcome.fault_result) ->
               match r.Anafault.Outcome.outcome with
               | Anafault.Outcome.Sim_failed (Anafault.Outcome.Cancelled _) ->
                 false
               | _ -> true)
             result.Campaign.results)
      in
      let simulated = max 0 (completed - Journal.restored_count journal) in
      Mutex.protect t.slock (fun () ->
          t.faults_simulated <- t.faults_simulated + simulated);
      Ok (result, `Full))

let status_error exe = function
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED n -> Error (Printf.sprintf "%s exited with %d" exe n)
  | Unix.WSIGNALED n -> Error (Printf.sprintf "%s killed by signal %d" exe n)
  | Unix.WSTOPPED n -> Error (Printf.sprintf "%s stopped by signal %d" exe n)

(* Farm the job to [shards] anafault --shard child processes, each
   journalling its slice under whole-campaign indices, then merge the
   shard journals into the campaign journal and rebuild the result from
   it - no waveform ever crosses a process boundary, only journal
   lines.

   Each child is supervised: one that dies is respawned with [--resume]
   (salvaging its own partial journal) up to [shard_retries] extra
   lives.  A shard that stays dead degrades the campaign instead of
   failing it - its journalled results are salvaged by a lenient merge
   and the unsalvaged faults surface as typed [Crashed] failures. *)
let run_sharded t job exe shards =
  let compiled = job.compiled in
  let fp = compiled.Campaign.fingerprint in
  let faults = Array.of_list compiled.Campaign.faults in
  let spec_path = Filename.concat t.cfg.work_dir (fp ^ ".spec.json") in
  let oc = open_out spec_path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      Protocol.send oc (Campaign.spec_to_json job.spec));
  broadcast job (Campaign.Sharded { shards });
  let shard_paths =
    List.init shards (fun i ->
        Filename.concat t.cfg.work_dir (Printf.sprintf "%s.shard%d.journal" fp i))
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close devnull with _ -> ())
  @@ fun () ->
  let spawn i shard_journal ~resume =
    Obs.Failpoint.hit "shard.spawn";
    let argv =
      [ exe; "--spec"; spec_path; "--shard"; Campaign.shard_to_string (i, shards);
        "--journal"; shard_journal ]
      @ (if resume then [ "--resume" ] else [])
    in
    Unix.create_process exe (Array.of_list argv) devnull devnull devnull
  in
  let journals = Array.of_list shard_paths in
  let pids = Array.of_list (List.mapi (fun i p -> spawn i p ~resume:false) shard_paths) in
  Mutex.protect t.slock (fun () -> t.shard_runs <- t.shard_runs + shards);
  (* Supervise the children by polling (WNOHANG), never by a blocking
     wait: a cancel must be able to interrupt the supervision within a
     tick.  A child that dies uncancelled is respawned with [--resume]
     up to its retry budget; on cancellation every live child gets
     SIGTERM (a drain request - the worker cancels its own token and
     exits cleanly), then SIGKILL for any straggler once the grace
     period runs out. *)
  let attempts = Array.make shards 1 in
  let statuses = Array.make shards (Ok ()) in
  let live = Array.make shards true in
  let any_live () = Array.exists Fun.id live in
  let kill_all signal =
    Array.iteri
      (fun i pid ->
        if live.(i) then
          try Unix.kill pid signal with Unix.Unix_error _ -> ())
      pids
  in
  let reap_all ~blocking =
    Array.iteri
      (fun i pid ->
        if live.(i) then
          match
            Unix.waitpid (if blocking then [] else [ Unix.WNOHANG ]) pid
          with
          | 0, _ -> ()
          | _, status ->
            live.(i) <- false;
            statuses.(i) <- status_error exe status
          | exception Unix.Unix_error _ -> live.(i) <- false)
      pids
  in
  let escalate () =
    Obs.Failpoint.hit "cancel.sigterm";
    log t "job %s: stopping %d shard children" fp shards;
    kill_all Sys.sigterm;
    let deadline = Unix.gettimeofday () +. t.cfg.grace in
    let rec drain () =
      reap_all ~blocking:false;
      if any_live () then begin
        if Unix.gettimeofday () > deadline then begin
          kill_all Sys.sigkill;
          reap_all ~blocking:true
        end
        else begin
          Thread.delay 0.02;
          drain ()
        end
      end
    in
    drain ()
  in
  let rec supervise () =
    if Cancel.cancelled job.token then escalate ()
    else begin
      Array.iteri
        (fun i pid ->
          if live.(i) then
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | exception Unix.Unix_error _ -> live.(i) <- false
            | _, status -> begin
              match status_error exe status with
              | Ok () -> live.(i) <- false
              | Error msg ->
                if attempts.(i) <= t.cfg.shard_retries then begin
                  log t "job %s: shard %d died (%s), restart %d/%d" fp i msg
                    attempts.(i) t.cfg.shard_retries;
                  broadcast job
                    (Campaign.Shard_restarted
                       { shard = i; attempt = attempts.(i) });
                  Mutex.protect t.slock (fun () ->
                      t.shard_restarts <- t.shard_restarts + 1;
                      t.shard_runs <- t.shard_runs + 1);
                  Obs.count t.cfg.obs "daemon.shard_restarts" 1
                    ~attrs:[ ("job", Obs.Str fp); ("shard", Obs.Int i) ];
                  match spawn i journals.(i) ~resume:true with
                  | pid' ->
                    pids.(i) <- pid';
                    attempts.(i) <- attempts.(i) + 1
                  | exception _ ->
                    live.(i) <- false;
                    statuses.(i) <- Error msg
                end
                else begin
                  live.(i) <- false;
                  statuses.(i) <- Error msg
                end
            end)
        pids;
      if any_live () then begin
        Thread.delay 0.05;
        supervise ()
      end
    end
  in
  supervise ();
  let lost_shards =
    Array.to_list statuses
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match s with Error msg -> Some (i, msg) | Ok () -> None)
  in
  let cancelled_reason = Cancel.get job.token in
  if cancelled_reason <> None then Obs.Failpoint.hit "cancel.salvage";
  (* A cancelled campaign merges leniently even if every child drained
     cleanly: the shard journals are partial by design. *)
  let lenient = lost_shards <> [] || cancelled_reason <> None in
  match
    Journal.merge ~lenient ~out:(journal_path t fp) ~fingerprint:fp ~faults
      shard_paths
  with
  | Error msg -> Error ("journal merge: " ^ msg)
  | Ok merged -> begin
    Mutex.protect t.slock (fun () ->
        t.faults_simulated <- t.faults_simulated + merged);
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) shard_paths;
    match
      Journal.start ~path:(journal_path t fp) ~fingerprint:fp ~resume:true
        ~faults
    with
    | Error msg -> Error ("merged journal: " ^ msg)
    | Ok journal -> begin
      Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
      match cancelled_reason with
      | Some reason ->
        (* Salvage: everything journalled before the stop is kept;
           every unsimulated fault carries a typed Cancelled stand-in
           (never cached - execute broadcasts Cancelled, not
           Finished). *)
        let detail = Cancel.reason_to_string reason in
        let fill _idx fault = Campaign.cancelled_result ~detail fault in
        Result.map
          (fun r -> (r, `Degraded))
          (Campaign.result_of_journal ~fill compiled journal)
      | None ->
      if not lenient then
        Result.map (fun r -> (r, `Full)) (Campaign.result_of_journal compiled journal)
      else begin
        (* Tell each waiting client what a dead shard cost before the
           degraded result arrives. *)
        let total = Array.length faults in
        List.iter
          (fun (i, _msg) ->
            let owned = Campaign.shard_indices ~shard:(i, shards) ~total in
            let salvaged =
              List.length
                (List.filter
                   (fun idx -> Journal.find journal idx faults.(idx) <> None)
                   owned)
            in
            let lost = List.length owned - salvaged in
            log t "job %s: shard %d lost for good (%d salvaged, %d lost)" fp i
              salvaged lost;
            broadcast job (Campaign.Shard_lost { shard = i; salvaged; lost }))
          lost_shards;
        let fill idx fault =
          let shard = idx mod shards in
          let detail =
            match List.assoc_opt shard lost_shards with
            | Some msg -> Printf.sprintf "shard %d lost: %s" shard msg
            | None -> Printf.sprintf "shard %d lost" shard
          in
          Campaign.lost_result ~detail fault
        in
        Result.map
          (fun r -> (r, `Degraded))
          (Campaign.result_of_journal ~fill compiled journal)
      end
    end
  end

(* How many results a cancelled campaign salvaged: everything in the
   result that is not a Cancelled stand-in reached the journal before
   the stop, so an identical resubmission will skip it. *)
let salvaged_of (result : Campaign.result) =
  List.length
    (List.filter
       (fun (r : Anafault.Outcome.fault_result) ->
         match r.Anafault.Outcome.outcome with
         | Anafault.Outcome.Sim_failed (Anafault.Outcome.Cancelled _) -> false
         | _ -> true)
       result.Campaign.results)

(* The cancelled terminal: never cached, retired before the broadcast
   (like every terminal), so the identical resubmission a client sends
   next misses the cache and resumes the campaign journal. *)
let conclude_cancelled t job reason ~salvaged =
  let fp = job.compiled.Campaign.fingerprint in
  let reason = Cancel.reason_to_string reason in
  Mutex.protect t.slock (fun () -> t.cancelled <- t.cancelled + 1);
  Obs.count t.cfg.obs "daemon.jobs_cancelled" 1 ~attrs:[ ("job", Obs.Str fp) ];
  retire t job;
  broadcast job (Campaign.Cancelled { fingerprint = fp; reason; salvaged });
  log t "job %s: cancelled (%s, %d salvaged)" fp reason salvaged

let execute t job =
  let fp = job.compiled.Campaign.fingerprint in
  let total = List.length job.compiled.Campaign.faults in
  log t "job %s: %d faults" fp total;
  Obs.span t.cfg.obs "daemon.job"
    ~attrs:[ ("job", Obs.Str fp); ("faults", Obs.Int total) ]
  @@ fun _ ->
  Obs.Failpoint.hit "job.run";
  (match Cancel.get job.token with
  | Some reason ->
    (* Cancelled while still queued: nothing ran this life, so nothing
       new to salvage (an earlier life's journal survives untouched). *)
    conclude_cancelled t job reason ~salvaged:0
  | None ->
    let outcome =
      match (t.cfg.worker_exe, t.cfg.shards) with
      | Some exe, shards when shards > 1 && total >= shards ->
        run_sharded t job exe shards
      | _ -> run_in_process t job
    in
    (match (Cancel.get job.token, outcome) with
    | Some reason, Ok (result, _) ->
      conclude_cancelled t job reason ~salvaged:(salvaged_of result)
    | Some reason, Error _ -> conclude_cancelled t job reason ~salvaged:0
    | None, Ok (result, completeness) ->
      (* A degraded result (dead shard, typed Crashed stand-ins) must not
         be cached: a resubmission deserves a fresh attempt at the lost
         faults, not the hole served back forever. *)
      if completeness = `Full then
        Cache.store t.cache fp (Campaign.result_to_json result);
      Obs.count t.cfg.obs "daemon.jobs_done" 1 ~attrs:[ ("job", Obs.Str fp) ];
      (* Retire before the terminal broadcast: a subscriber that reads
         [Finished] and instantly resubmits must find the slot free (and
         the cache stored above), never a job with no more to say. *)
      retire t job;
      broadcast job (Campaign.Finished result);
      log t "job %s: done (%d results)" fp result.Campaign.total
    | None, Error message ->
      Obs.count t.cfg.obs "daemon.jobs_failed" 1 ~attrs:[ ("job", Obs.Str fp) ];
      retire t job;
      broadcast job (Campaign.Failed { message });
      log t "job %s: failed: %s" fp message));
  finish job

let scheduler t =
  let rec loop () =
    let next =
      Mutex.protect t.qlock @@ fun () ->
      let rec wait () =
        if not (Stdlib.Queue.is_empty t.queue) then
          Some (Stdlib.Queue.pop t.queue)
        else if t.stopping then None
        else begin
          Condition.wait t.qcond t.qlock;
          wait ()
        end
      in
      wait ()
    in
    match next with
    | None -> ()
    | Some job ->
      (try execute t job
       with e ->
         retire t job;
         broadcast job
           (Campaign.Failed { message = "daemon: " ^ Printexc.to_string e });
         finish job);
      loop ()
  in
  loop ()

(* --- Connection handling ----------------------------------------------- *)

let stats_json t =
  Mutex.protect t.slock @@ fun () ->
  Protocol.stats_to_json ~jobs:t.jobs ~cache_hits:t.cache_hits
    ~coalesced:t.coalesced ~faults_simulated:t.faults_simulated
    ~shard_runs:t.shard_runs ~rejected:t.rejected ~replayed:t.replayed
    ~shard_restarts:t.shard_restarts ~evictions:(Cache.evictions t.cache)
    ~corrupt:(Cache.corrupt t.cache) ~cancelled:t.cancelled
    ~extracts:t.extracts ~extract_hits:t.extract_hits

let send_event sub ev =
  Mutex.protect sub.swrite (fun () ->
      Protocol.send sub.sout (Campaign.event_to_json ev))

(* The effective wall-clock budget of a job: the tighter of the
   client's deadline_s and the server's --job-deadline cap. *)
let effective_deadline t deadline_s =
  match (deadline_s, t.cfg.job_deadline) with
  | None, None -> None
  | (Some _ as d), None | None, (Some _ as d) -> d
  | Some a, Some b -> Some (Float.min a b)

(* A cancel request: fire the token and tombstone the WAL record right
   away, so a daemon killed -9 between acknowledging the cancel and the
   job actually stopping does not resurrect the job at its next start.
   [retire]'s own [mark_done] later is a no-op on the dead entry. *)
let handle_cancel t fingerprint =
  match
    Mutex.protect t.qlock (fun () -> Hashtbl.find_opt t.inflight fingerprint)
  with
  | None -> false
  | Some job ->
    Cancel.cancel job.token Cancel.User_cancel;
    Queue.mark_done t.wal fingerprint;
    (* Fires once the tombstone is durable: a crash here must NOT
       resurrect the job at the next start. *)
    Obs.Failpoint.hit "cancel.tombstone";
    log t "job %s: cancel requested" fingerprint;
    true

(* Deadline and orphan enforcement.  The tick only reads job state and
   fires cancel tokens; the scheduler, the engine's Newton loop and the
   shard supervisor all notice the token at their next poll.
   Orphanhood is observed through broadcast failures (a dead subscriber
   is dropped by the first write that fails), so a vanished client is
   detected once events flow; WAL-replayed jobs have no subscribers by
   design and are exempt.  A job whose campaign was submitted by
   several coalesced clients stays alive while any of them remains. *)
let monitor t =
  let rec loop () =
    if not (Mutex.protect t.qlock (fun () -> t.stopping)) then begin
      let now = Unix.gettimeofday () in
      let jobs =
        Mutex.protect t.qlock (fun () ->
            Hashtbl.fold (fun _ j acc -> j :: acc) t.inflight [])
      in
      List.iter
        (fun job ->
          (match job.deadline_at with
          | Some at when now > at ->
            Cancel.cancel job.token (Cancel.Deadline job.deadline_total)
          | Some _ | None -> ());
          if not job.replayed then begin
            let orphaned =
              Mutex.protect job.jlock (fun () ->
                  job.subs = [] && not job.finished)
            in
            if not orphaned then job.orphaned_at <- None
            else begin
              match job.orphaned_at with
              | None -> job.orphaned_at <- Some now
              | Some since when now -. since > t.cfg.grace ->
                Cancel.cancel job.token Cancel.Client_gone
              | Some _ -> ()
            end
          end)
        jobs;
      Thread.delay 0.1;
      loop ()
    end
  in
  loop ()

(* What admission decided; computed under qlock, answered outside it. *)
type admitted =
  | Stopping
  | Turned_away of Protocol.reject_reason * string
  | Admitted of job (* subscribed: wait for its events *)

let handle_submit t sub spec client deadline_s =
  (* Compile once to learn the fingerprint, then re-scope the config's
     telemetry sink so every event of this job carries it. *)
  match Campaign.compile ~obs:t.cfg.obs spec with
  | Error message -> send_event sub (Campaign.Failed { message })
  | Ok compiled ->
    let fp = compiled.Campaign.fingerprint in
    let obs = Obs.tagged t.cfg.obs [ ("job", Obs.Str fp) ] in
    let compiled =
      {
        compiled with
        Campaign.config = { compiled.Campaign.config with Anafault.Simulate.obs };
      }
    in
    let faults = Array.of_list compiled.Campaign.faults in
    let total = Array.length faults in
    let cached =
      match Cache.find t.cache fp with
      | None -> None
      | Some json -> begin
        match Campaign.result_of_json ~faults json with
        | Ok result -> Some { result with Campaign.cached = true }
        | Error _ -> None (* stale or torn entry: treat as a miss *)
      end
    in
    match cached with
    | Some result ->
      Mutex.protect t.slock (fun () -> t.cache_hits <- t.cache_hits + 1);
      Obs.count t.cfg.obs "daemon.cache_hit" 1 ~attrs:[ ("job", Obs.Str fp) ];
      log t "job %s: cache hit" fp;
      send_event sub (Campaign.Accepted { fingerprint = fp; total });
      send_event sub (Campaign.Cache_hit { fingerprint = fp });
      send_event sub (Campaign.Finished result)
    | None -> begin
      let bucket = Option.value client ~default:"" in
      (* Hold this connection's write lock across admission so the
         scheduler cannot slip a job event out before our Accepted
         line - the first thing a submitter reads is its verdict. *)
      let admitted =
        Mutex.protect sub.swrite @@ fun () ->
        let verdict =
          Mutex.protect t.qlock @@ fun () ->
          if t.stopping then Stopping
          else begin
            match Hashtbl.find_opt t.inflight fp with
            | Some job ->
              (* Same campaign already queued or running: subscribe. *)
              Mutex.protect job.jlock (fun () -> job.subs <- sub :: job.subs);
              Mutex.protect t.slock (fun () -> t.coalesced <- t.coalesced + 1);
              Obs.count t.cfg.obs "daemon.coalesced" 1
                ~attrs:[ ("job", Obs.Str fp) ];
              Admitted job
            | None ->
              let depth = Hashtbl.length t.inflight in
              let used =
                Option.value (Hashtbl.find_opt t.quota bucket) ~default:0
              in
              if t.cfg.queue_limit > 0 && depth >= t.cfg.queue_limit then
                Turned_away
                  ( Protocol.Queue_full,
                    Printf.sprintf "queue limit %d reached, try again later"
                      t.cfg.queue_limit )
              else if t.cfg.client_quota > 0 && used >= t.cfg.client_quota
              then
                Turned_away
                  ( Protocol.Quota_exceeded,
                    Printf.sprintf "client quota %d reached" t.cfg.client_quota
                  )
              else begin
                match
                  Queue.push t.wal { Queue.fingerprint = fp; client = bucket; spec }
                with
                | Error message ->
                  (* The WAL is the acceptance contract; a submission we
                     cannot make durable is not accepted. *)
                  Turned_away (Protocol.Queue_full, "queue journal: " ^ message)
                | Ok () ->
                  let token = Cancel.create () in
                  let budget = effective_deadline t deadline_s in
                  let job =
                    {
                      spec;
                      compiled = Campaign.with_cancel compiled token;
                      client = bucket;
                      token;
                      deadline_at =
                        Option.map (fun d -> Unix.gettimeofday () +. d) budget;
                      deadline_total = Option.value budget ~default:0.0;
                      replayed = false;
                      jlock = Mutex.create ();
                      jcond = Condition.create ();
                      subs = [ sub ];
                      orphaned_at = None;
                      finished = false;
                      retired = false;
                    }
                  in
                  Hashtbl.replace t.inflight fp job;
                  Hashtbl.replace t.quota bucket (used + 1);
                  Stdlib.Queue.push job t.queue;
                  Mutex.protect t.slock (fun () -> t.jobs <- t.jobs + 1);
                  Condition.signal t.qcond;
                  Admitted job
              end
          end
        in
        (match verdict with
        | Stopping ->
          Protocol.send sub.sout
            (Campaign.event_to_json
               (Campaign.Failed { message = "daemon is shutting down" }))
        | Turned_away (reason, message) ->
          Mutex.protect t.slock (fun () -> t.rejected <- t.rejected + 1);
          Obs.count t.cfg.obs "daemon.rejected" 1
            ~attrs:
              [
                ("job", Obs.Str fp);
                ("reason", Obs.Str (Protocol.reject_reason_to_string reason));
              ];
          log t "job %s: rejected (%s)" fp
            (Protocol.reject_reason_to_string reason);
          Protocol.send sub.sout (Protocol.rejected_to_json ~reason ~message)
        | Admitted _ ->
          Protocol.send sub.sout
            (Campaign.event_to_json
               (Campaign.Accepted { fingerprint = fp; total })));
        verdict
      in
      match admitted with
      | Stopping | Turned_away _ -> ()
      | Admitted job ->
        (* Hold the connection until the job finished; the scheduler
           streams the events. *)
        Mutex.protect job.jlock (fun () ->
            while not job.finished do
              Condition.wait job.jcond job.jlock
            done)
    end

(* An Extract request: LIFT the inline layout through the staged
   pipeline and answer with one "extracted" object.  The fault list is
   content-addressed in the shared result cache under a "lift-"
   fingerprint, so a repeated layout never re-extracts; the pipeline's
   own stage artefacts persist under work_dir/lift-stages, so an
   {e edited} layout re-extracts only its dirty tiles.  Extraction is
   synchronous on the handler thread - pure CPU over bytes the client
   already shipped, no WAL or shards involved.  With [simulate], the
   extracted list replaces the embedded campaign spec's faults field
   and the job flows through the normal submit admission on the same
   connection: extract-then-simulate in one round trip. *)
let handle_extract t sub lift simulate client deadline_s =
  Mutex.protect t.slock (fun () -> t.extracts <- t.extracts + 1);
  let fp = Protocol.lift_fingerprint lift in
  let cached =
    match Cache.find t.cache fp with
    | None -> None
    | Some json -> begin
      match Protocol.extracted_of_json json with
      | Ok (Some e) -> Some { e with Protocol.ex_cached = true }
      | Ok None | Error _ -> None (* stale or torn entry: treat as a miss *)
    end
  in
  let answer =
    match cached with
    | Some e ->
      Mutex.protect t.slock (fun () -> t.extract_hits <- t.extract_hits + 1);
      Obs.count t.cfg.obs "daemon.extract_hit" 1 ~attrs:[ ("job", Obs.Str fp) ];
      log t "extract %s: cache hit" fp;
      Ok e
    | None -> begin
      let tech = Layout.Tech.default in
      match Layout.Cif.of_string ~tech lift.Protocol.layout with
      | exception Layout.Cif.Parse_error (line, msg) ->
        Error (Printf.sprintf "layout line %d: %s" line msg)
      | exception e -> Error (Printexc.to_string e)
      | mask -> begin
        let pdf =
          if lift.Protocol.uniform_pdf then
            Some
              (Geom.Critical_area.Uniform
                 {
                   x_min = float_of_int tech.Layout.Tech.defect_x_min;
                   x_max = float_of_int tech.Layout.Tech.defect_x_max;
                 })
          else None
        in
        let options =
          {
            Defects.Lift.pdf;
            p_min = lift.Protocol.p_min;
            merge_equivalent = lift.Protocol.merge_equivalent;
          }
        in
        let config =
          {
            Defects.Pipeline.tile_nm = lift.Protocol.tile_nm;
            domains = t.cfg.lift_domains;
            cache_dir = Some (Filename.concat t.cfg.work_dir "lift-stages");
            obs = Obs.tagged t.cfg.obs [ ("job", Obs.Str fp) ];
            options;
          }
        in
        match Defects.Pipeline.run ~config mask with
        | exception e -> Error (Printexc.to_string e)
        | { Defects.Pipeline.result; _ } ->
          let classes = result.Defects.Lift.classes in
          let e =
            {
              Protocol.ex_fingerprint = fp;
              ex_cached = false;
              ex_faults =
                Faults.Fault_list.to_string (Defects.Lift.ranked result);
              ex_sites = result.Defects.Lift.sites_considered;
              ex_bridging = classes.Defects.Lift.bridging;
              ex_line_opens = classes.Defects.Lift.line_opens;
              ex_contact_opens = classes.Defects.Lift.contact_opens;
              ex_stuck_opens = classes.Defects.Lift.stuck_opens;
            }
          in
          Cache.store t.cache fp (Protocol.extracted_to_json e);
          log t "extract %s: %d faults" fp
            (Defects.Lift.total classes);
          Ok e
      end
    end
  in
  match answer with
  | Error message ->
    log t "extract %s: failed (%s)" fp message;
    send_event sub (Campaign.Failed { message = "extract: " ^ message })
  | Ok e -> begin
    Mutex.protect sub.swrite (fun () ->
        Protocol.send sub.sout (Protocol.extracted_to_json e));
    match simulate with
    | None -> ()
    | Some spec ->
      handle_submit t sub
        { spec with Campaign.faults = e.Protocol.ex_faults }
        client deadline_s
  end

let request_shutdown t =
  Mutex.protect t.qlock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcond);
  (* Wake the accept loop: shutting the listening socket down unblocks
     a pending accept on Linux; the throwaway connection covers
     platforms where it does not (closing the fd from another thread
     would NOT interrupt a blocked accept). *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let handle_client t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sub = { sout = oc; swrite = Mutex.create () } in
  let rec loop () =
    match Protocol.recv ic with
    | Ok None -> ()
    | Error message ->
      (* Malformed or oversized line: answer with a typed failure and
         keep serving - a confused client must not take the session
         (let alone the daemon) down. *)
      send_event sub (Campaign.Failed { message });
      loop ()
    | Ok (Some json) -> begin
      match Protocol.request_of_json json with
      | Error message ->
        send_event sub (Campaign.Failed { message });
        loop ()
      | Ok (Protocol.Submit { spec; client; deadline_s }) ->
        handle_submit t sub spec client deadline_s;
        loop ()
      | Ok (Protocol.Extract { lift; simulate; client; deadline_s }) ->
        handle_extract t sub lift simulate client deadline_s;
        loop ()
      | Ok (Protocol.Cancel { fingerprint }) ->
        let cancelled = handle_cancel t fingerprint in
        Mutex.protect sub.swrite (fun () ->
            Protocol.send oc
              (J.Obj [ ("ok", J.Bool true); ("cancelled", J.Bool cancelled) ]));
        loop ()
      | Ok Protocol.Stats ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc (stats_json t));
        loop ()
      | Ok Protocol.Ping ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc Protocol.ok);
        loop ()
      | Ok Protocol.Shutdown ->
        Mutex.protect sub.swrite (fun () -> Protocol.send oc Protocol.ok);
        log t "shutdown requested";
        request_shutdown t
    end
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- Lifecycle --------------------------------------------------------- *)

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ " exists and is not a directory")
  else begin
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error (dir ^ ": " ^ Unix.error_message err)
  end

let ( let* ) = Result.bind

(* Turn the WAL's surviving entries back into queued jobs.  An entry
   that no longer compiles (or whose fingerprint drifted - a spec codec
   change between daemon versions) is retired as done: it was never
   acknowledged complete, but there is nothing left to run for it. *)
let replay_wal t entries =
  List.iter
    (fun (e : Queue.entry) ->
      match Campaign.compile ~obs:t.cfg.obs e.Queue.spec with
      | Error msg ->
        log t "replay %s: dropped (%s)" e.Queue.fingerprint msg;
        Queue.mark_done t.wal e.Queue.fingerprint
      | Ok compiled ->
        let fp = compiled.Campaign.fingerprint in
        if not (String.equal fp e.Queue.fingerprint) then begin
          log t "replay %s: fingerprint drifted to %s, dropped"
            e.Queue.fingerprint fp;
          Queue.mark_done t.wal e.Queue.fingerprint
        end
        else begin
          let obs = Obs.tagged t.cfg.obs [ ("job", Obs.Str fp) ] in
          let compiled =
            {
              compiled with
              Campaign.config =
                { compiled.Campaign.config with Anafault.Simulate.obs };
            }
          in
          (* The WAL does not persist a submit's deadline_s; a replayed
             job is capped by the server's own --job-deadline only. *)
          let token = Cancel.create () in
          let budget = t.cfg.job_deadline in
          let job =
            {
              spec = e.Queue.spec;
              compiled = Campaign.with_cancel compiled token;
              client = e.Queue.client;
              token;
              deadline_at =
                Option.map (fun d -> Unix.gettimeofday () +. d) budget;
              deadline_total = Option.value budget ~default:0.0;
              replayed = true;
              jlock = Mutex.create ();
              jcond = Condition.create ();
              subs = [];
              orphaned_at = None;
              finished = false;
              retired = false;
            }
          in
          Mutex.protect t.qlock (fun () ->
              Hashtbl.replace t.inflight fp job;
              let used =
                Option.value (Hashtbl.find_opt t.quota job.client) ~default:0
              in
              Hashtbl.replace t.quota job.client (used + 1);
              Stdlib.Queue.push job t.queue);
          Mutex.protect t.slock (fun () ->
              t.jobs <- t.jobs + 1;
              t.replayed <- t.replayed + 1);
          Obs.count t.cfg.obs "daemon.replayed" 1 ~attrs:[ ("job", Obs.Str fp) ];
          log t "replay %s: re-enqueued (%d faults)" fp
            (List.length compiled.Campaign.faults)
        end)
    entries

let run cfg =
  let* () = ensure_dir cfg.work_dir in
  let cache_dir =
    Option.value cfg.cache_dir ~default:(Filename.concat cfg.work_dir "cache")
  in
  let* cache =
    Cache.create ~budget_bytes:cfg.cache_budget ~obs:cfg.obs ~dir:cache_dir ()
  in
  let* wal, pending = Queue.open_ ~path:(Filename.concat cfg.work_dir "queue.wal") in
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path) with
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close listen_fd;
    Queue.close wal;
    Error (cfg.socket_path ^ ": " ^ Unix.error_message err)
  | () ->
    Unix.listen listen_fd 16;
    let previous_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let t =
      {
        cfg;
        cache;
        wal;
        listen_fd;
        queue = Stdlib.Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        inflight = Hashtbl.create 8;
        quota = Hashtbl.create 8;
        stopping = false;
        slock = Mutex.create ();
        jobs = 0;
        cache_hits = 0;
        coalesced = 0;
        faults_simulated = 0;
        shard_runs = 0;
        rejected = 0;
        replayed = 0;
        shard_restarts = 0;
        cancelled = 0;
        extracts = 0;
        extract_hits = 0;
      }
    in
    log t "listening on %s (cache %s, shards %d)" cfg.socket_path cache_dir
      cfg.shards;
    (* Re-enqueue what a previous life left queued or running, before
       any client connects: replayed work and fresh work share one
       FIFO. *)
    replay_wal t pending;
    let scheduler_thread = Thread.create scheduler t in
    let monitor_thread = Thread.create monitor t in
    let handlers = ref [] in
    (* The accept loop must only end on a requested shutdown: any
       transient errno - a signal (EINTR), a client that gave up mid
       handshake (ECONNABORTED), descriptor exhaustion while handlers
       are still draining (EMFILE/ENFILE) - is retried, the latter
       after a short breath so connections can close. *)
    let rec accept_loop () =
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        log t "accept: out of file descriptors, backing off";
        Thread.delay 0.05;
        accept_loop ()
      | exception Unix.Unix_error (err, _, _) ->
        if Mutex.protect t.qlock (fun () -> t.stopping) then () (* shut down *)
        else begin
          log t "accept: %s, retrying" (Unix.error_message err);
          Thread.delay 0.05;
          accept_loop ()
        end
      | fd, _ ->
        if Mutex.protect t.qlock (fun () -> t.stopping) then
          (* The wake-up connection of request_shutdown, or a client
             racing the shutdown: refuse it. *)
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          handlers := Thread.create (handle_client t) fd :: !handlers;
          accept_loop ()
        end
    in
    accept_loop ();
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Drain: no new connections arrive; finish what is queued. *)
    List.iter Thread.join !handlers;
    Mutex.protect t.qlock (fun () ->
        t.stopping <- true;
        Condition.broadcast t.qcond);
    Thread.join scheduler_thread;
    Thread.join monitor_thread;
    Queue.close t.wal;
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    Option.iter (Sys.set_signal Sys.sigpipe) previous_sigpipe;
    log t "stopped";
    Ok ()
