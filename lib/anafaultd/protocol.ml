(* Newline-delimited JSON framing for the campaign service.  The
   payload vocabulary (specs, events, results) lives in
   Anafault.Campaign; this module only names the request envelope and
   moves lines. *)

module J = Obs.Json

let ( let* ) = Result.bind

type lift_spec = {
  layout : string;
  p_min : float;
  uniform_pdf : bool;
  merge_equivalent : bool;
  tile_nm : int;
}

let lift_spec_to_json s =
  J.Obj
    [
      ("layout", J.String s.layout);
      ("p_min", J.Float s.p_min);
      ("uniform_pdf", J.Bool s.uniform_pdf);
      ("merge_equivalent", J.Bool s.merge_equivalent);
      ("tile_nm", J.Int s.tile_nm);
    ]

let lift_spec_of_json json =
  let* fields =
    match json with
    | J.Obj f -> Ok f
    | _ -> Error "lift spec: want a JSON object"
  in
  let* layout =
    match List.assoc_opt "layout" fields with
    | Some (J.String s) -> Ok s
    | Some _ | None -> Error "lift spec: want a layout string"
  in
  let float_field name default =
    match List.assoc_opt name fields with
    | None -> Ok default
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | Some _ -> Error (Printf.sprintf "lift spec: %s must be a number" name)
  in
  let bool_field name default =
    match List.assoc_opt name fields with
    | None -> Ok default
    | Some (J.Bool b) -> Ok b
    | Some _ -> Error (Printf.sprintf "lift spec: %s must be a boolean" name)
  in
  let* p_min = float_field "p_min" 0.0 in
  let* uniform_pdf = bool_field "uniform_pdf" false in
  let* merge_equivalent = bool_field "merge_equivalent" true in
  let* tile_nm =
    match List.assoc_opt "tile_nm" fields with
    | None -> Ok 0
    | Some (J.Int i) when i >= 0 -> Ok i
    | Some _ -> Error "lift spec: tile_nm must be a non-negative integer"
  in
  Ok { layout; p_min; uniform_pdf; merge_equivalent; tile_nm }

(* The content address of an extraction.  tile_nm is deliberately NOT
   part of the digest: tiling changes how the answer is computed, never
   what it is (the pipeline is byte-identical to the serial path), so a
   client retiling the same layout still hits the cache. *)
let lift_fingerprint s =
  let canonical =
    Printf.sprintf "lift|%h|%b|%b|%s" s.p_min s.uniform_pdf s.merge_equivalent
      s.layout
  in
  "lift-" ^ Digest.to_hex (Digest.string canonical)

type request =
  | Submit of {
      spec : Anafault.Campaign.spec;
      client : string option;
      deadline_s : float option;
          (* wall-clock budget for the whole job, measured from
             acceptance; the server may cap it with --job-deadline *)
    }
  | Extract of {
      lift : lift_spec;
      simulate : Anafault.Campaign.spec option;
      client : string option;
      deadline_s : float option;
    }
  | Cancel of { fingerprint : string }
  | Stats
  | Ping
  | Shutdown

let request_to_json = function
  | Submit { spec; client; deadline_s } ->
    J.Obj
      (("cmd", J.String "submit")
       :: ("spec", Anafault.Campaign.spec_to_json spec)
       ::
       ((match client with
        | None -> []
        | Some c -> [ ("client", J.String c) ])
       @
       match deadline_s with
       | None -> []
       | Some d -> [ ("deadline_s", J.Float d) ]))
  | Extract { lift; simulate; client; deadline_s } ->
    J.Obj
      (("cmd", J.String "extract")
       :: ("lift", lift_spec_to_json lift)
       ::
       ((match simulate with
        | None -> []
        | Some spec -> [ ("simulate", Anafault.Campaign.spec_to_json spec) ])
       @ (match client with
         | None -> []
         | Some c -> [ ("client", J.String c) ])
       @
       match deadline_s with
       | None -> []
       | Some d -> [ ("deadline_s", J.Float d) ]))
  | Cancel { fingerprint } ->
    J.Obj [ ("cmd", J.String "cancel"); ("fingerprint", J.String fingerprint) ]
  | Stats -> J.Obj [ ("cmd", J.String "stats") ]
  | Ping -> J.Obj [ ("cmd", J.String "ping") ]
  | Shutdown -> J.Obj [ ("cmd", J.String "shutdown") ]

let request_of_json json =
  let* fields =
    match json with J.Obj f -> Ok f | _ -> Error "request: want a JSON object"
  in
  let* cmd =
    match List.assoc_opt "cmd" fields with
    | Some (J.String s) -> Ok s
    | Some _ | None -> Error "request: want a cmd string"
  in
  let client_of cmd =
    match List.assoc_opt "client" fields with
    | None -> Ok None
    | Some (J.String c) -> Ok (Some c)
    | Some _ -> Error (cmd ^ ": client must be a string")
  in
  let deadline_of cmd =
    match List.assoc_opt "deadline_s" fields with
    | None -> Ok None
    | Some (J.Float d) when d > 0.0 -> Ok (Some d)
    | Some (J.Int d) when d > 0 -> Ok (Some (float_of_int d))
    | Some _ -> Error (cmd ^ ": deadline_s must be a positive number")
  in
  match cmd with
  | "submit" -> begin
    match List.assoc_opt "spec" fields with
    | None -> Error "submit: missing spec"
    | Some spec_json ->
      let* spec = Anafault.Campaign.spec_of_json spec_json in
      let* client = client_of "submit" in
      let* deadline_s = deadline_of "submit" in
      Ok (Submit { spec; client; deadline_s })
  end
  | "extract" -> begin
    match List.assoc_opt "lift" fields with
    | None -> Error "extract: missing lift spec"
    | Some lift_json ->
      let* lift = lift_spec_of_json lift_json in
      let* simulate =
        match List.assoc_opt "simulate" fields with
        | None -> Ok None
        | Some spec_json ->
          let* spec = Anafault.Campaign.spec_of_json spec_json in
          Ok (Some spec)
      in
      let* client = client_of "extract" in
      let* deadline_s = deadline_of "extract" in
      Ok (Extract { lift; simulate; client; deadline_s })
  end
  | "cancel" -> begin
    match List.assoc_opt "fingerprint" fields with
    | Some (J.String fingerprint) -> Ok (Cancel { fingerprint })
    | Some _ | None -> Error "cancel: want a fingerprint string"
  end
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | other -> Error ("unknown command " ^ other)

(* --- Backpressure ------------------------------------------------------ *)

type reject_reason = Queue_full | Quota_exceeded

let reject_reason_to_string = function
  | Queue_full -> "queue_full"
  | Quota_exceeded -> "quota_exceeded"

let reject_reason_of_string = function
  | "queue_full" -> Ok Queue_full
  | "quota_exceeded" -> Ok Quota_exceeded
  | other -> Error ("unknown reject reason " ^ other)

let rejected_to_json ~reason ~message =
  J.Obj
    [
      ("event", J.String "rejected");
      ("reason", J.String (reject_reason_to_string reason));
      ("message", J.String message);
    ]

(* [Ok None] when the object is not a rejection at all (so callers can
   fall through to the event codec). *)
let rejected_of_json json =
  match json with
  | J.Obj fields -> begin
    match List.assoc_opt "event" fields with
    | Some (J.String "rejected") ->
      let* reason =
        match List.assoc_opt "reason" fields with
        | Some (J.String s) -> reject_reason_of_string s
        | Some _ | None -> Error "rejected: want a reason string"
      in
      let message =
        match List.assoc_opt "message" fields with
        | Some (J.String m) -> m
        | _ -> ""
      in
      Ok (Some (reason, message))
    | _ -> Ok None
  end
  | _ -> Ok None

let ok = J.Obj [ ("ok", J.Bool true) ]

(* --- Extraction answers ------------------------------------------------ *)

type extracted = {
  ex_fingerprint : string;
  ex_cached : bool;
  ex_faults : string;
  ex_sites : int;
  ex_bridging : int;
  ex_line_opens : int;
  ex_contact_opens : int;
  ex_stuck_opens : int;
}

let extracted_to_json e =
  J.Obj
    [
      ("event", J.String "extracted");
      ("fingerprint", J.String e.ex_fingerprint);
      ("cached", J.Bool e.ex_cached);
      ("faults", J.String e.ex_faults);
      ("sites_considered", J.Int e.ex_sites);
      ("bridging", J.Int e.ex_bridging);
      ("line_opens", J.Int e.ex_line_opens);
      ("contact_opens", J.Int e.ex_contact_opens);
      ("stuck_opens", J.Int e.ex_stuck_opens);
    ]

let extracted_of_json json =
  match json with
  | J.Obj fields -> begin
    match List.assoc_opt "event" fields with
    | Some (J.String "extracted") ->
      let str name =
        match List.assoc_opt name fields with
        | Some (J.String s) -> Ok s
        | Some _ | None ->
          Error (Printf.sprintf "extracted: want a %s string" name)
      in
      let int name =
        match List.assoc_opt name fields with
        | Some (J.Int i) -> Ok i
        | Some _ | None ->
          Error (Printf.sprintf "extracted: want a %s integer" name)
      in
      let* ex_fingerprint = str "fingerprint" in
      let* ex_faults = str "faults" in
      let ex_cached =
        match List.assoc_opt "cached" fields with
        | Some (J.Bool b) -> b
        | _ -> false
      in
      let* ex_sites = int "sites_considered" in
      let* ex_bridging = int "bridging" in
      let* ex_line_opens = int "line_opens" in
      let* ex_contact_opens = int "contact_opens" in
      let* ex_stuck_opens = int "stuck_opens" in
      Ok
        (Some
           {
             ex_fingerprint;
             ex_cached;
             ex_faults;
             ex_sites;
             ex_bridging;
             ex_line_opens;
             ex_contact_opens;
             ex_stuck_opens;
           })
    | _ -> Ok None
  end
  | _ -> Ok None

let stats_to_json ~jobs ~cache_hits ~coalesced ~faults_simulated ~shard_runs
    ~rejected ~replayed ~shard_restarts ~evictions ~corrupt ~cancelled
    ~extracts ~extract_hits =
  J.Obj
    [
      ("jobs", J.Int jobs);
      ("cache_hits", J.Int cache_hits);
      ("coalesced", J.Int coalesced);
      ("faults_simulated", J.Int faults_simulated);
      ("shard_runs", J.Int shard_runs);
      ("rejected", J.Int rejected);
      ("replayed", J.Int replayed);
      ("shard_restarts", J.Int shard_restarts);
      ("evictions", J.Int evictions);
      ("corrupt", J.Int corrupt);
      ("cancelled", J.Int cancelled);
      ("extracts", J.Int extracts);
      ("extract_hits", J.Int extract_hits);
    ]

let send oc json =
  output_string oc (J.to_string json);
  output_char oc '\n';
  flush oc

(* Read one line of at most [limit_bytes], without trusting
   [input_line] to bound anything: a hostile or broken client must not
   be able to balloon the daemon's memory before the parser even sees
   the bytes. *)
let bounded_line ic limit =
  let buf = Buffer.create 256 in
  let rec loop () =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 then Ok None else Ok (Some (Buffer.contents buf))
    | '\n' -> Ok (Some (Buffer.contents buf))
    | c ->
      if Buffer.length buf >= limit then
        (* Drain the rest of the oversized line so a follow-up [recv]
           starts at a line boundary, then report the typed error. *)
        let rec drain () =
          match input_char ic with
          | exception End_of_file -> ()
          | '\n' -> ()
          | _ -> drain ()
        in
        begin
          drain ();
          Error (Printf.sprintf "request exceeds %d bytes" limit)
        end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
  in
  loop ()

let default_limit_bytes = 64 * 1024 * 1024

let rec recv ?(limit_bytes = default_limit_bytes) ic =
  match bounded_line ic limit_bytes with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some line) ->
    if String.trim line = "" then recv ~limit_bytes ic
    else begin
      match J.of_string line with
      | Ok json -> Ok (Some json)
      | Error msg -> Error ("bad wire line: " ^ msg)
    end
