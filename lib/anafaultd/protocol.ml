(* Newline-delimited JSON framing for the campaign service.  The
   payload vocabulary (specs, events, results) lives in
   Anafault.Campaign; this module only names the request envelope and
   moves lines. *)

module J = Obs.Json

let ( let* ) = Result.bind

type request =
  | Submit of Anafault.Campaign.spec
  | Stats
  | Ping
  | Shutdown

let request_to_json = function
  | Submit spec ->
    J.Obj
      [
        ("cmd", J.String "submit");
        ("spec", Anafault.Campaign.spec_to_json spec);
      ]
  | Stats -> J.Obj [ ("cmd", J.String "stats") ]
  | Ping -> J.Obj [ ("cmd", J.String "ping") ]
  | Shutdown -> J.Obj [ ("cmd", J.String "shutdown") ]

let request_of_json json =
  let* fields =
    match json with J.Obj f -> Ok f | _ -> Error "request: want a JSON object"
  in
  let* cmd =
    match List.assoc_opt "cmd" fields with
    | Some (J.String s) -> Ok s
    | Some _ | None -> Error "request: want a cmd string"
  in
  match cmd with
  | "submit" -> begin
    match List.assoc_opt "spec" fields with
    | None -> Error "submit: missing spec"
    | Some spec_json ->
      let* spec = Anafault.Campaign.spec_of_json spec_json in
      Ok (Submit spec)
  end
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | other -> Error ("unknown command " ^ other)

let ok = J.Obj [ ("ok", J.Bool true) ]

let stats_to_json ~jobs ~cache_hits ~coalesced ~faults_simulated ~shard_runs =
  J.Obj
    [
      ("jobs", J.Int jobs);
      ("cache_hits", J.Int cache_hits);
      ("coalesced", J.Int coalesced);
      ("faults_simulated", J.Int faults_simulated);
      ("shard_runs", J.Int shard_runs);
    ]

let send oc json =
  output_string oc (J.to_string json);
  output_char oc '\n';
  flush oc

let rec recv ic =
  match input_line ic with
  | exception End_of_file -> Ok None
  | line ->
    if String.trim line = "" then recv ic
    else begin
      match J.of_string line with
      | Ok json -> Ok (Some json)
      | Error msg -> Error ("bad wire line: " ^ msg)
    end
