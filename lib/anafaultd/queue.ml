(* The persistent job queue: a write-ahead journal of submissions, so
   queued work survives kill -9.

   One JSONL file, append-only between compactions:

     {"queue":"anafaultd","version":1}
     {"op":"push","fingerprint":"3f2a...","client":"ci","spec":{...}}
     {"op":"done","fingerprint":"3f2a..."}

   A [push] is appended (and fsynced) before the submission is
   acknowledged; a [done] is appended when the job leaves the system
   (finished, failed, or served to nobody).  Replay is push minus done
   in arrival order, so a daemon restarted over the same work directory
   re-enqueues exactly the jobs that were queued or running when it
   died - the running one resumes from its campaign journal.  A crash
   can tear at most the final line, which replay skips: a torn push was
   never acknowledged, a torn done re-runs a completed job into a
   cache hit.  Duplicate pushes of one fingerprint collapse.

   Compaction (at open, and after enough dead records accumulate)
   rewrites the file as header + pending pushes via tmp + fsync +
   rename, so the journal's size tracks the queue depth, not the
   daemon's lifetime. *)

module Campaign = Anafault.Campaign
module J = Obs.Json

let ( let* ) = Result.bind

type entry = { fingerprint : string; client : string; spec : Campaign.spec }

type t = {
  path : string;
  lock : Mutex.t;
  mutable oc : out_channel;
  (* The queue's live image, in arrival order (newest last): what a
     compaction writes and [mark_done] filters. *)
  mutable entries : entry list;
  mutable dead : int; (* done records since the last compaction *)
}

(* Dead records tolerated before [mark_done] compacts in place. *)
let compact_after = 128

let header = J.Obj [ ("queue", J.String "anafaultd"); ("version", J.Int 1) ]

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let entry_to_json e =
  J.Obj
    [
      ("op", J.String "push");
      ("fingerprint", J.String e.fingerprint);
      ("client", J.String e.client);
      ("spec", Campaign.spec_to_json e.spec);
    ]

let done_to_json fp =
  J.Obj [ ("op", J.String "done"); ("fingerprint", J.String fp) ]

let entry_of_fields fields =
  let str name =
    match List.assoc_opt name fields with
    | Some (J.String s) -> Ok s
    | _ -> Error ("push record: want a " ^ name ^ " string")
  in
  let* fingerprint = str "fingerprint" in
  let* client = str "client" in
  match List.assoc_opt "spec" fields with
  | None -> Error "push record: missing spec"
  | Some spec_json ->
    let* spec = Campaign.spec_of_json spec_json in
    Ok { fingerprint; client; spec }

(* Replay an existing journal into the live image.  Unparseable lines -
   the torn tail of a crashed append, at worst - are skipped, as are
   records damaged beyond reading; losing a push loses only work that
   was never acknowledged durable. *)
let replay path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let entries = ref [] (* newest first *) in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      (if String.trim line <> "" then
         match J.of_string line with
         | Error _ -> ()
         | Ok (J.Obj fields) -> begin
           match List.assoc_opt "op" fields with
           | Some (J.String "push") -> begin
             match entry_of_fields fields with
             | Error _ -> ()
             | Ok e ->
               if
                 not
                   (List.exists
                      (fun e' -> String.equal e'.fingerprint e.fingerprint)
                      !entries)
               then entries := e :: !entries
           end
           | Some (J.String "done") -> begin
             match List.assoc_opt "fingerprint" fields with
             | Some (J.String fp) ->
               entries :=
                 List.filter
                   (fun e -> not (String.equal e.fingerprint fp))
                   !entries
             | _ -> ()
           end
           | _ -> () (* the header line, or an unknown future op *)
         end
         | Ok _ -> ());
      loop ()
  in
  loop ();
  List.rev !entries

let write_line oc json =
  output_string oc (J.to_string json);
  output_char oc '\n'

(* Rewrite the journal as header + pending pushes, atomically. *)
let compact_to path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     write_line oc header;
     List.iter (fun e -> write_line oc (entry_to_json e)) entries;
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let open_ ~path =
  match
    let entries = if Sys.file_exists path then replay path else [] in
    compact_to path entries;
    let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
    ({ path; lock = Mutex.create (); oc; entries; dead = 0 }, entries)
  with
  | v -> Ok v
  | exception Sys_error msg -> Error (path ^ ": " ^ msg)
  | exception Unix.Unix_error (err, _, _) ->
    Error (path ^ ": " ^ Unix.error_message err)

let push t entry =
  Mutex.protect t.lock @@ fun () ->
  if
    List.exists
      (fun e -> String.equal e.fingerprint entry.fingerprint)
      t.entries
  then Ok () (* already pending: the twin coalesces, nothing to journal *)
  else begin
    match
      Obs.Failpoint.hit "queue.append";
      write_line t.oc (entry_to_json entry);
      fsync_channel t.oc;
      Obs.Failpoint.hit "queue.appended"
    with
    | () ->
      t.entries <- t.entries @ [ entry ];
      Ok ()
    | exception Sys_error msg -> Error ("queue journal: " ^ msg)
  end

let mark_done t fp =
  Mutex.protect t.lock @@ fun () ->
  if List.exists (fun e -> String.equal e.fingerprint fp) t.entries then begin
    t.entries <-
      List.filter (fun e -> not (String.equal e.fingerprint fp)) t.entries;
    t.dead <- t.dead + 1;
    try
      if t.dead >= compact_after then begin
        close_out_noerr t.oc;
        compact_to t.path t.entries;
        t.oc <- open_out_gen [ Open_wronly; Open_append ] 0o644 t.path;
        t.dead <- 0
      end
      else begin
        write_line t.oc (done_to_json fp);
        fsync_channel t.oc
      end
    with Sys_error _ -> ()
    (* a failed done record costs one re-run into a cache hit at the
       next restart, never correctness *)
  end

let pending t = Mutex.protect t.lock @@ fun () -> List.length t.entries

let path t = t.path

let close t = Mutex.protect t.lock @@ fun () -> close_out_noerr t.oc
