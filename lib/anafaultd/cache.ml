(* Content-addressed result store: one <fingerprint>.json file per
   campaign result, atomic tmp+rename writes, unreadable entries are
   misses.  The fingerprint is already a hex digest, so it is used as
   the file name verbatim. *)

module J = Obs.Json

type t = {
  dir : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

(* Fingerprints are lowercase hex; refuse anything that could escape
   the cache directory. *)
let valid_key key =
  key <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       key

let create ~dir =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else Error (dir ^ " exists and is not a directory")
    else begin
      Unix.mkdir dir 0o755;
      Ok ()
    end
  with
  | Error _ as e -> e
  | Ok () -> Ok { dir; lock = Mutex.create (); hits = 0; misses = 0; stores = 0 }
  | exception Unix.Unix_error (err, _, _) ->
    Error (dir ^ ": " ^ Unix.error_message err)

let dir t = t.dir

let entry_path t key = Filename.concat t.dir (key ^ ".json")

let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let n = in_channel_length ic in
    let body = really_input_string ic n in
    (match J.of_string body with Ok json -> Some json | Error _ -> None)

let find t key =
  Mutex.protect t.lock @@ fun () ->
  let result =
    if not (valid_key key) then None
    else
      let path = entry_path t key in
      if Sys.file_exists path then read_entry path else None
  in
  (match result with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  result

let store t key json =
  if valid_key key then
    Mutex.protect t.lock @@ fun () ->
    let path = entry_path t key in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc (J.to_string json);
       output_char oc '\n';
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    t.stores <- t.stores + 1

let hits t = Mutex.protect t.lock @@ fun () -> t.hits

let misses t = Mutex.protect t.lock @@ fun () -> t.misses

let stores t = Mutex.protect t.lock @@ fun () -> t.stores
