(* Content-addressed result store with a size budget.

   One <fingerprint>.json file per campaign result:

     {"cache":"anafault","version":1,"digest":"<md5 hex>","bytes":N}
     <the result JSON, exactly N bytes>

   Writes are tmp + fsync + rename (and the directory is fsynced), so
   a crash - or a power loss - never commits an empty or torn entry.
   Reads validate the digest; an entry that fails (bit rot, a torn
   write forced through a failpoint, a pre-checksum legacy entry) is
   quarantined to <name>.corrupt and treated as a miss, never a crash.

   The budget is enforced with LRU eviction at store time: live entries
   are evicted oldest-use first until the directory fits, and an entry
   larger than the whole budget is simply not stored.  Use order is
   tracked in memory (a logical clock), seeded from file mtimes at
   open.

   Failpoints: [cache.store] fires before a write, [cache.store.torn]
   can tear the committed bytes. *)

module J = Obs.Json

type t = {
  dir : string;
  budget : int; (* bytes; 0 = unbounded *)
  obs : Obs.sink;
  lock : Mutex.t;
  sizes : (string, int) Hashtbl.t; (* key -> on-disk bytes *)
  stamps : (string, int) Hashtbl.t; (* key -> last-use logical time *)
  mutable clock : int;
  mutable total : int; (* sum of sizes *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
}

(* Fingerprints are lowercase hex; refuse anything that could escape
   the cache directory. *)
(* A key is a hex fingerprint, optionally namespaced by a short
   lowercase prefix ("lift-<hex>" for extraction results): enough
   structure to be safe as a file name, loose enough for every job
   kind the daemon caches. *)
let valid_key key =
  let hex s =
    s <> ""
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         s
  in
  match String.index_opt key '-' with
  | None -> hex key
  | Some i ->
    i > 0
    && String.for_all
         (fun c -> c >= 'a' && c <= 'z')
         (String.sub key 0 i)
    && hex (String.sub key (i + 1) (String.length key - i - 1))

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let entry_path t key = Filename.concat t.dir (key ^ ".json")

let key_of_file name =
  match Filename.chop_suffix_opt ~suffix:".json" name with
  | Some key when valid_key key -> Some key
  | Some _ | None -> None

(* Seed sizes and the LRU order from what is on disk: mtime order is
   the best use order a fresh process can know. *)
let scan t =
  let files =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> [||]
    | names -> names
  in
  let entries =
    Array.to_list files
    |> List.filter_map (fun name ->
           match key_of_file name with
           | None -> None
           | Some key -> begin
             match Unix.stat (Filename.concat t.dir name) with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind = Unix.S_REG ->
               Some (key, st.Unix.st_size, st.Unix.st_mtime)
             | _ -> None
           end)
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
  in
  List.iter
    (fun (key, size, _) ->
      Hashtbl.replace t.sizes key size;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.stamps key t.clock;
      t.total <- t.total + size)
    entries

let create ?(budget_bytes = 0) ?(obs = Obs.null) ~dir () =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else Error (dir ^ " exists and is not a directory")
    else begin
      Unix.mkdir dir 0o755;
      Ok ()
    end
  with
  | Error _ as e -> e
  | Ok () ->
    let t =
      {
        dir;
        budget = max 0 budget_bytes;
        obs;
        lock = Mutex.create ();
        sizes = Hashtbl.create 16;
        stamps = Hashtbl.create 16;
        clock = 0;
        total = 0;
        hits = 0;
        misses = 0;
        stores = 0;
        evictions = 0;
        corrupt = 0;
      }
    in
    scan t;
    Ok t
  | exception Unix.Unix_error (err, _, _) ->
    Error (dir ^ ": " ^ Unix.error_message err)

let dir t = t.dir

let forget t key =
  (match Hashtbl.find_opt t.sizes key with
  | Some size -> t.total <- t.total - size
  | None -> ());
  Hashtbl.remove t.sizes key;
  Hashtbl.remove t.stamps key

(* --- Entry format ------------------------------------------------------ *)

let header_line ~digest ~bytes =
  J.to_string
    (J.Obj
       [
         ("cache", J.String "anafault");
         ("version", J.Int 1);
         ("digest", J.String digest);
         ("bytes", J.Int bytes);
       ])

let parse_header line =
  match J.of_string line with
  | Error _ -> None
  | Ok (J.Obj fields) -> begin
    match
      ( List.assoc_opt "cache" fields,
        List.assoc_opt "version" fields,
        List.assoc_opt "digest" fields,
        List.assoc_opt "bytes" fields )
    with
    | ( Some (J.String "anafault"),
        Some (J.Int 1),
        Some (J.String digest),
        Some (J.Int bytes) ) ->
      Some (digest, bytes)
    | _ -> None
  end
  | Ok _ -> None

(* [None] = the entry fails validation (missing files are handled by
   the caller; everything unreadable here is corruption). *)
let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
    | exception End_of_file -> None
    | header -> begin
      match parse_header header with
      | None -> None
      | Some (digest, bytes) -> begin
        match really_input_string ic bytes with
        | exception End_of_file -> None (* shorter than advertised *)
        | payload ->
          if not (String.equal (Digest.to_hex (Digest.string payload)) digest)
          then None
          else begin
            match J.of_string payload with
            | Ok json -> Some json
            | Error _ -> None
          end
      end
    end)

(* Set a failed entry aside for post-mortems rather than crashing on it
   or re-reading it forever. *)
let quarantine t key path =
  (try Sys.rename path (path ^ ".corrupt")
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  forget t key;
  t.corrupt <- t.corrupt + 1;
  Obs.count t.obs "cache.corrupt" 1 ~attrs:[ ("key", Obs.Str key) ]

let find t key =
  Mutex.protect t.lock @@ fun () ->
  let result =
    if not (valid_key key) then None
    else begin
      let path = entry_path t key in
      if not (Sys.file_exists path) then None
      else begin
        match read_entry path with
        | Some json ->
          t.clock <- t.clock + 1;
          Hashtbl.replace t.stamps key t.clock;
          Some json
        | None ->
          quarantine t key path;
          None
      end
    end
  in
  (match result with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  result

(* Evict least-recently-used live entries until [fresh] fits the
   budget.  [fresh] itself is never evicted here - it just got used. *)
let enforce_budget t ~fresh =
  if t.budget > 0 then begin
    while
      t.total > t.budget
      && Hashtbl.length t.sizes > 1
      &&
      let victim =
        Hashtbl.fold
          (fun key stamp acc ->
            if String.equal key fresh then acc
            else
              match acc with
              | Some (_, best) when best <= stamp -> acc
              | _ -> Some (key, stamp))
          t.stamps None
      in
      match victim with
      | None -> false
      | Some (key, _) ->
        (try Sys.remove (entry_path t key) with Sys_error _ -> ());
        forget t key;
        t.evictions <- t.evictions + 1;
        Obs.count t.obs "cache.evictions" 1 ~attrs:[ ("key", Obs.Str key) ];
        true
    do
      ()
    done
  end

let store t key json =
  if valid_key key then
    Mutex.protect t.lock @@ fun () ->
    Obs.Failpoint.hit "cache.store";
    let payload = J.to_string json in
    let digest = Digest.to_hex (Digest.string payload) in
    let header = header_line ~digest ~bytes:(String.length payload) in
    let body = header ^ "\n" ^ payload ^ "\n" in
    if t.budget > 0 && String.length body > t.budget then
      (* Larger than the whole cache: storing it would evict everything
         and still bust the budget.  Skip it. *)
      Obs.count t.obs "cache.oversized" 1 ~attrs:[ ("key", Obs.Str key) ]
    else begin
      let path = entry_path t key in
      let tmp = path ^ ".tmp" in
      let body, durable =
        match Obs.Failpoint.cut "cache.store.torn" body with
        | Some prefix -> (prefix, false) (* simulate a torn, unfsynced commit *)
        | None -> (body, true)
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc body;
         if durable then fsync_channel oc;
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Sys.rename tmp path;
      if durable then fsync_dir t.dir;
      forget t key;
      Hashtbl.replace t.sizes key (String.length body);
      t.clock <- t.clock + 1;
      Hashtbl.replace t.stamps key t.clock;
      t.total <- t.total + String.length body;
      t.stores <- t.stores + 1;
      enforce_budget t ~fresh:key
    end

let total_bytes t = Mutex.protect t.lock @@ fun () -> t.total

let hits t = Mutex.protect t.lock @@ fun () -> t.hits

let misses t = Mutex.protect t.lock @@ fun () -> t.misses

let stores t = Mutex.protect t.lock @@ fun () -> t.stores

let evictions t = Mutex.protect t.lock @@ fun () -> t.evictions

let corrupt t = Mutex.protect t.lock @@ fun () -> t.corrupt
