(** Content-addressed campaign result cache, checksummed and bounded.

    Keys are campaign fingerprints ({!Anafault.Simulate.fingerprint}:
    a digest over the printed circuit deck, every result-affecting
    option, and the printed fault list), so two submissions of the same
    electrical problem - whatever file names or whitespace they arrived
    with - address the same entry.  Other job kinds may namespace
    their fingerprints with a lowercase prefix ([lift-<hex>] for
    extraction results); prefixed and bare keys share the directory,
    the budget and the LRU order.  Values are
    {!Anafault.Campaign.result_to_json} objects (or the job kind's own
    answer object), one file per entry ([<fingerprint>.json]): a
    checksum header line followed by the payload, written tmp + fsync +
    rename (directory fsynced too) so a crash never commits a torn
    entry.

    An entry whose checksum fails to validate - bit rot, a torn write,
    a pre-checksum legacy file - is {e quarantined}: renamed to
    [<name>.json.corrupt], counted ([cache.corrupt]), and reported as a
    miss.  Corruption never raises out of {!find}.

    With a byte budget, {!store} evicts least-recently-used entries
    ([cache.evictions]) until the cache fits; an entry bigger than the
    whole budget is not stored at all.

    Failpoints: [cache.store] fires before each write; a
    [cache.store.torn] torn-write point commits a truncated entry (for
    exercising the quarantine path). *)

type t

(** [create ~dir ()] opens (creating [dir] if needed) a cache rooted
    there, seeding LRU order from file modification times.
    [budget_bytes] bounds the directory's entry bytes (0, the default,
    is unbounded); [obs] receives [cache.evictions] / [cache.corrupt] /
    [cache.oversized] counters. *)
val create :
  ?budget_bytes:int -> ?obs:Obs.sink -> dir:string -> unit -> (t, string) result

val dir : t -> string

(** [find t fingerprint] is the stored result object, if any.  A
    corrupt entry is quarantined and reported as a miss.
    Thread-safe. *)
val find : t -> string -> Obs.Json.t option

(** [store t fingerprint json] writes the entry durably, then enforces
    the budget.  Thread-safe; the last writer wins. *)
val store : t -> string -> Obs.Json.t -> unit

(** Bytes currently accounted to entries (headers included). *)
val total_bytes : t -> int

(** Lifetime counters of this handle. *)
val hits : t -> int

val misses : t -> int

val stores : t -> int

val evictions : t -> int

val corrupt : t -> int
