(** Content-addressed campaign result cache.

    Keys are campaign fingerprints ({!Anafault.Simulate.fingerprint}:
    a digest over the printed circuit deck, every result-affecting
    option, and the printed fault list), so two submissions of the same
    electrical problem - whatever file names or whitespace they arrived
    with - address the same entry.  Values are
    {!Anafault.Campaign.result_to_json} objects, one file per entry
    ([<fingerprint>.json]), written atomically (tmp + rename) so a
    crashed store never leaves a torn entry.  An unreadable or
    unparseable entry is treated as a miss. *)

type t

(** [create ~dir] opens (creating [dir] if needed) a cache rooted
    there. *)
val create : dir:string -> (t, string) result

val dir : t -> string

(** [find t fingerprint] is the stored result object, if any.
    Thread-safe. *)
val find : t -> string -> Obs.Json.t option

(** [store t fingerprint json] writes the entry atomically.
    Thread-safe; the last writer wins. *)
val store : t -> string -> Obs.Json.t -> unit

(** Lifetime hit / miss / store counters of this handle. *)
val hits : t -> int

val misses : t -> int

val stores : t -> int
