(** Cooperative cancellation tokens.

    One atomic cell per unit of work: whoever wants the work stopped
    writes a {!reason} once, the code doing the work polls wherever it
    can stop safely.  Domain-safe (plain [Atomic]), never blocks, and
    costs one atomic load per poll while uncancelled.

    First write wins: later [cancel] calls on an already-cancelled
    token do not overwrite the original reason. *)

type reason =
  | User_cancel  (** an explicit cancel request *)
  | Deadline of float  (** the wall-clock budget that expired, seconds *)
  | Client_gone  (** every subscriber of the work disconnected *)

type t

exception Cancelled of reason

val create : unit -> t

val never : t
(** The inert token: never cancelled, and [cancel] on it is a no-op.
    The right default for options records - a shared [never] cell
    cannot leak one campaign's cancellation into another. *)

val cancel : t -> reason -> unit
(** Request cancellation.  Idempotent; the first reason sticks. *)

val get : t -> reason option
val cancelled : t -> bool

val check : t -> unit
(** Raise {!Cancelled} if the token is cancelled, else return. *)

val reason_to_string : reason -> string
