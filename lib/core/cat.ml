type glrfm = {
  extraction : Extract.Extraction.t;
  lvs : Extract.Compare.mismatch list;
  lift : Defects.Lift.result;
}

let run_glrfm ?lift_options ?extractor_options ~golden mask =
  let extraction = Extract.Extractor.extract ?options:extractor_options mask in
  let lvs =
    Extract.Compare.run ~golden ~extracted:extraction.Extract.Extraction.circuit ()
  in
  let lift = Defects.Lift.run ?options:lift_options extraction in
  { extraction; lvs; lift }

let run_fault_simulation ?domains config circuit faults =
  fst (Anafault.Parsim.execute ?domains config circuit faults)

module Demo = struct
  let schematic () = Vco.Schematic.schematic ()

  let mask () = Vco.Layout_gen.mask ()

  let extractor_options =
    {
      Extract.Extractor.nmos_model = Vco.Schematic.nmos_model;
      pmos_model = Vco.Schematic.pmos_model;
      nmos_bulk = "0";
      pmos_bulk = Vco.Schematic.vdd_node;
      cap_per_nm2 = Vco.Layout_gen.cap_per_nm2;
    }

  let config =
    Anafault.Simulate.default_config ~tran:Vco.Schematic.tran
      ~observed:Vco.Schematic.out_node ()

  let universe () = Faults.Universe.build (schematic ())
end
