(* Cooperative cancellation tokens.

   A token is one atomic cell shared by everyone interested in a unit
   of work: the party that wants it stopped writes a reason, the code
   doing the work polls.  Nothing blocks, nothing is signalled - the
   hot loops (Newton iterations, transient steps) poll the atomic at
   their natural checkpoints, which keeps the per-iteration cost of an
   uncancelled token to a single atomic load.

   First write wins: a token cancelled for a deadline and then again by
   the user keeps the deadline reason, so the outcome recorded for the
   work is the cause that actually stopped it.

   [never] is the token of code that opted out: its [cancel] is a
   no-op, so defaulting an options record to [never] cannot let one
   campaign cancel another through a shared default cell. *)

type reason =
  | User_cancel
  | Deadline of float  (** the wall-clock budget, in seconds *)
  | Client_gone

type t = { cell : reason option Atomic.t; real : bool }

exception Cancelled of reason

let create () = { cell = Atomic.make None; real = true }
let never = { cell = Atomic.make None; real = false }

let cancel t reason =
  if t.real then ignore (Atomic.compare_and_set t.cell None (Some reason))

let get t = Atomic.get t.cell
let cancelled t = Atomic.get t.cell <> None

let check t =
  match Atomic.get t.cell with None -> () | Some reason -> raise (Cancelled reason)

let reason_to_string = function
  | User_cancel -> "cancelled by user"
  | Deadline s -> Printf.sprintf "deadline exceeded (%gs)" s
  | Client_gone -> "client disconnected"
