(* Union area by scanline over compressed x-coordinates: for each vertical
   slab between consecutive distinct x-edges, merge the y-intervals of the
   rectangles spanning the slab and accumulate slab-width * covered-height. *)
let union_area rs =
  let rs = List.filter (fun r -> not (Rect.is_degenerate r)) rs in
  match rs with
  | [] -> 0
  | _ ->
    let xs =
      List.concat_map (fun (r : Rect.t) -> [ r.x0; r.x1 ]) rs
      |> List.sort_uniq Int.compare
      |> Array.of_list
    in
    let total = ref 0 in
    for i = 0 to Array.length xs - 2 do
      let xl = xs.(i) and xr = xs.(i + 1) in
      let spans =
        List.filter_map
          (fun (r : Rect.t) ->
            if r.x0 <= xl && xr <= r.x1 then Some (r.y0, r.y1) else None)
          rs
        |> List.sort compare
      in
      let covered = ref 0 and cur = ref None in
      let flush () =
        match !cur with
        | None -> ()
        | Some (lo, hi) ->
          covered := !covered + (hi - lo);
          cur := None
      in
      List.iter
        (fun (lo, hi) ->
          match !cur with
          | None -> cur := Some (lo, hi)
          | Some (clo, chi) ->
            if lo <= chi then cur := Some (clo, max chi hi)
            else begin
              flush ();
              cur := Some (lo, hi)
            end)
        spans;
      flush ();
      total := !total + ((xr - xl) * !covered)
    done;
    !total

(* Tile-clipped union area: clip first so the scanline only compresses
   the coordinates inside the window (what a per-tile stage sees). *)
let union_area_in ~clip rs =
  union_area
    (List.filter_map
       (fun r ->
         match Rect.inter r clip with
         | Some i when not (Rect.is_degenerate i) -> Some i
         | Some _ | None -> None)
       rs)

let subtract rs cut = List.concat_map (fun r -> Rect.subtract r cut) rs

let subtract_all rs cuts = List.fold_left subtract rs cuts

let inter_with rs clip =
  List.filter_map
    (fun r ->
      match Rect.inter r clip with
      | Some i when not (Rect.is_degenerate i) -> Some i
      | Some _ | None -> None)
    rs

(* Coarse uniform grid bucketing: each rectangle (expanded by [margin]) is
   dropped into the grid cells it covers; only rectangles sharing a cell are
   tested pairwise. *)
let candidate_pairs ~margin rs =
  let n = Array.length rs in
  if n = 0 then []
  else begin
    let bbox = ref rs.(0) in
    for i = 1 to n - 1 do
      bbox := Rect.hull !bbox rs.(i)
    done;
    let b = !bbox in
    let cell =
      let avg =
        Array.fold_left (fun acc r -> acc + max (Rect.width r) (Rect.height r)) 0 rs
        / n
      in
      max 1 (max avg (2 * margin))
    in
    let buckets : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i r ->
        let r = Rect.expand r margin in
        let cx0 = (r.Rect.x0 - b.Rect.x0) / cell
        and cx1 = (r.Rect.x1 - b.Rect.x0) / cell
        and cy0 = (r.Rect.y0 - b.Rect.y0) / cell
        and cy1 = (r.Rect.y1 - b.Rect.y0) / cell in
        for cx = cx0 to cx1 do
          for cy = cy0 to cy1 do
            match Hashtbl.find_opt buckets (cx, cy) with
            | Some l -> l := i :: !l
            | None -> Hashtbl.add buckets (cx, cy) (ref [ i ])
          done
        done)
      rs;
    let seen = Hashtbl.create 64 in
    Hashtbl.fold
      (fun _ members acc ->
        let ms = !members in
        List.fold_left
          (fun acc i ->
            List.fold_left
              (fun acc j ->
                if i < j && not (Hashtbl.mem seen (i, j)) then begin
                  Hashtbl.add seen (i, j) ();
                  (i, j) :: acc
                end
                else acc)
              acc ms)
          acc ms)
      buckets []
  end

let touching_pairs rs =
  candidate_pairs ~margin:0 rs
  |> List.filter (fun (i, j) -> Rect.touches rs.(i) rs.(j))
  |> List.sort compare

let components rs =
  let n = Array.length rs in
  let uf = Union_find.create n in
  List.iter
    (fun (i, j) -> ignore (Union_find.union uf i j))
    (touching_pairs rs);
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = Union_find.find uf i in
    if comp.(r) = -1 then begin
      comp.(r) <- !next;
      incr next
    end;
    comp.(i) <- comp.(r)
  done;
  (comp, !next)

let close_pairs ~within rs =
  candidate_pairs ~margin:within rs
  |> List.filter_map (fun (i, j) ->
         match Rect.facing rs.(i) rs.(j) with
         | Some (spacing, length) when spacing <= within ->
           Some (i, j, spacing, length)
         | Some _ | None -> None)
  |> List.sort compare

let bounding_box = function
  | [] -> invalid_arg "Rect_set.bounding_box: empty"
  | r :: rs -> List.fold_left Rect.hull r rs
