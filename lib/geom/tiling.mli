(** A uniform tile grid over a layout bounding box.

    Tiles partition the plane: {!owner} maps every point to exactly one
    tile (half-open cells, clamped at the high edges).  The staged LIFT
    pipeline assigns each geometric fact - a touching pair, a facing
    pair, a cut - to the tile owning its anchor point, so per-tile
    results union to exactly the global result, whatever the tile size
    or the number of domains. *)

type t

(** [create ~tile_nm bbox] lays a grid of [tile_nm]-sided cells over
    [bbox] (the high row/column is clipped).  [tile_nm <= 0] means one
    tile covering the whole box.  Raises [Invalid_argument] on a
    degenerate box. *)
val create : tile_nm:int -> Rect.t -> t

val count : t -> int

(** The effective tile side, after the [<= 0] defaulting. *)
val tile_nm : t -> int

(** [rect t i] is tile [i]'s cell.  Raises [Invalid_argument] out of
    range. *)
val rect : t -> int -> Rect.t

(** [window t ~margin i] is the cell expanded by [margin] on every side:
    the neighbourhood a tile-local stage must see to reproduce the
    global answer for facts anchored in the tile. *)
val window : t -> margin:int -> int -> Rect.t

(** [owner t ~x ~y] is the unique tile owning point [(x, y)]; total over
    the plane (outside points clamp to the border tiles). *)
val owner : t -> x:int -> y:int -> int

(** [covering t ~margin r] lists the tiles whose [margin]-window touches
    [r]: the tiles that consider [r] a member. *)
val covering : t -> margin:int -> Rect.t -> int list
