(** Operations on collections of rectangles (one mask layer's shapes).

    Collections are plain lists; the functions here provide the sweep-style
    bulk operations needed by extraction and fault analysis.  Sizes are
    layout-scale (hundreds to a few thousand shapes), so the quadratic
    candidate generation is bucketed by a coarse grid to stay fast. *)

(** [union_area rs] is the area of the union of [rs] (overlaps counted
    once), by coordinate-compressed scanline. *)
val union_area : Rect.t list -> int

(** [union_area_in ~clip rs] is the union area of [rs] restricted to the
    [clip] window: rectangles are clipped first, so the scanline works on
    window-local coordinates (the per-tile form of {!union_area};
    summing it over the cells of a partition of the plane equals the
    global union area). *)
val union_area_in : clip:Rect.t -> Rect.t list -> int

(** [subtract rs cut] removes [cut] from every rectangle of [rs]. *)
val subtract : Rect.t list -> Rect.t -> Rect.t list

(** [subtract_all rs cuts] removes every rectangle of [cuts] from [rs]. *)
val subtract_all : Rect.t list -> Rect.t list -> Rect.t list

(** [inter_with rs clip] is the list of non-degenerate intersections of
    members of [rs] with [clip]. *)
val inter_with : Rect.t list -> Rect.t -> Rect.t list

(** [touching_pairs rs] lists the pairs [(i, j)] with [i < j] whose
    rectangles touch or overlap ({!Rect.touches}), bucketed so only nearby
    rectangles are tested. *)
val touching_pairs : Rect.t array -> (int * int) list

(** [components rs] groups the indices of [rs] into electrically connected
    components ({!Rect.touches} closure).  Returns an array mapping each
    rectangle index to a component id in [0 .. count-1], and the count. *)
val components : Rect.t array -> int array * int

(** [close_pairs ~within rs] lists the pairs [(i, j, spacing, length)] with
    [i < j] such that rectangles [i] and [j] are disjoint and face each
    other with [0 < spacing <= within] over facing length [length > 0].
    Pairs that touch or overlap are excluded (they are already connected);
    purely diagonal pairs are excluded (negligible bridge critical area). *)
val close_pairs : within:int -> Rect.t array -> (int * int * int * int) list

(** [bounding_box rs] is the hull of all rectangles.  Raises [Invalid_argument]
    on the empty list. *)
val bounding_box : Rect.t list -> Rect.t
