(* A uniform tile grid over a layout bounding box.  Tiles partition the
   plane: every point belongs to exactly one tile (half-open cells,
   clamped at the high edges), which is what makes per-tile ownership of
   geometric facts - a touching pair, a facing pair, a cut - exact:
   assign the fact to the tile owning its anchor point and no tile ever
   double-counts or drops it. *)

type t = { bbox : Rect.t; tile_nm : int; nx : int; ny : int }

let create ~tile_nm bbox =
  if Rect.is_degenerate bbox then invalid_arg "Tiling.create: degenerate bbox";
  let w = Rect.width bbox and h = Rect.height bbox in
  let tile_nm = if tile_nm <= 0 then max w h else tile_nm in
  let cells extent = max 1 ((extent + tile_nm - 1) / tile_nm) in
  { bbox; tile_nm; nx = cells w; ny = cells h }

let count t = t.nx * t.ny

let tile_nm t = t.tile_nm

(* Tile [i] = (ix, iy) with i = iy * nx + ix; the high row/column is
   clipped to the bounding box. *)
let rect t i =
  if i < 0 || i >= count t then invalid_arg "Tiling.rect: tile out of range";
  let ix = i mod t.nx and iy = i / t.nx in
  let x0 = t.bbox.Rect.x0 + (ix * t.tile_nm)
  and y0 = t.bbox.Rect.y0 + (iy * t.tile_nm) in
  Rect.make x0 y0
    (min t.bbox.Rect.x1 (x0 + t.tile_nm))
    (min t.bbox.Rect.y1 (y0 + t.tile_nm))

let window t ~margin i = Rect.expand (rect t i) margin

let clamp lo hi v = max lo (min hi v)

(* The tile owning point (x, y): half-open cells [x0 + k*t, x0 + (k+1)*t),
   clamped so points on (or beyond) the high edges land in the last
   row/column.  Total over the plane. *)
let owner t ~x ~y =
  let ix = clamp 0 (t.nx - 1) ((x - t.bbox.Rect.x0) / t.tile_nm)
  and iy = clamp 0 (t.ny - 1) ((y - t.bbox.Rect.y0) / t.tile_nm) in
  (iy * t.nx) + ix

(* All tiles whose [margin]-expanded rect touches [r] - the tiles that
   must consider [r] a member of their window. *)
let covering t ~margin (r : Rect.t) =
  (* The divisions bound the candidate range; widened by one cell on each
     side because integer division truncates toward zero and touching is
     closed, then made exact by the final [Rect.touches] test. *)
  let lo_x = clamp 0 (t.nx - 1) (((r.Rect.x0 - margin - t.bbox.Rect.x0) / t.tile_nm) - 1)
  and hi_x = clamp 0 (t.nx - 1) (((r.Rect.x1 + margin - t.bbox.Rect.x0) / t.tile_nm) + 1)
  and lo_y = clamp 0 (t.ny - 1) (((r.Rect.y0 - margin - t.bbox.Rect.y0) / t.tile_nm) - 1)
  and hi_y = clamp 0 (t.ny - 1) (((r.Rect.y1 + margin - t.bbox.Rect.y0) / t.tile_nm) + 1) in
  let acc = ref [] in
  for iy = hi_y downto lo_y do
    for ix = hi_x downto lo_x do
      let i = (iy * t.nx) + ix in
      if Rect.touches (window t ~margin i) r then acc := i :: !acc
    done
  done;
  !acc
