(* Parametric netlist generators for solver benchmarks and tests.

   Row_synth turns schematics into silicon; this module goes the other
   way and manufactures schematics of a chosen size, so the linear-solver
   backends can be compared on systems far larger than the paper's VCO.
   Both topologies have the banded/mesh sparsity real analogue circuits
   exhibit (an RC ladder's MNA matrix is tridiagonal plus one source
   branch, a resistor grid's is the five-point stencil), which is exactly
   the structure the sparse backend's fill-reducing ordering exploits. *)

let pulse =
  Netlist.Wave.Pulse
    {
      v1 = 0.0;
      v2 = 5.0;
      delay = 1e-6;
      rise = 1e-7;
      fall = 1e-7;
      width = 5e-6;
      period = 10e-6;
    }

let node k = "n" ^ string_of_int k

let rc_ladder ?(diodes = false) ~sections () =
  if sections < 1 then invalid_arg "Circuit_synth.rc_ladder: sections < 1";
  let devices = ref [] in
  let push d = devices := d :: !devices in
  push (Netlist.Device.V { name = "vin"; np = node 0; nn = "0"; wave = pulse });
  for k = 1 to sections do
    push
      (Netlist.Device.R
         { name = "r" ^ string_of_int k; n1 = node (k - 1); n2 = node k; value = 100.0 });
    push
      (Netlist.Device.C
         { name = "c" ^ string_of_int k; n1 = node k; n2 = "0"; value = 1e-9; ic = None });
    (* A clamp diode every eighth section keeps the system nonlinear, so
       the benchmark exercises repeated refactorisation inside Newton
       instead of a single linear solve per step. *)
    if diodes && k mod 8 = 0 then
      push
        (Netlist.Device.D
           {
             name = "d" ^ string_of_int k;
             na = node k;
             nc = "0";
             model = Netlist.Device.default_diode;
           })
  done;
  Netlist.Circuit.of_devices
    (Printf.sprintf "rc ladder (%d sections)" sections)
    (List.rev !devices)

let grid_node r c = Printf.sprintf "g%d_%d" r c

let resistor_grid ?(caps = true) ~rows ~cols () =
  if rows < 2 || cols < 2 then
    invalid_arg "Circuit_synth.resistor_grid: need rows, cols >= 2";
  let devices = ref [] in
  let push d = devices := d :: !devices in
  push
    (Netlist.Device.V { name = "vdrive"; np = grid_node 0 0; nn = "0"; wave = pulse });
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        push
          (Netlist.Device.R
             {
               name = Printf.sprintf "rh%d_%d" r c;
               n1 = grid_node r c;
               n2 = grid_node r (c + 1);
               value = 1_000.0;
             });
      if r + 1 < rows then
        push
          (Netlist.Device.R
             {
               name = Printf.sprintf "rv%d_%d" r c;
               n1 = grid_node r c;
               n2 = grid_node (r + 1) c;
               value = 1_000.0;
             });
      if caps then
        push
          (Netlist.Device.C
             {
               name = Printf.sprintf "cg%d_%d" r c;
               n1 = grid_node r c;
               n2 = "0";
               value = 1e-12;
               ic = None;
             })
    done
  done;
  (* Ground the far corner through a load so the DC system is
     well-conditioned end to end. *)
  push
    (Netlist.Device.R
       {
         name = "rload";
         n1 = grid_node (rows - 1) (cols - 1);
         n2 = "0";
         value = 10_000.0;
       });
  Netlist.Circuit.of_devices
    (Printf.sprintf "resistor grid (%dx%d)" rows cols)
    (List.rev !devices)
