(* Direct layout synthesis for pipeline-scale workloads.

   [Row_synth] builds a layout from a schematic; this module skips the
   schematic and arrays a hand-designed four-transistor delay cell into a
   grid, so benchmarks and smoke tests can dial in thousands of devices
   with full control over the geometry the LIFT pipeline sees:

   - every cell spans one [cell_pitch_nm] square, aligned with the
     pipeline's natural tile size;
   - the power rails of a row merge across cells into row-spanning nets,
     so per-tile connectivity must stitch nets across tile borders;
   - each cell keeps a floating metal2 strap facing a static partner line
     deep in the cell interior (>= the pipeline margin from every cell
     border).  [nudge] shifts one cell's strap by [nudge_nm]: a
     single-tile geometry edit that changes exactly one bridge site's
     critical area, the probe the incremental smoke test uses to assert
     that only the dirty tile recomputes. *)

let cell_pitch_nm = 40_000

let nudge_nm = 500

(* Cell-local coordinates (nm), chosen against the default 500 nm-lambda
   process: transistor channels 4000 x 1000, rails 2000 wide, and every
   strap/partner edge at least 13 000 from the cell border - beyond the
   pipeline's margin [max defect_x_max (2 * cut_side)] = 8000 - so a
   strap edit stays invisible to neighbouring tiles' windows. *)

let rail_w = 2_000
let gnd_y = 5_000
let vdd_y = 35_000
let mos_w = 4_000
let mos_l = 1_000
let nmos_y = 10_000
let pmos_y = 24_000
let left_x = 4_000
let right_x = 20_000

let tech_lambda b = (Layout.Builder.tech b).Layout.Tech.lambda

let cell b ~tech:_ ~ox ~oy ~r ~c ~nudged =
  let open Geom in
  let name side n = Printf.sprintf "M%c_r%d_c%d_%d" side r c n in
  let m1 =
    Layout.Builder.mos b ~name:(name 'N' 0) ~kind:`N
      ~at:(Point.make (ox + left_x) (oy + nmos_y))
      ~w:mos_w ~l:mos_l ()
  in
  let m2 =
    Layout.Builder.mos b ~name:(name 'N' 1) ~kind:`N
      ~at:(Point.make (ox + right_x) (oy + nmos_y))
      ~w:mos_w ~l:mos_l ()
  in
  let m3 =
    Layout.Builder.mos b ~name:(name 'P' 0) ~kind:`P
      ~at:(Point.make (ox + left_x) (oy + pmos_y))
      ~w:mos_w ~l:mos_l ()
  in
  let m4 =
    Layout.Builder.mos b ~name:(name 'P' 1) ~kind:`P
      ~at:(Point.make (ox + right_x) (oy + pmos_y))
      ~w:mos_w ~l:mos_l ()
  in
  (* NMOS sources to the ground rail, PMOS sources to the supply rail. *)
  List.iter
    (fun (p : Geom.Point.t) ->
      Layout.Builder.wire b Layout.Layer.Metal1 ~width:rail_w
        [ p; Point.make p.Point.x (oy + gnd_y) ])
    [ m1.Layout.Builder.source; m2.Layout.Builder.source ];
  List.iter
    (fun (p : Geom.Point.t) ->
      Layout.Builder.wire b Layout.Layer.Metal1 ~width:rail_w
        [ p; Point.make p.Point.x (oy + vdd_y) ])
    [ m3.Layout.Builder.source; m4.Layout.Builder.source ];
  (* Column gates: NMOS gate strip top to PMOS gate strip bottom (the
     strips extend poly_ext beyond the diffusion, so the jumper never
     crosses a channel). *)
  List.iter
    (fun ((dn : Layout.Builder.mos_ports), (up : Layout.Builder.mos_ports)) ->
      let x = dn.Layout.Builder.gate.Point.x in
      Layout.Builder.wire b Layout.Layer.Poly ~width:mos_l
        [
          dn.Layout.Builder.gate;
          Point.make x (up.Layout.Builder.channel.Rect.y0 - 2 * (tech_lambda b));
        ])
    [ (m1, m3); (m2, m4) ];
  (* Column outputs: NMOS drain to PMOS drain in metal1. *)
  List.iter
    (fun ((dn : Layout.Builder.mos_ports), (up : Layout.Builder.mos_ports)) ->
      Layout.Builder.wire b Layout.Layer.Metal1 ~width:rail_w
        [ dn.Layout.Builder.drain; up.Layout.Builder.drain ])
    [ (m1, m3); (m2, m4) ];
  (* The interior metal2 pair: a static partner line and the floating
     strap the incremental smoke test nudges. *)
  let partner_y = oy + 15_000 in
  let strap_y = oy + 18_000 + if nudged then nudge_nm else 0 in
  Layout.Builder.rect b Layout.Layer.Metal2
    (Rect.make (ox + 14_000) partner_y (ox + 26_000) (partner_y + 1_000));
  Layout.Builder.rect b Layout.Layer.Metal2
    (Rect.make (ox + 14_000) strap_y (ox + 26_000) (strap_y + 1_000))

let vco_array ?(tech = Layout.Tech.default) ~rows ~cols ?nudge () =
  if rows < 1 || cols < 1 then invalid_arg "Layout_synth.vco_array: empty grid";
  let b = Layout.Builder.create tech in
  for r = 0 to rows - 1 do
    let oy = r * cell_pitch_nm in
    (* Row-spanning power rails: one wire per row, shared by every cell,
       so the rail nets cross every tile border of the row. *)
    Layout.Builder.wire b Layout.Layer.Metal1 ~width:rail_w
      [
        Geom.Point.make 0 (oy + gnd_y);
        Geom.Point.make (cols * cell_pitch_nm) (oy + gnd_y);
      ];
    Layout.Builder.wire b Layout.Layer.Metal1 ~width:rail_w
      [
        Geom.Point.make 0 (oy + vdd_y);
        Geom.Point.make (cols * cell_pitch_nm) (oy + vdd_y);
      ];
    Layout.Builder.label b Layout.Layer.Metal1
      (Geom.Point.make 2_000 (oy + gnd_y))
      (Printf.sprintf "gnd_r%d" r);
    Layout.Builder.label b Layout.Layer.Metal1
      (Geom.Point.make 2_000 (oy + vdd_y))
      (Printf.sprintf "vdd_r%d" r);
    for c = 0 to cols - 1 do
      let nudged = nudge = Some (r, c) in
      cell b ~tech ~ox:(c * cell_pitch_nm) ~oy ~r ~c ~nudged
    done
  done;
  Layout.Builder.finish b

let mesh ?(tech = Layout.Tech.default) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Layout_synth.mesh: empty grid";
  let b = Layout.Builder.create tech in
  let pitch = 10_000 in
  let w = 1_500 in
  (* Horizontal metal1 rungs and vertical metal2 risers, via-stitched at
     every crossing: a pure-interconnect ladder whose bridge-site count
     scales with rows * cols, for Rect_set and pipeline scaling work. *)
  for r = 0 to rows - 1 do
    let y = r * pitch in
    Layout.Builder.wire b Layout.Layer.Metal1 ~width:w
      [ Geom.Point.make 0 y; Geom.Point.make ((cols - 1) * pitch) y ]
  done;
  for c = 0 to cols - 1 do
    let x = c * pitch in
    Layout.Builder.wire b Layout.Layer.Metal2 ~width:w
      [ Geom.Point.make x 0; Geom.Point.make x ((rows - 1) * pitch) ];
    (* Stitch each riser to alternating rungs so rails stay distinct nets
       horizontally but the grid still has vertical structure. *)
    for r = 0 to rows - 1 do
      if (r + c) mod 2 = 0 then
        Layout.Builder.via b (Geom.Point.make x (r * pitch))
    done
  done;
  Layout.Builder.finish b
