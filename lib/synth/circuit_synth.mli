(** Parametric netlist generators for solver benchmarks and tests.

    The paper's VCO has ~30 MNA unknowns - too small to show anything
    about sparse factorisation.  These generators build circuits of any
    size with the banded/mesh sparsity real analogue layouts produce, so
    dense and sparse backends can be compared across the crossover. *)

(** [rc_ladder ~sections ()] is a pulse-driven RC ladder: [sections]
    series resistors with a capacitor to ground at every tap, giving
    [sections + 2] MNA unknowns (taps, the drive node's source branch).
    With [diodes] (default false) every eighth tap carries a clamp diode
    to ground, making the system nonlinear so transient benchmarks
    exercise repeated factorisation inside Newton. *)
val rc_ladder : ?diodes:bool -> sections:int -> unit -> Netlist.Circuit.t

(** [resistor_grid ~rows ~cols ()] is a pulse-driven [rows] x [cols]
    resistor mesh (five-point stencil sparsity), driven at one corner and
    loaded to ground at the opposite one; with [caps] (default true)
    every grid node also carries a capacitor to ground for transient
    activity.  [rows * cols + 1] MNA unknowns. *)
val resistor_grid : ?caps:bool -> rows:int -> cols:int -> unit -> Netlist.Circuit.t
