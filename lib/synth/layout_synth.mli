(** Direct layout synthesis for pipeline-scale workloads.

    Where {!Row_synth} lays out a schematic, this module arrays a
    hand-designed four-transistor delay cell into a [rows] x [cols] grid
    (4 MOS devices per cell; 16 x 16 passes a thousand devices), with
    geometry tuned for the staged LIFT pipeline: cells span one
    {!cell_pitch_nm} square, row power rails merge into row-spanning
    nets that force cross-tile net stitching, and each cell carries a
    floating interior metal2 strap facing a static partner line. *)

(** Cell side, nm.  Tiling a {!vco_array} layout at this size puts each
    cell's interior geometry at least the pipeline margin away from
    every window border of the neighbouring tiles. *)
val cell_pitch_nm : int

(** How far {!vco_array}'s [nudge] shifts the designated cell's strap. *)
val nudge_nm : int

(** [vco_array ~rows ~cols ()] builds the delay-cell array.
    [nudge:(r, c)] shifts cell [(r, c)]'s metal2 strap up by
    {!nudge_nm}: a single-tile geometry edit relative to the un-nudged
    layout, invisible to every other tile's margin window.  Raises
    [Invalid_argument] on an empty grid. *)
val vco_array :
  ?tech:Layout.Tech.t ->
  rows:int ->
  cols:int ->
  ?nudge:int * int ->
  unit ->
  Layout.Mask.t

(** [mesh ~rows ~cols ()] is a pure-interconnect ladder: horizontal
    metal1 rungs, vertical metal2 risers, via-stitched at alternating
    crossings - bridge-site count scaling with [rows * cols]. *)
val mesh : ?tech:Layout.Tech.t -> rows:int -> cols:int -> unit -> Layout.Mask.t
