(** Deterministic fault injection for AnaFAULT's own crash paths.

    A {e failpoint} is a named site compiled into code that must
    survive sudden death - cache writes, queue appends, journal
    records, shard spawns.  Unarmed, a site costs one mutable read.
    Armed (programmatically via {!arm}, or through the
    [ANAFAULT_FAILPOINTS] environment variable via {!load_env}), the
    site misbehaves on cue, so tests and smoke scripts force every
    recovery path deterministically: kill -9 mid-job, a torn cache
    write, a dying shard child.

    The spec language, comma-separated:
    {v
    NAME=crash[:COOKIE][@N]   sudden death (Unix._exit 70, nothing
                              flushed); with COOKIE, only when that
                              file does not exist yet - it is created
                              just before dying, so a supervised
                              respawn inheriting the environment
                              crashes once, then succeeds
    NAME=fail[@N]             raise a typed, catchable error
    NAME=delay:SECONDS[@N]    sleep, then continue (fires every hit)
    NAME=torn:FRACTION[@N]    at a write site: commit only this
                              fraction of the bytes
    v}
    [@N] makes the point fire on its Nth hit (default: the first).
    Crash, fail and torn points are one-shot per process.

    The failpoint names the tree compiles in are listed in DESIGN.md
    ("Failpoints"). *)

type action =
  | Crash of string option  (** sudden death, optional one-shot cookie path *)
  | Fail  (** raise {!Injected} at the site *)
  | Delay of float  (** sleep seconds *)
  | Torn of float  (** commit only this fraction of a write *)

(** Raised at a site armed with {!Fail}; the payload is the site name. *)
exception Injected of string

(** Disarm everything (tests call this between cases). *)
val reset : unit -> unit

(** [arm name action] arms a site; [after] is the 1-based hit on which
    it fires. *)
val arm : ?after:int -> string -> action -> unit

(** [hit name] fires the armed action at a plain site: crash, raise,
    or delay.  A no-op when [name] is unarmed ([Torn] is ignored -
    that shape belongs to {!cut} sites). *)
val hit : string -> unit

(** [cut name payload] at a write site: [Some prefix] when a [Torn]
    point fires (the caller commits just the prefix, simulating a torn
    write); [None] otherwise.  Crash / fail / delay actions armed on
    the same name behave as in {!hit}. *)
val cut : string -> string -> string option

(** Is an unspent point armed under this name? *)
val active : string -> bool

(** Parse and arm a spec string (see the language above). *)
val configure : string -> (unit, string) result

(** ["ANAFAULT_FAILPOINTS"] *)
val env_var : string

(** Arm from [ANAFAULT_FAILPOINTS] if set; [Ok ()] when unset. *)
val load_env : unit -> (unit, string) result
