(** Zero-dependency telemetry for the simulation kernel and AnaFAULT.

    The subsystem records three kinds of event - {e spans} (a named,
    timed region of execution with a parent link when spans nest),
    {e counts} (a named integer increment) and {e samples} (a named
    float observation, the raw material for histograms) - into a
    pluggable {!sink}.  Sinks are safe under OCaml 5 domains: every
    domain writes into its own buffer (no locks on the emit path beyond
    first-touch registration), and {!drain} merges the per-domain
    buffers into one time-ordered stream.

    The null sink is free by construction: every emitter first checks
    {!enabled}, which is a single pattern match, so an uninstrumented
    run and a null-sink run execute the same arithmetic.  Instrumented
    call sites that need to build attribute strings should guard the
    construction with [if Obs.enabled sink then ...].

    Timestamps come from {!Clock.now}: wall-clock seconds from
    [Unix.gettimeofday], the closest thing to a monotonic clock the
    OCaml standard distribution offers without C stubs.  Spans measure
    durations as differences of that clock, so they are robust to
    everything short of the system clock stepping mid-span. *)

(** {1 Fault injection}

    Deterministic failpoints ({!Failpoint.arm}, [ANAFAULT_FAILPOINTS])
    compiled into the tree's crash paths; see {!Failpoint}. *)

module Failpoint : module type of Failpoint

(** {1 Events} *)

(** Attribute values attached to events. *)
type value = Bool of bool | Int of int | Float of float | Str of string

type attrs = (string * value) list

type event =
  | Span of {
      name : string;
      domain : int;  (** id of the emitting domain *)
      start : float;  (** {!Clock.now} at entry *)
      dur : float;  (** seconds spent inside *)
      parent : string option;  (** enclosing span on the same domain *)
      attrs : attrs;
    }
  | Count of { name : string; domain : int; time : float; n : int; attrs : attrs }
  | Sample of { name : string; domain : int; time : float; v : float; attrs : attrs }

val event_name : event -> string

(** Start time for spans, emission time otherwise. *)
val event_time : event -> float

val event_domain : event -> int

module Clock : sig
  val now : unit -> float
end

(** {1 Sinks} *)

type sink

(** Discards everything; {!enabled} is [false].  The default everywhere. *)
val null : sink

(** Buffers events in memory; {!drain} returns them. *)
val memory : unit -> sink

(** Buffers like {!memory}; {!drain} additionally writes every drained
    event as one JSON line to the channel and flushes it. *)
val jsonl : out_channel -> sink

(** Buffers like {!memory}; {!drain} additionally pretty-prints the
    {!Summary} of the drained events to the formatter. *)
val console : Format.formatter -> sink

(** Fans every event out to each sink.  [drain] drains the components
    and returns the first non-null component's events. *)
val tee : sink list -> sink

(** [tagged sink attrs] scopes a sink: every event emitted through the
    returned sink carries [attrs] in addition to its own (the event's
    own attributes ride first, so they win an assoc lookup on a shared
    key).  The daemon uses this to stamp each job's telemetry with the
    job fingerprint, so one shared sink still yields per-job streams.
    Wrapping {!null} (or an empty [attrs]) is the identity. *)
val tagged : sink -> attrs -> sink

(** [false] only for {!null} (and a tee of nulls): the guard hot call
    sites use to skip attribute construction. *)
val enabled : sink -> bool

(** Merge the per-domain buffers into one stream sorted by
    {!event_time}, clear them, and run the sink's output action (JSONL
    write, console summary).  Call after worker domains have been
    joined; draining while another domain is still emitting may miss
    its most recent events but never corrupts the buffers already
    registered. *)
val drain : sink -> event list

(** {1 Emitting} *)

(** [count sink name n] records an increment of [n]. *)
val count : sink -> ?attrs:attrs -> string -> int -> unit

(** [sample sink name v] records one observation of [v]. *)
val sample : sink -> ?attrs:attrs -> string -> float -> unit

(** A handle on the span currently being recorded; a no-op token under
    the null sink. *)
type span_handle

(** [span sink name f] times [f], linking the span to the enclosing
    span on the same domain, and records it when [f] returns {e or
    raises} (an escaping exception adds an ["error"] attribute).  [f]
    receives a handle for attaching result-dependent attributes via
    {!set}. *)
val span : sink -> ?attrs:attrs -> string -> (span_handle -> 'a) -> 'a

(** Attach an attribute to a live span (no-op under the null sink).
    Guard expensive value construction with {!enabled}. *)
val set : span_handle -> string -> value -> unit

(** {1 Aggregation} *)

module Summary : sig
  type stat = {
    count : int;
    total : float;
    min : float;
    max : float;
    mean : float;
  }

  type t = {
    spans : (string * stat) list;  (** stat over durations, seconds *)
    counters : (string * int) list;  (** summed increments *)
    samples : (string * stat) list;
  }

  val of_events : event list -> t

  (** Aligned three-block table (spans / counters / samples), names
      sorted. *)
  val pp : Format.formatter -> t -> unit
end

(** {1 JSON encoding}

    A minimal self-contained JSON reader/writer, enough for the JSONL
    trace format and its round-trip tests.  Numbers keep the int/float
    distinction lexically: integers print without ['.'] or exponent and
    parse back as {!Json.Int}. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result
end

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

module Jsonl : sig
  (** One JSON object per line, flushed at the end. *)
  val write : out_channel -> event list -> unit

  (** Parse a whole JSONL trace; [Error] carries the first offending
      line number and reason.  Blank lines are ignored. *)
  val parse_string : string -> (event list, string) result

  val read_file : string -> (event list, string) result
end
