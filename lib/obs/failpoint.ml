(* Deterministic fault injection for the fault-injection tool itself.
   A failpoint is a named site compiled into a crash path (cache
   writes, queue appends, journal records, shard spawns); arming one -
   programmatically or through ANAFAULT_FAILPOINTS - makes that site
   misbehave on cue, so tests and smoke scripts can force every
   recovery path instead of waiting for the power to fail.

   Sudden death is Unix._exit: no at_exit, no channel flushing, the
   closest a process can come to kill -9 from the inside.  The crash
   action optionally carries a cookie path so a respawned process (a
   supervised shard child, which inherits the same environment) crashes
   only on its first life. *)

type action =
  | Crash of string option
      (* sudden death; [Some cookie]: only when [cookie] does not exist
         yet (it is created just before dying) *)
  | Fail (* raise [Injected] - a typed, catchable error *)
  | Delay of float (* sleep this many seconds, then continue *)
  | Torn of float (* write sites: commit only this fraction of the bytes *)

exception Injected of string

type point = {
  action : action;
  mutable countdown : int; (* fires when a hit brings this to 0 *)
  mutable spent : bool;
}

(* One process-global registry; the mutex keeps arming and hitting
   coherent across the daemon's handler/scheduler threads.  The hit
   path takes the lock only when at least one point is armed, so an
   unarmed binary pays one mutable read per site. *)
let points : (string, point) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let armed = ref false

let reset () =
  Mutex.protect lock @@ fun () ->
  Hashtbl.reset points;
  armed := false

let arm ?(after = 1) name action =
  Mutex.protect lock @@ fun () ->
  Hashtbl.replace points name { action; countdown = max 1 after; spent = false };
  armed := true

let die () = Unix._exit 70

let crash cookie =
  match cookie with
  | None -> die ()
  | Some path ->
    if not (Sys.file_exists path) then begin
      (* Touch the cookie first so the next life of this process (a
         supervisor's respawn) sails past the point. *)
      (try close_out (open_out path) with Sys_error _ -> ());
      die ()
    end

(* [take name] returns the action to perform now, if any, consuming the
   point's charge.  Delay points stay armed (every hit delays); the
   destructive actions are one-shot per process. *)
let take name =
  if not !armed then None
  else
    Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt points name with
    | None -> None
    | Some p ->
      if p.spent then None
      else begin
        p.countdown <- p.countdown - 1;
        if p.countdown > 0 then None
        else begin
          (match p.action with Delay _ -> p.countdown <- 1 | _ -> p.spent <- true);
          Some p.action
        end
      end

let hit name =
  match take name with
  | None | Some (Torn _) -> ()
  | Some (Crash cookie) -> crash cookie
  | Some Fail -> raise (Injected name)
  | Some (Delay s) -> Unix.sleepf s

let cut name payload =
  match take name with
  | Some (Torn frac) ->
    let n = String.length payload in
    let keep = max 0 (min (n - 1) (int_of_float (frac *. float_of_int n))) in
    Some (String.sub payload 0 keep)
  | Some (Crash cookie) ->
    crash cookie;
    None
  | Some Fail -> raise (Injected name)
  | Some (Delay s) ->
    Unix.sleepf s;
    None
  | None -> None

let active name =
  if not !armed then false
  else
    Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt points name with
    | Some p -> not p.spent
    | None -> false

(* --- The spec language -------------------------------------------------

   SPEC    ::= point ( "," point )*
   point   ::= NAME "=" action [ "@" COUNT ]
   action  ::= "crash" [ ":" COOKIE ] | "fail" | "delay" ":" SECONDS
             | "torn" ":" FRACTION

   e.g.  journal.record=crash@3,cache.store=torn:0.5,shard.0.run=fail *)

let split_once ch s =
  match String.index_opt s ch with
  | None -> (s, None)
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_point spec =
  let name, rhs = split_once '=' spec in
  match rhs with
  | None | Some "" -> Error (Printf.sprintf "failpoint %S: want NAME=ACTION" spec)
  | Some rhs ->
    if String.trim name = "" then
      Error (Printf.sprintf "failpoint %S: empty name" spec)
    else begin
      let rhs, after =
        match String.rindex_opt rhs '@' with
        | None -> (rhs, Ok 1)
        | Some i -> begin
          let count = String.sub rhs (i + 1) (String.length rhs - i - 1) in
          match int_of_string_opt count with
          | Some n when n >= 1 -> (String.sub rhs 0 i, Ok n)
          | _ ->
            (rhs, Error (Printf.sprintf "failpoint %S: bad hit count %S" spec count))
        end
      in
      match after with
      | Error _ as e -> e
      | Ok after -> begin
        let action, arg = split_once ':' rhs in
        let num what =
          match Option.bind arg float_of_string_opt with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "failpoint %S: %s wants a number" spec what)
        in
        let act =
          match action with
          | "crash" -> Ok (Crash arg)
          | "fail" -> Ok Fail
          | "delay" -> Result.map (fun s -> Delay s) (num "delay")
          | "torn" -> Result.map (fun f -> Torn f) (num "torn")
          | other -> Error (Printf.sprintf "failpoint %S: unknown action %S" spec other)
        in
        Result.map (fun act -> (String.trim name, after, act)) act
      end
    end

let configure spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc entry ->
      match acc with
      | Error _ as e -> e
      | Ok () -> Result.map (fun (n, after, act) -> arm ~after n act) (parse_point entry))
    (Ok ()) entries

let env_var = "ANAFAULT_FAILPOINTS"

let load_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some spec -> configure spec
