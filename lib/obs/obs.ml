module Failpoint = Failpoint

type value = Bool of bool | Int of int | Float of float | Str of string

type attrs = (string * value) list

type event =
  | Span of {
      name : string;
      domain : int;
      start : float;
      dur : float;
      parent : string option;
      attrs : attrs;
    }
  | Count of { name : string; domain : int; time : float; n : int; attrs : attrs }
  | Sample of { name : string; domain : int; time : float; v : float; attrs : attrs }

let event_name = function
  | Span { name; _ } | Count { name; _ } | Sample { name; _ } -> name

let event_time = function
  | Span { start; _ } -> start
  | Count { time; _ } | Sample { time; _ } -> time

let event_domain = function
  | Span { domain; _ } | Count { domain; _ } | Sample { domain; _ } -> domain

module Clock = struct
  let now = Unix.gettimeofday
end

(* --- Sinks ------------------------------------------------------------ *)

(* Emission is lock-free after a domain's first event: each domain owns
   one [dstate] (reached through domain-local storage), and the sink's
   mutex only guards the registry that [drain] walks.  The span stack
   lives in the same per-domain state, which is what makes nesting
   work without thread-local magic. *)
type dstate = {
  dom : int;
  mutable events : event list;  (* newest first *)
  mutable stack : string list;  (* enclosing span names, innermost first *)
}

type output = Memory | Jsonl_out of out_channel | Console of Format.formatter

type buffered = {
  out : output;
  mutex : Mutex.t;
  registry : dstate list ref;
  key : dstate Domain.DLS.key;
}

type sink =
  | Null
  | Buffered of buffered
  | Tee of sink list
  | Tagged of attrs * sink

let buffered out =
  let mutex = Mutex.create () in
  let registry = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let st = { dom = (Domain.self () :> int); events = []; stack = [] } in
        Mutex.protect mutex (fun () -> registry := st :: !registry);
        st)
  in
  Buffered { out; mutex; registry; key }

let null = Null

let memory () = buffered Memory

let jsonl oc = buffered (Jsonl_out oc)

let console ppf = buffered (Console ppf)

let tee sinks = Tee sinks

let rec enabled = function
  | Null -> false
  | Buffered _ -> true
  | Tee sinks -> List.exists enabled sinks
  | Tagged (_, s) -> enabled s

let tagged sink attrs =
  if attrs = [] || not (enabled sink) then sink else Tagged (attrs, sink)

(* Scope attributes ride behind the event's own: an event that sets the
   same key explicitly wins on an assoc lookup. *)
let retag tag ev =
  if tag = [] then ev
  else
    match ev with
    | Span { name; domain; start; dur; parent; attrs } ->
      Span { name; domain; start; dur; parent; attrs = attrs @ tag }
    | Count { name; domain; time; n; attrs } ->
      Count { name; domain; time; n; attrs = attrs @ tag }
    | Sample { name; domain; time; v; attrs } ->
      Sample { name; domain; time; v; attrs = attrs @ tag }

let dstate b = Domain.DLS.get b.key

let rec push sink ev =
  match sink with
  | Null -> ()
  | Buffered b ->
    let st = dstate b in
    st.events <- ev :: st.events
  | Tee sinks -> List.iter (fun s -> push s ev) sinks
  | Tagged (tag, s) -> push s (retag tag ev)

let count sink ?(attrs = []) name n =
  if enabled sink then
    push sink
      (Count { name; domain = (Domain.self () :> int); time = Clock.now (); n; attrs })

let sample sink ?(attrs = []) name v =
  if enabled sink then
    push sink
      (Sample { name; domain = (Domain.self () :> int); time = Clock.now (); v; attrs })

type span_handle = No_span | Live of { mutable extra : attrs }

let set sp k v = match sp with No_span -> () | Live a -> a.extra <- (k, v) :: a.extra

(* The innermost Buffered sink keeps the span stack; a Tee nests the
   span on every component so each drains a self-consistent stream. *)
let span sink ?(attrs = []) name f =
  if not (enabled sink) then f No_span
  else begin
    let handle = Live { extra = [] } in
    let rec enter tag = function
      | Null -> []
      | Buffered b ->
        let st = dstate b in
        let parent = match st.stack with [] -> None | p :: _ -> Some p in
        st.stack <- name :: st.stack;
        [ (st, parent, tag) ]
      | Tee sinks -> List.concat_map (enter tag) sinks
      | Tagged (t, s) -> enter (tag @ t) s
    in
    let entered = enter [] sink in
    let t0 = Clock.now () in
    let finish error =
      let dur = Clock.now () -. t0 in
      let extra = match handle with Live a -> a.extra | No_span -> [] in
      let attrs =
        match error with
        | None -> extra @ attrs
        | Some msg -> ("error", Str msg) :: extra @ attrs
      in
      List.iter
        (fun (st, parent, tag) ->
          (match st.stack with _ :: tl -> st.stack <- tl | [] -> ());
          st.events <-
            Span
              { name; domain = st.dom; start = t0; dur; parent; attrs = attrs @ tag }
            :: st.events)
        entered
    in
    match f handle with
    | v ->
      finish None;
      v
    | exception e ->
      finish (Some (Printexc.to_string e));
      raise e
  end

(* --- Aggregation ------------------------------------------------------ *)

module Summary = struct
  type stat = { count : int; total : float; min : float; max : float; mean : float }

  type t = {
    spans : (string * stat) list;
    counters : (string * int) list;
    samples : (string * stat) list;
  }

  let add tbl name v =
    let count, total, mn, mx =
      match Hashtbl.find_opt tbl name with
      | Some s -> s
      | None -> (0, 0.0, infinity, neg_infinity)
    in
    Hashtbl.replace tbl name
      (count + 1, total +. v, Float.min mn v, Float.max mx v)

  let stats tbl =
    Hashtbl.fold
      (fun name (count, total, min, max) acc ->
        (name, { count; total; min; max; mean = total /. float_of_int count }) :: acc)
      tbl []
    |> List.sort compare

  let of_events events =
    let spans = Hashtbl.create 16
    and counters = Hashtbl.create 16
    and samples = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        match ev with
        | Span { name; dur; _ } -> add spans name dur
        | Count { name; n; _ } ->
          Hashtbl.replace counters name
            (n + Option.value ~default:0 (Hashtbl.find_opt counters name))
        | Sample { name; v; _ } -> add samples name v)
      events;
    {
      spans = stats spans;
      counters = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []);
      samples = stats samples;
    }

  let pp_stat_block ppf title unit rows =
    if rows <> [] then begin
      Format.fprintf ppf "@,%s@," title;
      Format.fprintf ppf "  %-36s %8s %12s %12s %12s %12s@," "name" "count"
        ("total" ^ unit) ("mean" ^ unit) ("min" ^ unit) ("max" ^ unit);
      List.iter
        (fun (name, s) ->
          Format.fprintf ppf "  %-36s %8d %12.4g %12.4g %12.4g %12.4g@," name
            s.count s.total s.mean s.min s.max)
        rows
    end

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    pp_stat_block ppf "spans" " [s]" t.spans;
    if t.counters <> [] then begin
      Format.fprintf ppf "@,counters@,";
      List.iter
        (fun (name, n) -> Format.fprintf ppf "  %-36s %8d@," name n)
        t.counters
    end;
    pp_stat_block ppf "samples" "" t.samples;
    Format.fprintf ppf "@]"
end

(* --- JSON ------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Floats always carry '.', 'e' or a non-numeric token so the reader
     can tell them from ints; %.17g round-trips every double. *)
  let float_token f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_token f)
    | String s -> escape buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf v;
    Buffer.contents buf

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("bad literal, expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "short \\u escape";
            let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
            pos := !pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
          is_float := true;
          true
        | 'n' | 'a' | 'i' | 'f' ->
          (* nan / inf tokens our own writer may produce *)
          is_float := true;
          true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              fields ((k, v) :: acc)
            | Some '}' ->
              incr pos;
              List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              items (v :: acc)
            | Some ']' ->
              incr pos;
              List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' ->
        (* "null" or "nan" (writer output for NaN samples) *)
        if !pos + 3 <= n && String.sub s !pos 3 = "nan" then begin
          pos := !pos + 3;
          Float Float.nan
        end
        else literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s

let value_of_json = function
  | Json.Bool b -> Ok (Bool b)
  | Json.Int i -> Ok (Int i)
  | Json.Float f -> Ok (Float f)
  | Json.String s -> Ok (Str s)
  | Json.Null | Json.List _ | Json.Obj _ -> Error "attribute must be scalar"

let attrs_to_json attrs = Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

let event_to_json = function
  | Span { name; domain; start; dur; parent; attrs } ->
    Json.Obj
      ([
         ("ev", Json.String "span");
         ("name", Json.String name);
         ("domain", Json.Int domain);
         ("start", Json.Float start);
         ("dur", Json.Float dur);
       ]
      @ (match parent with None -> [] | Some p -> [ ("parent", Json.String p) ])
      @ [ ("attrs", attrs_to_json attrs) ])
  | Count { name; domain; time; n; attrs } ->
    Json.Obj
      [
        ("ev", Json.String "count");
        ("name", Json.String name);
        ("domain", Json.Int domain);
        ("time", Json.Float time);
        ("n", Json.Int n);
        ("attrs", attrs_to_json attrs);
      ]
  | Sample { name; domain; time; v; attrs } ->
    Json.Obj
      [
        ("ev", Json.String "sample");
        ("name", Json.String name);
        ("domain", Json.Int domain);
        ("time", Json.Float time);
        ("v", Json.Float v);
        ("attrs", attrs_to_json attrs);
      ]

let ( let* ) = Result.bind

let event_of_json json =
  match json with
  | Json.Obj fields ->
    let find k = List.assoc_opt k fields in
    let str k =
      match find k with
      | Some (Json.String s) -> Ok s
      | _ -> Error ("missing string field " ^ k)
    in
    let int k =
      match find k with
      | Some (Json.Int i) -> Ok i
      | _ -> Error ("missing int field " ^ k)
    in
    let num k =
      match find k with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | _ -> Error ("missing number field " ^ k)
    in
    let attrs () =
      match find "attrs" with
      | None -> Ok []
      | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* v = value_of_json v in
            Ok ((k, v) :: acc))
          (Ok []) kvs
        |> Result.map List.rev
      | Some _ -> Error "attrs must be an object"
    in
    let* kind = str "ev" in
    let* name = str "name" in
    let* domain = int "domain" in
    let* attrs = attrs () in
    (match kind with
    | "span" ->
      let* start = num "start" in
      let* dur = num "dur" in
      let parent =
        match find "parent" with Some (Json.String p) -> Some p | _ -> None
      in
      Ok (Span { name; domain; start; dur; parent; attrs })
    | "count" ->
      let* time = num "time" in
      let* n = int "n" in
      Ok (Count { name; domain; time; n; attrs })
    | "sample" ->
      let* time = num "time" in
      let* v = num "v" in
      Ok (Sample { name; domain; time; v; attrs })
    | other -> Error ("unknown event kind " ^ other))
  | _ -> Error "event must be a JSON object"

module Jsonl = struct
  let write oc events =
    List.iter
      (fun ev ->
        output_string oc (Json.to_string (event_to_json ev));
        output_char oc '\n')
      events;
    flush oc

  let parse_string s =
    let lines = String.split_on_char '\n' s in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match
            let* json = Json.of_string line in
            event_of_json json
          with
          | Ok ev -> go (lineno + 1) (ev :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
    in
    go 1 [] lines

  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    parse_string s
end

(* --- Drain ------------------------------------------------------------ *)

let rec drain sink =
  match sink with
  | Null -> []
  | Buffered b ->
    let events =
      Mutex.protect b.mutex (fun () ->
          let evs =
            List.concat_map
              (fun st ->
                let e = st.events in
                st.events <- [];
                e)
              !(b.registry)
          in
          List.stable_sort (fun a b -> Float.compare (event_time a) (event_time b)) evs)
    in
    (match b.out with
    | Memory -> ()
    | Jsonl_out oc -> Jsonl.write oc events
    | Console ppf ->
      Format.fprintf ppf "%a@." Summary.pp (Summary.of_events events));
    events
  | Tee sinks ->
    let drained = List.map (fun s -> (s, drain s)) sinks in
    (match List.find_opt (fun (s, _) -> enabled s) drained with
    | Some (_, evs) -> evs
    | None -> [])
  | Tagged (_, s) -> drain s
