(* The first-class campaign API: typed spec/event/result with total JSON
   codecs, plus the shared execution entry points (local run, shard run).
   Every front end - the CLI, the anafaultd daemon, the shard worker -
   goes through this module; Simulate/Parsim are the engine room below. *)

module J = Obs.Json

let ( let* ) = Result.bind

(* --- JSON field helpers ------------------------------------------------ *)

let obj_fields = function
  | J.Obj fields -> Ok fields
  | _ -> Error "want a JSON object"

(* Missing (or null) fields take [default]; present fields must decode. *)
let get fields name ~default decode =
  match List.assoc_opt name fields with
  | None | Some J.Null -> Ok default
  | Some v -> begin
    match decode v with
    | Ok _ as ok -> ok
    | Error msg -> Error (name ^ ": " ^ msg)
  end

let require fields name decode =
  match List.assoc_opt name fields with
  | None -> Error ("missing field " ^ name)
  | Some v -> begin
    match decode v with
    | Ok _ as ok -> ok
    | Error msg -> Error (name ^ ": " ^ msg)
  end

let as_str = function J.String s -> Ok s | _ -> Error "want a string"

let as_int = function J.Int i -> Ok i | _ -> Error "want an integer"

let as_float = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error "want a number"

let as_bool = function J.Bool b -> Ok b | _ -> Error "want a boolean"

let as_list = function J.List l -> Ok l | _ -> Error "want a list"

let opt_to_json f = function None -> J.Null | Some v -> f v

let as_opt decode = function
  | J.Null -> Ok None
  | v -> Result.map Option.some (decode v)

(* --- Options ----------------------------------------------------------- *)

type options = {
  model : Faults.Inject.model;
  tolerance : Detect.tolerance;
  sim : Sim.Engine.options;
  retries : Outcome.strategy list;
  samples : int;
  domains : int;
  batch : int;
}

let default_options =
  {
    model = Faults.Inject.Source;
    tolerance = Detect.paper_tolerance;
    sim = Sim.Engine.default_options;
    retries = [ Outcome.Swap_model ];
    samples = 400;
    domains = 1;
    batch = 0;
  }

let model_to_json = function
  | Faults.Inject.Source -> J.Obj [ ("kind", J.String "source") ]
  | Faults.Inject.Resistor { r_short; r_open } ->
    J.Obj
      [
        ("kind", J.String "resistor");
        ("r_short", J.Float r_short);
        ("r_open", J.Float r_open);
      ]

let model_of_json json =
  let* fields = obj_fields json in
  let* kind = require fields "kind" as_str in
  match kind with
  | "source" -> Ok Faults.Inject.Source
  | "resistor" ->
    let default_short, default_open =
      match Faults.Inject.default_resistor with
      | Faults.Inject.Resistor { r_short; r_open } -> (r_short, r_open)
      | Faults.Inject.Source -> assert false
    in
    let* r_short = get fields "r_short" ~default:default_short as_float in
    let* r_open = get fields "r_open" ~default:default_open as_float in
    Ok (Faults.Inject.Resistor { r_short; r_open })
  | other -> Error ("unknown fault model " ^ other)

let tolerance_to_json (t : Detect.tolerance) =
  J.Obj [ ("tol_v", J.Float t.Detect.tol_v); ("tol_t", J.Float t.Detect.tol_t) ]

let tolerance_of_json json =
  let* fields = obj_fields json in
  let d = Detect.paper_tolerance in
  let* tol_v = get fields "tol_v" ~default:d.Detect.tol_v as_float in
  let* tol_t = get fields "tol_t" ~default:d.Detect.tol_t as_float in
  Ok { Detect.tol_v; tol_t }

let integration_to_string = function
  | Sim.Engine.Backward_euler -> "be"
  | Sim.Engine.Trapezoidal -> "trap"

let integration_of_string = function
  | "be" -> Ok Sim.Engine.Backward_euler
  | "trap" -> Ok Sim.Engine.Trapezoidal
  | other -> Error ("unknown integration method " ^ other ^ " (be|trap)")

let budget_to_json (b : Sim.Engine.budget) =
  J.Obj
    [
      ( "max_newton_iterations",
        opt_to_json (fun i -> J.Int i) b.Sim.Engine.max_newton_iterations );
      ("max_steps", opt_to_json (fun i -> J.Int i) b.Sim.Engine.max_steps);
      ( "deadline_seconds",
        opt_to_json (fun f -> J.Float f) b.Sim.Engine.deadline_seconds );
    ]

let budget_of_json json =
  let* fields = obj_fields json in
  let* max_newton_iterations =
    get fields "max_newton_iterations" ~default:None (as_opt as_int)
  in
  let* max_steps = get fields "max_steps" ~default:None (as_opt as_int) in
  let* deadline_seconds =
    get fields "deadline_seconds" ~default:None (as_opt as_float)
  in
  Ok { Sim.Engine.max_newton_iterations; max_steps; deadline_seconds }

let sim_options_to_json (o : Sim.Engine.options) =
  J.Obj
    [
      ("gmin", J.Float o.Sim.Engine.gmin);
      ("reltol", J.Float o.Sim.Engine.reltol);
      ("abstol", J.Float o.Sim.Engine.abstol);
      ("max_iter", J.Int o.Sim.Engine.max_iter);
      ("dv_limit", J.Float o.Sim.Engine.dv_limit);
      ("cmin", J.Float o.Sim.Engine.cmin);
      ("integration", J.String (integration_to_string o.Sim.Engine.integration));
      ("budget", budget_to_json o.Sim.Engine.budget);
      ("solver", J.String (Sim.Solver.backend_to_string o.Sim.Engine.solver));
    ]

let sim_options_of_json json =
  let* fields = obj_fields json in
  let d = Sim.Engine.default_options in
  let* gmin = get fields "gmin" ~default:d.Sim.Engine.gmin as_float in
  let* reltol = get fields "reltol" ~default:d.Sim.Engine.reltol as_float in
  let* abstol = get fields "abstol" ~default:d.Sim.Engine.abstol as_float in
  let* max_iter = get fields "max_iter" ~default:d.Sim.Engine.max_iter as_int in
  let* dv_limit = get fields "dv_limit" ~default:d.Sim.Engine.dv_limit as_float in
  let* cmin = get fields "cmin" ~default:d.Sim.Engine.cmin as_float in
  let* integration =
    get fields "integration" ~default:d.Sim.Engine.integration (fun v ->
        let* s = as_str v in
        integration_of_string s)
  in
  let* budget =
    get fields "budget" ~default:d.Sim.Engine.budget budget_of_json
  in
  let* solver =
    get fields "solver" ~default:d.Sim.Engine.solver (fun v ->
        let* s = as_str v in
        Sim.Solver.backend_of_string s)
  in
  Ok
    {
      Sim.Engine.gmin;
      reltol;
      abstol;
      max_iter;
      dv_limit;
      cmin;
      integration;
      budget;
      solver;
      (* Run-state, never serialised: the submitting side's token is
         meaningless in another process. *)
      cancel = Cancel.never;
    }

let retries_of_spec spec =
  match String.trim spec with
  | "" | "none" -> Ok []
  | spec ->
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc s ->
           let* acc = acc in
           let* strategy = Outcome.strategy_of_string s in
           Ok (strategy :: acc))
         (Ok [])
    |> Result.map List.rev

let options_to_json o =
  J.Obj
    [
      ("model", model_to_json o.model);
      ("tolerance", tolerance_to_json o.tolerance);
      ("sim", sim_options_to_json o.sim);
      ( "retries",
        J.List
          (List.map (fun s -> J.String (Outcome.strategy_to_string s)) o.retries)
      );
      ("samples", J.Int o.samples);
      ("domains", J.Int o.domains);
      ("batch", J.Int o.batch);
    ]

let options_of_json json =
  let* fields = obj_fields json in
  let d = default_options in
  let* model = get fields "model" ~default:d.model model_of_json in
  let* tolerance =
    get fields "tolerance" ~default:d.tolerance tolerance_of_json
  in
  let* sim = get fields "sim" ~default:d.sim sim_options_of_json in
  let* retries =
    get fields "retries" ~default:d.retries (fun v ->
        let* l = as_list v in
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* s = as_str j in
            let* strategy = Outcome.strategy_of_string s in
            Ok (strategy :: acc))
          (Ok []) l
        |> Result.map List.rev)
  in
  let* samples = get fields "samples" ~default:d.samples as_int in
  let* domains = get fields "domains" ~default:d.domains as_int in
  let* batch = get fields "batch" ~default:d.batch as_int in
  Ok { model; tolerance; sim; retries; samples; domains; batch }

let options_of_cli ?(model = "source") ?(solver = "auto")
    ?(tol_v = Detect.paper_tolerance.Detect.tol_v)
    ?(tol_t = Detect.paper_tolerance.Detect.tol_t) ?(retries = "swap-model")
    ?(samples = 400) ?(domains = 1) ?(batch = 0) ?budget_iters ?budget_steps
    ?budget_seconds () =
  let* model =
    match model with
    | "source" -> Ok Faults.Inject.Source
    | "resistor" -> Ok Faults.Inject.default_resistor
    | other -> Error (Printf.sprintf "unknown model %S (source|resistor)" other)
  in
  let* solver = Sim.Solver.backend_of_string solver in
  let* retries = retries_of_spec retries in
  if samples <= 1 then Error "samples must be at least 2"
  else if domains < 1 then Error "domains must be at least 1"
  else if batch < 0 then Error "batch must be non-negative"
  else
    Ok
      {
        model;
        tolerance = { Detect.tol_v; tol_t };
        sim =
          {
            Sim.Engine.default_options with
            Sim.Engine.budget =
              {
                Sim.Engine.max_newton_iterations = budget_iters;
                max_steps = budget_steps;
                deadline_seconds = budget_seconds;
              };
            solver;
          };
        retries;
        samples;
        domains;
        batch;
      }

let config_of_options ?(obs = Obs.null) o ~tran ~observed =
  {
    Simulate.model = o.model;
    tran;
    observed;
    tolerance = o.tolerance;
    sim_options = o.sim;
    retries = o.retries;
    samples = o.samples;
    domains = o.domains;
    batch = o.batch;
    obs;
  }

let options_of_config (c : Simulate.config) =
  {
    model = c.Simulate.model;
    tolerance = c.Simulate.tolerance;
    sim = c.Simulate.sim_options;
    retries = c.Simulate.retries;
    samples = c.Simulate.samples;
    domains = c.Simulate.domains;
    batch = c.Simulate.batch;
  }

(* --- Specs ------------------------------------------------------------- *)

type spec = {
  deck : string;
  observed : string option;
  faults : string;
  options : options;
}

let spec_to_json s =
  J.Obj
    [
      ("anafault", J.String "campaign-spec");
      ("version", J.Int 1);
      ("deck", J.String s.deck);
      ("observed", opt_to_json (fun n -> J.String n) s.observed);
      ("faults", J.String s.faults);
      ("options", options_to_json s.options);
    ]

let spec_of_json json =
  let* fields = obj_fields json in
  let* () =
    match List.assoc_opt "anafault" fields with
    | None | Some (J.String "campaign-spec") -> Ok ()
    | Some _ -> Error "not a campaign spec"
  in
  let* () =
    match List.assoc_opt "version" fields with
    | None | Some (J.Int 1) -> Ok ()
    | Some (J.Int v) -> Error (Printf.sprintf "unsupported spec version %d" v)
    | Some _ -> Error "version: want an integer"
  in
  let* deck = require fields "deck" as_str in
  let* observed = get fields "observed" ~default:None (as_opt as_str) in
  let* faults = require fields "faults" as_str in
  let* options =
    get fields "options" ~default:default_options options_of_json
  in
  Ok { deck; observed; faults; options }

(* --- Compilation ------------------------------------------------------- *)

type compiled = {
  circuit : Netlist.Circuit.t;
  tran : Netlist.Parser.tran;
  observed : string;
  faults : Faults.Fault.t list;
  config : Simulate.config;
  fingerprint : string;
}

let compile ?(obs = Obs.null) spec =
  match Netlist.Parser.parse spec.deck with
  | exception Netlist.Parser.Parse_error (line, msg) ->
    Error (Printf.sprintf "deck line %d: %s" line msg)
  | deck -> begin
    match deck.Netlist.Parser.tran with
    | None -> Error "deck has no .tran card"
    | Some tran -> begin
      let circuit = deck.Netlist.Parser.circuit in
      match Faults.Fault_list.of_string spec.faults with
      | exception Faults.Fault_list.Parse_error (line, msg) ->
        Error (Printf.sprintf "fault list line %d: %s" line msg)
      | faults ->
        let* observed =
          match spec.observed with
          | None -> Ok (Simulate.default_observed circuit)
          | Some node ->
            if List.mem node (Netlist.Circuit.nodes circuit) then Ok node
            else
              Error
                (Printf.sprintf "observed node %S is not in the circuit" node)
        in
        let config = config_of_options ~obs spec.options ~tran ~observed in
        let fingerprint = Simulate.fingerprint config circuit faults in
        Ok { circuit; tran; observed; faults; config; fingerprint }
    end
  end

(* Attach a cancel token to a compiled campaign.  Pure run-state: the
   fingerprint was computed before and ignores it, so a cancellable run
   shares journals and cache entries with an uncancellable one. *)
let with_cancel compiled cancel =
  {
    compiled with
    config =
      {
        compiled.config with
        Simulate.sim_options =
          { compiled.config.Simulate.sim_options with Sim.Engine.cancel };
      };
  }

(* --- Results ----------------------------------------------------------- *)

type result = {
  fingerprint : string;
  total : int;
  results : Outcome.fault_result list;
  wall_seconds : float;
  cached : bool;
}

let result_to_json r =
  J.Obj
    [
      ("anafault", J.String "campaign-result");
      ("fingerprint", J.String r.fingerprint);
      ("total", J.Int r.total);
      ("cached", J.Bool r.cached);
      ("wall_seconds", J.Float r.wall_seconds);
      ( "results",
        J.List
          (List.mapi (fun index fr -> Outcome.result_to_json ~index fr) r.results)
      );
    ]

let result_of_json ~faults json =
  let* fields = obj_fields json in
  let* fingerprint = require fields "fingerprint" as_str in
  let* total = require fields "total" as_int in
  let* cached = get fields "cached" ~default:false as_bool in
  let* wall_seconds = get fields "wall_seconds" ~default:0.0 as_float in
  let* entries = require fields "results" as_list in
  let* indexed =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* entry = Outcome.result_of_json ~faults j in
        Ok (entry :: acc))
      (Ok []) entries
    |> Result.map List.rev
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) indexed in
  if List.length sorted <> total then
    Error
      (Printf.sprintf "result holds %d of %d faults" (List.length sorted) total)
  else if not (List.for_all2 (fun i (j, _) -> i = j) (List.init total Fun.id) sorted)
  then Error "result indices are not the contiguous range"
  else
    Ok
      { fingerprint; total; results = List.map snd sorted; wall_seconds; cached }

let tally r =
  List.fold_left
    (fun (d, u, f) (fr : Outcome.fault_result) ->
      match fr.Outcome.outcome with
      | Outcome.Detected _ -> (d + 1, u, f)
      | Outcome.Undetected -> (d, u + 1, f)
      | Outcome.Sim_failed _ -> (d, u, f + 1))
    (0, 0, 0) r.results

let result_of_run ~fingerprint (run : Simulate.run) =
  {
    fingerprint;
    total = List.length run.Simulate.results;
    results = run.Simulate.results;
    wall_seconds = run.Simulate.wall_seconds;
    cached = false;
  }

let result_of_journal ?fill compiled journal =
  let total = List.length compiled.faults in
  let entries = Journal.completed_results journal in
  let complete =
    List.length entries = total
    && List.for_all2 (fun i (j, _) -> i = j) (List.init total Fun.id) entries
  in
  if complete then
    Ok
      {
        fingerprint = compiled.fingerprint;
        total;
        results = List.map snd entries;
        wall_seconds = 0.0;
        cached = false;
      }
  else begin
    match fill with
    | None ->
      Error
        (Printf.sprintf "journal holds %d of %d results" (List.length entries)
           total)
    | Some fill ->
      (* Degraded mode: every fault the journal misses gets a typed
         stand-in (a dead shard's unsalvaged slice), so the result stays
         total and the failure is visible per fault, not per campaign. *)
      let held = Hashtbl.create 64 in
      List.iter (fun (i, r) -> Hashtbl.replace held i r) entries;
      let faults = Array.of_list compiled.faults in
      let results =
        List.init total (fun i ->
            match Hashtbl.find_opt held i with
            | Some r -> r
            | None -> fill i faults.(i))
      in
      Ok
        {
          fingerprint = compiled.fingerprint;
          total;
          results;
          wall_seconds = 0.0;
          cached = false;
        }
  end

(* The stand-in for a fault a dead shard never journalled. *)
let lost_result ~detail fault =
  {
    Outcome.fault;
    outcome = Outcome.Sim_failed (Outcome.Crashed detail);
    attempts = [];
    stats = Simulate.zero_stats;
    cpu_seconds = 0.0;
  }

(* The stand-in for a fault a cancellation stopped before it simulated.
   Never journalled, so an identical resubmission re-runs exactly these. *)
let cancelled_result ~detail fault =
  {
    Outcome.fault;
    outcome = Outcome.Sim_failed (Outcome.Cancelled detail);
    attempts = [];
    stats = Simulate.zero_stats;
    cpu_seconds = 0.0;
  }

(* --- Events ------------------------------------------------------------ *)

type event =
  | Accepted of { fingerprint : string; total : int }
  | Progress of { completed : int; total : int }
  | Cache_hit of { fingerprint : string }
  | Sharded of { shards : int }
  | Shard_restarted of { shard : int; attempt : int }
  | Shard_lost of { shard : int; salvaged : int; lost : int }
  | Cancelled of { fingerprint : string; reason : string; salvaged : int }
  | Finished of result
  | Failed of { message : string }

let event_to_json = function
  | Accepted { fingerprint; total } ->
    J.Obj
      [
        ("event", J.String "accepted");
        ("fingerprint", J.String fingerprint);
        ("total", J.Int total);
      ]
  | Progress { completed; total } ->
    J.Obj
      [
        ("event", J.String "progress");
        ("completed", J.Int completed);
        ("total", J.Int total);
      ]
  | Cache_hit { fingerprint } ->
    J.Obj
      [ ("event", J.String "cache_hit"); ("fingerprint", J.String fingerprint) ]
  | Sharded { shards } ->
    J.Obj [ ("event", J.String "sharded"); ("shards", J.Int shards) ]
  | Shard_restarted { shard; attempt } ->
    J.Obj
      [
        ("event", J.String "shard_restarted");
        ("shard", J.Int shard);
        ("attempt", J.Int attempt);
      ]
  | Shard_lost { shard; salvaged; lost } ->
    J.Obj
      [
        ("event", J.String "shard_lost");
        ("shard", J.Int shard);
        ("salvaged", J.Int salvaged);
        ("lost", J.Int lost);
      ]
  | Cancelled { fingerprint; reason; salvaged } ->
    J.Obj
      [
        ("event", J.String "cancelled");
        ("fingerprint", J.String fingerprint);
        ("reason", J.String reason);
        ("salvaged", J.Int salvaged);
      ]
  | Finished result ->
    J.Obj [ ("event", J.String "finished"); ("result", result_to_json result) ]
  | Failed { message } ->
    J.Obj [ ("event", J.String "failed"); ("message", J.String message) ]

let event_of_json ~faults json =
  let* fields = obj_fields json in
  let* tag = require fields "event" as_str in
  match tag with
  | "accepted" ->
    let* fingerprint = require fields "fingerprint" as_str in
    let* total = require fields "total" as_int in
    Ok (Accepted { fingerprint; total })
  | "progress" ->
    let* completed = require fields "completed" as_int in
    let* total = require fields "total" as_int in
    Ok (Progress { completed; total })
  | "cache_hit" ->
    let* fingerprint = require fields "fingerprint" as_str in
    Ok (Cache_hit { fingerprint })
  | "sharded" ->
    let* shards = require fields "shards" as_int in
    Ok (Sharded { shards })
  | "shard_restarted" ->
    let* shard = require fields "shard" as_int in
    let* attempt = require fields "attempt" as_int in
    Ok (Shard_restarted { shard; attempt })
  | "shard_lost" ->
    let* shard = require fields "shard" as_int in
    let* salvaged = require fields "salvaged" as_int in
    let* lost = require fields "lost" as_int in
    Ok (Shard_lost { shard; salvaged; lost })
  | "cancelled" ->
    let* fingerprint = require fields "fingerprint" as_str in
    let* reason = require fields "reason" as_str in
    let* salvaged = get fields "salvaged" ~default:0 as_int in
    Ok (Cancelled { fingerprint; reason; salvaged })
  | "finished" ->
    let* result = require fields "result" (result_of_json ~faults) in
    Ok (Finished result)
  | "failed" ->
    let* message = require fields "message" as_str in
    Ok (Failed { message })
  | other -> Error ("unknown event " ^ other)

(* --- Execution --------------------------------------------------------- *)

type local = {
  run : Simulate.run;
  domain_stats : Parsim.domain_stats list;
  result : result;
}

let run_local ?progress ?journal compiled =
  let run, domain_stats =
    Parsim.execute ?progress ?journal compiled.config compiled.circuit
      compiled.faults
  in
  { run; domain_stats; result = result_of_run ~fingerprint:compiled.fingerprint run }

(* --- Sharding ---------------------------------------------------------- *)

let shard_to_string (index, count) = Printf.sprintf "%d/%d" index count

let shard_of_string s =
  let err = Error (Printf.sprintf "bad shard %S (want I/N with 0 <= I < N)" s) in
  match String.split_on_char '/' s with
  | [ a; b ] -> begin
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some index, Some count when count > 0 && index >= 0 && index < count ->
      Ok (index, count)
    | _ -> err
  end
  | _ -> err

let shard_indices ~shard:(index, count) ~total =
  List.filter (fun i -> i mod count = index) (List.init total Fun.id)

let run_shard ?progress ?(resume = false) ~journal_path ~shard compiled =
  let faults = Array.of_list compiled.faults in
  Obs.Failpoint.hit (Printf.sprintf "shard.%d.run" (fst shard));
  (* A resumed shard (the supervisor's respawn of a dead child) salvages
     its previous life's journal; a mismatched or torn one starts over. *)
  let journal =
    let fresh () =
      Journal.start ~path:journal_path ~fingerprint:compiled.fingerprint
        ~resume:false ~faults
    in
    if resume && Sys.file_exists journal_path then begin
      match
        Journal.start ~path:journal_path ~fingerprint:compiled.fingerprint
          ~resume:true ~faults
      with
      | Ok _ as ok -> ok
      | Error _ -> fresh ()
    end
    else fresh ()
  in
  match journal with
  | Error _ as e -> e |> Result.map_error Fun.id
  | Ok j ->
    Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
    let owned = shard_indices ~shard ~total:(Array.length faults) in
    let owned_arr = Array.of_list owned in
    let sub = List.map (fun i -> faults.(i)) owned in
    let journal = Journal.view j ~map:(fun i -> owned_arr.(i)) in
    (match
       Parsim.execute ?progress ~journal compiled.config compiled.circuit sub
     with
    | exception Sim.Engine.Sim_error (err, detail) ->
      Error
        (Printf.sprintf "nominal simulation failed (%s): %s"
           (Sim.Engine.error_to_string err) detail)
    | _run, _stats -> Ok (List.length sub))
