(** AnaFAULT's result presentation: detection tables, overview summaries
    and coverage plots (the paper: "detailed reports, clearly arranged
    overview tables and comprehensive fault coverage plots"). *)

(** One row per fault: id, mechanism, kind, probability, outcome.  Takes
    the bare result list so remote clients and cached campaign results
    (which carry no nominal waveform) render the same table. *)
val pp_results : Format.formatter -> Simulate.fault_result list -> unit

(** {!pp_results} over [run.results]. *)
val pp_table : Format.formatter -> Simulate.run -> unit

(** Aggregate counts, coverage percentages and kernel workload, plus a
    retried-fault count and a per-class breakdown of simulation failures
    ({!Simulate.failure_tally}) when any occurred. *)
val pp_summary : Format.formatter -> Simulate.run -> unit

(** Per-mechanism overview: fault count, detected count, mean detection
    time - the paper's "clearly arranged overview tables". *)
val pp_overview : Format.formatter -> Simulate.run -> unit

(** Per-domain load table of a {!Parsim} run: faults simulated, Newton
    iterations and busy wall-clock seconds per domain. *)
val pp_domains : Format.formatter -> Parsim.domain_stats list -> unit

(** The coverage-versus-time plot (Fig. 5 style), as ASCII art. *)
val coverage_plot : ?points:int -> Simulate.run -> string

(** [csv_of_results results] renders the per-fault table as
    comma-separated values for external tooling; the [failure] column
    holds {!Outcome.failure_to_string} of failed simulations (quoted
    when the detail carries commas) and [attempts] the number of
    retry-ladder rungs run. *)
val csv_of_results : Simulate.fault_result list -> string

(** {!csv_of_results} over [run.results]. *)
val csv : Simulate.run -> string
