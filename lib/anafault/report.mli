(** AnaFAULT's result presentation: detection tables, overview summaries
    and coverage plots (the paper: "detailed reports, clearly arranged
    overview tables and comprehensive fault coverage plots"). *)

(** One row per fault: id, mechanism, kind, probability, outcome. *)
val pp_table : Format.formatter -> Simulate.run -> unit

(** Aggregate counts, coverage percentages and kernel workload, plus a
    retried-fault count and a per-class breakdown of simulation failures
    ({!Simulate.failure_tally}) when any occurred. *)
val pp_summary : Format.formatter -> Simulate.run -> unit

(** Per-mechanism overview: fault count, detected count, mean detection
    time - the paper's "clearly arranged overview tables". *)
val pp_overview : Format.formatter -> Simulate.run -> unit

(** Per-domain load table of a {!Parsim} run: faults simulated, Newton
    iterations and busy wall-clock seconds per domain. *)
val pp_domains : Format.formatter -> Parsim.domain_stats list -> unit

(** The coverage-versus-time plot (Fig. 5 style), as ASCII art. *)
val coverage_plot : ?points:int -> Simulate.run -> string

(** [csv run] renders the per-fault table as comma-separated values for
    external tooling; the [failure] column holds the
    {!Outcome.failure_kind} tag of failed simulations and [attempts] the
    number of retry-ladder rungs run. *)
val csv : Simulate.run -> string
