(** Tolerance-based fault detection (the comparison phase of AnaFAULT's
    post-processing).

    A fault is detected at observation instant [t] when the faulty and
    nominal responses have diverged by more than the amplitude tolerance
    [tol_v] continuously over the whole preceding time-tolerance window
    [t - tol_t, t] - either as raw waveforms (stuck levels, large shifts)
    or after [tol_t]-wide moving-average smoothing (frequency changes
    whose raw waveforms keep crossing but whose local means differ).
    Level shifts below [tol_v] and phase wobble well below [tol_t] count
    as process variation, not faults.  A full window is required, so
    nothing is detected before [tol_t] - the flat start of the paper's
    Fig. 5 plot.  One exception at the other end: a divergence run still
    open when the observation window ends, and already at least half a
    window long, is flushed as a detection at the last sample, so a
    fault that diverges shortly before tstop is not silently lost to
    window truncation (the half-window floor keeps the last sliver of
    tolerated phase wobble from being promoted).  The tolerance pair is the
    one the paper's caption quotes: "2V for the amplitude and 0.2 us for
    the time". *)

type tolerance = { tol_v : float; tol_t : float }

(** The paper's working point: 2 V / 0.2 us. *)
val paper_tolerance : tolerance

(** [first_detection ~tolerance ~signal ~nominal ~faulty] is the earliest
    nominal-grid sample time at which the fault is visible, if any.
    Raises [Not_found] if [signal] is missing from either waveform. *)
val first_detection :
  tolerance:tolerance ->
  signal:string ->
  nominal:Sim.Waveform.t ->
  faulty:Sim.Waveform.t ->
  float option

(** [detected_at ~tolerance ~signal ~nominal ~faulty t] holds when the
    first detection happens at or before [t]. *)
val detected_at :
  tolerance:tolerance ->
  signal:string ->
  nominal:Sim.Waveform.t ->
  faulty:Sim.Waveform.t ->
  float ->
  bool

(** [analyse ~tolerance ~signal ~nominal ~faulty] is {!first_detection}
    with degenerate inputs turned into typed failures: a nominal
    waveform with fewer than two samples, a non-increasing nominal time
    grid ([dt <= 0]) or an empty faulty waveform comes back as [Error]
    instead of an exception, so a campaign can record a per-fault
    failure rather than crash its domain.  A missing [signal] still
    raises [Not_found] (a bad injection, which the campaign taxonomy
    already classifies). *)
val analyse :
  tolerance:tolerance ->
  signal:string ->
  nominal:Sim.Waveform.t ->
  faulty:Sim.Waveform.t ->
  (float option, string) result

(** Prefix-decidable detection, for the lock-step batched campaign loop:
    faulty samples on the nominal grid are fed one at a time, and the
    verdict becomes final the moment it can no longer change - for most
    detected faults well before tstop, which is what lets the batch
    drop them early.  Fed the whole grid, the verdict is exactly
    {!first_detection}'s (including the tail flush, which only ever
    fires at the last grid index and therefore never produces a
    premature [Detected]). *)
module Incremental : sig
  type t

  type verdict =
    | Pending  (** not decidable yet - keep feeding *)
    | Detected of int  (** final: first detection at this grid index *)
    | Clear  (** final (only at end of grid): never detected *)

  (** [create ~tolerance ~times ~nom] starts a detector against the
      nominal response [nom] sampled at [times] (the shared grid).
      [Error] on degenerate grids, as for {!analyse}. *)
  val create :
    tolerance:tolerance ->
    times:float array ->
    nom:float array ->
    (t, string) result

  (** Feed the faulty sample at the next grid index; returns the
      (possibly now-final) verdict.  Raises [Invalid_argument] when fed
      past the end of the grid or after the verdict became final. *)
  val feed : t -> float -> verdict

  val verdict : t -> verdict
end
