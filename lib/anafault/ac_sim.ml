type config = {
  model : Faults.Inject.model;
  source : string;
  observed : string;
  freqs : float list;
  tol_db : float;
  sim_options : Sim.Engine.options;
}

let default_config ~source ~observed =
  {
    model = Faults.Inject.default_resistor;
    source;
    observed;
    freqs = Sim.Spectrum.log_grid ~f_start:10.0 ~f_stop:100e6 ~per_decade:10;
    tol_db = 3.0;
    sim_options = Sim.Engine.default_options;
  }

type outcome = Detected of float | Undetected | Sim_failed of string

type fault_result = { fault : Faults.Fault.t; outcome : outcome }

type run = {
  config : config;
  nominal : Sim.Spectrum.t;
  results : fault_result list;
}

let first_escape config ~nominal ~faulty =
  let nom = Sim.Spectrum.magnitude_db nominal config.observed in
  let flt = Sim.Spectrum.magnitude_db faulty config.observed in
  let freqs = Sim.Spectrum.frequencies nominal in
  let n = Array.length freqs in
  let rec go i =
    if i >= n then None
    else if Float.abs (flt.(i) -. nom.(i)) > config.tol_db then Some freqs.(i)
    else go (i + 1)
  in
  go 0

let ac config circuit =
  Sim.Engine.Analysis.spectrum
    (Sim.Engine.run ~options:config.sim_options circuit
       (Sim.Engine.Analysis.Ac { source = config.source; freqs = config.freqs }))

let run_one config circuit ~nominal fault =
  match
    let faulty_circuit = Faults.Inject.apply ~model:config.model circuit fault in
    ac config faulty_circuit
  with
  | exception Not_found ->
    { fault; outcome = Sim_failed "fault references unknown device/terminal" }
  | exception Sim.Engine.Sim_error (_, msg) -> { fault; outcome = Sim_failed msg }
  | faulty -> begin
    match first_escape config ~nominal ~faulty with
    | Some f -> { fault; outcome = Detected f }
    | None -> { fault; outcome = Undetected }
  end

let run config circuit faults =
  let nominal = ac config circuit in
  { config; nominal; results = List.map (run_one config circuit ~nominal) faults }

let tally run =
  List.fold_left
    (fun (d, u, f) r ->
      match r.outcome with
      | Detected _ -> (d + 1, u, f)
      | Undetected -> (d, u + 1, f)
      | Sim_failed _ -> (d, u, f + 1))
    (0, 0, 0) run.results

let pp_summary ppf run =
  let d, u, f = tally run in
  Format.fprintf ppf
    "@[<v>faults analysed   %d@,detected (AC)     %d@,undetected        %d@,failures          %d@]"
    (List.length run.results) d u f
