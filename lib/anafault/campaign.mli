(** The first-class campaign API: one typed description of a fault
    campaign ({!spec}), one typed stream of things that happen to it
    ({!event}), one typed product ({!result}) - each with a total JSON
    codec - and the execution entry points every front end shares.

    The CLI, the [anafaultd] daemon and the shard worker all speak this
    vocabulary: a local run, a remote submission and a shard of a
    distributed run are the same {!spec} pushed through the same
    {!compile}/{!run_local} machinery, differing only in who drives the
    loop.  This supersedes reaching for {!Simulate.default_config} and
    the [run_one]/[run_one_in]/[run_batch]/[run] entry points directly;
    those remain as the engine room underneath (see the migration notes
    in DESIGN.md). *)

(** {1 Options}

    Everything about a campaign that is not the circuit, the stimulus or
    the fault list, collapsed into one documented record: fault model,
    detection tolerance, kernel options (solver backend, integration
    method, work budget included), retry ladder, output grid, scheduler
    width and lock-step batch width.  The record round-trips through
    JSON ({!options_to_json}/{!options_of_json}) and builds from
    CLI-shaped primitives ({!options_of_cli}). *)
type options = {
  model : Faults.Inject.model;  (** fault injection model *)
  tolerance : Detect.tolerance;  (** detection tolerance (volts, seconds) *)
  sim : Sim.Engine.options;
      (** kernel options; its [budget] bounds each fault simulation *)
  retries : Outcome.strategy list;  (** escalation ladder after failures *)
  samples : int;  (** output grid size (the paper's 400-step run) *)
  domains : int;  (** scheduler width; 1 = serial *)
  batch : int;  (** lock-step batch width; 0 = automatic *)
}

(** The paper's working point: source model, 2 V / 0.2 us tolerance,
    default kernel options, a one-rung [Swap_model] ladder, 400 samples,
    one domain, automatic batch width. *)
val default_options : options

val options_to_json : options -> Obs.Json.t

(** Total inverse of {!options_to_json}.  Missing fields take their
    {!default_options} value; ill-typed fields are errors. *)
val options_of_json : Obs.Json.t -> (options, string) result

(** [options_of_cli ()] builds {!options} from the CLI's primitive
    flags, validating each: [model] is ["source"]/["resistor"], [solver]
    ["auto"]/["dense"]/["sparse"], [retries] a comma-separated ladder
    (or ["none"]), the [budget_*] knobs the per-fault work budget. *)
val options_of_cli :
  ?model:string ->
  ?solver:string ->
  ?tol_v:float ->
  ?tol_t:float ->
  ?retries:string ->
  ?samples:int ->
  ?domains:int ->
  ?batch:int ->
  ?budget_iters:int ->
  ?budget_steps:int ->
  ?budget_seconds:float ->
  unit ->
  (options, string) result

(** [config_of_options opts ~tran ~observed] is the {!Simulate.config}
    the engine room runs on; [obs] defaults to {!Obs.null}. *)
val config_of_options :
  ?obs:Obs.sink ->
  options ->
  tran:Netlist.Parser.tran ->
  observed:string ->
  Simulate.config

(** Inverse projection (drops the telemetry sink and stimulus). *)
val options_of_config : Simulate.config -> options

(** {1 Specs} *)

(** A complete, self-contained campaign description - the unit of work
    the daemon accepts and the cache is keyed on.  [deck] is SPICE
    netlist text carrying a [.tran] card; [faults] is fault-list text in
    the LIFT interchange format; [observed = None] lets the output node
    default ({!Simulate.default_observed}). *)
type spec = {
  deck : string;
  observed : string option;
  faults : string;
  options : options;
}

val spec_to_json : spec -> Obs.Json.t

val spec_of_json : Obs.Json.t -> (spec, string) result

(** {1 Compilation} *)

(** A parsed, validated spec, ready to run: the circuit, its stimulus,
    the resolved observed node, the fault list and the engine-room
    config - plus the campaign {!fingerprint} identifying it. *)
type compiled = {
  circuit : Netlist.Circuit.t;
  tran : Netlist.Parser.tran;
  observed : string;
  faults : Faults.Fault.t list;
  config : Simulate.config;
  fingerprint : string;
      (** {!Simulate.fingerprint} over deck, options and fault list -
          the content address a cache entry and a journal are keyed by *)
}

(** Parse and validate a spec: the deck must parse and carry a [.tran]
    card, the fault list must parse, and an explicit observed node must
    exist in the circuit.  [obs] becomes the campaign's telemetry sink. *)
val compile : ?obs:Obs.sink -> spec -> (compiled, string) result

(** [with_cancel compiled token] threads a cooperative cancel token
    into the compiled campaign's engine options.  Run-state only: the
    fingerprint (already computed) ignores it, so cancellable and
    uncancellable runs share journals and cache entries. *)
val with_cancel : compiled -> Cancel.t -> compiled

(** {1 Results} *)

type result = {
  fingerprint : string;
  total : int;
  results : Outcome.fault_result list;  (** in fault-list order *)
  wall_seconds : float;
  cached : bool;  (** served from a result cache, no simulation run *)
}

val result_to_json : result -> Obs.Json.t

(** [result_of_json ~faults json] rebuilds a result against the
    campaign's fault array (the codec stores per-fault indices and ids,
    not whole faults - both ends of the wire hold the spec). *)
val result_of_json :
  faults:Faults.Fault.t array -> Obs.Json.t -> (result, string) Stdlib.result

(** Detected / undetected / failed counts. *)
val tally : result -> int * int * int

(** [result_of_run ~fingerprint run] wraps an engine-room run. *)
val result_of_run : fingerprint:string -> Simulate.run -> result

(** [result_of_journal compiled journal] rebuilds the campaign result
    from a (merged) journal alone - no simulation; errors when the
    journal does not hold every fault of the campaign.

    With [fill], a journal that misses faults yields a {e typed partial
    result} instead: every missing index is filled by [fill index
    fault] (typically {!lost_result}), so the result stays total and a
    dead shard's unsalvaged slice surfaces as per-fault typed failures,
    not a campaign-level error. *)
val result_of_journal :
  ?fill:(int -> Faults.Fault.t -> Outcome.fault_result) ->
  compiled ->
  Journal.t ->
  (result, string) Stdlib.result

(** [lost_result ~detail fault] is the stand-in for a fault no journal
    line survived for: [Sim_failed (Crashed detail)], zero stats. *)
val lost_result : detail:string -> Faults.Fault.t -> Outcome.fault_result

(** [cancelled_result ~detail fault] is the stand-in for a fault a
    cancellation stopped before it simulated: [Sim_failed (Cancelled
    detail)], zero stats.  Never journalled, so an identical
    resubmission re-runs exactly these faults. *)
val cancelled_result : detail:string -> Faults.Fault.t -> Outcome.fault_result

(** {1 Events}

    The typed progress stream a campaign emits while it runs - what the
    daemon writes to its clients, one JSON object per line. *)
type event =
  | Accepted of { fingerprint : string; total : int }
      (** the job was admitted (queued or about to run) *)
  | Progress of { completed : int; total : int }
  | Cache_hit of { fingerprint : string }
      (** the result that follows was served from the cache *)
  | Sharded of { shards : int }
      (** the job was split across this many worker processes *)
  | Shard_restarted of { shard : int; attempt : int }
      (** a shard child died and is being respawned (to resume its own
          partial journal); [attempt] counts its restarts, 1-based *)
  | Shard_lost of { shard : int; salvaged : int; lost : int }
      (** a shard stayed dead through its retry budget: [salvaged]
          results were recovered from its journal, [lost] faults carry
          typed [Crashed] failures in the result that follows *)
  | Cancelled of { fingerprint : string; reason : string; salvaged : int }
      (** the job was cancelled (request, deadline, or orphaned);
          [salvaged] results reached the campaign journal before the
          stop and will be skipped by an identical resubmission.  A
          terminal event: nothing follows it *)
  | Finished of result
  | Failed of { message : string }

val event_to_json : event -> Obs.Json.t

val event_of_json :
  faults:Faults.Fault.t array -> Obs.Json.t -> (event, string) Stdlib.result

(** {1 Execution} *)

(** What a local (in-process) campaign execution returns: the full
    engine-room run (nominal waveform included, for plots and
    summaries), the scheduler's load report, and the wire-shaped
    {!result}. *)
type local = {
  run : Simulate.run;
  domain_stats : Parsim.domain_stats list;
  result : result;
}

(** [run_local compiled] executes the campaign in-process through
    {!Parsim.execute} (serial, parallel and lock-step batched paths
    dispatch on the compiled options).  [progress] and [journal] are
    passed through; exceptions of the nominal simulation propagate
    ({!Sim.Engine.Sim_error}). *)
val run_local :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  compiled ->
  local

(** {1 Sharding}

    A shard is the slice of a campaign a worker process owns: fault
    indices congruent to [index] modulo [count].  Shard workers journal
    under whole-campaign indices ({!Journal.view}), so the daemon can
    {!Journal.merge} the per-shard journals into one campaign journal
    interchangeable with an unsharded run's. *)

(** ["I/N"], e.g. ["0/2"]. *)
val shard_to_string : int * int -> string

val shard_of_string : string -> (int * int, string) Stdlib.result

(** The whole-campaign fault indices shard [index/count] owns. *)
val shard_indices : shard:int * int -> total:int -> int list

(** [run_shard ~journal_path ~shard compiled] simulates just the owned
    slice, recording every result into a fresh journal at
    [journal_path] under whole-campaign indices.  Returns the number of
    faults simulated.  Kernel failure of the shard's nominal run is
    returned as [Error].

    With [resume] (default false), an existing journal at
    [journal_path] from a previous life of this shard is restored
    first and only the remaining faults simulate - how a supervised
    respawn salvages the work its predecessor completed before dying.
    A missing, torn or mismatched journal silently starts fresh. *)
val run_shard :
  ?progress:(int -> int -> unit) ->
  ?resume:bool ->
  journal_path:string ->
  shard:int * int ->
  compiled ->
  (int, string) Stdlib.result
