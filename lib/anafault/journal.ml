(* Crash-safe campaign journal: a JSONL file holding one header line
   (campaign fingerprint) plus one line per completed fault, flushed as
   it is written.  A campaign killed at any point leaves at worst one
   torn trailing line, which resume ignores; every intact line is a
   fault that never needs re-simulating. *)

module J = Obs.Json

let fingerprint pieces = Digest.to_hex (Digest.string (String.concat "\x00" pieces))

(* Push a line through the page cache to the platter before anyone
   depends on it: flush the channel, then fsync the fd.  Without the
   fsync a power-loss-style crash can commit the file name (via the
   directory) while the bytes are still in flight, leaving an empty or
   torn "completed" entry. *)
let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Persist a directory entry (a fresh file, a rename target): fsync the
   directory itself.  Best-effort - some filesystems refuse directory
   fsync; the entry then lasts as long as the metadata journal does. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

type t = {
  path : string;
  fingerprint : string;
  total : int;
  oc : out_channel;
  lock : Mutex.t;
  (* Results restored from disk at open plus everything recorded since;
     [find] serves the campaign loops, so a fault is never simulated
     twice per journal. *)
  completed : (int, Outcome.fault_result) Hashtbl.t;
  restored : int;
  (* Index remapping applied by [find]/[record] - identity except in a
     shard [view], where a campaign loop running over a sub-list records
     under the faults' whole-campaign indices. *)
  map : int -> int;
}

let header_line ~fingerprint ~total =
  J.to_string
    (J.Obj
       [
         ("journal", J.String "anafault");
         ("version", J.Int 1);
         ("fingerprint", J.String fingerprint);
         ("faults", J.Int total);
       ])

let parse_header line ~fingerprint ~total =
  match J.of_string line with
  | Error msg -> Error ("journal header is not JSON: " ^ msg)
  | Ok (J.Obj fields) -> begin
    let str name =
      match List.assoc_opt name fields with Some (J.String s) -> Some s | _ -> None
    in
    let int name =
      match List.assoc_opt name fields with Some (J.Int i) -> Some i | _ -> None
    in
    match (str "journal", int "version", str "fingerprint", int "faults") with
    | Some "anafault", Some 1, Some fp, Some n ->
      if not (String.equal fp fingerprint) then
        Error
          "journal fingerprint mismatch: it belongs to a different campaign \
           (circuit, config or fault list changed)"
      else if n <> total then
        Error
          (Printf.sprintf "journal holds %d faults, campaign has %d" n total)
      else Ok ()
    | Some "anafault", Some v, _, _ when v <> 1 ->
      Error (Printf.sprintf "unsupported journal version %d" v)
    | _ -> Error "not an anafault journal"
  end
  | Ok _ -> Error "journal header is not an object"

(* Read every line of an existing journal; unparseable lines (the torn
   tail of a crashed append, at worst) are skipped.  Later entries for
   the same index win, so a journal that was resumed before a
   now-skipped line stays consistent. *)
let restore path ~fingerprint ~faults tbl =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let header = try Some (input_line ic) with End_of_file -> None in
  match header with
  | None -> Error "journal file is empty"
  | Some line -> begin
    match parse_header line ~fingerprint ~total:(Array.length faults) with
    | Error _ as e -> e
    | Ok () ->
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> Ok ()
        | line ->
          if not (String.trim line = "") then begin
            match J.of_string line with
            | Error _ -> () (* torn tail of a crashed append *)
            | Ok json -> begin
              match Outcome.result_of_json ~faults json with
              | Error _ -> ()
              | Ok (index, result) -> Hashtbl.replace tbl index result
            end
          end;
          loop ()
      in
      loop ()
  end

let start ~path ~fingerprint ~resume ~faults =
  let total = Array.length faults in
  let completed = Hashtbl.create 64 in
  let fresh () =
    let oc = open_out path in
    output_string oc (header_line ~fingerprint ~total);
    output_char oc '\n';
    fsync_channel oc;
    fsync_dir (Filename.dirname path);
    Ok
      {
        path;
        fingerprint;
        total;
        oc;
        lock = Mutex.create ();
        completed;
        restored = 0;
        map = Fun.id;
      }
  in
  if resume && Sys.file_exists path then begin
    match restore path ~fingerprint ~faults completed with
    | Error msg -> Error (path ^ ": " ^ msg)
    | Ok () ->
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      Ok
        {
          path;
          fingerprint;
          total;
          oc;
          lock = Mutex.create ();
          completed;
          restored = Hashtbl.length completed;
          map = Fun.id;
        }
  end
  else fresh ()

(* The view shares the parent's channel, lock and completed table - it
   is the same journal, addressed through other indices. *)
let view t ~map = { t with map = (fun i -> t.map (map i)) }

let find t index fault =
  let index = t.map index in
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.completed index with
  | Some r when String.equal r.Outcome.fault.Faults.Fault.id fault.Faults.Fault.id
    ->
    Some r
  | Some _ | None -> None

let record t index result =
  let index = t.map index in
  Mutex.protect t.lock @@ fun () ->
  Obs.Failpoint.hit "journal.record";
  Hashtbl.replace t.completed index result;
  output_string t.oc (J.to_string (Outcome.result_to_json ~index result));
  output_char t.oc '\n';
  fsync_channel t.oc

let completed_count t = Mutex.protect t.lock @@ fun () -> Hashtbl.length t.completed

let completed_results t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold (fun i r acc -> (i, r) :: acc) t.completed []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Merge shard journals into one campaign journal.  Every input must
   carry the merged campaign's fingerprint and fault count; a later
   input wins on a shared index.  The output is laid out exactly as a
   single-process serial run lays it out - one header, then result
   lines in index order - so a merged journal and an unsharded journal
   are interchangeable: either resumes the other's campaign. *)
let merge ?(lenient = false) ~out ~fingerprint ~faults paths =
  let tbl = Hashtbl.create 64 in
  let rec load = function
    | [] -> Ok ()
    | p :: rest -> begin
      match
        if Sys.file_exists p then restore p ~fingerprint ~faults tbl
        else Error "journal file is missing"
      with
      | Error msg when not lenient -> Error (p ^ ": " ^ msg)
      | Error _ (* lenient: a dead shard's missing/torn journal salvages
                   to nothing; the merged journal just lacks its slice *)
      | Ok () ->
        load rest
    end
  in
  match load paths with
  | Error _ as e -> e
  | Ok () ->
    let entries =
      Hashtbl.fold (fun i r acc -> (i, r) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    (* tmp + fsync + rename: a crash mid-merge leaves the previous
       journal (or nothing) at [out], never a torn merge. *)
    let tmp = out ^ ".tmp" in
    let oc = open_out tmp in
    (try
       output_string oc (header_line ~fingerprint ~total:(Array.length faults));
       output_char oc '\n';
       List.iter
         (fun (index, r) ->
           output_string oc (J.to_string (Outcome.result_to_json ~index r));
           output_char oc '\n')
         entries;
       fsync_channel oc;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp out;
    fsync_dir (Filename.dirname out);
    Ok (List.length entries)

let restored_count t = t.restored

let total t = t.total

let path t = t.path

let close t = close_out_noerr t.oc
