type signature = { fault : Faults.Fault.t; samples : float array option }

type t = {
  config : Simulate.config;
  grid : float array;  (** observation times *)
  nominal : float array;
  signatures : signature list;
}

let sample_on grid config wf =
  Array.map (fun t -> Sim.Waveform.value_at wf config.Simulate.observed t) grid

let build config circuit faults =
  let nominal_wf, _ = Simulate.nominal config circuit in
  let grid = Sim.Waveform.times nominal_wf in
  let signature fault =
    match Faults.Inject.apply ~model:config.Simulate.model circuit fault with
    | exception Not_found -> { fault; samples = None }
    | faulty -> begin
      match
        Sim.Engine.run ~options:config.Simulate.sim_options
          ~obs:config.Simulate.obs faulty
          (Sim.Engine.Analysis.Tran
             {
               tstep = config.Simulate.tran.Netlist.Parser.tstep;
               tstop = config.Simulate.tran.Netlist.Parser.tstop;
               uic = config.Simulate.tran.Netlist.Parser.uic;
             })
      with
      | exception Sim.Engine.Sim_error _ -> { fault; samples = None }
      | r ->
        { fault; samples = Some (sample_on grid config (Sim.Engine.Analysis.waveform r)) }
    end
  in
  {
    config;
    grid;
    nominal = sample_on grid config nominal_wf;
    signatures = List.map signature faults;
  }

let fault_count t = List.length t.signatures

let rms a b =
  let n = Array.length a in
  if n = 0 then infinity
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = a.(i) -. b.(i) in
      acc := !acc +. (d *. d)
    done;
    Float.sqrt (!acc /. float_of_int n)
  end

let nominal_distance t wf = rms t.nominal (sample_on t.grid t.config wf)

let rank t wf =
  let obs = sample_on t.grid t.config wf in
  List.filter_map
    (fun s ->
      match s.samples with
      | Some sig_ -> Some (s.fault, rms obs sig_)
      | None -> None)
    t.signatures
  |> List.sort (fun (_, a) (_, b) -> Float.compare a b)

let diagnose t wf =
  match rank t wf with
  | best :: _ -> Some best
  | [] -> None
