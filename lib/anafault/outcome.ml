(* The typed per-fault result vocabulary shared by the serial loop, the
   parallel scheduler and the campaign journal.  Lives below Simulate so
   Journal can read and write results without depending on the loop. *)

type failure =
  | Dc_no_convergence of string
  | Tran_step_underflow of string
  | Singular_matrix of string
  | Bad_injection of string
  | Budget_exceeded of string
  | Cancelled of string
  | Crashed of string

let failure_kind = function
  | Dc_no_convergence _ -> "dc_no_convergence"
  | Tran_step_underflow _ -> "tran_step_underflow"
  | Singular_matrix _ -> "singular_matrix"
  | Bad_injection _ -> "bad_injection"
  | Budget_exceeded _ -> "budget_exceeded"
  | Cancelled _ -> "cancelled"
  | Crashed _ -> "crashed"

let failure_detail = function
  | Dc_no_convergence d
  | Tran_step_underflow d
  | Singular_matrix d
  | Bad_injection d
  | Budget_exceeded d
  | Cancelled d
  | Crashed d ->
    d

(* The one text rendering of a failure.  Everything that prints a
   failure - the CLI table, the CSV, the wire protocol's error events -
   goes through this pair, so the journal, the wire and the reports can
   never disagree on the same typed failure. *)
let failure_to_string f =
  let d = failure_detail f in
  if d = "" then failure_kind f else failure_kind f ^ ": " ^ d

let failure_of_kind kind detail =
  match kind with
  | "dc_no_convergence" -> Ok (Dc_no_convergence detail)
  | "tran_step_underflow" -> Ok (Tran_step_underflow detail)
  | "singular_matrix" -> Ok (Singular_matrix detail)
  | "bad_injection" -> Ok (Bad_injection detail)
  | "budget_exceeded" -> Ok (Budget_exceeded detail)
  | "cancelled" -> Ok (Cancelled detail)
  | "crashed" -> Ok (Crashed detail)
  | other -> Error ("unknown failure kind " ^ other)

let failure_of_string s =
  match String.index_opt s ':' with
  | None -> failure_of_kind (String.trim s) ""
  | Some i ->
    let kind = String.trim (String.sub s 0 i) in
    let detail =
      let d = String.sub s (i + 1) (String.length s - i - 1) in
      if String.length d > 0 && d.[0] = ' ' then
        String.sub d 1 (String.length d - 1)
      else d
    in
    failure_of_kind kind detail

let of_engine_error (err : Sim.Engine.error) detail =
  match err with
  | Sim.Engine.Dc_no_convergence -> Dc_no_convergence detail
  | Sim.Engine.Tran_step_underflow -> Tran_step_underflow detail
  | Sim.Engine.Singular_matrix -> Singular_matrix detail
  | Sim.Engine.Budget_exceeded -> Budget_exceeded detail
  | Sim.Engine.Cancelled -> Cancelled detail

(* Only kernel convergence failures are worth re-attempting: a bad
   injection stays bad, a budget trip was deliberate, a cancellation
   must stop the ladder dead, and a crash is a bug report, not a
   tolerance problem. *)
let retryable = function
  | Dc_no_convergence _ | Tran_step_underflow _ | Singular_matrix _ -> true
  | Bad_injection _ | Budget_exceeded _ | Cancelled _ | Crashed _ -> false

(* A failure that may have corrupted or bypassed shared session state;
   the campaign loops quarantine the session (rebuild it) before the
   next fault.  Bad injections raise before any device is patched.  A
   cancellation aborts mid-solve, leaving device state half-updated,
   so it poisons too - moot in practice, since a cancelled campaign
   stops simulating. *)
let poisons_session = function
  | Bad_injection _ -> false
  | Dc_no_convergence _ | Tran_step_underflow _ | Singular_matrix _
  | Budget_exceeded _ | Cancelled _ | Crashed _ ->
    true

type strategy =
  | Baseline
  | Swap_model
  | Cut_tstep of float
  | Raise_gmin of float
  | Relax_reltol of float

let strategy_to_string = function
  | Baseline -> "baseline"
  | Swap_model -> "swap-model"
  | Cut_tstep f -> Printf.sprintf "cut-tstep=%.17g" f
  | Raise_gmin f -> Printf.sprintf "raise-gmin=%.17g" f
  | Relax_reltol f -> Printf.sprintf "relax-reltol=%.17g" f

let strategy_of_string s =
  let name, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let with_arg default k =
    match (String.contains s '=', arg) with
    | false, _ -> Ok (k default)
    | true, Some f -> Ok (k f)
    | true, None -> Error ("bad numeric argument in strategy " ^ s)
  in
  match name with
  | "baseline" -> Ok Baseline
  | "swap-model" -> Ok Swap_model
  | "cut-tstep" -> with_arg 0.1 (fun f -> Cut_tstep f)
  | "raise-gmin" -> with_arg 1e3 (fun f -> Raise_gmin f)
  | "relax-reltol" -> with_arg 10.0 (fun f -> Relax_reltol f)
  | other -> Error ("unknown retry strategy " ^ other)

(* One rung of the retry ladder as it was actually run: [None] means the
   attempt succeeded (it is the winning strategy). *)
type attempt = { strategy : strategy; failure : failure option }

type outcome = Detected of float | Undetected | Sim_failed of failure

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  attempts : attempt list;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

let outcome_to_string = function
  | Detected t -> Printf.sprintf "detected at %.4g s" t
  | Undetected -> "undetected"
  | Sim_failed f -> "sim failed: " ^ failure_to_string f

(* --- JSONL codec (journal lines) -------------------------------------- *)

module J = Obs.Json

let failure_to_json f =
  J.Obj [ ("kind", J.String (failure_kind f)); ("detail", J.String (failure_detail f)) ]

let failure_of_json = function
  | J.Obj fields -> begin
    match (List.assoc_opt "kind" fields, List.assoc_opt "detail" fields) with
    | Some (J.String kind), Some (J.String detail) -> failure_of_kind kind detail
    | Some (J.String kind), None -> failure_of_kind kind ""
    | _ -> Error "failure: want {kind; detail}"
  end
  | _ -> Error "failure: want an object"

let attempt_to_json a =
  J.Obj
    (("strategy", J.String (strategy_to_string a.strategy))
    ::
    (match a.failure with
    | None -> []
    | Some f -> [ ("failure", failure_to_json f) ]))

let attempt_of_json = function
  | J.Obj fields -> begin
    match List.assoc_opt "strategy" fields with
    | Some (J.String s) -> begin
      match strategy_of_string s with
      | Error msg -> Error msg
      | Ok strategy -> begin
        match List.assoc_opt "failure" fields with
        | None -> Ok { strategy; failure = None }
        | Some j ->
          Result.map (fun f -> { strategy; failure = Some f }) (failure_of_json j)
      end
    end
    | _ -> Error "attempt: want a strategy string"
  end
  | _ -> Error "attempt: want an object"

(* A number that survives the codec bit-for-bit: Json.Float prints with
   %.17g, which round-trips IEEE doubles exactly. *)
let result_to_json ~index r =
  let open J in
  let outcome_fields =
    match r.outcome with
    | Detected t -> [ ("outcome", String "detected"); ("t_detect", Float t) ]
    | Undetected -> [ ("outcome", String "undetected") ]
    | Sim_failed f -> [ ("outcome", String "failed"); ("failure", failure_to_json f) ]
  in
  Obj
    ([ ("index", Int index); ("id", String r.fault.Faults.Fault.id) ]
    @ outcome_fields
    @ [
        ("attempts", List (List.map attempt_to_json r.attempts));
        ( "stats",
          Obj
            [
              ("newton_iterations", Int r.stats.Sim.Engine.newton_iterations);
              ("accepted_steps", Int r.stats.Sim.Engine.accepted_steps);
              ("rejected_steps", Int r.stats.Sim.Engine.rejected_steps);
            ] );
        ("cpu_seconds", Float r.cpu_seconds);
      ])

let ( let* ) = Result.bind

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error ("missing field " ^ name)

let as_int = function
  | J.Int i -> Ok i
  | _ -> Error "want an integer"

let as_float = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error "want a number"

let result_of_json ~faults json =
  match json with
  | J.Obj fields ->
    let* index = Result.bind (field fields "index") as_int in
    if index < 0 || index >= Array.length faults then
      Error (Printf.sprintf "fault index %d out of range" index)
    else begin
      let fault = faults.(index) in
      let* id =
        match field fields "id" with
        | Ok (J.String s) -> Ok s
        | _ -> Error "want an id string"
      in
      if not (String.equal id fault.Faults.Fault.id) then
        Error
          (Printf.sprintf "journal id %s does not match fault %s at index %d" id
             fault.Faults.Fault.id index)
      else
        let* outcome =
          match field fields "outcome" with
          | Ok (J.String "detected") ->
            let* t = Result.bind (field fields "t_detect") as_float in
            Ok (Detected t)
          | Ok (J.String "undetected") -> Ok Undetected
          | Ok (J.String "failed") ->
            let* f = Result.bind (field fields "failure") failure_of_json in
            Ok (Sim_failed f)
          | Ok _ | Error _ -> Error "want an outcome tag"
        in
        let* attempts =
          match List.assoc_opt "attempts" fields with
          | Some (J.List l) ->
            List.fold_right
              (fun j acc ->
                let* acc = acc in
                let* a = attempt_of_json j in
                Ok (a :: acc))
              l (Ok [])
          | Some _ -> Error "attempts: want a list"
          | None -> Ok []
        in
        let* stats =
          match List.assoc_opt "stats" fields with
          | Some (J.Obj s) ->
            let* ni = Result.bind (field s "newton_iterations") as_int in
            let* acc = Result.bind (field s "accepted_steps") as_int in
            let* rej = Result.bind (field s "rejected_steps") as_int in
            Ok
              {
                Sim.Engine.newton_iterations = ni;
                accepted_steps = acc;
                rejected_steps = rej;
              }
          | Some _ -> Error "stats: want an object"
          | None ->
            Ok
              {
                Sim.Engine.newton_iterations = 0;
                accepted_steps = 0;
                rejected_steps = 0;
              }
        in
        let* cpu_seconds = Result.bind (field fields "cpu_seconds") as_float in
        Ok (index, { fault; outcome; attempts; stats; cpu_seconds })
    end
  | _ -> Error "journal entry: want an object"
