type tolerance = { tol_v : float; tol_t : float }

let paper_tolerance = { tol_v = 2.0; tol_t = 0.2e-6 }

(* Detection works on the two responses sampled over the nominal time
   grid.  A fault is detected at grid instant [t] when either

   - the raw responses have differed by more than [tol_v] continuously
     for the whole preceding time tolerance (stuck levels, large shifts:
     a genuine, persistent discrepancy), or
   - the tol_t-wide moving averages have: an oscillation whose frequency
     changes so much that the raw signals keep crossing still carries a
     persistently different local mean.

   Both criteria need a full window, so nothing can be detected before
   [tol_t] - the flat start of the paper's Fig. 5 plot.  Phase wobble
   well inside the time tolerance moves neither criterion: the raw
   divergence collapses at each crossing and the local means stay
   close. *)

type sampled = { dt : float; nom : float array; flt : float array }

let sample ~signal ~nominal ~faulty =
  let times = Sim.Waveform.times nominal in
  let n = Array.length times in
  if n < 2 then invalid_arg "Detect: nominal waveform too short";
  let nom = Sim.Waveform.samples nominal signal in
  let flt = Array.map (Sim.Waveform.value_at faulty signal) times in
  { dt = (times.(n - 1) -. times.(0)) /. float_of_int (n - 1); nom; flt }

let moving_average ~half x =
  let n = Array.length x in
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. x.(i)
  done;
  Array.init n (fun i ->
      let lo = max 0 (i - half) and hi = min (n - 1) (i + half) in
      (prefix.(hi + 1) -. prefix.(lo)) /. float_of_int (hi + 1 - lo))

(* Index of the first grid point from which a window of [k] samples of
   continuous divergence ends, or None.  A run still open when the data
   ends is flushed as a detection at the last index, provided it has
   already persisted for at least half the window: divergence that
   starts within [tol_t] of tstop persists to the end of the observation
   window, and truncating the window must not hide it.  The
   half-window floor keeps the flush from promoting the last sliver of
   tolerated phase wobble (a few diverging samples around the final
   edge) into a spurious detection. *)
let flush_run ~k run = run >= max 1 ((k + 1) / 2)

let first_sustained ~tol_v ~k a b =
  let n = Array.length a in
  let rec go i run =
    if i >= n then if flush_run ~k run then Some (n - 1) else None
    else begin
      let run = if Float.abs (a.(i) -. b.(i)) > tol_v then run + 1 else 0 in
      if run >= k + 1 then Some i else go (i + 1) run
    end
  in
  go 0 0

let detection_index ~tolerance s =
  let k = max 1 (int_of_float (Float.round (tolerance.tol_t /. s.dt))) in
  let raw = first_sustained ~tol_v:tolerance.tol_v ~k s.nom s.flt in
  let nom_avg = moving_average ~half:(k / 2) s.nom in
  let flt_avg = moving_average ~half:(k / 2) s.flt in
  let smooth = first_sustained ~tol_v:tolerance.tol_v ~k nom_avg flt_avg in
  match (raw, smooth) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as r), None | None, (Some _ as r) -> r
  | None, None -> None

let first_detection ~tolerance ~signal ~nominal ~faulty =
  let s = sample ~signal ~nominal ~faulty in
  match detection_index ~tolerance s with
  | Some i -> Some (Sim.Waveform.times nominal).(i)
  | None -> None

let detected_at ~tolerance ~signal ~nominal ~faulty t =
  match first_detection ~tolerance ~signal ~nominal ~faulty with
  | Some td -> td <= t
  | None -> false

(* The guarded entry point: every degenerate input that would make the
   comparison meaningless comes back as [Error] instead of an exception,
   so a campaign records a typed per-fault failure rather than crashing
   its domain.  A missing signal still raises [Not_found] - that is a
   bad injection, not a degenerate waveform, and the campaign taxonomy
   already classifies it. *)
let analyse ~tolerance ~signal ~nominal ~faulty =
  let times = Sim.Waveform.times nominal in
  let n = Array.length times in
  if n < 2 then Error "nominal waveform too short (need at least 2 samples)"
  else begin
    let dt = (times.(n - 1) -. times.(0)) /. float_of_int (n - 1) in
    if dt <= 0.0 then Error "nominal time grid is degenerate (dt <= 0)"
    else if Array.length (Sim.Waveform.times faulty) = 0 then
      Error "faulty waveform is empty"
    else begin
      let s = sample ~signal ~nominal ~faulty in
      (* Threshold comparisons are silently false on NaN and saturate on
         infinities, so a diverged response must fail typed here rather
         than tabulate as undetected. *)
      if not (Array.for_all Float.is_finite s.nom) then
        Error "nominal response contains non-finite samples"
      else if not (Array.for_all Float.is_finite s.flt) then
        Error "faulty response contains non-finite samples"
      else begin
        match detection_index ~tolerance s with
        | Some i -> Ok (Some times.(i))
        | None -> Ok None
      end
    end
  end

(* Prefix-decidable detection for the batched lock-step loop: faulty
   samples arrive one grid point at a time, and the moment the combined
   raw/smooth verdict can no longer change the fault is retired from the
   batch.  Fed the full grid, the verdict equals [detection_index] on
   the same arrays - including the tail flush, which only ever fires at
   the last index and therefore never causes a premature [Detected]. *)
module Incremental = struct
  type verdict = Pending | Detected of int | Clear

  type t = {
    tol_v : float;
    k : int;
    half : int;
    n : int;
    nom : float array;
    nom_prefix : float array;
    flt_prefix : float array;
    mutable fed : int;
    mutable raw_run : int;
    mutable raw_first : int option;
    mutable smooth_next : int;  (* first smooth index not yet evaluated *)
    mutable smooth_run : int;
    mutable smooth_first : int option;
    mutable decided : verdict;
  }

  let create ~tolerance ~times ~nom =
    let n = Array.length times in
    if n < 2 then Error "nominal waveform too short (need at least 2 samples)"
    else if Array.length nom <> n then
      Error "times/samples length mismatch"
    else begin
      let dt = (times.(n - 1) -. times.(0)) /. float_of_int (n - 1) in
      if dt <= 0.0 then Error "nominal time grid is degenerate (dt <= 0)"
      else if not (Array.for_all Float.is_finite nom) then
        Error "nominal response contains non-finite samples"
      else begin
        let k = max 1 (int_of_float (Float.round (tolerance.tol_t /. dt))) in
        let nom_prefix = Array.make (n + 1) 0.0 in
        for i = 0 to n - 1 do
          nom_prefix.(i + 1) <- nom_prefix.(i) +. nom.(i)
        done;
        Ok
          {
            tol_v = tolerance.tol_v;
            k;
            half = k / 2;
            n;
            nom;
            nom_prefix;
            flt_prefix = Array.make (n + 1) 0.0;
            fed = 0;
            raw_run = 0;
            raw_first = None;
            smooth_next = 0;
            smooth_run = 0;
            smooth_first = None;
            decided = Pending;
          }
      end
    end

  let verdict st = st.decided

  let avg prefix ~n ~half j =
    let lo = max 0 (j - half) and hi = min (n - 1) (j + half) in
    (prefix.(hi + 1) -. prefix.(lo)) /. float_of_int (hi + 1 - lo)

  let feed st x =
    (match st.decided with
    | Detected _ | Clear -> invalid_arg "Detect.Incremental.feed: already decided"
    | Pending -> ());
    if st.fed >= st.n then invalid_arg "Detect.Incremental.feed: grid exhausted";
    let g = st.fed in
    st.flt_prefix.(g + 1) <- st.flt_prefix.(g) +. x;
    st.fed <- g + 1;
    (* Raw criterion at index g (the scan stops at its first fire, like
       [first_sustained]). *)
    if st.raw_first = None then begin
      st.raw_run <-
        (if Float.abs (st.nom.(g) -. x) > st.tol_v then st.raw_run + 1 else 0);
      if st.raw_run >= st.k + 1 then st.raw_first <- Some g
    end;
    (* Smooth criterion: an index is evaluable once its (edge-clamped)
       centered window is entirely fed - it trails the raw scan by
       [half] samples. *)
    while
      st.smooth_first = None
      && st.smooth_next < st.n
      && min (st.n - 1) (st.smooth_next + st.half) <= st.fed - 1
    do
      let j = st.smooth_next in
      let d =
        Float.abs
          (avg st.nom_prefix ~n:st.n ~half:st.half j
          -. avg st.flt_prefix ~n:st.n ~half:st.half j)
      in
      st.smooth_run <- (if d > st.tol_v then st.smooth_run + 1 else 0);
      if st.smooth_run >= st.k + 1 then st.smooth_first <- Some j
      else st.smooth_next <- j + 1
    done;
    (* Finality: the combined verdict is min(raw, smooth); it is decided
       early when one criterion fired at [d] and the other has scanned
       past [d] without firing (it can only fire later, so the min is
       fixed). *)
    (match (st.raw_first, st.smooth_first) with
    | Some a, Some b -> st.decided <- Detected (min a b)
    | Some a, None when st.smooth_next > a -> st.decided <- Detected a
    | None, Some b ->
      (* the raw scan has covered every index <= fed-1 >= b unfired *)
      st.decided <- Detected b
    | (Some _ | None), _ -> ());
    if st.decided = Pending && st.fed = st.n then begin
      (* End of grid: flush still-open runs to the last index, exactly as
         [first_sustained] does. *)
      let flush first run =
        match first with
        | Some _ as r -> r
        | None -> if flush_run ~k:st.k run then Some (st.n - 1) else None
      in
      match (flush st.raw_first st.raw_run, flush st.smooth_first st.smooth_run) with
      | Some a, Some b -> st.decided <- Detected (min a b)
      | (Some a, None | None, Some a) -> st.decided <- Detected a
      | None, None -> st.decided <- Clear
    end;
    st.decided
end
