(** The typed per-fault result vocabulary of a fault campaign: why a
    simulation failed, which retry strategies were attempted, and the
    JSON codec the crash-safe journal stores results with.

    This module sits below {!Simulate} (which re-exports the types) so
    that {!Journal} can read and write results without depending on the
    simulation loop. *)

(** Why one fault's simulation produced no comparable waveform.  The
    first three mirror {!Sim.Engine.error} (kernel convergence
    failures); the rest are campaign-level. *)
type failure =
  | Dc_no_convergence of string
  | Tran_step_underflow of string
  | Singular_matrix of string
  | Bad_injection of string
      (** the fault references a device/terminal the circuit lacks *)
  | Budget_exceeded of string
      (** the per-fault work budget ({!Sim.Engine.budget}) tripped *)
  | Cancelled of string
      (** the campaign's cancel token fired while this fault was being
          simulated; never journalled, so a resume re-runs it *)
  | Crashed of string
      (** an exception the simulation paths do not map; the payload is
          [Printexc.to_string] of it *)

(** Stable lower-snake tag: ["dc_no_convergence"] ... ["crashed"]. *)
val failure_kind : failure -> string

(** The human-readable elaboration carried by every constructor. *)
val failure_detail : failure -> string

(** ["kind: detail"], or just the kind when the detail is empty.  The
    single text codec for failures: the CLI table, the CSV, the wire
    protocol and log lines all render through this, and
    {!failure_of_string} reads it back. *)
val failure_to_string : failure -> string

(** Inverse of {!failure_to_string}: parses ["kind"] or ["kind: detail"]. *)
val failure_of_string : string -> (failure, string) result

(** Inverse of {!failure_kind}, reattaching a detail string. *)
val failure_of_kind : string -> string -> (failure, string) result

val of_engine_error : Sim.Engine.error -> string -> failure

(** Kernel convergence failures are worth re-attempting with another
    strategy; bad injections, budget trips and crashes are not. *)
val retryable : failure -> bool

(** Failures after which the shared session must be rebuilt before the
    next fault (quarantine) - everything except {!Bad_injection}, which
    raises before any device is patched. *)
val poisons_session : failure -> bool

(** One rung of the retry ladder.  Numeric strategies carry a factor
    applied to the baseline config: [Cut_tstep f] multiplies the initial
    timestep by [f] (< 1), [Raise_gmin f] multiplies gmin, and
    [Relax_reltol f] multiplies reltol. *)
type strategy =
  | Baseline
  | Swap_model  (** source model <-> resistor model *)
  | Cut_tstep of float
  | Raise_gmin of float
  | Relax_reltol of float

(** ["baseline"], ["swap-model"], ["cut-tstep=0.1"], ... *)
val strategy_to_string : strategy -> string

(** Inverse of {!strategy_to_string}; the numeric argument may be
    omitted (["cut-tstep"] = 0.1, ["raise-gmin"] = 1e3,
    ["relax-reltol"] = 10). *)
val strategy_of_string : string -> (strategy, string) result

(** An attempt as it was actually run; [failure = None] means the
    attempt succeeded (it is the winning strategy). *)
type attempt = { strategy : strategy; failure : failure option }

type outcome = Detected of float | Undetected | Sim_failed of failure

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  attempts : attempt list;
      (** the ladder in execution order; empty when nothing was
          simulated (journal-restored pre-taxonomy entries, crashes
          outside the ladder) *)
  stats : Sim.Engine.stats;  (** counters of the winning attempt *)
  cpu_seconds : float;
}

val outcome_to_string : outcome -> string

(** {1 Journal codec}

    One JSON object per result.  [Float] fields print with [%.17g], so
    detection times and CPU seconds survive a journal round-trip
    bit-for-bit. *)

val failure_to_json : failure -> Obs.Json.t

val failure_of_json : Obs.Json.t -> (failure, string) result

val result_to_json : index:int -> fault_result -> Obs.Json.t

(** [result_of_json ~faults json] rebuilds a result against the
    campaign's fault array; fails when the index is out of range or the
    stored fault id does not match [faults.(index)]. *)
val result_of_json :
  faults:Faults.Fault.t array -> Obs.Json.t -> (int * fault_result, string) result
