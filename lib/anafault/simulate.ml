type config = {
  model : Faults.Inject.model;
  tran : Netlist.Parser.tran;
  observed : string;
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
  samples : int;
  domains : int;
  obs : Obs.sink;
}

let default_config ?(model = Faults.Inject.Source)
    ?(tolerance = Detect.paper_tolerance)
    ?(sim_options = Sim.Engine.default_options) ?(samples = 400) ?(domains = 1)
    ?(obs = Obs.null) ~tran ~observed () =
  { model; tran; observed; tolerance; sim_options; samples; domains; obs }

(* SPICE habit: the last non-ground node of the deck is the output. *)
let default_observed circuit =
  match List.rev (Netlist.Circuit.nodes circuit) with
  | n :: _ when n <> "0" -> n
  | _ -> "0"

type outcome = Detected of float | Undetected | Sim_failed of string

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  wall_seconds : float;
  cpu_seconds : float;
}

let simulate config circuit =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let result =
    Sim.Engine.run ~options:config.sim_options ~obs:config.obs circuit
      (Sim.Engine.Analysis.Tran { tstep; tstop; uic })
  in
  ( Sim.Waveform.resample (Sim.Engine.Analysis.waveform result) ~n:config.samples,
    Sim.Engine.Analysis.stats result )

let simulate_session config session =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let wf, stats = Sim.Engine.Session.transient session ~tstep ~tstop ~uic in
  (Sim.Waveform.resample wf ~n:config.samples, stats)

let nominal config circuit =
  Obs.span config.obs "anafault.nominal" (fun _ -> simulate config circuit)

let session config circuit =
  Sim.Engine.Session.create ~options:config.sim_options ~obs:config.obs circuit

let zero_stats =
  { Sim.Engine.newton_iterations = 0; accepted_steps = 0; rejected_steps = 0 }

let detect_outcome config ~nominal ~faulty =
  match
    Detect.first_detection ~tolerance:config.tolerance ~signal:config.observed
      ~nominal ~faulty
  with
  | Some t -> Detected t
  | None -> Undetected

(* A 0 V source bridging two nodes that other voltage sources already
   constrain creates a singular source loop; the paper notes both models
   yield near-identical coverage, so such faults silently fall back to
   the resistor model. *)
let with_model_fallback config ~sp ~finish attempt =
  match attempt config.model with
  | result -> result
  | exception Not_found ->
    finish (Sim_failed "fault references unknown device/terminal") zero_stats
  | exception Sim.Engine.No_convergence msg -> begin
    match config.model with
    | Faults.Inject.Source -> begin
      Obs.set sp "model_fallback" (Obs.Bool true);
      Obs.count config.obs "anafault.model_fallback" 1;
      match attempt Faults.Inject.default_resistor with
      | result -> result
      | exception Sim.Engine.No_convergence msg -> finish (Sim_failed msg) zero_stats
    end
    | Faults.Inject.Resistor _ -> finish (Sim_failed msg) zero_stats
  end

(* One span per fault, tagged with its outcome and first-detection
   time; the attribute strings are only built when the sink is live. *)
let fault_span config fault f =
  Obs.span config.obs "anafault.fault" (fun sp ->
      if Obs.enabled config.obs then
        Obs.set sp "fault" (Obs.Str (Faults.Fault.to_string fault));
      let result = f sp in
      if Obs.enabled config.obs then begin
        (match result.outcome with
        | Detected t ->
          Obs.set sp "outcome" (Obs.Str "detected");
          Obs.set sp "t_detect" (Obs.Float t)
        | Undetected -> Obs.set sp "outcome" (Obs.Str "undetected")
        | Sim_failed msg ->
          Obs.set sp "outcome" (Obs.Str "failed");
          Obs.set sp "reason" (Obs.Str msg));
        Obs.set sp "newton_iterations" (Obs.Int result.stats.Sim.Engine.newton_iterations)
      end;
      result)

(* The rebuild-per-fault cycle: every fault pays Mna.make + compile +
   fresh buffers.  Kept as the reference path (and for callers holding
   only a circuit); the batch loop below goes through a session. *)
let run_one_core config circuit ~nominal ~sp fault =
  let t0 = Sys.time () in
  let finish outcome stats =
    { fault; outcome; stats; cpu_seconds = Sys.time () -. t0 }
  in
  let attempt model =
    let faulty_circuit = Faults.Inject.apply ~model circuit fault in
    let faulty, stats = simulate config faulty_circuit in
    finish (detect_outcome config ~nominal ~faulty) stats
  in
  with_model_fallback config ~sp ~finish attempt

let run_one config circuit ~nominal fault =
  fault_span config fault (fun sp ->
      Obs.set sp "path" (Obs.Str "rebuild");
      run_one_core config circuit ~nominal ~sp fault)

(* The batch cycle: patch the session with the injected devices, simulate
   in the shared buffers, compare.  Node maps and solver storage are
   shared across the whole fault list. *)
let run_one_in config sess ~nominal fault =
  fault_span config fault (fun sp ->
      let t0 = Sys.time () in
      let finish outcome stats =
        { fault; outcome; stats; cpu_seconds = Sys.time () -. t0 }
      in
      let base = Sim.Engine.Session.circuit sess in
      let attempt model =
        let faulty_circuit = Faults.Inject.apply ~model base fault in
        let faulty, stats =
          Sim.Engine.Session.with_patch sess faulty_circuit (fun s ->
              simulate_session config s)
        in
        finish (detect_outcome config ~nominal ~faulty) stats
      in
      match
        Obs.set sp "path" (Obs.Str "session");
        with_model_fallback config ~sp ~finish attempt
      with
      | result -> result
      | exception Sim.Engine.Patch_overflow _ ->
        (* The injection rewrote more than the overlay holds; pay the full
           rebuild for this one fault. *)
        Obs.set sp "path" (Obs.Str "rebuild");
        Obs.count config.obs "session.rebuild" 1;
        run_one_core config base ~nominal ~sp fault)

let guard fault thunk =
  match thunk () with
  | result -> result
  | exception exn ->
    {
      fault;
      outcome = Sim_failed (Printexc.to_string exn);
      stats = zero_stats;
      cpu_seconds = 0.0;
    }

let run ?progress config circuit faults =
  Obs.span config.obs "anafault.batch"
    ~attrs:[ ("faults", Obs.Int (List.length faults)); ("domains", Obs.Int 1) ]
    (fun _ ->
      let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
      let sess = session config circuit in
      let nominal_wf, nominal_stats =
        Obs.span config.obs "anafault.nominal" (fun _ -> simulate_session config sess)
      in
      let total = List.length faults in
      let results =
        List.mapi
          (fun i fault ->
            let r =
              guard fault (fun () -> run_one_in config sess ~nominal:nominal_wf fault)
            in
            (match progress with Some f -> f (i + 1) total | None -> ());
            r)
          faults
      in
      {
        config;
        nominal = nominal_wf;
        nominal_stats;
        results;
        wall_seconds = Unix.gettimeofday () -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
      })

let tally run =
  List.fold_left
    (fun (d, u, f) r ->
      match r.outcome with
      | Detected _ -> (d + 1, u, f)
      | Undetected -> (d, u + 1, f)
      | Sim_failed _ -> (d, u, f + 1))
    (0, 0, 0) run.results
