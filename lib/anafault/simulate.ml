type config = {
  model : Faults.Inject.model;
  tran : Netlist.Parser.tran;
  observed : string;
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
  retries : Outcome.strategy list;
  samples : int;
  domains : int;
  batch : int;  (* lock-step batch width; 0 = auto *)
  obs : Obs.sink;
}

let default_config ?(model = Faults.Inject.Source)
    ?(tolerance = Detect.paper_tolerance)
    ?(sim_options = Sim.Engine.default_options)
    ?(retries = [ Outcome.Swap_model ]) ?(samples = 400) ?(domains = 1)
    ?(batch = 0) ?(obs = Obs.null) ~tran ~observed () =
  {
    model;
    tran;
    observed;
    tolerance;
    sim_options;
    retries;
    samples;
    domains;
    batch;
    obs;
  }

(* Resolve the lock-step batch width.  Explicit [batch] wins; the auto
   rule keeps at least four batches per domain in flight so work
   stealing still balances, and clamps at 16 where the crossover
   experiment shows the shared-pattern benefit saturating.  Small
   campaigns resolve to width 1 - the exact serial path. *)
let effective_batch config ~total =
  if config.batch > 0 then config.batch
  else max 1 (min 16 (total / (max 1 config.domains * 4)))

(* SPICE habit: the last non-ground node of the deck is the output. *)
let default_observed circuit =
  match List.rev (Netlist.Circuit.nodes circuit) with
  | n :: _ when n <> "0" -> n
  | _ -> "0"

type failure = Outcome.failure =
  | Dc_no_convergence of string
  | Tran_step_underflow of string
  | Singular_matrix of string
  | Bad_injection of string
  | Budget_exceeded of string
  | Cancelled of string
  | Crashed of string

type outcome = Outcome.outcome =
  | Detected of float
  | Undetected
  | Sim_failed of failure

type attempt = Outcome.attempt = {
  strategy : Outcome.strategy;
  failure : failure option;
}

type fault_result = Outcome.fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  attempts : attempt list;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

let failure_to_string = Outcome.failure_to_string

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  wall_seconds : float;
  cpu_seconds : float;
}

(* The work budget in [sim_options] is a per-fault limit: the nominal
   run is the reference every comparison needs, so it always runs
   unbudgeted. *)
let nominal_options config =
  { config.sim_options with Sim.Engine.budget = Sim.Engine.unlimited }

let simulate_with ~options config circuit =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let result =
    Sim.Engine.run ~options ~obs:config.obs circuit
      (Sim.Engine.Analysis.Tran { tstep; tstop; uic })
  in
  ( Sim.Waveform.resample (Sim.Engine.Analysis.waveform result) ~n:config.samples,
    Sim.Engine.Analysis.stats result )

let simulate config circuit = simulate_with ~options:config.sim_options config circuit

let simulate_session ?options config session =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let wf, stats =
    Sim.Engine.Session.transient ?options session ~tstep ~tstop ~uic
  in
  (Sim.Waveform.resample wf ~n:config.samples, stats)

let nominal config circuit =
  Obs.span config.obs "anafault.nominal" (fun _ ->
      simulate_with ~options:(nominal_options config) config circuit)

let session config circuit =
  Sim.Engine.Session.create ~options:config.sim_options ~obs:config.obs circuit

let zero_stats =
  { Sim.Engine.newton_iterations = 0; accepted_steps = 0; rejected_steps = 0 }

(* Degenerate comparison inputs become a typed per-fault failure; a
   missing observed signal still raises [Not_found], which the ladder
   classifies as a bad injection (matching the historical behaviour). *)
let detect_outcome config ~nominal ~faulty =
  match
    Detect.analyse ~tolerance:config.tolerance ~signal:config.observed
      ~nominal ~faulty
  with
  | Ok (Some t) -> Detected t
  | Ok None -> Undetected
  | Error msg -> Sim_failed (Crashed ("detect: " ^ msg))

(* --- The retry ladder ------------------------------------------------- *)

let swap_model = function
  | Faults.Inject.Source -> Faults.Inject.default_resistor
  | Faults.Inject.Resistor _ -> Faults.Inject.Source

(* Each strategy is an independent perturbation of the baseline config,
   not a cumulative one: escalation order is the caller's policy, and
   independent rungs keep "which strategy won" meaningful. *)
let apply_strategy config (s : Outcome.strategy) =
  match s with
  | Outcome.Baseline -> config
  | Outcome.Swap_model -> { config with model = swap_model config.model }
  | Outcome.Cut_tstep f ->
    let tran = { config.tran with Netlist.Parser.tstep = config.tran.Netlist.Parser.tstep *. f } in
    { config with tran }
  | Outcome.Raise_gmin f ->
    let sim_options =
      { config.sim_options with Sim.Engine.gmin = config.sim_options.Sim.Engine.gmin *. f }
    in
    { config with sim_options }
  | Outcome.Relax_reltol f ->
    let sim_options =
      { config.sim_options with Sim.Engine.reltol = config.sim_options.Sim.Engine.reltol *. f }
    in
    { config with sim_options }

let classify_exn = function
  | Not_found ->
    Some (Outcome.Bad_injection "fault references unknown device/terminal")
  | Sim.Engine.Sim_error (err, detail) -> Some (Outcome.of_engine_error err detail)
  | _ -> None

(* Walk [Baseline :: config.retries]: the first attempt that simulates
   wins; a retryable kernel failure escalates to the next rung; anything
   else (bad injection, budget trip) stops the ladder.  Every rung is
   recorded, so a report can show the original failure even when a retry
   succeeded - or both messages when both failed.  [attempt cfg] returns
   [(outcome, stats)] and may raise; exceptions the taxonomy does not
   cover (e.g. [Patch_overflow]) propagate to the caller's handlers. *)
let run_ladder config ~sp ~finish attempt =
  let note (s : Outcome.strategy) =
    if s <> Outcome.Baseline then begin
      Obs.count config.obs "anafault.retry" 1;
      if s = Outcome.Swap_model then begin
        Obs.set sp "model_fallback" (Obs.Bool true);
        Obs.count config.obs "anafault.model_fallback" 1
      end
    end
  in
  let rec go acc = function
    | [] -> assert false (* the list always starts with Baseline *)
    | s :: rest -> begin
      note s;
      let cfg = apply_strategy config s in
      match attempt cfg with
      | outcome, stats ->
        let attempts = List.rev ({ strategy = s; failure = None } :: acc) in
        finish ~attempts outcome stats
      | exception exn -> begin
        match classify_exn exn with
        | None -> raise exn
        | Some failure ->
          let acc = { strategy = s; failure = Some failure } :: acc in
          if Outcome.retryable failure && rest <> [] then go acc rest
          else finish ~attempts:(List.rev acc) (Sim_failed failure) zero_stats
      end
    end
  in
  go [] (Outcome.Baseline :: config.retries)

(* One span per fault, tagged with its outcome, failure class, attempt
   count and winning strategy; the attribute strings are only built when
   the sink is live. *)
let fault_span config fault f =
  Obs.span config.obs "anafault.fault" (fun sp ->
      if Obs.enabled config.obs then
        Obs.set sp "fault" (Obs.Str (Faults.Fault.to_string fault));
      let result = f sp in
      if Obs.enabled config.obs then begin
        (match result.outcome with
        | Detected t ->
          Obs.set sp "outcome" (Obs.Str "detected");
          Obs.set sp "t_detect" (Obs.Float t)
        | Undetected -> Obs.set sp "outcome" (Obs.Str "undetected")
        | Sim_failed failure ->
          Obs.set sp "outcome" (Obs.Str "failed");
          Obs.set sp "failure" (Obs.Str (Outcome.failure_kind failure));
          Obs.set sp "reason" (Obs.Str (Outcome.failure_to_string failure)));
        if result.attempts <> [] then begin
          Obs.set sp "attempts" (Obs.Int (List.length result.attempts));
          match List.find_opt (fun a -> a.failure = None) result.attempts with
          | Some a ->
            Obs.set sp "strategy" (Obs.Str (Outcome.strategy_to_string a.strategy))
          | None -> ()
        end;
        Obs.set sp "newton_iterations" (Obs.Int result.stats.Sim.Engine.newton_iterations)
      end;
      result)

(* The rebuild-per-fault cycle: every fault pays Mna.make + compile +
   fresh buffers.  Kept as the reference path (and for callers holding
   only a circuit); the batch loop below goes through a session. *)
let run_one_core config circuit ~nominal ~sp fault =
  let t0 = Sys.time () in
  let finish ~attempts outcome stats =
    { fault; outcome; attempts; stats; cpu_seconds = Sys.time () -. t0 }
  in
  let attempt cfg =
    let faulty_circuit = Faults.Inject.apply ~model:cfg.model circuit fault in
    let faulty, stats = simulate cfg faulty_circuit in
    (detect_outcome config ~nominal ~faulty, stats)
  in
  run_ladder config ~sp ~finish attempt

let run_one config circuit ~nominal fault =
  fault_span config fault (fun sp ->
      Obs.set sp "path" (Obs.Str "rebuild");
      run_one_core config circuit ~nominal ~sp fault)

(* The batch cycle: patch the session with the injected devices, simulate
   in the shared buffers, compare.  Node maps and solver storage are
   shared across the whole fault list. *)
let run_one_in config sess ~nominal fault =
  fault_span config fault (fun sp ->
      let t0 = Sys.time () in
      let finish ~attempts outcome stats =
        { fault; outcome; attempts; stats; cpu_seconds = Sys.time () -. t0 }
      in
      let base = Sim.Engine.Session.circuit sess in
      let attempt cfg =
        let faulty_circuit = Faults.Inject.apply ~model:cfg.model base fault in
        let faulty, stats =
          Sim.Engine.Session.with_patch sess faulty_circuit (fun s ->
              simulate_session ~options:cfg.sim_options cfg s)
        in
        (detect_outcome config ~nominal ~faulty, stats)
      in
      match
        Obs.set sp "path" (Obs.Str "session");
        run_ladder config ~sp ~finish attempt
      with
      | result -> result
      | exception Sim.Engine.Patch_overflow _ ->
        (* The injection rewrote more than the overlay holds; pay the full
           rebuild for this one fault. *)
        Obs.set sp "path" (Obs.Str "rebuild");
        Obs.count config.obs "session.rebuild" 1;
        run_one_core config base ~nominal ~sp fault)

let guard fault thunk =
  match thunk () with
  | result -> result
  | exception exn ->
    {
      fault;
      outcome = Sim_failed (Crashed (Printexc.to_string exn));
      attempts = [];
      stats = zero_stats;
      cpu_seconds = 0.0;
    }

(* --- The lock-step batched cycle --------------------------------------- *)

(* [run_batch config sess ~nominal faults] simulates the whole list in
   one lock-step batch on [sess]: every variant is patched into the
   session, the sparse pattern is primed once, and all variants advance
   together through the nominal grid.  An {!Detect.Incremental} detector
   per variant retires ("drops") a fault the moment its verdict is
   final, so a hard fault pays only the prefix of the transient it needs
   to be detected.  Variants that run to tstop are post-processed with
   exactly the serial path's resample + compare, so their recorded
   outcomes are bit-identical to [run_one_in]'s; dropped variants read
   the observed signal straight off the accepted samples (one
   interpolation instead of the serial path's resample-then-interpolate
   two), which agrees to rounding error and quantizes to the same grid
   instant.  Any variant the batch cannot carry - patch overflow, its
   own solve failing (the retry ladder may still rescue it), an
   injection error - falls back to the serial per-fault path on the same
   session, preserving the ladder and outcome taxonomy exactly.
   Results come back in input order. *)
let run_batch config sess ~nominal faults =
  let fallback fault = guard fault (fun () -> run_one_in config sess ~nominal fault) in
  let batch_core faults =
    let base = Sim.Engine.Session.circuit sess in
    let grid = Sim.Waveform.times nominal in
    match Sim.Waveform.samples nominal config.observed with
    | exception Not_found -> List.map fallback faults
    | nom -> begin
      let items = Array.of_list faults in
      let n_items = Array.length items in
      let results : fault_result option array = Array.make n_items None in
      (* Injection happens up front; a fault that cannot be injected (or
         whose detector cannot be built) takes the serial path, which
         reproduces the ladder's classification verbatim. *)
      let variant_idx = ref [] in
      let circuits = ref [] in
      let detectors = ref [] in
      Array.iteri
        (fun i fault ->
          match Faults.Inject.apply ~model:config.model base fault with
          | exception Not_found -> results.(i) <- Some (fallback fault)
          | circuit -> begin
            match
              Detect.Incremental.create ~tolerance:config.tolerance
                ~times:grid ~nom
            with
            | Error _ -> results.(i) <- Some (fallback fault)
            | Ok det ->
              variant_idx := i :: !variant_idx;
              circuits := circuit :: !circuits;
              detectors := det :: !detectors
          end)
        items;
      let variant_idx = Array.of_list (List.rev !variant_idx) in
      let variants = Array.of_list (List.rev !circuits) in
      let dets = Array.of_list (List.rev !detectors) in
      let drop_at = Array.make (Array.length variants) (-1) in
      (* The incremental detector's threshold comparisons are silently
         false on NaN, so a diverged variant could walk the whole grid
         and tabulate as undetected.  A non-finite sample retires the
         variant to the serial path, whose [Detect.analyse] reports the
         poison as a typed failure. *)
      let non_finite = Array.make (Array.length variants) false in
      let probe ~variant ~grid_index:_ ~value =
        if not (Float.is_finite value) then begin
          non_finite.(variant) <- true;
          `Drop
        end
        else begin
          match Detect.Incremental.feed dets.(variant) value with
          | Detect.Incremental.Pending | Detect.Incremental.Clear -> `Continue
          | Detect.Incremental.Detected i ->
            drop_at.(variant) <- i;
            `Drop
        end
      in
      (if Array.length variants > 0 then begin
         let { Netlist.Parser.tstep; tstop; uic } = config.tran in
         let bres =
           Sim.Engine.Session.transient_batch ~options:config.sim_options sess
             ~variants ~observe:config.observed ~grid ~tstep ~tstop ~uic ~probe
         in
         Array.iteri
           (fun v { Sim.Engine.Session.outcome; seconds } ->
             let i = variant_idx.(v) in
             let fault = items.(i) in
             let settle outcome stats =
               fault_span config fault (fun sp ->
                   Obs.set sp "path" (Obs.Str "batch");
                   {
                     fault;
                     outcome;
                     attempts =
                       [ { strategy = Outcome.Baseline; failure = None } ];
                     stats;
                     cpu_seconds = seconds;
                   })
             in
             match outcome with
             | Sim.Engine.Session.Batch_finished (wf, stats) ->
               let faulty = Sim.Waveform.resample wf ~n:config.samples in
               results.(i) <- Some (settle (detect_outcome config ~nominal ~faulty) stats)
             | Sim.Engine.Session.Batch_dropped { stats; _ } ->
               if non_finite.(v) then
                 (* Dropped for poison, not detection: the serial rerun
                    classifies it (Detect.analyse's finiteness guard). *)
                 results.(i) <- Some (fallback fault)
               else begin
                 Obs.count config.obs "batch.drops" 1;
                 results.(i) <- Some (settle (Detected grid.(drop_at.(v))) stats)
               end
             | Sim.Engine.Session.Batch_failed _
             | Sim.Engine.Session.Batch_overflow _ ->
               results.(i) <- Some (fallback fault))
           bres
       end);
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with Some r -> r | None -> fallback items.(i))
           results)
    end
  in
  match faults with
  | [] -> []
  | [ fault ] -> [ fallback fault ]
  | faults -> begin
    (* A failure of the batch machinery itself must not take the whole
       chunk down: retire to the per-fault serial path. *)
    match batch_core faults with
    | results -> results
    | exception _ ->
      Obs.count config.obs "batch.fallback" 1;
      List.map fallback faults
  end

(* --- Campaign fingerprint --------------------------------------------- *)

let model_signature = function
  | Faults.Inject.Source -> "source"
  | Faults.Inject.Resistor { r_short; r_open } ->
    Printf.sprintf "resistor(%.17g,%.17g)" r_short r_open

let options_signature (o : Sim.Engine.options) =
  let b = o.Sim.Engine.budget in
  let opt f = function None -> "-" | Some v -> f v in
  Printf.sprintf
    "gmin=%.17g;reltol=%.17g;abstol=%.17g;max_iter=%d;dv_limit=%.17g;cmin=%.17g;integration=%s;budget=%s/%s/%s;solver=%s"
    o.Sim.Engine.gmin o.Sim.Engine.reltol o.Sim.Engine.abstol
    o.Sim.Engine.max_iter o.Sim.Engine.dv_limit o.Sim.Engine.cmin
    (match o.Sim.Engine.integration with
    | Sim.Engine.Backward_euler -> "be"
    | Sim.Engine.Trapezoidal -> "trap")
    (opt string_of_int b.Sim.Engine.max_newton_iterations)
    (opt string_of_int b.Sim.Engine.max_steps)
    (opt (Printf.sprintf "%.17g") b.Sim.Engine.deadline_seconds)
    (Sim.Solver.backend_to_string o.Sim.Engine.solver)

(* Everything that can change a per-fault result is hashed; the domain
   count and the telemetry sink deliberately are not (results are
   schedule-independent), so a journal written serially resumes under
   any parallel width. *)
let fingerprint config circuit faults =
  let deck = Netlist.Printer.deck_to_string ~tran:config.tran circuit in
  let cfg =
    Printf.sprintf
      "model=%s;tran=%.17g/%.17g/%b;observed=%s;tol=%.17g/%.17g;samples=%d;opts=%s;retries=%s"
      (model_signature config.model) config.tran.Netlist.Parser.tstep
      config.tran.Netlist.Parser.tstop config.tran.Netlist.Parser.uic
      config.observed config.tolerance.Detect.tol_v config.tolerance.Detect.tol_t
      config.samples
      (options_signature config.sim_options)
      (String.concat "," (List.map Outcome.strategy_to_string config.retries))
  in
  Journal.fingerprint [ deck; cfg; Faults.Fault_list.to_string faults ]

(* --- The serial campaign loop ----------------------------------------- *)

let run ?progress ?journal config circuit faults =
  Obs.span config.obs "anafault.batch"
    ~attrs:[ ("faults", Obs.Int (List.length faults)); ("domains", Obs.Int 1) ]
    (fun _ ->
      let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
      let sess = ref (session config circuit) in
      let nominal_wf, nominal_stats =
        Obs.span config.obs "anafault.nominal" (fun _ ->
            simulate_session ~options:(nominal_options config) config !sess)
      in
      let total = List.length faults in
      let results =
        List.mapi
          (fun i fault ->
            let r =
              match Option.bind journal (fun j -> Journal.find j i fault) with
              | Some r ->
                Obs.count config.obs "journal.skipped" 1;
                r
              | None ->
                let r =
                  (* A cancelled campaign stops simulating: faults the
                     token beat to the start line settle as typed
                     [Cancelled] without paying session setup. *)
                  match Cancel.get config.sim_options.Sim.Engine.cancel with
                  | Some reason ->
                    {
                      fault;
                      outcome =
                        Sim_failed (Cancelled (Cancel.reason_to_string reason));
                      attempts = [];
                      stats = zero_stats;
                      cpu_seconds = 0.0;
                    }
                  | None ->
                    guard fault (fun () ->
                        run_one_in config !sess ~nominal:nominal_wf fault)
                in
                (* Cancelled results are never journalled: the next
                   --resume of the same campaign must re-run exactly
                   the faults cancellation interrupted. *)
                (match r.outcome with
                | Sim_failed (Cancelled _) -> ()
                | Sim_failed _ | Detected _ | Undetected ->
                  Option.iter (fun j -> Journal.record j i r) journal);
                (* Quarantine: a kernel failure may leave device state or
                   an unfinished overlay behind; rebuilding the session
                   guarantees the next fault starts clean. *)
                (match r.outcome with
                | Sim_failed failure when Outcome.poisons_session failure ->
                  Obs.count config.obs "session.quarantine" 1;
                  sess := session config circuit
                | Sim_failed _ | Detected _ | Undetected -> ());
                r
            in
            (match progress with Some f -> f (i + 1) total | None -> ());
            r)
          faults
      in
      {
        config;
        nominal = nominal_wf;
        nominal_stats;
        results;
        wall_seconds = Unix.gettimeofday () -. wall0;
        cpu_seconds = Sys.time () -. cpu0;
      })

let tally run =
  List.fold_left
    (fun (d, u, f) r ->
      match r.outcome with
      | Detected _ -> (d + 1, u, f)
      | Undetected -> (d, u + 1, f)
      | Sim_failed _ -> (d, u, f + 1))
    (0, 0, 0) run.results

let failure_tally run =
  List.fold_left
    (fun acc r ->
      match r.outcome with
      | Detected _ | Undetected -> acc
      | Sim_failed failure ->
        let k = Outcome.failure_kind failure in
        let n = Option.value ~default:0 (List.assoc_opt k acc) in
        (k, n + 1) :: List.remove_assoc k acc)
    [] run.results
  |> List.sort compare
