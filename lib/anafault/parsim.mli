(** Work-stealing parallel fault simulation on OCaml 5 domains.

    The paper notes AnaFAULT was "improved for parallel execution in a
    workstation cluster environment"; per-fault simulations are
    independent, so the same structure maps onto shared-memory domains.
    Per-fault Newton costs vary wildly (stuck-open faults converge far
    slower than low-ohmic bridges), so the fault list is not chunked
    statically: every domain pulls the next fault index from a shared
    atomic counter until the list is drained.  Each domain owns one
    {!Sim.Engine.Session}, so the per-topology setup is paid once per
    domain rather than once per fault.

    A fault whose simulation raises is reported as
    {!Simulate.Sim_failed}; the exception never escapes the domain, and
    all other results are returned in input order.  Each domain applies
    the same robustness layers as the serial loop: the retry ladder,
    per-fault budgets, session quarantine after kernel failures, and
    journal skip/record when a {!Journal.t} is supplied. *)

(** Per-domain load counters, for judging schedule balance. *)
type domain_stats = {
  domain : int;  (** 0 is the caller's domain *)
  faults_done : int;
  fault_indices : int list;
      (** indices into the input fault list, in completion order *)
  newton_iterations : int;
  busy_seconds : float;  (** wall-clock time the domain spent stealing *)
  steal_seconds : float;
      (** wall-clock time spent pulling fault indices off the shared
          counter - the scheduler's overhead, normally microseconds *)
}

(** [run_with_stats ~domains config circuit faults] behaves like
    {!Simulate.run} but distributes the per-fault simulations over
    [domains] domains and also returns the per-domain load, sorted by
    domain index.  With [clamp] (the default) the domain count is
    limited to [Domain.recommended_domain_count]; [~clamp:false] takes
    the request literally, which oversubscribes small machines but keeps
    scheduling behaviour reproducible.  Results keep the input fault
    order.

    [progress] is called with (completed, total): every domain bumps a
    shared atomic completed-counter, domain 0 polls it after each of its
    own faults (so the callback never runs concurrently with itself),
    and one final (total, total) call is guaranteed after all domains
    join.  With [journal], completed faults are prefilled before any
    domain spawns (never re-simulated) and fresh results are recorded as
    they finish, under the journal's internal lock. *)
val run_with_stats :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  ?clamp:bool ->
  domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run * domain_stats list

(** [run ~domains config circuit faults] is {!run_with_stats} without the
    load report. *)
val run :
  ?clamp:bool ->
  domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run

(** [execute config circuit faults] is the single dispatch point every
    front end uses: serial {!Simulate.run} (with an empty load report)
    when the effective domain count is 1, {!run_with_stats} otherwise.
    The domain count comes from [config.domains] unless overridden by
    [?domains].  [?progress] and [?journal] apply to both paths. *)
val execute :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  ?clamp:bool ->
  ?domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run * domain_stats list
