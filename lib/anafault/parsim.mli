(** Work-stealing parallel fault simulation on OCaml 5 domains.

    The paper notes AnaFAULT was "improved for parallel execution in a
    workstation cluster environment"; per-fault simulations are
    independent, so the same structure maps onto shared-memory domains.
    Per-fault Newton costs vary wildly (stuck-open faults converge far
    slower than low-ohmic bridges), so the fault list is not chunked
    statically: every domain pulls the next chunk of fault indices from
    a shared atomic counter until the list is drained.  The chunk width
    is the lock-step batch width ({!Simulate.effective_batch}): a chunk
    wider than one fault is simulated as a single {!Simulate.run_batch},
    so batches are the unit of work stealing.  Each domain owns one
    {!Sim.Engine.Session}, so the per-topology setup is paid once per
    domain rather than once per fault.

    A fault whose simulation raises is reported as
    {!Simulate.Sim_failed}; the exception never escapes the domain, and
    all other results are returned in input order.  Each domain applies
    the same robustness layers as the serial loop: the retry ladder,
    per-fault budgets, session quarantine after kernel failures, and
    journal skip/record when a {!Journal.t} is supplied.  A domain that
    dies outright (e.g. its session setup fails) records a typed
    [Crashed] failure for every fault it had claimed, is counted as
    ["parsim.domain_died"], and reports itself through
    {!domain_stats.died} - a campaign can never silently succeed with
    holes. *)

(** Per-domain load counters, for judging schedule balance. *)
type domain_stats = {
  domain : int;  (** 0 is the caller's domain *)
  faults_done : int;
  fault_indices : int list;
      (** indices into the input fault list, in completion order *)
  newton_iterations : int;
  busy_seconds : float;  (** wall-clock time the domain spent stealing *)
  steal_seconds : float;
      (** wall-clock time spent pulling chunks off the shared counter,
          including the final unsuccessful steal that ends the domain's
          loop - the scheduler's overhead, normally microseconds *)
  died : bool;
      (** the domain aborted (setup failure or an unclassifiable error
          mid-chunk); its claimed faults carry typed failures, and the
          CLI turns any died domain into a nonzero exit *)
}

(** Test hook: when the function returns true for a domain index, that
    domain's session setup raises.  The only way to exercise the
    domain-death path deterministically; leave untouched otherwise. *)
val chaos_session_failure : (int -> bool) ref

(** [run_with_stats ~domains config circuit faults] behaves like
    {!Simulate.run} but distributes the per-fault simulations over
    [domains] domains and also returns the per-domain load, sorted by
    domain index.  With [clamp] (the default) the domain count is
    limited to [Domain.recommended_domain_count]; [~clamp:false] takes
    the request literally, which oversubscribes small machines but keeps
    scheduling behaviour reproducible.  [batch] overrides the lock-step
    chunk width (default: {!Simulate.effective_batch} at the effective
    domain count).  Results keep the input fault order.

    [progress] is called with (completed, total): every domain bumps a
    shared atomic completed-counter and any domain may fire the callback
    under a single-flight guard (reads of the counter happen inside the
    guard, so consecutive calls see non-decreasing counts); one final
    (total, total) call is guaranteed after all domains join.  A
    progress callback that raises stops every domain, and the exception
    is re-raised here after the join - the CLI's [--abort-after] knob.
    With [journal], completed faults are prefilled before any domain
    spawns (never re-simulated) and fresh results are recorded as they
    finish, under the journal's internal lock. *)
val run_with_stats :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  ?clamp:bool ->
  ?batch:int ->
  domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run * domain_stats list

(** [run ~domains config circuit faults] is {!run_with_stats} without the
    load report. *)
val run :
  ?clamp:bool ->
  ?batch:int ->
  domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run

(** [execute config circuit faults] is the single dispatch point every
    front end uses: serial {!Simulate.run} (with an empty load report)
    when both the effective domain count and the effective batch width
    are 1, {!run_with_stats} otherwise (a single domain with a wider
    batch runs the batched loop on the caller's domain).  The domain
    count comes from [config.domains] unless overridden by [?domains];
    the batch width from [config.batch] / {!Simulate.effective_batch}
    unless overridden by [?batch].  [?progress] and [?journal] apply to
    both paths. *)
val execute :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  ?clamp:bool ->
  ?domains:int ->
  ?batch:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run * domain_stats list
