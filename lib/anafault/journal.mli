(** Crash-safe campaign journal: completed per-fault results appended to
    a JSONL file as they happen, so a killed campaign resumes where it
    died instead of restarting from fault zero.

    Format: one header line identifying the campaign, then one
    {!Outcome.result_to_json} object per completed fault, each flushed
    as it is written:
    {v
    {"journal": "anafault", "version": 1, "fingerprint": "3f2a...", "faults": 65}
    {"index": 0, "id": "#1", "outcome": "detected", "t_detect": 1.2499999999999999e-06, "attempts": [{"strategy": "baseline"}], "stats": {"newton_iterations": 905, "accepted_steps": 412, "rejected_steps": 0}, "cpu_seconds": 0.0031}
    v}
    A crash can tear at most the final line; {!start} skips what it
    cannot parse, so every intact line is a fault that never re-runs.

    The fingerprint ties a journal to one campaign (circuit + config +
    fault list); resuming against anything else is refused.  The domain
    count and telemetry sink are deliberately not part of the
    fingerprint - results are schedule-independent, so a journal written
    serially resumes under 8 domains and vice versa. *)

type t

(** [fingerprint pieces] is a stable hex digest of the given strings
    (circuit deck, config summary, fault list - see
    {!Simulate.fingerprint}). *)
val fingerprint : string list -> string

(** [start ~path ~fingerprint ~resume ~faults] opens a journal for a
    campaign over [faults].  Without [resume] (or when [path] does not
    exist) the file is truncated and a fresh header written.  With
    [resume], the existing file is validated against [fingerprint] and
    the fault count, every parseable result line is restored, and
    subsequent records append. *)
val start :
  path:string ->
  fingerprint:string ->
  resume:bool ->
  faults:Faults.Fault.t array ->
  (t, string) result

(** [view t ~map] is the same journal addressed through other indices:
    [find]/[record] on the view at index [i] reach the parent at
    [map i].  The channel, lock and completed table are shared, so a
    campaign loop running over a shard's sub-list records each result
    under its whole-campaign index - the piece that makes shard
    journals mergeable.  Views compose. *)
val view : t -> map:(int -> int) -> t

(** [find t index fault] is the completed result for fault [index], if
    the journal holds one whose stored id matches [fault].  Thread-safe. *)
val find : t -> int -> Faults.Fault.t -> Outcome.fault_result option

(** [record t index result] appends one result line and flushes it.
    Thread-safe (parallel domains record concurrently). *)
val record : t -> int -> Outcome.fault_result -> unit

(** Results currently held (restored + recorded). *)
val completed_count : t -> int

(** Every held result with its whole-campaign index, sorted by index -
    the material a campaign result is rebuilt from without
    re-simulating. *)
val completed_results : t -> (int * Outcome.fault_result) list

(** [merge ~out ~fingerprint ~faults paths] combines shard journals
    into one campaign journal at [out]: every input must match the
    campaign (fingerprint and fault count), a later input wins on a
    shared index, and the output is written as a single-process serial
    run writes it (header, then result lines in index order), so the
    merged journal and an unsharded journal are interchangeable.
    Returns the number of results merged.  The output is committed with
    tmp + fsync + rename, so a crash mid-merge never tears [out].

    With [lenient] (default false), an unreadable input - missing file,
    torn header, wrong campaign - contributes nothing instead of
    failing the merge: the salvage mode the daemon uses when a shard
    child died and its partial journal is all there is. *)
val merge :
  ?lenient:bool ->
  out:string ->
  fingerprint:string ->
  faults:Faults.Fault.t array ->
  string list ->
  (int, string) result

(** Results restored from disk when the journal was opened. *)
val restored_count : t -> int

val total : t -> int

val path : t -> string

val close : t -> unit
