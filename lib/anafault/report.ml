let outcome_to_string = function
  | Simulate.Detected t -> Printf.sprintf "detected @ %s" (Netlist.Eng.to_string t)
  | Simulate.Undetected -> "undetected"
  | Simulate.Sim_failed f -> "sim failed: " ^ Simulate.failure_to_string f

(* The ladder as a suffix, shown only when more than the baseline ran:
   "[retried: swap-model]" on a win, "[after 2 attempts]" on a loss. *)
let attempts_to_string (r : Simulate.fault_result) =
  match r.attempts with
  | [] | [ _ ] -> ""
  | attempts -> begin
    match
      List.find_opt (fun (a : Simulate.attempt) -> a.failure = None) attempts
    with
    | Some a ->
      Printf.sprintf " [retried: %s]" (Outcome.strategy_to_string a.strategy)
    | None -> Printf.sprintf " [after %d attempts]" (List.length attempts)
  end

let kind_label (f : Faults.Fault.t) =
  match f.kind with
  | Faults.Fault.Bridge _ -> "bridge"
  | Faults.Fault.Break { moved; _ } ->
    if List.length moved <= 1 then "open" else "split"
  | Faults.Fault.Stuck_open _ -> "stuck-open"

(* Rendering is results-shaped, not run-shaped: a remote client and the
   daemon's cache hold per-fault results without a nominal waveform, so
   the table and the CSV take the bare list and the run-taking entry
   points stay as wrappers. *)
let pp_results ppf (results : Simulate.fault_result list) =
  Format.fprintf ppf "@[<v>%-8s %-20s %-10s %-10s %s@," "id" "mechanism" "kind" "prob"
    "outcome";
  List.iter
    (fun (r : Simulate.fault_result) ->
      let f = r.fault in
      Format.fprintf ppf "%-8s %-20s %-10s %-10.3g %s%s@," f.Faults.Fault.id
        f.Faults.Fault.mechanism (kind_label f) f.Faults.Fault.prob
        (outcome_to_string r.outcome) (attempts_to_string r))
    results;
  Format.fprintf ppf "@]"

let pp_table ppf (run : Simulate.run) = pp_results ppf run.results

let pp_summary ppf (run : Simulate.run) =
  let detected, undetected, failed = Simulate.tally run in
  let total = List.length run.results in
  let kernel_steps =
    List.fold_left
      (fun acc (r : Simulate.fault_result) -> acc + r.stats.Sim.Engine.accepted_steps)
      run.nominal_stats.Sim.Engine.accepted_steps run.results
  in
  let retried =
    List.fold_left
      (fun acc (r : Simulate.fault_result) ->
        if List.length r.attempts > 1 then acc + 1 else acc)
      0 run.results
  in
  Format.fprintf ppf
    "@[<v>faults simulated   %d@,detected           %d@,undetected         %d@,\
     sim failures       %d@,final coverage     %.1f %%@,weighted coverage  %.1f %%@,\
     kernel steps       %d@,wall time          %.2f s@,cpu time           %.2f s"
    total detected undetected failed
    (Coverage.final_percent run)
    (Coverage.weighted_percent run)
    kernel_steps run.wall_seconds run.cpu_seconds;
  if retried > 0 then Format.fprintf ppf "@,faults retried     %d" retried;
  List.iter
    (fun (kind, n) -> Format.fprintf ppf "@,  %-20s %d" kind n)
    (Simulate.failure_tally run);
  Format.fprintf ppf "@]"

let pp_overview ppf (run : Simulate.run) =
  let tbl : (string, int * int * float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Simulate.fault_result) ->
      let m = r.fault.Faults.Fault.mechanism in
      let total, det, tsum =
        Option.value (Hashtbl.find_opt tbl m) ~default:(0, 0, 0.0)
      in
      let det, tsum =
        match r.outcome with
        | Simulate.Detected t -> (det + 1, tsum +. t)
        | Simulate.Undetected | Simulate.Sim_failed _ -> (det, tsum)
      in
      Hashtbl.replace tbl m (total + 1, det, tsum))
    run.results;
  Format.fprintf ppf "@[<v>%-22s %7s %9s %14s@," "mechanism" "faults" "detected"
    "mean t_detect";
  Hashtbl.fold (fun m v acc -> (m, v) :: acc) tbl []
  |> List.sort compare
  |> List.iter (fun (m, (total, det, tsum)) ->
         let mean =
           if det = 0 then "-" else Netlist.Eng.to_string (tsum /. float_of_int det) ^ "s"
         in
         Format.fprintf ppf "%-22s %7d %9d %14s@," m total det mean);
  Format.fprintf ppf "@]"

let pp_domains ppf (stats : Parsim.domain_stats list) =
  Format.fprintf ppf "@[<v>%-8s %8s %14s %10s %12s@," "domain" "faults"
    "newton iters" "busy [s]" "steal [ms]";
  List.iter
    (fun (d : Parsim.domain_stats) ->
      Format.fprintf ppf "%-8d %8d %14d %10.2f %12.3f@," d.Parsim.domain
        d.Parsim.faults_done d.Parsim.newton_iterations d.Parsim.busy_seconds
        (1e3 *. d.Parsim.steal_seconds))
    stats;
  Format.fprintf ppf "@]"

let coverage_plot ?(points = 100) run =
  let series = [ ("fault coverage [%]", Coverage.curve run ~points) ] in
  Ascii_plot.render ~x_label:"time [s]" ~series ()

(* Field values with commas or quotes (failure details can carry both)
   are quoted per RFC 4180. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_results (results : Simulate.fault_result list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "id,mechanism,kind,probability,outcome,t_detect,failure,attempts\n";
  List.iter
    (fun (r : Simulate.fault_result) ->
      let f = r.fault in
      let outcome, t, failure =
        match r.outcome with
        | Simulate.Detected t -> ("detected", Printf.sprintf "%g" t, "")
        | Simulate.Undetected -> ("undetected", "", "")
        | Simulate.Sim_failed failure ->
          ("failed", "", csv_field (Outcome.failure_to_string failure))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%g,%s,%s,%s,%d\n" f.Faults.Fault.id
           f.Faults.Fault.mechanism (kind_label f) f.Faults.Fault.prob outcome t
           failure
           (List.length r.attempts)))
    results;
  Buffer.contents buf

let csv (run : Simulate.run) = csv_of_results run.results
