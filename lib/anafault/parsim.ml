(* Work-stealing parallel fault simulation on OCaml 5 domains.

   Per-fault Newton costs vary wildly (a stuck-open fault converges far
   slower than a low-ohmic bridge), so instead of static chunking every
   domain pulls the next fault index from a shared atomic counter.  Each
   domain owns one engine session (sessions are single-threaded), writes
   results into its own slots of a shared buffer, and keeps its own load
   counters.  A fault whose simulation raises is recorded as Sim_failed
   through Simulate.guard, so one bad fault never aborts the run. *)

type domain_stats = {
  domain : int;
  faults_done : int;
  fault_indices : int list;
  newton_iterations : int;
  busy_seconds : float;
  steal_seconds : float;
}

let worker ~config ~circuit ~nominal ~faults ~next ~results ~journal ~completed
    ~progress ~total d () =
  let obs = config.Simulate.obs in
  let t0 = Unix.gettimeofday () in
  let ndone = ref 0 and iters = ref 0 and indices = ref [] in
  let steal_acc = ref 0.0 in
  (try
     let sess = ref (Simulate.session config circuit) in
     let n = Array.length faults in
     let rec steal () =
       let t_steal = Unix.gettimeofday () in
       let i = Atomic.fetch_and_add next 1 in
       if i < n then begin
         (* Journal-restored results were prefilled before the spawn and
            already counted in [completed]; skip straight to the next
            index. *)
         if results.(i) = None then begin
           let fault = faults.(i) in
           let dt = Unix.gettimeofday () -. t_steal in
           steal_acc := !steal_acc +. dt;
           Obs.sample obs "parsim.steal_seconds" dt;
           let r =
             Simulate.guard fault (fun () ->
                 Simulate.run_one_in config !sess ~nominal fault)
           in
           results.(i) <- Some r;
           Option.iter (fun j -> Journal.record j i r) journal;
           (* Quarantine, as in the serial loop: rebuild this domain's
              session after a kernel failure. *)
           (match r.Simulate.outcome with
           | Simulate.Sim_failed failure when Outcome.poisons_session failure ->
             Obs.count obs "session.quarantine" 1;
             sess := Simulate.session config circuit
           | Simulate.Sim_failed _ | Simulate.Detected _ | Simulate.Undetected ->
             ());
           incr ndone;
           indices := i :: !indices;
           iters := !iters + r.Simulate.stats.Sim.Engine.newton_iterations;
           let c = Atomic.fetch_and_add completed 1 + 1 in
           (* The shared counter is polled from domain 0 only, so the
              callback never runs concurrently with itself. *)
           match progress with
           | Some f when d = 0 -> f c total
           | Some _ | None -> ()
         end;
         steal ()
       end
     in
     steal ()
   with _ ->
     (* A domain that cannot even set up its session just stops stealing;
        the remaining faults drain through the other domains. *)
     ());
  let busy = Unix.gettimeofday () -. t0 in
  if Obs.enabled obs then
    Obs.sample obs "parsim.domain_busy_seconds" busy
      ~attrs:
        [
          ("worker", Obs.Int d);
          ("faults_done", Obs.Int !ndone);
          ("newton_iterations", Obs.Int !iters);
          ("steal_seconds", Obs.Float !steal_acc);
        ];
  {
    domain = d;
    faults_done = !ndone;
    fault_indices = List.rev !indices;
    newton_iterations = !iters;
    busy_seconds = busy;
    steal_seconds = !steal_acc;
  }

let run_with_stats ?progress ?journal ?(clamp = true) ~domains config circuit
    faults =
  let domains =
    if clamp then max 1 (min domains (Domain.recommended_domain_count ()))
    else max 1 domains
  in
  Obs.span config.Simulate.obs "anafault.batch"
    ~attrs:
      [ ("faults", Obs.Int (List.length faults)); ("domains", Obs.Int domains) ]
    (fun _ ->
      let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
      let nominal, nominal_stats = Simulate.nominal config circuit in
      let faults_arr = Array.of_list faults in
      let n = Array.length faults_arr in
      let results = Array.make n None in
      (* Prefill journal-restored results so no domain re-simulates a
         completed fault. *)
      let restored = ref 0 in
      (match journal with
      | Some j ->
        Array.iteri
          (fun i fault ->
            match Journal.find j i fault with
            | Some r ->
              results.(i) <- Some r;
              incr restored;
              Obs.count config.Simulate.obs "journal.skipped" 1
            | None -> ())
          faults_arr
      | None -> ());
      let next = Atomic.make 0 in
      let completed = Atomic.make !restored in
      let work =
        worker ~config ~circuit ~nominal ~faults:faults_arr ~next ~results
          ~journal ~completed ~progress ~total:n
      in
      let spawned = List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1))) in
      let mine = work 0 () in
      let stats = mine :: List.map Domain.join spawned in
      (* Domain 0 only sees the counter after its own faults; guarantee
         the caller one final (total, total) call once everyone joined. *)
      (match progress with Some f when n > 0 -> f n n | Some _ | None -> ());
      let results =
        Array.to_list
          (Array.mapi
             (fun i r ->
               match r with
               | Some r -> r
               | None ->
                 (* Only reachable if every domain died before stealing
                    index i. *)
                 {
                   Simulate.fault = faults_arr.(i);
                   outcome =
                     Simulate.Sim_failed
                       (Simulate.Crashed "no domain simulated this fault");
                   attempts = [];
                   stats = Simulate.zero_stats;
                   cpu_seconds = 0.0;
                 })
             results)
      in
      ( {
          Simulate.config;
          nominal;
          nominal_stats;
          results;
          wall_seconds = Unix.gettimeofday () -. wall0;
          cpu_seconds = Sys.time () -. cpu0;
        },
        List.sort (fun a b -> Int.compare a.domain b.domain) stats ))

let run ?clamp ~domains config circuit faults =
  fst (run_with_stats ?clamp ~domains config circuit faults)

let execute ?progress ?journal ?clamp ?domains config circuit faults =
  let domains = Option.value ~default:config.Simulate.domains domains in
  if domains <= 1 then (Simulate.run ?progress ?journal config circuit faults, [])
  else run_with_stats ?progress ?journal ?clamp ~domains config circuit faults
