(* Work-stealing parallel fault simulation on OCaml 5 domains.

   Per-fault Newton costs vary wildly (a stuck-open fault converges far
   slower than a low-ohmic bridge), so instead of static chunking every
   domain pulls the next chunk of fault indices from a shared atomic
   counter.  The chunk width is the lock-step batch width: a chunk of
   width > 1 is simulated as one batch through Simulate.run_batch, so
   batches are the unit of work stealing.  Each domain owns one engine
   session (sessions are single-threaded), writes results into its own
   slots of a shared buffer, and keeps its own load counters.  A fault
   whose simulation raises is recorded as Sim_failed through
   Simulate.guard, so one bad fault never aborts the run; a domain that
   dies outright (e.g. session setup fails) marks the faults it had
   claimed with a typed failure and reports itself in [died], so the
   campaign can never silently succeed with holes. *)

type domain_stats = {
  domain : int;
  faults_done : int;
  fault_indices : int list;
  newton_iterations : int;
  busy_seconds : float;
  steal_seconds : float;
  died : bool;
}

(* Test hook: when it returns true for a domain index, that domain's
   session setup raises - the only way to exercise the domain-death path
   deterministically. *)
let chaos_session_failure : (int -> bool) ref = ref (fun _ -> false)

let worker ~config ~circuit ~nominal ~faults ~batch ~next ~results ~journal
    ~completed ~progress ~progress_lock ~abort ~stop ~total d () =
  let obs = config.Simulate.obs in
  let t0 = Unix.gettimeofday () in
  let ndone = ref 0 and iters = ref 0 and indices = ref [] in
  let steal_acc = ref 0.0 in
  let died = ref false in
  let n = Array.length faults in
  (* Any domain may drive the progress callback; the CAS lock keeps it
     single-flight, and the completed counter is read inside the locked
     region, so consecutive callbacks see non-decreasing counts.  A
     callback that raises (the CLI's abort knob) stops every domain; the
     exception is re-raised by [run_with_stats] after the join. *)
  let report () =
    match progress with
    | None -> ()
    | Some f ->
      if Atomic.compare_and_set progress_lock false true then begin
        (match f (Atomic.get completed) total with
        | () -> ()
        | exception exn ->
          ignore (Atomic.compare_and_set abort None (Some exn));
          Atomic.set stop true);
        Atomic.set progress_lock false
      end
  in
  (* The domain is dying: give every fault it claimed but did not finish
     a typed failure (never a silent hole), count the death, and stop
     stealing.  Unclaimed faults drain through the other domains. *)
  let mark_died i0 hi exn =
    died := true;
    Obs.count obs "parsim.domain_died" 1;
    let detail = Printf.sprintf "domain %d died: %s" d (Printexc.to_string exn) in
    for i = i0 to hi - 1 do
      if results.(i) = None then begin
        results.(i) <-
          Some
            {
              Simulate.fault = faults.(i);
              outcome = Simulate.Sim_failed (Simulate.Crashed detail);
              attempts = [];
              stats = Simulate.zero_stats;
              cpu_seconds = 0.0;
            };
        ignore (Atomic.fetch_and_add completed 1)
      end
    done;
    report ()
  in
  (match
     if !chaos_session_failure d then
       failwith "chaos: injected session-setup failure";
     Simulate.session config circuit
   with
  | exception exn -> mark_died 0 0 exn
  | session ->
    let sess = ref session in
    let bw = max 1 batch in
    let cancel = config.Simulate.sim_options.Sim.Engine.cancel in
    let rec steal () =
      (* A cancelled token stops the domain claiming new chunks; the
         chunk in flight drains through the engine's own polls, so the
         domain exits cleanly instead of via an abort exception. *)
      if (not (Atomic.get stop)) && not (Cancel.cancelled cancel) then begin
        let t_steal = Unix.gettimeofday () in
        let i0 = Atomic.fetch_and_add next bw in
        let dt = Unix.gettimeofday () -. t_steal in
        (* Every steal is accounted, including the final unsuccessful
           one: the scheduler's overhead does not vanish at the end of
           the list. *)
        steal_acc := !steal_acc +. dt;
        Obs.sample obs "parsim.steal_seconds" dt;
        if i0 < n then begin
          let hi = min n (i0 + bw) in
          match
            (* Journal-restored results were prefilled before the spawn
               and already counted in [completed]; skip those indices. *)
            let todo = ref [] in
            for i = hi - 1 downto i0 do
              if results.(i) = None then todo := (i, faults.(i)) :: !todo
            done;
            let todo = !todo in
            if todo <> [] then begin
              let rs =
                match todo with
                | [ (_, fault) ] ->
                  (* A width-1 chunk takes the serial per-fault path
                     directly - no batch machinery in the way. *)
                  [
                    Simulate.guard fault (fun () ->
                        Simulate.run_one_in config !sess ~nominal fault);
                  ]
                | _ -> Simulate.run_batch config !sess ~nominal (List.map snd todo)
              in
              let poisoned = ref false in
              List.iter2
                (fun (i, _) r ->
                  results.(i) <- Some r;
                  (* Cancelled results never reach the journal: resume
                     must re-run exactly the interrupted faults. *)
                  (match r.Simulate.outcome with
                  | Simulate.Sim_failed (Simulate.Cancelled _) -> ()
                  | Simulate.Sim_failed _ | Simulate.Detected _
                  | Simulate.Undetected ->
                    Option.iter (fun j -> Journal.record j i r) journal);
                  (match r.Simulate.outcome with
                  | Simulate.Sim_failed failure
                    when Outcome.poisons_session failure ->
                    poisoned := true
                  | Simulate.Sim_failed _ | Simulate.Detected _
                  | Simulate.Undetected -> ());
                  incr ndone;
                  indices := i :: !indices;
                  iters := !iters + r.Simulate.stats.Sim.Engine.newton_iterations;
                  ignore (Atomic.fetch_and_add completed 1);
                  report ())
                todo rs;
              (* Quarantine, as in the serial loop: a kernel failure may
                 leave device state or an unfinished overlay behind, so
                 the domain's session is rebuilt before the next chunk. *)
              if !poisoned then begin
                Obs.count obs "session.quarantine" 1;
                sess := Simulate.session config circuit
              end
            end
          with
          | () -> steal ()
          | exception exn -> mark_died i0 hi exn
        end
      end
    in
    steal ());
  let busy = Unix.gettimeofday () -. t0 in
  if Obs.enabled obs then
    Obs.sample obs "parsim.domain_busy_seconds" busy
      ~attrs:
        [
          ("worker", Obs.Int d);
          ("faults_done", Obs.Int !ndone);
          ("newton_iterations", Obs.Int !iters);
          ("steal_seconds", Obs.Float !steal_acc);
          ("died", Obs.Bool !died);
        ];
  {
    domain = d;
    faults_done = !ndone;
    fault_indices = List.rev !indices;
    newton_iterations = !iters;
    busy_seconds = busy;
    steal_seconds = !steal_acc;
    died = !died;
  }

let run_with_stats ?progress ?journal ?(clamp = true) ?batch ~domains config
    circuit faults =
  let domains =
    if clamp then max 1 (min domains (Domain.recommended_domain_count ()))
    else max 1 domains
  in
  Obs.span config.Simulate.obs "anafault.batch"
    ~attrs:
      [ ("faults", Obs.Int (List.length faults)); ("domains", Obs.Int domains) ]
    (fun _ ->
      let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
      let nominal, nominal_stats = Simulate.nominal config circuit in
      let faults_arr = Array.of_list faults in
      let n = Array.length faults_arr in
      let batch =
        match batch with
        | Some b when b > 0 -> b
        | Some _ | None ->
          Simulate.effective_batch { config with Simulate.domains } ~total:n
      in
      let results = Array.make n None in
      (* Prefill journal-restored results so no domain re-simulates a
         completed fault. *)
      let restored = ref 0 in
      (match journal with
      | Some j ->
        Array.iteri
          (fun i fault ->
            match Journal.find j i fault with
            | Some r ->
              results.(i) <- Some r;
              incr restored;
              Obs.count config.Simulate.obs "journal.skipped" 1
            | None -> ())
          faults_arr
      | None -> ());
      let next = Atomic.make 0 in
      let completed = Atomic.make !restored in
      let progress_lock = Atomic.make false in
      let abort = Atomic.make None in
      let stop = Atomic.make false in
      let work =
        worker ~config ~circuit ~nominal ~faults:faults_arr ~batch ~next
          ~results ~journal ~completed ~progress ~progress_lock ~abort ~stop
          ~total:n
      in
      let spawned = List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1))) in
      let mine = work 0 () in
      let stats = mine :: List.map Domain.join spawned in
      (* An aborting progress callback (the CLI's --abort-after) stopped
         every domain; surface it to the caller exactly as the serial
         loop would have. *)
      (match Atomic.get abort with
      | Some exn -> raise exn
      | None ->
        (* Workers only see the counter after their own chunks; guarantee
           the caller one final (total, total) call once everyone
           joined. *)
        (match progress with Some f when n > 0 -> f n n | Some _ | None -> ()));
      let unclaimed_failure =
        (* Holes after the join are typed by why the run stopped early:
           a cancelled campaign leaves [Cancelled] faults (which resume
           re-runs), an all-domains-dead run leaves [Crashed] ones. *)
        match Cancel.get config.Simulate.sim_options.Sim.Engine.cancel with
        | Some reason ->
          Simulate.Cancelled (Cancel.reason_to_string reason)
        | None -> Simulate.Crashed "no domain simulated this fault"
      in
      let results =
        Array.to_list
          (Array.mapi
             (fun i r ->
               match r with
               | Some r -> r
               | None ->
                 {
                   Simulate.fault = faults_arr.(i);
                   outcome = Simulate.Sim_failed unclaimed_failure;
                   attempts = [];
                   stats = Simulate.zero_stats;
                   cpu_seconds = 0.0;
                 })
             results)
      in
      ( {
          Simulate.config;
          nominal;
          nominal_stats;
          results;
          wall_seconds = Unix.gettimeofday () -. wall0;
          cpu_seconds = Sys.time () -. cpu0;
        },
        List.sort (fun a b -> Int.compare a.domain b.domain) stats ))

let run ?clamp ?batch ~domains config circuit faults =
  fst (run_with_stats ?clamp ?batch ~domains config circuit faults)

let execute ?progress ?journal ?clamp ?domains ?batch config circuit faults =
  let domains = Option.value ~default:config.Simulate.domains domains in
  let width =
    match batch with
    | Some b when b > 0 -> b
    | Some _ | None ->
      Simulate.effective_batch
        { config with Simulate.domains }
        ~total:(List.length faults)
  in
  if domains <= 1 && width <= 1 then
    (Simulate.run ?progress ?journal config circuit faults, [])
  else
    (* One domain with a wider batch still goes through the worker loop:
       domain 0 processes every chunk itself, batched. *)
    run_with_stats ?progress ?journal ?clamp ~batch:width ~domains config
      circuit faults
