(** The automatic fault-simulation loop: nominal run, then one kernel
    simulation per fault with result comparison (the paper's repetitive
    preprocessing / kernel / post-processing cycle).

    The loop is batch-shaped: one {!Sim.Engine.Session} carries the node
    map and solver buffers across the whole fault list, and each fault is
    a patch-simulate-compare cycle against it. *)

(** The single place a fault-simulation run is described: fault model,
    stimulus, observation point, detection tolerance, kernel options,
    output grid, scheduler width and telemetry sink.  Every front end
    (CLI, benches, examples) builds one of these and hands it to
    {!run} / {!Parsim.execute}. *)
type config = {
  model : Faults.Inject.model;  (** fault simulation model *)
  tran : Netlist.Parser.tran;  (** analysis request *)
  observed : string;  (** the node whose waveform the test observes *)
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
  samples : int;  (** output grid size (the paper uses a 400-step run) *)
  domains : int;  (** scheduler width for {!Parsim.execute}; 1 = serial *)
  obs : Obs.sink;  (** telemetry sink threaded through the kernel, the
                       sessions and the per-fault loop *)
}

(** [default_config ~tran ~observed] is the paper's working point: the
    source model, 2 V / 0.2 us tolerances, a 400-point grid, one domain
    and no telemetry; each piece can be overridden in place. *)
val default_config :
  ?model:Faults.Inject.model ->
  ?tolerance:Detect.tolerance ->
  ?sim_options:Sim.Engine.options ->
  ?samples:int ->
  ?domains:int ->
  ?obs:Obs.sink ->
  tran:Netlist.Parser.tran ->
  observed:string ->
  unit ->
  config

(** The last non-ground node of the circuit - by SPICE habit the
    output - for callers that let the observed node default. *)
val default_observed : Netlist.Circuit.t -> string

type outcome =
  | Detected of float  (** first detection time *)
  | Undetected
  | Sim_failed of string  (** kernel did not converge, or the injected
                              circuit was unsimulatable *)

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  wall_seconds : float;  (** elapsed wall-clock time of the whole loop *)
  cpu_seconds : float;
      (** process CPU time of the whole loop; under {!Parsim} this sums
          the work of every domain, so wall and CPU diverge exactly by
          the parallel speedup *)
}

(** All-zero work counters (placeholder for failed simulations). *)
val zero_stats : Sim.Engine.stats

(** [nominal config circuit] runs the fault-free simulation, resampled
    onto the uniform output grid, inside an ["anafault.nominal"]
    span. *)
val nominal : config -> Netlist.Circuit.t -> Sim.Waveform.t * Sim.Engine.stats

(** [session config circuit] opens an engine session on the nominal
    circuit with the config's simulator options and telemetry sink -
    the shared state for a batch of {!run_one_in} calls. *)
val session : config -> Netlist.Circuit.t -> Sim.Engine.Session.t

(** [run_one config circuit ~nominal fault] injects, simulates and
    compares one fault, rebuilding all engine state from scratch (the
    pre-session reference path).  Emits one ["anafault.fault"] span
    tagged with the fault, its outcome and first-detection time. *)
val run_one :
  config -> Netlist.Circuit.t -> nominal:Sim.Waveform.t -> Faults.Fault.t -> fault_result

(** [run_one_in config session ~nominal fault] is {!run_one} through the
    shared session: the fault is applied as a device patch, simulated in
    the session's buffers, and the nominal view is restored afterwards.
    Falls back to the rebuild path if the injection exceeds the
    session's patch capacity (counted as ["session.rebuild"]). *)
val run_one_in :
  config ->
  Sim.Engine.Session.t ->
  nominal:Sim.Waveform.t ->
  Faults.Fault.t ->
  fault_result

(** [guard fault thunk] isolates a per-fault failure: any exception the
    simulation paths do not already map (e.g. an invalid injected
    device) becomes a {!Sim_failed} result instead of aborting the
    batch. *)
val guard : Faults.Fault.t -> (unit -> fault_result) -> fault_result

(** [run config circuit faults] performs the whole loop serially through
    one shared session, inside an ["anafault.batch"] span.  [progress]
    (if given) is called after each fault with (done, total).
    [config.domains] is ignored here; {!Parsim.execute} dispatches on
    it. *)
val run :
  ?progress:(int -> int -> unit) ->
  config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  run

(** Detected / undetected / failed counts. *)
val tally : run -> int * int * int
