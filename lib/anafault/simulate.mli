(** The automatic fault-simulation loop: nominal run, then one kernel
    simulation per fault with result comparison (the paper's repetitive
    preprocessing / kernel / post-processing cycle).

    The loop is batch-shaped: one {!Sim.Engine.Session} carries the node
    map and solver buffers across the whole fault list, and each fault is
    a patch-simulate-compare cycle against it.  Per-fault robustness is
    layered: a typed failure taxonomy ({!Outcome.failure}), a work budget
    ({!Sim.Engine.budget}, applied per fault - the nominal run is always
    unbudgeted), a configurable retry ladder ([retries]), session
    quarantine after kernel failures, and an optional crash-safe
    {!Journal} for resumable campaigns.

    This module is the engine room.  Front ends should not call
    [run_one]/[run_one_in]/[run_batch]/[run] directly any more: describe
    the campaign as a {!Campaign.spec} and execute it with
    {!Campaign.run_local} (or submit it to a running [anafaultd]) - one
    typed entry point instead of four ad-hoc ones.  The migration guide
    lives in DESIGN.md. *)

(** The single place a fault-simulation run is described: fault model,
    stimulus, observation point, detection tolerance, kernel options,
    retry policy, output grid, scheduler width and telemetry sink.
    Every front end (CLI, benches, examples) builds one of these and
    hands it to {!run} / {!Parsim.execute}. *)
type config = {
  model : Faults.Inject.model;  (** fault simulation model *)
  tran : Netlist.Parser.tran;  (** analysis request *)
  observed : string;  (** the node whose waveform the test observes *)
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
      (** kernel options; its [budget] bounds each {e fault} simulation
          (the nominal reference run is exempt) *)
  retries : Outcome.strategy list;
      (** escalation ladder tried, in order, after the baseline attempt
          fails with a retryable kernel failure; each rung perturbs the
          baseline config independently *)
  samples : int;  (** output grid size (the paper uses a 400-step run) *)
  domains : int;  (** scheduler width for {!Parsim.execute}; 1 = serial *)
  batch : int;
      (** lock-step batch width for {!run_batch}: how many faulty
          variants advance together through one shared time grid.  0
          (the default) resolves automatically via {!effective_batch};
          1 forces the exact per-fault serial path *)
  obs : Obs.sink;  (** telemetry sink threaded through the kernel, the
                       sessions and the per-fault loop *)
}

(** [default_config ~tran ~observed] is the paper's working point: the
    source model, 2 V / 0.2 us tolerances, a 400-point grid, one domain,
    no telemetry and a one-rung [Swap_model] retry ladder (the paper
    notes both fault models yield near-identical coverage, so a singular
    source-model injection silently falls back to the resistor model);
    each piece can be overridden in place.

    {b Deprecated} as a front-end entry point: new code should build a
    {!Campaign.options} (which has total JSON codecs and an [of_cli]
    constructor) and derive the config via {!Campaign.config_of_options}
    - see the migration guide in DESIGN.md.  [default_config] remains
    for the engine room and existing callers. *)
val default_config :
  ?model:Faults.Inject.model ->
  ?tolerance:Detect.tolerance ->
  ?sim_options:Sim.Engine.options ->
  ?retries:Outcome.strategy list ->
  ?samples:int ->
  ?domains:int ->
  ?batch:int ->
  ?obs:Obs.sink ->
  tran:Netlist.Parser.tran ->
  observed:string ->
  unit ->
  config

(** The lock-step batch width actually used for a campaign of [total]
    faults: an explicit [config.batch] verbatim, otherwise an automatic
    width that keeps at least four batches per domain available for work
    stealing, clamps at 16, and degenerates to 1 (the exact serial path)
    for small campaigns. *)
val effective_batch : config -> total:int -> int

(** The last non-ground node of the circuit - by SPICE habit the
    output - for callers that let the observed node default. *)
val default_observed : Netlist.Circuit.t -> string

(** Why a fault produced no comparable waveform; re-exported from
    {!Outcome} so existing matches keep compiling. *)
type failure = Outcome.failure =
  | Dc_no_convergence of string
  | Tran_step_underflow of string
  | Singular_matrix of string
  | Bad_injection of string
  | Budget_exceeded of string
  | Cancelled of string
  | Crashed of string

type outcome = Outcome.outcome =
  | Detected of float  (** first detection time *)
  | Undetected
  | Sim_failed of failure
      (** the kernel gave up, the injection was invalid, the work budget
          tripped, or the simulation crashed - see the payload *)

type attempt = Outcome.attempt = {
  strategy : Outcome.strategy;
  failure : failure option;  (** [None]: this attempt won *)
}

type fault_result = Outcome.fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  attempts : attempt list;
      (** the retry ladder as executed, baseline first; every failed
          rung keeps its own failure, so the original error survives a
          successful (or failed) retry *)
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

(** {!Outcome.failure_to_string}, re-exported for presentation code. *)
val failure_to_string : failure -> string

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  wall_seconds : float;  (** elapsed wall-clock time of the whole loop *)
  cpu_seconds : float;
      (** process CPU time of the whole loop; under {!Parsim} this sums
          the work of every domain, so wall and CPU diverge exactly by
          the parallel speedup *)
}

(** All-zero work counters (placeholder for failed simulations). *)
val zero_stats : Sim.Engine.stats

(** [nominal config circuit] runs the fault-free simulation (unbudgeted),
    resampled onto the uniform output grid, inside an
    ["anafault.nominal"] span. *)
val nominal : config -> Netlist.Circuit.t -> Sim.Waveform.t * Sim.Engine.stats

(** [session config circuit] opens an engine session on the nominal
    circuit with the config's simulator options and telemetry sink -
    the shared state for a batch of {!run_one_in} calls. *)
val session : config -> Netlist.Circuit.t -> Sim.Engine.Session.t

(** [run_one config circuit ~nominal fault] injects, simulates and
    compares one fault, rebuilding all engine state from scratch (the
    pre-session reference path).  Runs the retry ladder; emits one
    ["anafault.fault"] span tagged with the fault, its outcome, failure
    class, attempt count and winning strategy. *)
val run_one :
  config -> Netlist.Circuit.t -> nominal:Sim.Waveform.t -> Faults.Fault.t -> fault_result

(** [run_one_in config session ~nominal fault] is {!run_one} through the
    shared session: the fault is applied as a device patch, simulated in
    the session's buffers, and the nominal view is restored afterwards.
    Falls back to the rebuild path if the injection exceeds the
    session's patch capacity (counted as ["session.rebuild"]). *)
val run_one_in :
  config ->
  Sim.Engine.Session.t ->
  nominal:Sim.Waveform.t ->
  Faults.Fault.t ->
  fault_result

(** [guard fault thunk] isolates a per-fault failure: any exception the
    simulation paths do not already map becomes a
    [Sim_failed (Crashed _)] result instead of aborting the batch. *)
val guard : Faults.Fault.t -> (unit -> fault_result) -> fault_result

(** [run_batch config session ~nominal faults] simulates the whole list
    as one lock-step batch on [session]
    ({!Sim.Engine.Session.transient_batch}): all variants share the
    session buffers and one sparse symbolic pattern, advance together
    through the nominal output grid, and each is dropped (counted as
    ["batch.drops"]) the moment its {!Detect.Incremental} verdict is
    final - a detected fault pays only the transient prefix needed to
    detect it.  Variants that run to tstop are compared exactly like
    {!run_one_in}, so their outcomes are bit-identical to the serial
    path; dropped variants report detection at the same grid instant the
    serial comparison finds (the observed values differ only by a
    rounding-level interpolation difference).  Faults the batch cannot
    carry - injection errors, patch overflow, kernel failures (which may
    still be rescued by the retry ladder) - fall back to {!run_one_in}
    individually; a failure of the batch machinery itself retires the
    whole list to the serial path (counted as ["batch.fallback"]).
    Results are returned in input order; every fault gets the usual
    ["anafault.fault"] span.  A width-1 batch {e is} the serial path. *)
val run_batch :
  config ->
  Sim.Engine.Session.t ->
  nominal:Sim.Waveform.t ->
  Faults.Fault.t list ->
  fault_result list

(** [fingerprint config circuit faults] is the campaign identity a
    {!Journal} is keyed by: a digest over the printed circuit deck,
    every result-affecting config field, and the printed fault list.
    The domain count and telemetry sink are excluded (results are
    schedule-independent). *)
val fingerprint : config -> Netlist.Circuit.t -> Faults.Fault.t list -> string

(** [run config circuit faults] performs the whole loop serially through
    one shared session, inside an ["anafault.batch"] span.  [progress]
    (if given) is called after each fault with (done, total).  With
    [journal], faults the journal already holds are skipped (counted as
    ["journal.skipped"]) and every freshly simulated result is recorded
    before the loop advances.  After a result whose failure
    {!Outcome.poisons_session}, the session is rebuilt (quarantine,
    counted as ["session.quarantine"]).  [config.domains] is ignored
    here; {!Parsim.execute} dispatches on it. *)
val run :
  ?progress:(int -> int -> unit) ->
  ?journal:Journal.t ->
  config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  run

(** Detected / undetected / failed counts. *)
val tally : run -> int * int * int

(** Failed-fault counts by failure class ({!Outcome.failure_kind} tag),
    sorted by tag - the breakdown {!Report.pp_summary} prints. *)
val failure_tally : run -> (string * int) list
