(* Work-stealing parallel map over OCaml 5 domains, the Parsim pattern
   shrunk to the pipeline's needs: per-tile costs vary wildly (an empty
   corner tile against one stuffed with devices), so every domain pulls
   the next task index from a shared atomic counter instead of taking a
   static slice.  Results land in indexed slots, so the output order -
   and everything derived from it - is independent of the domain count.
   A task that raises aborts the whole map: the first exception is
   re-raised after every domain has been joined, never swallowed. *)

let map ?(obs = Obs.null) ?(name = "pool") ~domains f n =
  let domains = max 1 (min domains 64) in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then begin
    (* The serial path runs in the calling domain: no spawn cost, and
       exceptions propagate directly. *)
    Array.init n f
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed : exn option Atomic.t = Atomic.make None in
    let worker () =
      let stolen = ref 0 in
      let rec loop () =
        if Atomic.get failed = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f i with
            | v -> results.(i) <- Some v
            | exception exn -> ignore (Atomic.compare_and_set failed None (Some exn)));
            incr stolen;
            loop ()
          end
        end
      in
      loop ();
      if Obs.enabled obs then Obs.count obs (name ^ ".tasks_stolen") !stolen
    in
    let spawned =
      Array.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failed with Some exn -> raise exn | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
          (* Unreachable: every index below [n] was claimed by exactly
             one worker and either filled or recorded a failure. *)
          assert false)
      results
  end
