(* Staged, parallel, incremental LIFT.

   The monolithic [Extractor.extract |> Lift.run] flow is decomposed into
   stages with explicit, content-addressed artefacts:

     Layout -> Tiles -> Connectivity -> Sites -> Critical_area -> Ranked_faults

   A uniform tile grid covers the layout; every geometric fact (a touching
   pair, a facing pair, a cut, a conductor) is owned by exactly one tile -
   the tile containing its anchor point - and computed inside that tile's
   margin window, so per-tile results union to exactly the global answer.
   Each per-tile artefact is keyed by a digest of everything it reads:

     window digest  = tech parameters + tile cell + margin
                      + the ordered (layer, rect) sequence of the window's
                        member conductors + the tile's owned cut shapes
     sites digest   = window digest + the digests of every net touching an
                      owned conductor or cut (a net digest covers member
                      geometry, cuts and anchored terminals, so a split
                      result can never go stale through a distant edit)
     CA digest      = window digest + the defect-size pdf parameters

   On a re-run after a local geometry edit, only the tiles whose windows
   saw the edit (and the tiles owning members of nets it rewired) miss the
   cache; everything else loads its artefact back.  Artefacts store
   window-local member positions, never global conductor indices or net
   ids - those shift under edits elsewhere - and are remapped against the
   current member lists on load.

   Determinism: stage fan-out runs over {!Pool} with results in indexed
   slots, per-key bridge contributions are sorted by global pair index and
   folded left (the serial summation order of {!Sites.bridges}), and net
   ids are canonical (smallest conductor index) whatever the union order,
   so the ranked fault list is byte-identical to the serial path across
   runs, tile sizes and domain counts. *)

type stage_counter = { computed : int; cached : int }

type counters = {
  tiles : int;
  connectivity : stage_counter;
  sites : stage_counter;
  critical_area : stage_counter;
}

type config = {
  tile_nm : int;
  domains : int;
  cache_dir : string option;
  obs : Obs.sink;
  options : Lift.options;
}

let default_config =
  {
    tile_nm = 200_000;
    domains = 1;
    cache_dir = None;
    obs = Obs.null;
    options = Lift.default_options;
  }

type t = {
  result : Lift.result;
  extraction : Extract.Extraction.t;
  counters : counters;
}

let counters_to_json c =
  let stage (s : stage_counter) =
    Obs.Json.Obj [ ("computed", Obs.Json.Int s.computed); ("cached", Obs.Json.Int s.cached) ]
  in
  Obs.Json.Obj
    [
      ("tiles", Obs.Json.Int c.tiles);
      ( "stages",
        Obs.Json.Obj
          [
            ("connectivity", stage c.connectivity);
            ("sites", stage c.sites);
            ("critical_area", stage c.critical_area);
          ] );
    ]

(* --- Artefact store ----------------------------------------------------- *)

(* A flat directory of content-addressed files, one per (stage, digest).
   Entries are Marshal payloads framed by a magic string and an MD5
   checksum; anything that fails to frame, checksum or unmarshal is a
   cache miss, never an error (the artefact is recomputed and the entry
   rewritten).  Writes go through a per-domain temporary file and a
   rename, so concurrent writers of the same key (identical tiles of a
   regular array) race benignly: last rename wins, both contents equal. *)
module Store = struct
  type t = { dir : string }

  let magic = "LIFTPIPE1\n"

  let rec ensure_dir d =
    if (not (Sys.file_exists d)) && d <> Filename.dirname d then begin
      ensure_dir (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end

  let create dir =
    ensure_dir dir;
    { dir }

  let path t key = Filename.concat t.dir key

  let load : t -> string -> 'a option =
   fun t key ->
    match In_channel.with_open_bin (path t key) In_channel.input_all with
    | exception Sys_error _ -> None
    | data ->
      let mlen = String.length magic in
      if String.length data < mlen + 32 || String.sub data 0 mlen <> magic then None
      else begin
        let sum = String.sub data mlen 32 in
        let payload = String.sub data (mlen + 32) (String.length data - mlen - 32) in
        if Digest.to_hex (Digest.string payload) <> sum then None
        else (try Some (Marshal.from_string payload 0) with _ -> None)
      end

  let save t key v =
    let payload = Marshal.to_string v [] in
    let tmp =
      path t (Printf.sprintf "%s.tmp.%d" key (Domain.self () :> int))
    in
    Out_channel.with_open_bin tmp (fun oc ->
        output_string oc magic;
        output_string oc (Digest.to_hex (Digest.string payload));
        output_string oc payload);
    Sys.rename tmp (path t key)
end

(* --- Digests ------------------------------------------------------------ *)

let hex s = Digest.to_hex (Digest.string s)

let add_rect b (r : Geom.Rect.t) =
  Buffer.add_string b
    (Printf.sprintf "%d,%d,%d,%d;" r.Geom.Rect.x0 r.Geom.Rect.y0 r.Geom.Rect.x1
       r.Geom.Rect.y1)

let add_shape b layer r =
  Buffer.add_string b (Layout.Layer.to_string layer);
  Buffer.add_char b ':';
  add_rect b r

let tech_string (tech : Layout.Tech.t) =
  Printf.sprintf "tech:%d:%d:%d:%d:%d" tech.Layout.Tech.lambda
    tech.Layout.Tech.cut_side tech.Layout.Tech.cut_enclosure
    tech.Layout.Tech.defect_x_min tech.Layout.Tech.defect_x_max

let pdf_string = function
  | Geom.Critical_area.Cubic { x_min } -> Printf.sprintf "cubic:%h" x_min
  | Geom.Critical_area.Uniform { x_min; x_max } ->
    Printf.sprintf "uniform:%h:%h" x_min x_max

(* --- Per-tile artefacts ------------------------------------------------- *)

(* Connectivity: same-layer touching pairs owned by the tile (window-local
   member positions) and, for each cut the tile owns, the member positions
   it joins. *)
type conn_art = { cn_pairs : (int * int) list; cn_joins : int list list }

(* Sites: facing ("close") pairs per conducting layer with their facing
   geometry; the split verdict for each owned conductor and owned cut
   (the terminals the open would tear off its net, [None] when the net
   survives). *)
type sites_art = {
  st_bridge : (int * int * int * int) list array;
      (* per conducting layer: local a, local b, spacing, length *)
  st_moved : Faults.Fault.terminal list option array;  (* per owned conductor *)
  st_cut_moved : Faults.Fault.terminal list option array;  (* per owned cut *)
}

(* Critical areas, aligned with [st_bridge] (which depends only on the
   window digest, the common key prefix) and with the owned conductors. *)
type ca_art = { ar_bridge : float array array; ar_open : float array }

(* --- The run ------------------------------------------------------------ *)

let zero_counters =
  {
    tiles = 0;
    connectivity = { computed = 0; cached = 0 };
    sites = { computed = 0; cached = 0 };
    critical_area = { computed = 0; cached = 0 };
  }

let run ?(config = default_config) mask =
  let obs = config.obs in
  let options = config.options in
  let sk = Obs.span obs "pipeline.skeleton" (fun _ -> Extract.Extractor.skeleton mask) in
  let conductors = sk.Extract.Extractor.sk_conductors in
  let cut_shapes = sk.Extract.Extractor.sk_cut_shapes in
  let n = Array.length conductors in
  if n = 0 then begin
    (* Nothing to tile: an empty (or conductor-free) layout short-circuits
       through the serial path. *)
    let ext = Extract.Extractor.extract mask in
    { result = Lift.run ~options ext; extraction = ext; counters = zero_counters }
  end
  else begin
    let tech = mask.Layout.Mask.tech in
    let x_max = tech.Layout.Tech.defect_x_max in
    let margin = max x_max (2 * tech.Layout.Tech.cut_side) in
    let store = Option.map Store.create config.cache_dir in
    (* Tiles stage: the grid, window membership, ownership, digests. *)
    let tiling, members, owned_cond, owned_cuts, wdigest =
      Obs.span obs "pipeline.tiles" (fun _ ->
          let hull = ref conductors.(0).Extract.Extraction.rect in
          Array.iter
            (fun (c : Extract.Extraction.conductor) ->
              hull := Geom.Rect.hull !hull c.rect)
            conductors;
          Array.iter (fun (_, r) -> hull := Geom.Rect.hull !hull r) cut_shapes;
          let tiling = Geom.Tiling.create ~tile_nm:config.tile_nm !hull in
          let nt = Geom.Tiling.count tiling in
          let members = Array.make nt [] in
          Array.iteri
            (fun k (c : Extract.Extraction.conductor) ->
              List.iter
                (fun ti -> members.(ti) <- k :: members.(ti))
                (Geom.Tiling.covering tiling ~margin c.rect))
            conductors;
          let members = Array.map (fun l -> Array.of_list (List.rev l)) members in
          let owned_cond = Array.make nt [] in
          Array.iteri
            (fun k (c : Extract.Extraction.conductor) ->
              let ti =
                Geom.Tiling.owner tiling ~x:c.rect.Geom.Rect.x0 ~y:c.rect.Geom.Rect.y0
              in
              owned_cond.(ti) <- k :: owned_cond.(ti))
            conductors;
          let owned_cond =
            Array.map (fun l -> Array.of_list (List.rev l)) owned_cond
          in
          let owned_cuts = Array.make nt [] in
          Array.iteri
            (fun ci (_, (r : Geom.Rect.t)) ->
              let ti = Geom.Tiling.owner tiling ~x:r.Geom.Rect.x0 ~y:r.Geom.Rect.y0 in
              owned_cuts.(ti) <- ci :: owned_cuts.(ti))
            cut_shapes;
          let owned_cuts =
            Array.map (fun l -> Array.of_list (List.rev l)) owned_cuts
          in
          let tech_str = tech_string tech in
          let wdigest =
            Array.init nt (fun ti ->
                let b = Buffer.create 4096 in
                Buffer.add_string b tech_str;
                Buffer.add_string b (Printf.sprintf "|margin:%d|cell:" margin);
                add_rect b (Geom.Tiling.rect tiling ti);
                Buffer.add_string b "|members:";
                Array.iter
                  (fun k ->
                    let c = conductors.(k) in
                    add_shape b c.Extract.Extraction.layer c.Extract.Extraction.rect)
                  members.(ti);
                Buffer.add_string b "|cuts:";
                Array.iter
                  (fun ci ->
                    let layer, r = cut_shapes.(ci) in
                    add_shape b layer r)
                  owned_cuts.(ti);
                hex (Buffer.contents b))
          in
          (tiling, members, owned_cond, owned_cuts, wdigest))
    in
    let nt = Geom.Tiling.count tiling in
    if Obs.enabled obs then Obs.count obs "pipeline.tiles" nt;
    (* Stage driver: look the artefact up by digest, compute on miss. *)
    let staged ~stage ~computed ~cached ~key compute =
      match store with
      | None ->
        Atomic.incr computed;
        compute ()
      | Some st -> (
        let file = stage ^ "-" ^ key in
        match Store.load st file with
        | Some v ->
          Atomic.incr cached;
          v
        | None ->
          let v = compute () in
          Store.save st file v;
          Atomic.incr computed;
          v)
    in
    let conn_computed = Atomic.make 0 and conn_cached = Atomic.make 0 in
    let sites_computed = Atomic.make 0 and sites_cached = Atomic.make 0 in
    let ca_computed = Atomic.make 0 and ca_cached = Atomic.make 0 in
    (* Connectivity stage (parallel, cached per tile). *)
    let conn_arts =
      Obs.span obs "pipeline.connectivity" (fun _ ->
          Pool.map ~obs ~name:"pipeline.connectivity" ~domains:config.domains
            (fun ti ->
              staged ~stage:"conn" ~computed:conn_computed ~cached:conn_cached
                ~key:wdigest.(ti)
                (fun () ->
                  let owns ~x ~y = Geom.Tiling.owner tiling ~x ~y = ti in
                  {
                    cn_pairs =
                      Extract.Connectivity.tile_pairs ~conductors
                        ~members:members.(ti) ~owns;
                    cn_joins =
                      Array.to_list
                        (Extract.Connectivity.tile_cut_joins ~conductors
                           ~members:members.(ti) ~cut_shapes
                           ~owned_cuts:owned_cuts.(ti));
                  }))
            nt)
    in
    (* Merge: one union-find over all conductors, join lists per cut, then
       the serial tail of extraction.  Net ids are canonical (smallest
       conductor index first), so the union order - which differs from the
       serial path's - cannot show in the result. *)
    let ext =
      Obs.span obs "pipeline.assemble" (fun _ ->
          let uf = Geom.Union_find.create n in
          let joins = Array.make (Array.length cut_shapes) [] in
          Array.iteri
            (fun ti (art : conn_art) ->
              List.iter
                (fun (pa, pb) ->
                  ignore
                    (Geom.Union_find.union uf members.(ti).(pa) members.(ti).(pb)))
                art.cn_pairs;
              List.iteri
                (fun j positions ->
                  let ci = owned_cuts.(ti).(j) in
                  let g = List.map (fun p -> members.(ti).(p)) positions in
                  joins.(ci) <- g;
                  match g with
                  | first :: rest ->
                    List.iter
                      (fun i -> ignore (Geom.Union_find.union uf first i))
                      rest
                  | [] -> ())
                art.cn_joins)
            conn_arts;
          Extract.Extractor.assemble sk ~uf ~joins)
    in
    (* Net digests: the full electrical neighbourhood a split result can
       depend on - member geometry in order, the net's cuts with their
       joins as net-local member positions, and the anchored terminals
       (device names included, so a renamed or renumbered device
       invalidates the split that mentions it). *)
    let nets = Extract.Extraction.net_count ext in
    let ndigest =
      Obs.span obs "pipeline.net_digests" (fun _ ->
          let net_members = Array.make nets [] in
          Array.iteri
            (fun k net -> net_members.(net) <- k :: net_members.(net))
            ext.net_of;
          let net_members = Array.map List.rev net_members in
          let net_pos = Array.make n 0 in
          Array.iter
            (fun ms -> List.iteri (fun p k -> net_pos.(k) <- p) ms)
            net_members;
          let terms_of = Array.make n [] in
          List.iter
            (fun (t : Extract.Extraction.terminal) ->
              terms_of.(t.conductor) <- t :: terms_of.(t.conductor))
            (List.rev ext.terminals);
          let net_cuts = Array.make nets [] in
          Array.iteri
            (fun ci (c : Extract.Extraction.cut) ->
              match c.joins with
              | [] -> ()
              | anchor :: _ ->
                let net = ext.net_of.(anchor) in
                net_cuts.(net) <- ci :: net_cuts.(net))
            ext.cuts;
          let net_cuts = Array.map List.rev net_cuts in
          Array.init nets (fun net ->
              let b = Buffer.create 1024 in
              List.iter
                (fun k ->
                  let c = ext.conductors.(k) in
                  add_shape b c.Extract.Extraction.layer c.Extract.Extraction.rect;
                  List.iter
                    (fun (t : Extract.Extraction.terminal) ->
                      Buffer.add_string b
                        (Printf.sprintf "t:%s:%d;" t.device t.port))
                    terms_of.(k))
                net_members.(net);
              List.iter
                (fun ci ->
                  let c = ext.cuts.(ci) in
                  add_shape b c.Extract.Extraction.cut_layer
                    c.Extract.Extraction.cut_rect;
                  List.iter
                    (fun k ->
                      Buffer.add_string b (Printf.sprintf "j:%d;" net_pos.(k)))
                    c.joins)
                net_cuts.(net);
              hex (Buffer.contents b)))
    in
    (* Sites + Critical_area stages (parallel, cached per tile; the CA
       task reads the sites artefact's pair list, so the two run as one
       per-tile chain with separate cache entries). *)
    let pdf = Sites.pdf_of ?pdf:options.Lift.pdf ext in
    let x_max_f = Sites.x_max_of ext in
    let pdf_str = pdf_string pdf in
    let conducting = Extract.Connectivity.conducting_layers in
    let sp = Sites.splitter ext in
    let tile_sites =
      Obs.span obs "pipeline.sites" (fun _ ->
          Pool.map ~obs ~name:"pipeline.sites" ~domains:config.domains
            (fun ti ->
              let skey =
                let nets_touched =
                  List.sort_uniq String.compare
                    (List.concat
                       [
                         Array.to_list
                           (Array.map
                              (fun k -> ndigest.(ext.net_of.(k)))
                              owned_cond.(ti));
                         List.filter_map
                           (fun ci ->
                             match ext.cuts.(ci).Extract.Extraction.joins with
                             | [] -> None
                             | anchor :: _ -> Some ndigest.(ext.net_of.(anchor)))
                           (Array.to_list owned_cuts.(ti));
                       ])
                in
                hex (String.concat "|" (wdigest.(ti) :: nets_touched))
              in
              let sites =
                staged ~stage:"sites" ~computed:sites_computed
                  ~cached:sites_cached ~key:skey (fun () ->
                    let owns ~x ~y = Geom.Tiling.owner tiling ~x ~y = ti in
                    let st_bridge =
                      Array.of_list
                        (List.map
                           (fun layer ->
                             let positions =
                               Array.of_seq
                                 (Seq.filter
                                    (fun p ->
                                      Layout.Layer.equal
                                        ext.conductors.(members.(ti).(p))
                                          .Extract.Extraction.layer layer)
                                    (Seq.init (Array.length members.(ti)) Fun.id))
                             in
                             let rects =
                               Array.map
                                 (fun p ->
                                   ext.conductors.(members.(ti).(p))
                                     .Extract.Extraction.rect)
                                 positions
                             in
                             List.filter_map
                               (fun (a, b, spacing, length) ->
                                 let x, y =
                                   Extract.Connectivity.pair_anchor rects.(a)
                                     rects.(b)
                                 in
                                 if owns ~x ~y then
                                   Some (positions.(a), positions.(b), spacing, length)
                                 else None)
                               (Geom.Rect_set.close_pairs ~within:x_max rects))
                           conducting)
                    in
                    let st_moved =
                      Array.map
                        (fun k ->
                          Sites.split sp ~skip_conductor:(Int.equal k)
                            ~skip_cut:(fun _ -> false)
                            ~net:ext.net_of.(k))
                        owned_cond.(ti)
                    in
                    let st_cut_moved =
                      Array.map
                        (fun ci ->
                          match ext.cuts.(ci).Extract.Extraction.joins with
                          | [] | [ _ ] -> None
                          | anchor :: _ ->
                            Sites.split sp
                              ~skip_conductor:(fun _ -> false)
                              ~skip_cut:(Int.equal ci)
                              ~net:ext.net_of.(anchor))
                        owned_cuts.(ti)
                    in
                    { st_bridge; st_moved; st_cut_moved })
              in
              let ca =
                staged ~stage:"ca" ~computed:ca_computed ~cached:ca_cached
                  ~key:(hex (wdigest.(ti) ^ "|" ^ pdf_str))
                  (fun () ->
                    {
                      ar_bridge =
                        Array.map
                          (fun pairs ->
                            Array.of_list
                              (List.map
                                 (fun (_, _, spacing, length) ->
                                   Sites.short_ca ~x_max:x_max_f pdf ~spacing
                                     ~length)
                                 pairs))
                          sites.st_bridge;
                      ar_open =
                        Array.map
                          (fun k ->
                            let r =
                              ext.conductors.(k).Extract.Extraction.rect
                            in
                            let w = min (Geom.Rect.width r) (Geom.Rect.height r)
                            and l =
                              max (Geom.Rect.width r) (Geom.Rect.height r)
                            in
                            Sites.open_ca_of ~x_max:x_max_f pdf ~width:w
                              ~length:l)
                          owned_cond.(ti);
                    })
              in
              (sites, ca))
            nt)
    in
    (* Ranked_faults: merge the tiles back into the serial enumeration
       orders, price, merge, threshold, rank. *)
    let result =
      Obs.span obs "pipeline.rank" (fun _ ->
          let bridges =
            let acc :
                ( Layout.Layer.t * int * int,
                  (int * int * float) list ref )
                Hashtbl.t =
              Hashtbl.create 64
            in
            Array.iteri
              (fun ti ((sites : sites_art), (ca : ca_art)) ->
                List.iteri
                  (fun li layer ->
                    List.iteri
                      (fun pi (pa, pb, _, _) ->
                        let ia = members.(ti).(pa) and ib = members.(ti).(pb) in
                        let na = ext.net_of.(ia) and nb = ext.net_of.(ib) in
                        if na <> nb then begin
                          let key = (layer, min na nb, max na nb) in
                          let contrib = (ia, ib, ca.ar_bridge.(li).(pi)) in
                          match Hashtbl.find_opt acc key with
                          | Some r -> r := contrib :: !r
                          | None -> Hashtbl.add acc key (ref [ contrib ])
                        end)
                      sites.st_bridge.(li))
                  conducting)
              tile_sites;
            Hashtbl.fold
              (fun (bridge_layer, net_a, net_b) contribs l ->
                (* Reproduce the serial sum bit for bit: contributions in
                   ascending (ia, ib) order - the order [close_pairs] over
                   the whole layer yields - folded left from the first. *)
                let sorted =
                  List.sort
                    (fun (a1, b1, _) (a2, b2, _) -> compare (a1, b1) (a2, b2))
                    !contribs
                in
                let bridge_ca =
                  match sorted with
                  | [] -> assert false
                  | (_, _, c0) :: rest ->
                    List.fold_left (fun s (_, _, c) -> s +. c) c0 rest
                in
                { Sites.bridge_layer; net_a; net_b; bridge_ca } :: l)
              acc []
            |> List.sort compare
          in
          let moved_glob = Array.make n None in
          let open_ca_glob = Array.make n 0. in
          let cut_moved_glob = Array.make (Array.length ext.cuts) None in
          Array.iteri
            (fun ti ((sites : sites_art), (ca : ca_art)) ->
              Array.iteri
                (fun j k ->
                  moved_glob.(k) <- sites.st_moved.(j);
                  open_ca_glob.(k) <- ca.ar_open.(j))
                owned_cond.(ti);
              Array.iteri
                (fun j ci -> cut_moved_glob.(ci) <- sites.st_cut_moved.(j))
                owned_cuts.(ti))
            tile_sites;
          let opens =
            List.filter_map
              (fun k ->
                match moved_glob.(k) with
                | None -> None
                | Some moved ->
                  Some
                    {
                      Sites.open_layer =
                        ext.conductors.(k).Extract.Extraction.layer;
                      conductor = k;
                      moved;
                      open_net = ext.net_of.(k);
                      open_ca = open_ca_glob.(k);
                    })
              (List.init n Fun.id)
          in
          let cut_ca = Sites.cut_ca ~x_max:x_max_f pdf ~side:tech.Layout.Tech.cut_side in
          let cut_opens =
            List.filter_map
              (fun ci ->
                match cut_moved_glob.(ci) with
                | None -> None
                | Some cut_moved ->
                  let cut = ext.cuts.(ci) in
                  Some
                    {
                      Sites.cut_index = ci;
                      cut_mech = Sites.cut_mech ext cut;
                      cut_moved;
                      cut_net = ext.net_of.(List.hd cut.joins);
                      cut_ca;
                    })
              (List.init (Array.length ext.cuts) Fun.id)
          in
          let stuck = Sites.stuck ?pdf:options.Lift.pdf ext in
          Lift.finalise options (Lift.cands_of ext ~bridges ~opens ~cut_opens ~stuck))
    in
    let counters =
      {
        tiles = nt;
        connectivity =
          { computed = Atomic.get conn_computed; cached = Atomic.get conn_cached };
        sites =
          { computed = Atomic.get sites_computed; cached = Atomic.get sites_cached };
        critical_area =
          { computed = Atomic.get ca_computed; cached = Atomic.get ca_cached };
      }
    in
    if Obs.enabled obs then begin
      Obs.count obs "pipeline.connectivity.computed" counters.connectivity.computed;
      Obs.count obs "pipeline.connectivity.cached" counters.connectivity.cached;
      Obs.count obs "pipeline.sites.computed" counters.sites.computed;
      Obs.count obs "pipeline.sites.cached" counters.sites.cached;
      Obs.count obs "pipeline.critical_area.computed" counters.critical_area.computed;
      Obs.count obs "pipeline.critical_area.cached" counters.critical_area.cached
    end;
    { result; extraction = ext; counters }
  end
