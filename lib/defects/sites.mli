(** Fault-site enumeration: where on the layout can a single spot defect
    change the circuit topology, and with what size-weighted critical
    area.

    Bridges come from pairs of unconnected shapes facing each other within
    the maximum defect size; opens from shapes and cuts whose removal
    splits their net (re-checked topologically); transistor stuck-opens
    from defects across a channel. *)

type bridge_site = {
  bridge_layer : Layout.Layer.t;
  net_a : int;
  net_b : int;
  bridge_ca : float;  (** size-weighted critical area, nm^2, summed over
                          all facing pairs of the two nets on this layer *)
}

type open_site = {
  open_layer : Layout.Layer.t;
  conductor : int;
  moved : Faults.Fault.terminal list;  (** terminals split off the net *)
  open_net : int;
  open_ca : float;
}

type cut_open_site = {
  cut_index : int;
  cut_mech : Layout.Tech.mechanism;
  cut_moved : Faults.Fault.terminal list;
  cut_net : int;
  cut_ca : float;
}

type stuck_site = {
  channel : Extract.Extraction.channel;
  stuck_ca : float;
}

(** [bridges ?pdf ext] lists bridge sites (distinct unordered net pairs
    per layer, [net_a < net_b]), using the technology's defect-size pdf
    unless [pdf] overrides it. *)
val bridges :
  ?pdf:Geom.Critical_area.size_pdf -> Extract.Extraction.t -> bridge_site list

(** [opens ?pdf ext] lists the line-open sites that actually split a net
    (conductors whose removal leaves two or more terminal groups). *)
val opens : ?pdf:Geom.Critical_area.size_pdf -> Extract.Extraction.t -> open_site list

(** [cut_opens ?pdf ext] is the analogue for missing contacts/vias. *)
val cut_opens :
  ?pdf:Geom.Critical_area.size_pdf -> Extract.Extraction.t -> cut_open_site list

(** [stuck ?pdf ext] lists transistor-channel defects (one per device). *)
val stuck : ?pdf:Geom.Critical_area.size_pdf -> Extract.Extraction.t -> stuck_site list

(** [split_effect ext ~skip_conductor ~skip_cut ~net] recomputes [net]'s
    connectivity with the given shapes suppressed and returns the
    terminals split off it, or [None] when the topology is unchanged
    (shared with the Monte-Carlo defect injector).

    The recomputation is net-local (suppression only removes edges, and
    every connectivity edge lies inside one net), and terminal groups are
    identified canonically by their smallest anchoring conductor index,
    so results are independent of how connectivity was computed. *)
val split_effect :
  Extract.Extraction.t ->
  skip_conductor:(int -> bool) ->
  skip_cut:(int -> bool) ->
  net:int ->
  Faults.Fault.terminal list option

(** {1 Shared machinery}

    Exposed for the staged {!Pipeline}, which enumerates sites per tile
    and must reproduce this module's results byte for byte. *)

(** Pre-indexed per-net membership (conductors, cuts, terminals) for
    repeated {!split} queries over one extraction. *)
type splitter

val splitter : Extract.Extraction.t -> splitter

(** [split sp ~skip_conductor ~skip_cut ~net] is {!split_effect} against
    the pre-built index. *)
val split :
  splitter ->
  skip_conductor:(int -> bool) ->
  skip_cut:(int -> bool) ->
  net:int ->
  Faults.Fault.terminal list option

(** Size-weighted critical areas: closed forms for the cubic pdf, numeric
    integration otherwise.  Dimensions in nm, results in nm^2. *)

val short_ca :
  x_max:float -> Geom.Critical_area.size_pdf -> spacing:int -> length:int -> float

val open_ca_of :
  x_max:float -> Geom.Critical_area.size_pdf -> width:int -> length:int -> float

val cut_ca : x_max:float -> Geom.Critical_area.size_pdf -> side:int -> float

(** [cut_mech ext cut] is the failure mechanism of a missing [cut]
    (via open, or contact open to the lower layer it lands on). *)
val cut_mech : Extract.Extraction.t -> Extract.Extraction.cut -> Layout.Tech.mechanism

(** [pdf_of ?pdf ext] is [pdf], defaulting to the technology's defect-size
    pdf; [x_max_of ext] the maximum defect diameter as a float. *)
val pdf_of :
  ?pdf:Geom.Critical_area.size_pdf -> Extract.Extraction.t -> Geom.Critical_area.size_pdf

val x_max_of : Extract.Extraction.t -> float
