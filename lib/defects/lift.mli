(** LIFT: Layout-Induced Fault exTraction (the paper's GLRFM, after
    inductive fault analysis).

    From an extracted layout and the technology's defect statistics, LIFT
    produces the list of realistic faults - each a {!Faults.Fault.t} with
    its probability of occurrence [p_j = d_rel * D0 * A_crit], ready for
    AnaFAULT. *)

type options = {
  pdf : Geom.Critical_area.size_pdf option;
      (** defect-size density; [None] uses the technology's 1/x^3 model *)
  p_min : float;
      (** faults less likely than this are dropped (the paper reports
          p_j between 1e-7 and 1e-9; default 3e-8, calibrated so the
          demo VCO reproduces the paper's ~53 % list reduction) *)
  merge_equivalent : bool;
      (** merge faults with identical electrical effect, summing their
          probabilities (default true) *)
}

val default_options : options

(** Counts per fault class, mirroring the paper's "55 bridging, 8 line
    opens and 7 transistor stuck open". *)
type classes = {
  bridging : int;
  line_opens : int;
  contact_opens : int;
  stuck_opens : int;
}

val total : classes -> int

type result = {
  faults : Faults.Fault.t list;  (** in enumeration order, ids ["#1"].. *)
  classes : classes;
  sites_considered : int;  (** before thresholding and merging *)
}

(** [run ?options ext] performs the extraction. *)
val run : ?options:options -> Extract.Extraction.t -> result

(** [ranked r] is [r.faults] under a documented total order: probability
    descending, ties broken by fault class (bridges, breaks, stuck-opens)
    and then by numeric site id - byte-stable across runs, domain counts
    and enumeration strategies. *)
val ranked : result -> Faults.Fault.t list

(** {1 Staged entry points}

    The two halves of {!run}, split so the incremental {!Pipeline} can
    substitute its own (cached, per-tile) site enumeration: [cands_of]
    prices enumerated sites into fault candidates, [finalise] merges,
    thresholds and assigns ids.  [run options ext] is
    [finalise options (cands_of ext ~bridges:... )] over the serial
    {!Sites} enumerators.  Candidate order decides fault ids: callers
    must pass the site lists in the enumerators' canonical orders. *)

(** A candidate fault before id assignment. *)
type cand = {
  kind : Faults.Fault.kind;
  mechanism : string;
  prob : float;
  note : string;
}

val cands_of :
  Extract.Extraction.t ->
  bridges:Sites.bridge_site list ->
  opens:Sites.open_site list ->
  cut_opens:Sites.cut_open_site list ->
  stuck:Sites.stuck_site list ->
  cand list

val finalise : options -> cand list -> result

(** [probability tech mech ca_nm2] is [d_rel * D0 * A_crit] in defects
    per die. *)
val probability : Layout.Tech.t -> Layout.Tech.mechanism -> float -> float

val classify : Faults.Fault.t list -> classes

val pp_classes : Format.formatter -> classes -> unit

(** A one-line-per-fault report, most probable first. *)
val pp_report : Format.formatter -> result -> unit
