(** Staged, parallel, incremental LIFT for mega-layouts.

    The monolithic [Extractor.extract |> Lift.run] flow, decomposed into
    explicit stages with content-addressed artefacts:

    {v Layout -> Tiles -> Connectivity -> Sites -> Critical_area -> Ranked_faults v}

    A uniform {!Geom.Tiling} grid covers the layout; every geometric fact
    is owned by exactly one tile and computed inside that tile's margin
    window ([max defect_x_max (2 * cut_side)]), so per-tile artefacts
    union to exactly the global answer.  Artefacts are keyed by digests
    of everything they read - window geometry for connectivity, window
    plus touched-net digests for sites, window plus pdf parameters for
    critical areas - and persisted in [cache_dir], so a re-run after a
    one-tile geometry edit recomputes only the dirty tiles and the tiles
    whose nets it rewired.  Tile fan-out runs over {!Pool} on OCaml 5
    domains.

    The ranked fault list is byte-identical to the serial
    [Lift.run]'s across runs, cache states, tile sizes and domain
    counts. *)

type stage_counter = { computed : int; cached : int }

type counters = {
  tiles : int;
  connectivity : stage_counter;
  sites : stage_counter;
  critical_area : stage_counter;
}

val counters_to_json : counters -> Obs.Json.t

type config = {
  tile_nm : int;  (** tile side; [<= 0] means one tile (no tiling) *)
  domains : int;  (** worker domains for the per-tile stages *)
  cache_dir : string option;  (** artefact store; [None] disables caching *)
  obs : Obs.sink;
  options : Lift.options;
}

(** 200 um tiles, one domain, no cache, null sink, {!Lift.default_options}. *)
val default_config : config

type t = {
  result : Lift.result;
  extraction : Extract.Extraction.t;
  counters : counters;
}

(** [run ?config mask] extracts faults through the staged pipeline.
    Equivalent to
    [Extract.Extractor.extract mask |> Lift.run ~options] - byte for
    byte, ranked or not - but cached, tiled and parallel. *)
val run : ?config:config -> Layout.Mask.t -> t
