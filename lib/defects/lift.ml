type options = {
  pdf : Geom.Critical_area.size_pdf option;
  p_min : float;
  merge_equivalent : bool;
}

let default_options = { pdf = None; p_min = 3e-8; merge_equivalent = true }

type classes = {
  bridging : int;
  line_opens : int;
  contact_opens : int;
  stuck_opens : int;
}

let total c = c.bridging + c.line_opens + c.contact_opens + c.stuck_opens

type result = {
  faults : Faults.Fault.t list;
  classes : classes;
  sites_considered : int;
}

let probability tech mech ca_nm2 =
  tech.Layout.Tech.rel_density mech
  *. tech.Layout.Tech.d0_per_cm2
  *. Geom.Critical_area.nm2_to_cm2 ca_nm2

(* A candidate fault before id assignment. *)
type cand = { kind : Faults.Fault.kind; mechanism : string; prob : float; note : string }

(* Turn enumerated sites into fault candidates.  The site lists arrive in
   the canonical order ([Sites.bridges] then [opens] then [cut_opens] then
   [stuck], each in its own documented order), whether they came from the
   serial enumerators below or from the staged {!Pipeline}'s per-tile
   merge: candidate order decides fault ids, so both paths must feed the
   same order here. *)
let cands_of (ext : Extract.Extraction.t) ~bridges ~opens ~cut_opens ~stuck =
  let tech = ext.mask.Layout.Mask.tech in
  let name = Extract.Extraction.net_name ext in
  let bridges =
    List.map
      (fun (s : Sites.bridge_site) ->
        let mech = Layout.Tech.Short_on s.bridge_layer in
        {
          kind = Faults.Fault.Bridge { net_a = name s.net_a; net_b = name s.net_b };
          mechanism = Layout.Tech.mechanism_to_string mech;
          prob = probability tech mech s.bridge_ca;
          note = Printf.sprintf "on %s" (Layout.Layer.to_string s.bridge_layer);
        })
      bridges
  in
  let opens =
    List.map
      (fun (s : Sites.open_site) ->
        let mech = Layout.Tech.Open_on s.open_layer in
        {
          kind = Faults.Fault.Break { net = name s.open_net; moved = s.moved };
          mechanism = Layout.Tech.mechanism_to_string mech;
          prob = probability tech mech s.open_ca;
          note =
            Printf.sprintf "cut of %s shape %s" (Layout.Layer.to_string s.open_layer)
              (Geom.Rect.to_string ext.conductors.(s.conductor).Extract.Extraction.rect);
        })
      opens
  in
  let cut_opens =
    List.map
      (fun (s : Sites.cut_open_site) ->
        {
          kind = Faults.Fault.Break { net = name s.cut_net; moved = s.cut_moved };
          mechanism = Layout.Tech.mechanism_to_string s.cut_mech;
          prob = probability tech s.cut_mech s.cut_ca;
          note =
            Printf.sprintf "missing cut %s"
              (Geom.Rect.to_string ext.cuts.(s.cut_index).Extract.Extraction.cut_rect);
        })
      cut_opens
  in
  let stuck =
    List.map
      (fun (s : Sites.stuck_site) ->
        (* Stuck-open = missing gate poly over the channel. *)
        let mech = Layout.Tech.Open_on Layout.Layer.Poly in
        {
          kind = Faults.Fault.Stuck_open { device = s.channel.Extract.Extraction.device };
          mechanism = "channel_open";
          prob = probability tech mech s.stuck_ca;
          note = Printf.sprintf "channel of %s" s.channel.Extract.Extraction.device;
        })
      stuck
  in
  bridges @ opens @ cut_opens @ stuck

let candidates ?pdf (ext : Extract.Extraction.t) =
  cands_of ext ~bridges:(Sites.bridges ?pdf ext) ~opens:(Sites.opens ?pdf ext)
    ~cut_opens:(Sites.cut_opens ?pdf ext) ~stuck:(Sites.stuck ?pdf ext)

let merge cands =
  let rec fold acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let probe =
        Faults.Fault.make ~id:"" ~kind:c.kind ~mechanism:c.mechanism ~prob:c.prob ()
      in
      let same (c' : cand) =
        Faults.Fault.equivalent probe
          (Faults.Fault.make ~id:"" ~kind:c'.kind ~mechanism:c'.mechanism ())
      in
      let dups, rest = List.partition same rest in
      let merged =
        List.fold_left (fun c d -> { c with prob = c.prob +. d.prob }) c dups
      in
      fold (merged :: acc) rest
  in
  fold [] cands

let classify faults =
  List.fold_left
    (fun cl (f : Faults.Fault.t) ->
      match f.kind with
      | Faults.Fault.Bridge _ -> { cl with bridging = cl.bridging + 1 }
      | Faults.Fault.Stuck_open _ -> { cl with stuck_opens = cl.stuck_opens + 1 }
      | Faults.Fault.Break _ ->
        let is_cut =
          String.length f.mechanism >= 7 && String.sub f.mechanism 0 7 = "contact"
          || f.mechanism = "via_open"
        in
        if is_cut then { cl with contact_opens = cl.contact_opens + 1 }
        else { cl with line_opens = cl.line_opens + 1 })
    { bridging = 0; line_opens = 0; contact_opens = 0; stuck_opens = 0 }
    faults

let finalise options cands =
  let sites_considered = List.length cands in
  let cands = if options.merge_equivalent then merge cands else cands in
  let cands = List.filter (fun c -> c.prob >= options.p_min) cands in
  let faults =
    List.mapi
      (fun i c ->
        Faults.Fault.make
          ~id:(Printf.sprintf "#%d" (i + 1))
          ~kind:c.kind ~mechanism:c.mechanism ~prob:c.prob ~note:c.note ())
      cands
  in
  { faults; classes = classify faults; sites_considered }

let run ?(options = default_options) ext =
  finalise options (candidates ?pdf:options.pdf ext)

(* Total order for the ranked list: probability (descending) is the
   ranking the paper cares about, but ties happen - equivalent-by-area
   sites on symmetric layouts - and [List.sort] is stable only against
   the input order, which a parallel pipeline must not depend on.  Break
   ties by fault class (bridges, then breaks, then stuck-opens), then by
   numeric site id, so the byte output is identical across runs, domain
   counts and enumeration strategies. *)
let kind_rank = function
  | Faults.Fault.Bridge _ -> 0
  | Faults.Fault.Break _ -> 1
  | Faults.Fault.Stuck_open _ -> 2

let id_number (f : Faults.Fault.t) =
  if String.length f.id > 1 && f.id.[0] = '#' then
    Option.value ~default:max_int
      (int_of_string_opt (String.sub f.id 1 (String.length f.id - 1)))
  else max_int

let ranked r =
  List.sort
    (fun (a : Faults.Fault.t) b ->
      let c = Float.compare b.prob a.prob in
      if c <> 0 then c
      else
        let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
        if c <> 0 then c else Int.compare (id_number a) (id_number b))
    r.faults

let pp_classes ppf c =
  Format.fprintf ppf "%d faults: %d bridging, %d line opens, %d contact/via opens, %d stuck open"
    (total c) c.bridging c.line_opens c.contact_opens c.stuck_opens

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@,sites considered: %d@," pp_classes r.classes
    r.sites_considered;
  List.iter (fun f -> Format.fprintf ppf "%a@," Faults.Fault.pp f) (ranked r);
  Format.fprintf ppf "@]"
