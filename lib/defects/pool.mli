(** Work-stealing parallel map over OCaml 5 domains (the [Parsim]
    scheduling pattern, shrunk to the pipeline's per-tile stages).

    [map ~domains f n] is [Array.init n f] computed by up to [domains]
    domains pulling task indices from a shared atomic counter.  Results
    fill indexed slots, so the output - and everything derived from it -
    is byte-identical whatever the domain count.  [domains <= 1] (or a
    single task) runs serially in the calling domain.  If any task
    raises, the first exception is re-raised after all domains joined.

    [obs] receives a per-domain [<name>.tasks_stolen] counter. *)
val map :
  ?obs:Obs.sink -> ?name:string -> domains:int -> (int -> 'a) -> int -> 'a array
