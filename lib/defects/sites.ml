type bridge_site = {
  bridge_layer : Layout.Layer.t;
  net_a : int;
  net_b : int;
  bridge_ca : float;
}

type open_site = {
  open_layer : Layout.Layer.t;
  conductor : int;
  moved : Faults.Fault.terminal list;
  open_net : int;
  open_ca : float;
}

type cut_open_site = {
  cut_index : int;
  cut_mech : Layout.Tech.mechanism;
  cut_moved : Faults.Fault.terminal list;
  cut_net : int;
  cut_ca : float;
}

type stuck_site = {
  channel : Extract.Extraction.channel;
  stuck_ca : float;
}

let tech_of (ext : Extract.Extraction.t) = ext.mask.Layout.Mask.tech

let pdf_of ?pdf ext =
  match pdf with
  | Some p -> p
  | None -> Layout.Tech.size_pdf (tech_of ext)

(* Weighted short critical area: closed form for the cubic pdf, numeric
   integration otherwise. *)
let short_ca ~x_max pdf ~spacing ~length =
  match pdf with
  | Geom.Critical_area.Cubic { x_min } ->
    Geom.Critical_area.weighted_short_cubic ~x_max ~x_min ~spacing ~length ()
  | Geom.Critical_area.Uniform _ ->
    Geom.Critical_area.weighted pdf (Geom.Critical_area.short_area ~spacing ~length)

let open_ca_of ~x_max pdf ~width ~length =
  match pdf with
  | Geom.Critical_area.Cubic { x_min } ->
    Geom.Critical_area.weighted_open_cubic ~x_max ~x_min ~width ~length ()
  | Geom.Critical_area.Uniform _ ->
    Geom.Critical_area.weighted pdf (Geom.Critical_area.open_area ~width ~length)

let x_max_of ext = float_of_int (tech_of ext).Layout.Tech.defect_x_max

let bridges ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  let x_max = (tech_of ext).Layout.Tech.defect_x_max in
  let acc : (Layout.Layer.t * int * int, float ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun layer ->
      let members =
        Array.of_seq
          (Seq.filter_map
             (fun (i, (c : Extract.Extraction.conductor)) ->
               if Layout.Layer.equal c.layer layer then Some (i, c.rect) else None)
             (Array.to_seqi ext.conductors))
      in
      let rects = Array.map snd members in
      List.iter
        (fun (a, b, spacing, length) ->
          let ia = fst members.(a) and ib = fst members.(b) in
          let na = ext.net_of.(ia) and nb = ext.net_of.(ib) in
          if na <> nb then begin
            let key = (layer, min na nb, max na nb) in
            let ca = short_ca ~x_max:(x_max_of ext) pdf ~spacing ~length in
            match Hashtbl.find_opt acc key with
            | Some r -> r := !r +. ca
            | None -> Hashtbl.add acc key (ref ca)
          end)
        (Geom.Rect_set.close_pairs ~within:x_max rects))
    (List.filter Layout.Layer.conducting Layout.Layer.all);
  Hashtbl.fold
    (fun (bridge_layer, net_a, net_b) ca l ->
      { bridge_layer; net_a; net_b; bridge_ca = !ca } :: l)
    acc []
  |> List.sort compare

(* Effect of suppressing conductor [k] (or cut [c]): group the net's
   terminals by the component their anchor lands in; terminals anchored on
   the suppressed conductor form their own (disconnected) group.  The
   largest group keeps the original net; the others move.  [None] when the
   topology is unchanged (at most one group).

   The recomputation is net-local: removing shapes only removes edges, and
   every edge between two members of a net lies entirely inside the net
   (same-layer touching pairs connect same-net conductors by definition;
   a cut's join list is one net's conductors), so rebuilding connectivity
   over just the net's members and cuts is exact - and orders of magnitude
   cheaper than the global re-unify it replaces on mega-layouts, where
   LIFT runs it once per conductor and once per cut.

   Group identity is canonical: each attached group is keyed by the
   smallest global conductor index anchoring one of its terminals (the
   detached group keeps the -1 sentinel), never by a union-find root, so
   the winner of a population tie - and with it the moved-terminal list -
   is the same whatever connectivity implementation produced the
   components. *)

type splitter = {
  sp_ext : Extract.Extraction.t;
  sp_members : int array array;  (* net -> ascending conductor indices *)
  sp_cuts : int list array;  (* net -> ascending indices of its cuts *)
  sp_terms : Extract.Extraction.terminal list array;  (* net -> terminals *)
}

let splitter (ext : Extract.Extraction.t) =
  let nets = Extract.Extraction.net_count ext in
  let members = Array.make nets [] in
  Array.iteri
    (fun k net -> members.(net) <- k :: members.(net))
    ext.net_of;
  let cuts = Array.make nets [] in
  Array.iteri
    (fun ci (c : Extract.Extraction.cut) ->
      match c.joins with
      | [] -> ()
      | anchor :: _ -> cuts.(ext.net_of.(anchor)) <- ci :: cuts.(ext.net_of.(anchor)))
    ext.cuts;
  let terms = Array.make nets [] in
  List.iter
    (fun (t : Extract.Extraction.terminal) ->
      let net = ext.net_of.(t.conductor) in
      terms.(net) <- t :: terms.(net))
    ext.terminals;
  {
    sp_ext = ext;
    sp_members = Array.map (fun l -> Array.of_list (List.rev l)) members;
    sp_cuts = Array.map List.rev cuts;
    sp_terms = Array.map List.rev terms;
  }

let split sp ~skip_conductor ~skip_cut ~net =
  let ext = sp.sp_ext in
  let members = sp.sp_members.(net) in
  let m = Array.length members in
  let pos : (int, int) Hashtbl.t = Hashtbl.create (2 * m) in
  Array.iteri (fun p g -> Hashtbl.add pos g p) members;
  let uf = Geom.Union_find.create m in
  (* Same-layer touching pairs among the net's surviving members, walked
     in the canonical layer order. *)
  List.iter
    (fun layer ->
      let positions =
        Array.of_seq
          (Seq.filter
             (fun p ->
               let g = members.(p) in
               Layout.Layer.equal ext.conductors.(g).Extract.Extraction.layer layer
               && not (skip_conductor g))
             (Seq.init m Fun.id))
      in
      let rects =
        Array.map
          (fun p -> ext.conductors.(members.(p)).Extract.Extraction.rect)
          positions
      in
      List.iter
        (fun (a, b) ->
          ignore (Geom.Union_find.union uf positions.(a) positions.(b)))
        (Geom.Rect_set.touching_pairs rects))
    Extract.Connectivity.conducting_layers;
  (* The net's surviving cuts re-join their surviving conductors. *)
  List.iter
    (fun ci ->
      if not (skip_cut ci) then begin
        match
          List.filter (fun g -> not (skip_conductor g)) ext.cuts.(ci).joins
        with
        | first :: rest ->
          let pf = Hashtbl.find pos first in
          List.iter
            (fun g -> ignore (Geom.Union_find.union uf pf (Hashtbl.find pos g)))
            rest
        | [] -> ()
      end)
    sp.sp_cuts.(net);
  (* Group terminals by component, keyed canonically. *)
  let groups : (int, (int * Faults.Fault.terminal list) ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let detached = ref [] and have_detached = ref false in
  List.iter
    (fun (t : Extract.Extraction.terminal) ->
      let term = { Faults.Fault.device = t.device; port = t.port } in
      if skip_conductor t.conductor then begin
        have_detached := true;
        detached := term :: !detached
      end
      else begin
        let root = Geom.Union_find.find uf (Hashtbl.find pos t.conductor) in
        match Hashtbl.find_opt groups root with
        | Some r ->
          let key, terms = !r in
          r := (min key t.conductor, term :: terms)
        | None -> Hashtbl.add groups root (ref (t.conductor, [ term ]))
      end)
    sp.sp_terms.(net);
  let group_list =
    Hashtbl.fold (fun _ r acc -> let key, terms = !r in (key, List.sort compare terms) :: acc) groups []
    |> (fun l -> if !have_detached then (-1, List.sort compare !detached) :: l else l)
    |> List.sort compare
  in
  match group_list with
  | [] | [ _ ] -> None
  | _ ->
    let keep =
      List.fold_left
        (fun best (key, members) ->
          match best with
          | None -> Some (key, members)
          | Some (bkey, bmembers) ->
            (* Prefer the most populous group; never keep the detached
               group (-1) if an attached one exists. *)
            if key = -1 then best
            else if bkey = -1 then Some (key, members)
            else if List.length members > List.length bmembers then Some (key, members)
            else best)
        None group_list
    in
    let keep_key = match keep with Some (k, _) -> k | None -> assert false in
    let moved =
      List.concat_map
        (fun (key, members) -> if key = keep_key then [] else members)
        group_list
    in
    if moved = [] then None else Some moved

let split_effect (ext : Extract.Extraction.t) ~skip_conductor ~skip_cut ~net =
  split (splitter ext) ~skip_conductor ~skip_cut ~net

let opens ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  let sp = splitter ext in
  Array.to_list
    (Array.mapi
       (fun k (c : Extract.Extraction.conductor) ->
         let net = ext.net_of.(k) in
         match
           split sp ~skip_conductor:(Int.equal k) ~skip_cut:(fun _ -> false) ~net
         with
         | None -> None
         | Some moved ->
           let w = min (Geom.Rect.width c.rect) (Geom.Rect.height c.rect)
           and l = max (Geom.Rect.width c.rect) (Geom.Rect.height c.rect) in
           Some
             {
               open_layer = c.layer;
               conductor = k;
               moved;
               open_net = net;
               open_ca = open_ca_of ~x_max:(x_max_of ext) pdf ~width:w ~length:l;
             })
       ext.conductors)
  |> List.filter_map Fun.id

let cut_mech (ext : Extract.Extraction.t) (cut : Extract.Extraction.cut) =
  match cut.cut_layer with
  | Layout.Layer.Via -> Layout.Tech.Via_open
  | Layout.Layer.Contact ->
    (* Which lower layer does this contact land on? *)
    let lower =
      List.find_map
        (fun j ->
          let layer = ext.conductors.(j).Extract.Extraction.layer in
          match layer with
          | Layout.Layer.Poly | Layout.Layer.Ndiff | Layout.Layer.Pdiff ->
            Some layer
          | Layout.Layer.Metal1 | Layout.Layer.Metal2 | Layout.Layer.Contact
          | Layout.Layer.Via | Layout.Layer.Nwell ->
            None)
        cut.joins
    in
    Layout.Tech.Contact_open_to (Option.value lower ~default:Layout.Layer.Poly)
  | Layout.Layer.Ndiff | Layout.Layer.Pdiff | Layout.Layer.Poly
  | Layout.Layer.Metal1 | Layout.Layer.Metal2 | Layout.Layer.Nwell ->
    assert false

let cut_ca ~x_max pdf ~side =
  Geom.Critical_area.weighted ~x_max pdf
    (Geom.Critical_area.contact_open_area ~side)

let cut_opens ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  let tech = tech_of ext in
  let sp = splitter ext in
  Array.to_list
    (Array.mapi
       (fun ci (cut : Extract.Extraction.cut) ->
         match cut.joins with
         | [] | [ _ ] -> None
         | anchor :: _ ->
           let net = ext.net_of.(anchor) in
           (match
              split sp ~skip_conductor:(fun _ -> false) ~skip_cut:(Int.equal ci) ~net
            with
           | None -> None
           | Some moved ->
             let ca =
               cut_ca ~x_max:(x_max_of ext) pdf ~side:tech.Layout.Tech.cut_side
             in
             Some
               {
                 cut_index = ci;
                 cut_mech = cut_mech ext cut;
                 cut_moved = moved;
                 cut_net = net;
                 cut_ca = ca;
               }))
       ext.cuts)
  |> List.filter_map Fun.id

let stuck ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  List.map
    (fun (c : Extract.Extraction.channel) ->
      (* Missing gate poly across the channel: the defect must span the
         gate length somewhere along the width, leaving a channel that can
         never invert. *)
      { channel = c;
        stuck_ca = open_ca_of ~x_max:(x_max_of ext) pdf ~width:c.l_nm ~length:c.w_nm })
    ext.channels
