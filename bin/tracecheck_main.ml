(* tracecheck: validate an anafault --trace JSONL stream.

     dune exec bin/tracecheck_main.exe -- out.jsonl

   Re-parses every line through Obs.Jsonl (the same reader the tooling
   uses), prints the event tally, and exits non-zero on the first
   malformed line - the check behind the @obs-smoke alias. *)

let () =
  match Sys.argv with
  | [| _; path |] -> begin
    match Obs.Jsonl.read_file path with
    | Ok events ->
      let tally = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let kind =
            match e with
            | Obs.Span _ -> "span"
            | Obs.Count _ -> "count"
            | Obs.Sample _ -> "sample"
          in
          Hashtbl.replace tally kind (1 + Option.value ~default:0 (Hashtbl.find_opt tally kind)))
        events;
      Printf.printf "%s: %d events ok" path (List.length events);
      Hashtbl.iter (fun k n -> Printf.printf ", %d %ss" n k) tally;
      print_newline ();
      if events = [] then begin
        prerr_endline "error: trace is empty";
        exit 1
      end
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 1
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  end
  | _ ->
    prerr_endline "usage: tracecheck TRACE.jsonl";
    exit 2
