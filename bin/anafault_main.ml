(* anafault: automatic analogue fault simulation.

     dune exec bin/anafault_main.exe -- CIRCUIT.cir
         [--faults faults.flt | --universe] [--observe NODE]
         [--model source|resistor] [--solver auto|dense|sparse]
         [--tol-v V] [--tol-t S]
         [--domains N] [--batch N] [--limit N] [--csv FILE] [--plot]
         [--trace FILE.jsonl] [--metrics]
         [--journal FILE] [--resume] [--retries SPEC]
         [--budget-iters N] [--budget-steps N] [--budget-seconds S]
         [--remote SOCKET]

   The circuit must contain a .tran card; the fault list comes from lift
   (or --universe builds the complete schematic fault set).  --trace
   streams the run's telemetry (per-fault spans, per-domain scheduler
   stats, Newton/fallback counters) as JSON lines; --metrics prints the
   aggregated summary table.  --journal records every completed fault to
   a crash-safe JSONL file; --resume skips the faults an earlier
   (killed) run of the same campaign already journalled.  The --budget-*
   flags bound the work spent on each fault; --retries configures the
   escalation ladder tried when a fault's simulation fails to converge.

   --batch sets the lock-step batch width: how many faulty variants
   advance together through one shared time grid per chunk of stolen
   work (0 = automatic; 1 = the per-fault serial path).

   Remote mode: --remote SOCKET submits the campaign to a running
   anafaultd daemon instead of simulating in-process, streaming its
   progress events and rendering the same detection table the local
   path prints.  The client is resilient: lost connections, read
   timeouts (--remote-timeout) and queue-full rejections reconnect and
   resubmit with exponential backoff (--remote-retries,
   --remote-backoff); resubmission is idempotent by campaign
   fingerprint.  --client names the submitter for the daemon's quota.
   --remote-stats / --remote-shutdown query and stop the daemon.
   --spec FILE replaces CIRCUIT/--faults with a saved Campaign.spec
   JSON file; --shard I/N (with --spec and --journal) is the worker
   mode anafaultd farms sharded jobs to (--resume salvages a previous
   life's shard journal).

   Cancellation: Ctrl-C during a --remote submission sends a cancel
   request for the accepted fingerprint before exiting, so the daemon
   stops simulating instead of finishing an orphaned job; --cancel FP
   (with --remote) cancels someone else's queued-or-running job by
   fingerprint; --deadline S attaches a wall-clock budget the daemon
   enforces from acceptance.  A cancelled campaign exits 3 - its
   journal keeps every completed fault, and resubmitting the identical
   campaign resumes exactly where the stop landed.

   Exit codes: 0 success; 1 usage errors, a failed nominal simulation,
   or a campaign in which every fault failed; 3 a campaign stopped by
   --abort-after or by a cancellation (the journal keeps what
   completed); 4 one or more worker domains died (their claimed faults
   carry typed failures in the report). *)

module Campaign = Anafault.Campaign
module Protocol = Anafaultd.Protocol

exception Aborted of int

let read_file path = In_channel.with_open_bin path In_channel.input_all

let fail fmt = Format.kasprintf (fun msg -> Format.eprintf "error: %s@." msg; 1) fmt

(* --- Remote plumbing --------------------------------------------------- *)

(* How the client survives a flaky daemon: [retries] reconnections with
   exponential backoff from [backoff] seconds (jittered, capped), a
   per-read [timeout], and a [client] name for the daemon's quota
   accounting.  Resubmission is idempotent - the campaign fingerprint
   coalesces with a still-running job or hits the result cache. *)
type remote_opts = {
  retries : int;
  backoff : float;
  timeout : float; (* seconds; 0 = wait forever *)
  client : string option;
}

(* With SIGPIPE at its default, a daemon dying mid-stream kills the
   client; ignored, the write fails as an error we can retry on. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ -> ()

let backoff_delay opts attempt =
  let base = opts.backoff *. (2.0 ** float_of_int attempt) in
  Float.min base 2.0 *. (0.5 +. Random.float 0.5)

let connect ?(timeout = 0.0) socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    if timeout > 0.0 then Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
  with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close fd;
    Error (Printf.sprintf "%s: %s" socket_path (Unix.error_message err))

let with_daemon ?timeout socket_path f =
  match connect ?timeout socket_path with
  | Error msg -> fail "%s" msg
  | Ok fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () -> f (Unix.in_channel_of_descr fd) (Unix.out_channel_of_descr fd)

(* One-shot requests (stats, shutdown): print the daemon's reply. *)
let remote_request ?timeout socket_path request =
  ignore_sigpipe ();
  with_daemon ?timeout socket_path @@ fun ic oc ->
  Protocol.send oc (Protocol.request_to_json request);
  match Protocol.recv ic with
  | Ok (Some json) ->
    print_endline (Obs.Json.to_string json);
    0
  | Ok None -> fail "daemon closed the connection without replying"
  | Error msg -> fail "%s" msg

let write_csv path results =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (Anafault.Report.csv_of_results results));
  Format.eprintf "csv written to %s@." path

(* Exit-code contract shared with the local path: 1 when every fault of
   a non-empty campaign failed to simulate. *)
let code_of_results (results : Anafault.Outcome.fault_result list) =
  let failed =
    List.length
      (List.filter
         (fun (r : Anafault.Outcome.fault_result) ->
           match r.Anafault.Outcome.outcome with
           | Anafault.Outcome.Sim_failed _ -> true
           | Anafault.Outcome.Detected _ | Anafault.Outcome.Undetected -> false)
         results)
  in
  if results <> [] && failed = List.length results then begin
    Format.eprintf
      "error: every fault simulation failed (see the failure breakdown above)@.";
    1
  end
  else 0

(* Submit with retries.  One attempt is connect + submit + stream; a
   lost connection, read timeout or queue_full rejection reconnects and
   resubmits after a backoff - the fingerprint makes that idempotent
   (the daemon coalesces with the still-running job, or answers from
   the cache when it finished while we were away).  A quota_exceeded
   rejection or a typed campaign failure is terminal. *)
let run_remote opts socket_path (spec : Campaign.spec) csv_file deadline =
  ignore_sigpipe ();
  let faults = Array.of_list (Faults.Fault_list.of_string spec.Campaign.faults) in
  (* Ctrl-C sends a cancel for the accepted fingerprint on a fresh
     connection before exiting: the daemon stops simulating instead of
     finishing a job nobody is waiting for. *)
  let accepted = ref None in
  let cancel_and_exit _ =
    (match !accepted with
    | None -> ()
    | Some fp -> begin
      Format.eprintf "@.interrupted: cancelling %s@." fp;
      match connect socket_path with
      | Error _ -> ()
      | Ok fd ->
        let oc = Unix.out_channel_of_descr fd in
        (try
           Protocol.send oc
             (Protocol.request_to_json (Protocol.Cancel { fingerprint = fp }))
         with Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    end);
    exit 130
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle cancel_and_exit)
   with Invalid_argument _ -> ());
  let attempt () =
    match connect ~timeout:opts.timeout socket_path with
    | Error msg -> `Retry msg
    | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let rec stream () =
        match Protocol.recv ic with
        | Ok None -> `Retry "daemon closed the stream before the campaign finished"
        | Error msg -> `Done (fail "%s" msg)
        | Ok (Some json) -> begin
          match Protocol.rejected_of_json json with
          | Error msg -> `Done (fail "%s" msg)
          | Ok (Some (Protocol.Queue_full, msg)) -> `Retry ("rejected: " ^ msg)
          | Ok (Some (Protocol.Quota_exceeded, msg)) ->
            `Done (fail "rejected: %s" msg)
          | Ok None -> begin
            match Campaign.event_of_json ~faults json with
            | Error msg -> `Done (fail "%s" msg)
            | Ok (Campaign.Accepted { fingerprint; total }) ->
              accepted := Some fingerprint;
              Format.printf "accepted as %s (%d faults)@." fingerprint total;
              stream ()
            | Ok (Campaign.Progress { completed; total }) ->
              Format.eprintf "progress: %d/%d@." completed total;
              stream ()
            | Ok (Campaign.Sharded { shards }) ->
              Format.printf "sharded across %d worker processes@." shards;
              stream ()
            | Ok (Campaign.Shard_restarted { shard; attempt }) ->
              Format.eprintf "shard %d died; daemon restart %d@." shard attempt;
              stream ()
            | Ok (Campaign.Shard_lost { shard; salvaged; lost }) ->
              Format.eprintf
                "shard %d lost: %d results salvaged, %d faults marked crashed@."
                shard salvaged lost;
              stream ()
            | Ok (Campaign.Cache_hit _) ->
              Format.printf "served from the result cache (no simulation run)@.";
              stream ()
            | Ok (Campaign.Cancelled { fingerprint; reason; salvaged }) ->
              Format.eprintf
                "campaign %s cancelled (%s): %d results salvaged in the \
                 daemon's journal; resubmit to resume@."
                fingerprint reason salvaged;
              `Done 3
            | Ok (Campaign.Failed { message }) -> `Done (fail "%s" message)
            | Ok (Campaign.Finished result) ->
              Format.printf "%a@." Anafault.Report.pp_results
                result.Campaign.results;
              let detected, undetected, failed = Campaign.tally result in
              Format.printf "@.%d detected, %d undetected, %d failed%s@."
                detected undetected failed
                (if result.Campaign.cached then " (cached)" else "");
              Option.iter
                (fun path -> write_csv path result.Campaign.results)
                csv_file;
              `Done (code_of_results result.Campaign.results)
          end
        end
      in
      (match
         Protocol.send oc
           (Protocol.request_to_json
              (Protocol.Submit
                 { spec; client = opts.client; deadline_s = deadline }));
         stream ()
       with
      | verdict -> verdict
      | exception Sys_error msg -> `Retry msg (* timeout, EPIPE, reset *)
      | exception End_of_file -> `Retry "connection lost")
  in
  let rec go tries =
    match attempt () with
    | `Done code -> code
    | `Retry msg ->
      if tries >= opts.retries then
        fail "%s (gave up after %d attempts)" msg (tries + 1)
      else begin
        let delay = backoff_delay opts tries in
        Format.eprintf "remote: %s; retrying in %.2fs (%d/%d)@." msg delay
          (tries + 1) opts.retries;
        Unix.sleepf delay;
        go (tries + 1)
      end
  in
  go 0

(* --- Shard worker mode ------------------------------------------------- *)

let run_shard_worker spec shard journal_path resume =
  match Campaign.compile spec with
  | Error msg -> fail "%s" msg
  | Ok compiled -> begin
    (* SIGTERM is the daemon's drain request: fire the cancel token so
       the engine stops at its next Newton poll and exit cleanly - the
       journal keeps every completed fault, in-flight ones are dropped
       (never journalled) for the resubmission to re-run. *)
    let token = Cancel.create () in
    (try
       Sys.set_signal Sys.sigterm
         (Sys.Signal_handle (fun _ -> Cancel.cancel token Cancel.User_cancel))
     with Invalid_argument _ -> ());
    let compiled = Campaign.with_cancel compiled token in
    match Campaign.run_shard ~resume ~journal_path ~shard compiled with
    | Error msg ->
      if Cancel.cancelled token then begin
        Format.eprintf "shard %s: cancelled@." (Campaign.shard_to_string shard);
        0
      end
      else fail "shard %s: %s" (Campaign.shard_to_string shard) msg
    | Ok simulated ->
      Format.eprintf "shard %s: %d faults simulated%s@."
        (Campaign.shard_to_string shard) simulated
        (if Cancel.cancelled token then " (cancelled mid-slice)" else "");
      0
  end

(* --- Local execution --------------------------------------------------- *)

let run_local spec observe_spec trace metrics plot csv_file journal_path resume
    abort_after =
  let obs = if trace <> None || metrics then Obs.memory () else Obs.null in
  match Campaign.compile ~obs spec with
  | Error msg -> fail "%s" msg
  | Ok compiled -> begin
    let faults = compiled.Campaign.faults in
    let journal =
      match journal_path with
      | None ->
        if resume then begin
          Format.eprintf "error: --resume requires --journal FILE@.";
          exit 1
        end;
        None
      | Some path -> begin
        match
          Anafault.Journal.start ~path
            ~fingerprint:compiled.Campaign.fingerprint ~resume
            ~faults:(Array.of_list faults)
        with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1
        | Ok j ->
          if resume then
            Format.printf "resuming: %d of %d faults already journalled@."
              (Anafault.Journal.restored_count j)
              (Anafault.Journal.total j);
          Some j
      end
    in
    let progress =
      Option.map
        (fun n completed _total ->
          if completed >= n then raise (Aborted completed))
        abort_after
    in
    Format.printf "observing %s, %d faults, %s model@." compiled.Campaign.observed
      (List.length faults)
      (match observe_spec with
      | `Model name -> name
      | `Spec -> "spec-configured");
    match Campaign.run_local ?progress ?journal compiled with
    | exception Aborted n ->
      Option.iter Anafault.Journal.close journal;
      Format.eprintf
        "aborted after %d faults (journal holds every completed result)@." n;
      3
    | exception Sim.Engine.Sim_error (err, detail) ->
      Option.iter Anafault.Journal.close journal;
      Format.eprintf "error: nominal simulation failed (%s): %s@."
        (Sim.Engine.error_to_string err) detail;
      1
    | { Campaign.run = run_result; domain_stats; _ } ->
      Option.iter Anafault.Journal.close journal;
      Format.printf "%a@.@.%a@." Anafault.Report.pp_table run_result
        Anafault.Report.pp_summary run_result;
      if domain_stats <> [] then
        Format.printf "@.%a@." Anafault.Report.pp_domains domain_stats;
      if plot then print_string (Anafault.Report.coverage_plot run_result);
      Option.iter
        (fun path -> write_csv path run_result.Anafault.Simulate.results)
        csv_file;
      let events = Obs.drain obs in
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              Obs.Jsonl.write oc events);
          Format.eprintf "trace written to %s (%d events)@." path
            (List.length events))
        trace;
      if metrics then
        Format.printf "@.telemetry summary@.%a@." Obs.Summary.pp
          (Obs.Summary.of_events events);
      let died =
        List.filter (fun d -> d.Anafault.Parsim.died) domain_stats
      in
      let _, _, failed = Anafault.Simulate.tally run_result in
      if died <> [] then begin
        Format.eprintf
          "error: %d worker domain(s) died; their claimed faults carry typed \
           failures (see the report above)@."
          (List.length died);
        4
      end
      else if faults <> [] && failed = List.length faults then begin
        Format.eprintf
          "error: every fault simulation failed (see the failure breakdown \
           above)@.";
        1
      end
      else 0
  end

(* --- Spec assembly ----------------------------------------------------- *)

(* The CLI's flags collapse into a Campaign.spec: the deck and fault
   list travel as text, so the same value can run locally, go over the
   wire, or be saved and re-run via --spec. *)
let spec_of_cli input fault_file universe observe model_name solver_name tol_v
    tol_t domains batch limit retries_spec budget_iters budget_steps
    budget_seconds =
  let deck = read_file input in
  let faults =
    match (fault_file, universe) with
    | Some path, _ -> Faults.Fault_list.load path
    | None, true ->
      let parsed = Netlist.Parser.parse_file input in
      Faults.Universe.build parsed.Netlist.Parser.circuit
    | None, false ->
      Format.eprintf "error: need --faults FILE or --universe@.";
      exit 1
  in
  let faults =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) faults
    | None -> faults
  in
  match
    Campaign.options_of_cli ~model:model_name ~solver:solver_name ~tol_v ~tol_t
      ~retries:retries_spec ~domains ~batch ?budget_iters ?budget_steps
      ?budget_seconds ()
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    exit 1
  | Ok options ->
    {
      Campaign.deck;
      observed = observe;
      faults = Faults.Fault_list.to_string faults;
      options;
    }

let load_spec path =
  match Obs.Json.of_string (read_file path) with
  | Error msg ->
    Format.eprintf "error: %s: %s@." path msg;
    exit 1
  | Ok json -> begin
    match Campaign.spec_of_json json with
    | Error msg ->
      Format.eprintf "error: %s: %s@." path msg;
      exit 1
    | Ok spec -> spec
  end

let run input fault_file universe observe model_name solver_name tol_v tol_t
    domains batch limit csv_file plot trace metrics journal_path resume
    retries_spec budget_iters budget_steps budget_seconds abort_after remote
    remote_retries remote_backoff remote_timeout client_name remote_stats
    remote_shutdown spec_file shard_spec deadline cancel_fp =
  (match Obs.Failpoint.load_env () with
  | Ok () -> ()
  | Error msg -> Format.eprintf "warning: failpoints: %s@." msg);
  Random.self_init ();
  let remote_opts =
    {
      retries = remote_retries;
      backoff = remote_backoff;
      timeout = remote_timeout;
      client = client_name;
    }
  in
  let timeout = if remote_timeout > 0.0 then Some remote_timeout else None in
  match (remote_stats, remote_shutdown, cancel_fp) with
  | Some socket, _, _ -> remote_request ?timeout socket Protocol.Stats
  | None, Some socket, _ -> remote_request ?timeout socket Protocol.Shutdown
  | None, None, Some fingerprint -> begin
    match remote with
    | None -> fail "--cancel requires --remote SOCKET"
    | Some socket ->
      remote_request ?timeout socket (Protocol.Cancel { fingerprint })
  end
  | None, None, None -> begin
    let spec =
      match (spec_file, input) with
      | Some path, _ -> Some (load_spec path)
      | None, Some input ->
        Some
          (spec_of_cli input fault_file universe observe model_name solver_name
             tol_v tol_t domains batch limit retries_spec budget_iters
             budget_steps budget_seconds)
      | None, None -> None
    in
    match spec with
    | None -> fail "need a CIRCUIT argument or --spec FILE"
    | Some spec -> begin
      match shard_spec with
      | Some s -> begin
        match Campaign.shard_of_string s with
        | Error msg -> fail "--shard: %s" msg
        | Ok shard -> begin
          match journal_path with
          | None -> fail "--shard requires --journal FILE"
          | Some path -> run_shard_worker spec shard path resume
        end
      end
      | None -> begin
        match remote with
        | Some socket -> run_remote remote_opts socket spec csv_file deadline
        | None ->
          let observe_spec =
            if spec_file <> None then `Spec else `Model model_name
          in
          run_local spec observe_spec trace metrics plot csv_file journal_path
            resume abort_after
      end
    end
  end

open Cmdliner

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"CIRCUIT" ~doc:"SPICE netlist with a .tran card (omit with --spec).")

let fault_file =
  Arg.(value & opt (some file) None & info [ "faults" ] ~docv:"FILE" ~doc:"Fault list produced by lift.")

let universe =
  Arg.(value & flag & info [ "universe" ] ~doc:"Simulate the complete schematic fault universe.")

let observe =
  Arg.(value & opt (some string) None & info [ "observe" ] ~docv:"NODE" ~doc:"Observed output node.")

let model_name =
  Arg.(value & opt string "source" & info [ "model" ] ~docv:"MODEL" ~doc:"Fault model: source or resistor.")

let solver_name =
  Arg.(value & opt string "auto"
       & info [ "solver" ] ~docv:"BACKEND"
           ~doc:"Linear-solver backend: auto (dense below the size \
                 threshold, sparse above), dense, or sparse.")

let tol_v =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_v
       & info [ "tol-v" ] ~docv:"V" ~doc:"Amplitude tolerance in volts.")

let tol_t =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_t
       & info [ "tol-t" ] ~docv:"S" ~doc:"Time tolerance in seconds.")

let domains =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Run fault simulations on $(docv) domains.")

let batch =
  Arg.(value & opt int 0
       & info [ "batch" ] ~docv:"N"
           ~doc:"Lock-step batch width: simulate $(docv) faulty variants \
                 together through one shared time grid, dropping each the \
                 moment its detection verdict is final.  0 (default) picks \
                 a width automatically; 1 forces the per-fault serial path.")

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Simulate only the first $(docv) faults of the list.")

let csv_file =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-fault results as CSV.")

let plot = Arg.(value & flag & info [ "plot" ] ~doc:"Print the coverage-versus-time plot.")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the telemetry stream as JSON lines to $(docv).")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the aggregated telemetry summary table.")

let journal_path =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Record every completed fault to the crash-safe JSONL journal $(docv).")

let resume =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Skip the faults an earlier run of the same campaign already \
                 journalled (requires --journal; the journal must match the \
                 campaign fingerprint).")

let retries_spec =
  Arg.(value & opt string "swap-model"
       & info [ "retries" ] ~docv:"SPEC"
           ~doc:"Comma-separated escalation ladder tried when a fault fails to \
                 converge: swap-model, cut-tstep[=F], raise-gmin[=F], \
                 relax-reltol[=F], or none.")

let budget_iters =
  Arg.(value & opt (some int) None
       & info [ "budget-iters" ] ~docv:"N"
           ~doc:"Per-fault cumulative Newton-iteration budget.")

let budget_steps =
  Arg.(value & opt (some int) None
       & info [ "budget-steps" ] ~docv:"N"
           ~doc:"Per-fault transient-step budget (accepted + rejected).")

let budget_seconds =
  Arg.(value & opt (some float) None
       & info [ "budget-seconds" ] ~docv:"S"
           ~doc:"Per-fault wall-clock deadline in seconds.")

let abort_after =
  Arg.(value & opt (some int) None
       & info [ "abort-after" ] ~docv:"N"
           ~doc:"Stop the campaign (exit 3) once $(docv) faults completed - \
                 simulates a mid-campaign kill for testing --journal/--resume; \
                 intended for the serial scheduler.")

let remote =
  Arg.(value & opt (some string) None
       & info [ "remote" ] ~docv:"SOCKET"
           ~doc:"Submit the campaign to the anafaultd daemon listening on \
                 $(docv) instead of simulating in-process; repeat \
                 submissions are answered from its result cache.")

let remote_retries =
  Arg.(value & opt int 5
       & info [ "remote-retries" ] ~docv:"N"
           ~doc:"Reconnect and resubmit up to $(docv) times when the daemon \
                 connection fails, times out, or the queue is full; \
                 resubmission is idempotent (same campaign fingerprint).")

let remote_backoff =
  Arg.(value & opt float 0.2
       & info [ "remote-backoff" ] ~docv:"S"
           ~doc:"Base retry delay in seconds; doubles per attempt (jittered, \
                 capped at 2s).")

let remote_timeout =
  Arg.(value & opt float 0.0
       & info [ "remote-timeout" ] ~docv:"S"
           ~doc:"Per-read socket timeout in seconds for remote requests; a \
                 silent daemon counts as a failed attempt.  0 = wait forever.")

let client_name =
  Arg.(value & opt (some string) None
       & info [ "client" ] ~docv:"NAME"
           ~doc:"Client name for the daemon's per-client submission quota; \
                 unnamed clients share the anonymous bucket.")

let remote_stats =
  Arg.(value & opt (some string) None
       & info [ "remote-stats" ] ~docv:"SOCKET"
           ~doc:"Print the daemon's lifetime counters (jobs, cache hits, \
                 coalesced submissions, faults simulated, shard runs) and exit.")

let remote_shutdown =
  Arg.(value & opt (some string) None
       & info [ "remote-shutdown" ] ~docv:"SOCKET"
           ~doc:"Ask the daemon to finish its queue and exit.")

let spec_file =
  Arg.(value & opt (some file) None
       & info [ "spec" ] ~docv:"FILE"
           ~doc:"Load the campaign from a Campaign.spec JSON file instead of \
                 CIRCUIT/--faults; the file's options override the option \
                 flags.")

let shard_spec =
  Arg.(value & opt (some string) None
       & info [ "shard" ] ~docv:"I/N"
           ~doc:"Worker mode: simulate only the fault indices congruent to I \
                 modulo N, journalling them under whole-campaign indices \
                 (requires --spec and --journal; used by anafaultd).")

let deadline =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"S"
           ~doc:"Wall-clock budget in seconds for a --remote submission, \
                 enforced by the daemon from acceptance (it may cap it \
                 further with its --job-deadline); an expired deadline \
                 cancels the job, salvaging every completed fault.")

let cancel_fp =
  Arg.(value & opt (some string) None
       & info [ "cancel" ] ~docv:"FINGERPRINT"
           ~doc:"Cancel the daemon's queued-or-running job with this campaign \
                 fingerprint (requires --remote SOCKET) and exit; prints the \
                 daemon's acknowledgement.")

let cmd =
  let doc = "automatic analogue fault simulation (AnaFAULT)" in
  Cmd.v
    (Cmd.info "anafault" ~doc)
    Term.(
      const run $ input $ fault_file $ universe $ observe $ model_name
      $ solver_name $ tol_v $ tol_t $ domains $ batch $ limit $ csv_file $ plot
      $ trace $ metrics $ journal_path $ resume $ retries_spec $ budget_iters
      $ budget_steps $ budget_seconds $ abort_after $ remote $ remote_retries
      $ remote_backoff $ remote_timeout $ client_name $ remote_stats
      $ remote_shutdown $ spec_file $ shard_spec $ deadline $ cancel_fp)

let () = exit (Cmd.eval' cmd)
