(* anafault: automatic analogue fault simulation.

     dune exec bin/anafault_main.exe -- CIRCUIT.cir
         [--faults faults.flt | --universe] [--observe NODE]
         [--model source|resistor] [--solver auto|dense|sparse]
         [--tol-v V] [--tol-t S]
         [--domains N] [--batch N] [--limit N] [--csv FILE] [--plot]
         [--trace FILE.jsonl] [--metrics]
         [--journal FILE] [--resume] [--retries SPEC]
         [--budget-iters N] [--budget-steps N] [--budget-seconds S]

   The circuit must contain a .tran card; the fault list comes from lift
   (or --universe builds the complete schematic fault set).  --trace
   streams the run's telemetry (per-fault spans, per-domain scheduler
   stats, Newton/fallback counters) as JSON lines; --metrics prints the
   aggregated summary table.  --journal records every completed fault to
   a crash-safe JSONL file; --resume skips the faults an earlier
   (killed) run of the same campaign already journalled.  The --budget-*
   flags bound the work spent on each fault; --retries configures the
   escalation ladder tried when a fault's simulation fails to converge.

   --batch sets the lock-step batch width: how many faulty variants
   advance together through one shared time grid per chunk of stolen
   work (0 = automatic; 1 = the per-fault serial path).

   Exit codes: 0 success; 1 usage errors, a failed nominal simulation,
   or a campaign in which every fault failed; 3 a campaign stopped by
   --abort-after (the journal keeps what completed); 4 one or more
   worker domains died (their claimed faults carry typed failures in
   the report). *)

exception Aborted of int

let run input fault_file universe observe model_name solver_name tol_v tol_t
    domains batch limit csv_file plot trace metrics journal_path resume
    retries_spec budget_iters budget_steps budget_seconds abort_after =
  let deck = Netlist.Parser.parse_file input in
  let circuit = deck.Netlist.Parser.circuit in
  match deck.Netlist.Parser.tran with
  | None ->
    Format.eprintf "error: %s has no .tran card@." input;
    1
  | Some tran -> begin
    let faults =
      match (fault_file, universe) with
      | Some path, _ -> Faults.Fault_list.load path
      | None, true -> Faults.Universe.build circuit
      | None, false ->
        Format.eprintf "error: need --faults FILE or --universe@.";
        exit 1
    in
    let faults =
      match limit with
      | Some n -> List.filteri (fun i _ -> i < n) faults
      | None -> faults
    in
    let observed =
      match observe with
      | Some node ->
        if not (List.mem node (Netlist.Circuit.nodes circuit)) then begin
          Format.eprintf "error: observed node %S is not in the circuit@." node;
          exit 1
        end;
        node
      | None -> Anafault.Simulate.default_observed circuit
    in
    let model =
      match model_name with
      | "resistor" -> Faults.Inject.default_resistor
      | "source" -> Faults.Inject.Source
      | other ->
        Format.eprintf "error: unknown model %S (source|resistor)@." other;
        exit 1
    in
    let retries =
      match String.trim retries_spec with
      | "" | "none" -> []
      | spec ->
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match Anafault.Outcome.strategy_of_string s with
               | Ok strategy -> strategy
               | Error msg ->
                 Format.eprintf "error: --retries: %s@." msg;
                 exit 1)
    in
    let solver =
      match Sim.Solver.backend_of_string solver_name with
      | Ok b -> b
      | Error msg ->
        Format.eprintf "error: --solver: %s@." msg;
        exit 1
    in
    let sim_options =
      {
        Sim.Engine.default_options with
        Sim.Engine.budget =
          {
            Sim.Engine.max_newton_iterations = budget_iters;
            max_steps = budget_steps;
            deadline_seconds = budget_seconds;
          };
        solver;
      }
    in
    (* One memory sink feeds both outputs; the run stays untraced when
       neither was asked for. *)
    let obs =
      if trace <> None || metrics then Obs.memory () else Obs.null
    in
    let config =
      Anafault.Simulate.default_config ~model
        ~tolerance:{ Anafault.Detect.tol_v; tol_t }
        ~sim_options ~retries ~domains ~batch ~obs ~tran ~observed ()
    in
    let journal =
      match journal_path with
      | None ->
        if resume then begin
          Format.eprintf "error: --resume requires --journal FILE@.";
          exit 1
        end;
        None
      | Some path -> begin
        let fingerprint = Anafault.Simulate.fingerprint config circuit faults in
        match
          Anafault.Journal.start ~path ~fingerprint ~resume
            ~faults:(Array.of_list faults)
        with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1
        | Ok j ->
          if resume then
            Format.printf "resuming: %d of %d faults already journalled@."
              (Anafault.Journal.restored_count j)
              (Anafault.Journal.total j);
          Some j
      end
    in
    let progress =
      Option.map
        (fun n completed _total -> if completed >= n then raise (Aborted completed))
        abort_after
    in
    Format.printf "observing %s, %d faults, %s model@." observed
      (List.length faults) model_name;
    match Anafault.Parsim.execute ?progress ?journal config circuit faults with
    | exception Aborted n ->
      Option.iter Anafault.Journal.close journal;
      Format.eprintf "aborted after %d faults (journal holds every completed result)@." n;
      3
    | exception Sim.Engine.Sim_error (err, detail) ->
      Option.iter Anafault.Journal.close journal;
      Format.eprintf "error: nominal simulation failed (%s): %s@."
        (Sim.Engine.error_to_string err) detail;
      1
    | run_result, domain_stats ->
      Option.iter Anafault.Journal.close journal;
      Format.printf "%a@.@.%a@." Anafault.Report.pp_table run_result
        Anafault.Report.pp_summary run_result;
      if domain_stats <> [] then
        Format.printf "@.%a@." Anafault.Report.pp_domains domain_stats;
      if plot then print_string (Anafault.Report.coverage_plot run_result);
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc (Anafault.Report.csv run_result));
          Format.eprintf "csv written to %s@." path)
        csv_file;
      let events = Obs.drain obs in
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              Obs.Jsonl.write oc events);
          Format.eprintf "trace written to %s (%d events)@." path
            (List.length events))
        trace;
      if metrics then
        Format.printf "@.telemetry summary@.%a@." Obs.Summary.pp
          (Obs.Summary.of_events events);
      let died =
        List.filter (fun d -> d.Anafault.Parsim.died) domain_stats
      in
      let _, _, failed = Anafault.Simulate.tally run_result in
      if died <> [] then begin
        Format.eprintf
          "error: %d worker domain(s) died; their claimed faults carry typed \
           failures (see the report above)@."
          (List.length died);
        4
      end
      else if faults <> [] && failed = List.length faults then begin
        Format.eprintf
          "error: every fault simulation failed (see the failure breakdown above)@.";
        1
      end
      else 0
  end

open Cmdliner

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CIRCUIT" ~doc:"SPICE netlist with a .tran card.")

let fault_file =
  Arg.(value & opt (some file) None & info [ "faults" ] ~docv:"FILE" ~doc:"Fault list produced by lift.")

let universe =
  Arg.(value & flag & info [ "universe" ] ~doc:"Simulate the complete schematic fault universe.")

let observe =
  Arg.(value & opt (some string) None & info [ "observe" ] ~docv:"NODE" ~doc:"Observed output node.")

let model_name =
  Arg.(value & opt string "source" & info [ "model" ] ~docv:"MODEL" ~doc:"Fault model: source or resistor.")

let solver_name =
  Arg.(value & opt string "auto"
       & info [ "solver" ] ~docv:"BACKEND"
           ~doc:"Linear-solver backend: auto (dense below the size \
                 threshold, sparse above), dense, or sparse.")

let tol_v =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_v
       & info [ "tol-v" ] ~docv:"V" ~doc:"Amplitude tolerance in volts.")

let tol_t =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_t
       & info [ "tol-t" ] ~docv:"S" ~doc:"Time tolerance in seconds.")

let domains =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Run fault simulations on $(docv) domains.")

let batch =
  Arg.(value & opt int 0
       & info [ "batch" ] ~docv:"N"
           ~doc:"Lock-step batch width: simulate $(docv) faulty variants \
                 together through one shared time grid, dropping each the \
                 moment its detection verdict is final.  0 (default) picks \
                 a width automatically; 1 forces the per-fault serial path.")

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Simulate only the first $(docv) faults of the list.")

let csv_file =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-fault results as CSV.")

let plot = Arg.(value & flag & info [ "plot" ] ~doc:"Print the coverage-versus-time plot.")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the telemetry stream as JSON lines to $(docv).")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the aggregated telemetry summary table.")

let journal_path =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Record every completed fault to the crash-safe JSONL journal $(docv).")

let resume =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Skip the faults an earlier run of the same campaign already \
                 journalled (requires --journal; the journal must match the \
                 campaign fingerprint).")

let retries_spec =
  Arg.(value & opt string "swap-model"
       & info [ "retries" ] ~docv:"SPEC"
           ~doc:"Comma-separated escalation ladder tried when a fault fails to \
                 converge: swap-model, cut-tstep[=F], raise-gmin[=F], \
                 relax-reltol[=F], or none.")

let budget_iters =
  Arg.(value & opt (some int) None
       & info [ "budget-iters" ] ~docv:"N"
           ~doc:"Per-fault cumulative Newton-iteration budget.")

let budget_steps =
  Arg.(value & opt (some int) None
       & info [ "budget-steps" ] ~docv:"N"
           ~doc:"Per-fault transient-step budget (accepted + rejected).")

let budget_seconds =
  Arg.(value & opt (some float) None
       & info [ "budget-seconds" ] ~docv:"S"
           ~doc:"Per-fault wall-clock deadline in seconds.")

let abort_after =
  Arg.(value & opt (some int) None
       & info [ "abort-after" ] ~docv:"N"
           ~doc:"Stop the campaign (exit 3) once $(docv) faults completed - \
                 simulates a mid-campaign kill for testing --journal/--resume; \
                 intended for the serial scheduler.")

let cmd =
  let doc = "automatic analogue fault simulation (AnaFAULT)" in
  Cmd.v
    (Cmd.info "anafault" ~doc)
    Term.(
      const run $ input $ fault_file $ universe $ observe $ model_name
      $ solver_name $ tol_v $ tol_t $ domains $ batch $ limit $ csv_file $ plot
      $ trace $ metrics $ journal_path $ resume $ retries_spec $ budget_iters
      $ budget_steps $ budget_seconds $ abort_after)

let () = exit (Cmd.eval' cmd)
