(* anafault: automatic analogue fault simulation.

     dune exec bin/anafault_main.exe -- CIRCUIT.cir
         [--faults faults.flt | --universe] [--observe NODE]
         [--model source|resistor] [--tol-v V] [--tol-t S]
         [--domains N] [--limit N] [--csv FILE] [--plot]
         [--trace FILE.jsonl] [--metrics]

   The circuit must contain a .tran card; the fault list comes from lift
   (or --universe builds the complete schematic fault set).  --trace
   streams the run's telemetry (per-fault spans, per-domain scheduler
   stats, Newton/fallback counters) as JSON lines; --metrics prints the
   aggregated summary table. *)

let run input fault_file universe observe model_name tol_v tol_t domains limit
    csv_file plot trace metrics =
  let deck = Netlist.Parser.parse_file input in
  let circuit = deck.Netlist.Parser.circuit in
  match deck.Netlist.Parser.tran with
  | None ->
    Format.eprintf "error: %s has no .tran card@." input;
    1
  | Some tran -> begin
    let faults =
      match (fault_file, universe) with
      | Some path, _ -> Faults.Fault_list.load path
      | None, true -> Faults.Universe.build circuit
      | None, false ->
        Format.eprintf "error: need --faults FILE or --universe@.";
        exit 1
    in
    let faults =
      match limit with
      | Some n -> List.filteri (fun i _ -> i < n) faults
      | None -> faults
    in
    let observed =
      match observe with
      | Some node ->
        if not (List.mem node (Netlist.Circuit.nodes circuit)) then begin
          Format.eprintf "error: observed node %S is not in the circuit@." node;
          exit 1
        end;
        node
      | None -> Anafault.Simulate.default_observed circuit
    in
    let model =
      match model_name with
      | "resistor" -> Faults.Inject.default_resistor
      | "source" -> Faults.Inject.Source
      | other ->
        Format.eprintf "error: unknown model %S (source|resistor)@." other;
        exit 1
    in
    (* One memory sink feeds both outputs; the run stays untraced when
       neither was asked for. *)
    let obs =
      if trace <> None || metrics then Obs.memory () else Obs.null
    in
    let config =
      Anafault.Simulate.default_config ~model
        ~tolerance:{ Anafault.Detect.tol_v; tol_t }
        ~domains ~obs ~tran ~observed ()
    in
    Format.printf "observing %s, %d faults, %s model@." observed
      (List.length faults) model_name;
    let run_result, domain_stats = Anafault.Parsim.execute config circuit faults in
    Format.printf "%a@.@.%a@." Anafault.Report.pp_table run_result
      Anafault.Report.pp_summary run_result;
    if domain_stats <> [] then
      Format.printf "@.%a@." Anafault.Report.pp_domains domain_stats;
    if plot then print_string (Anafault.Report.coverage_plot run_result);
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            output_string oc (Anafault.Report.csv run_result));
        Format.eprintf "csv written to %s@." path)
      csv_file;
    let events = Obs.drain obs in
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            Obs.Jsonl.write oc events);
        Format.eprintf "trace written to %s (%d events)@." path
          (List.length events))
      trace;
    if metrics then
      Format.printf "@.telemetry summary@.%a@." Obs.Summary.pp
        (Obs.Summary.of_events events);
    0
  end

open Cmdliner

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CIRCUIT" ~doc:"SPICE netlist with a .tran card.")

let fault_file =
  Arg.(value & opt (some file) None & info [ "faults" ] ~docv:"FILE" ~doc:"Fault list produced by lift.")

let universe =
  Arg.(value & flag & info [ "universe" ] ~doc:"Simulate the complete schematic fault universe.")

let observe =
  Arg.(value & opt (some string) None & info [ "observe" ] ~docv:"NODE" ~doc:"Observed output node.")

let model_name =
  Arg.(value & opt string "source" & info [ "model" ] ~docv:"MODEL" ~doc:"Fault model: source or resistor.")

let tol_v =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_v
       & info [ "tol-v" ] ~docv:"V" ~doc:"Amplitude tolerance in volts.")

let tol_t =
  Arg.(value & opt float Anafault.Detect.paper_tolerance.Anafault.Detect.tol_t
       & info [ "tol-t" ] ~docv:"S" ~doc:"Time tolerance in seconds.")

let domains =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Run fault simulations on $(docv) domains.")

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Simulate only the first $(docv) faults of the list.")

let csv_file =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-fault results as CSV.")

let plot = Arg.(value & flag & info [ "plot" ] ~doc:"Print the coverage-versus-time plot.")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the telemetry stream as JSON lines to $(docv).")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the aggregated telemetry summary table.")

let cmd =
  let doc = "automatic analogue fault simulation (AnaFAULT)" in
  Cmd.v
    (Cmd.info "anafault" ~doc)
    Term.(
      const run $ input $ fault_file $ universe $ observe $ model_name $ tol_v $ tol_t
      $ domains $ limit $ csv_file $ plot $ trace $ metrics)

let () = exit (Cmd.eval' cmd)
