(* lift: extract realistic faults from a layout.

     dune exec bin/lift_main.exe -- extract LAYOUT.cif [-o faults.flt]
         [--p-min P] [--uniform-pdf] [--no-merge] [--report]
         [--tile NM] [--domains N] [--cache DIR] [--stats FILE]
         [--trace FILE.jsonl] [--metrics]

     dune exec bin/lift_main.exe -- synth --rows N --cols M
         [--nudge R,C] [--mesh] -o layout.cif

   Extraction runs through the staged pipeline (Layout -> Tiles ->
   Connectivity -> Sites -> Critical_area -> Ranked_faults): --tile sets
   the tile side, --domains fans the per-tile stages over OCaml 5
   domains, --cache keeps content-addressed stage artefacts between runs
   so a local geometry edit re-extracts only the dirty tiles.  The
   result is byte-identical to the serial path in every configuration.
   --stats writes the per-stage computed/cached tile counters as JSON;
   --trace/--metrics expose the lib/obs telemetry stream.

   [synth] generates pipeline-scale layouts: an arrayed four-transistor
   delay-cell grid (4 devices/cell), or with --mesh a pure-interconnect
   ladder.  --nudge shifts one cell's interior metal2 strap by 500 nm -
   a single-tile edit for incremental re-extraction tests. *)

let run_extract input output p_min uniform no_merge report_flag tile domains
    cache stats trace metrics =
  let tech = Layout.Tech.default in
  let mask = Layout.Cif.load ~tech input in
  let pdf =
    if uniform then
      Some
        (Geom.Critical_area.Uniform
           { x_min = float_of_int tech.Layout.Tech.defect_x_min;
             x_max = float_of_int tech.Layout.Tech.defect_x_max })
    else None
  in
  let options = { Defects.Lift.pdf; p_min; merge_equivalent = not no_merge } in
  let obs = if trace <> None || metrics then Obs.memory () else Obs.null in
  let config =
    { Defects.Pipeline.tile_nm = tile; domains; cache_dir = cache; obs; options }
  in
  let { Defects.Pipeline.result; counters; _ } = Defects.Pipeline.run ~config mask in
  if report_flag then Format.printf "%a@." Defects.Lift.pp_report result
  else begin
    let text = Faults.Fault_list.to_string (Defects.Lift.ranked result) in
    match output with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.eprintf "%a -> %s@." Defects.Lift.pp_classes result.Defects.Lift.classes path
    | None -> print_string text
  end;
  Option.iter
    (fun path ->
      let json = Obs.Json.to_string (Defects.Pipeline.counters_to_json counters) in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc json;
          output_char oc '\n'))
    stats;
  let events = Obs.drain obs in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          Obs.Jsonl.write oc events);
      Format.eprintf "trace written to %s (%d events)@." path (List.length events))
    trace;
  if metrics then
    Format.printf "@.telemetry summary@.%a@." Obs.Summary.pp
      (Obs.Summary.of_events events);
  0

let run_synth rows cols nudge mesh output =
  let mask =
    if mesh then Synth.Layout_synth.mesh ~rows ~cols ()
    else Synth.Layout_synth.vco_array ~rows ~cols ?nudge ()
  in
  (match output with
  | Some path ->
    Layout.Cif.save mask path;
    Format.eprintf "%d shapes -> %s@." (Layout.Mask.shape_count mask) path
  | None -> print_string (Layout.Cif.to_string mask));
  0

open Cmdliner

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LAYOUT" ~doc:"Layout file (CIF-like format).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the fault list to $(docv).")

let p_min =
  Arg.(value & opt float Defects.Lift.default_options.Defects.Lift.p_min
       & info [ "p-min" ] ~docv:"P" ~doc:"Drop faults less likely than $(docv).")

let uniform =
  Arg.(value & flag & info [ "uniform-pdf" ] ~doc:"Use a uniform defect-size density instead of the 1/x^3 model.")

let no_merge =
  Arg.(value & flag & info [ "no-merge" ] ~doc:"Keep electrically equivalent faults separate.")

let report_flag =
  Arg.(value & flag & info [ "report" ] ~doc:"Print a human-readable report instead of a fault list.")

let tile =
  Arg.(value & opt int Defects.Pipeline.default_config.Defects.Pipeline.tile_nm
       & info [ "tile" ] ~docv:"NM" ~doc:"Pipeline tile side in nm; 0 disables tiling (one tile).")

let domains =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for the per-tile pipeline stages.")

let cache =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc:"Keep content-addressed stage artefacts in $(docv); re-runs recompute only dirty tiles.")

let stats =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE" ~doc:"Write per-stage computed/cached tile counters as JSON to $(docv).")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the telemetry stream as JSON lines to $(docv).")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the aggregated telemetry summary table.")

let extract_term =
  Term.(const run_extract $ input $ output $ p_min $ uniform $ no_merge
        $ report_flag $ tile $ domains $ cache $ stats $ trace $ metrics)

let extract_cmd =
  Cmd.v (Cmd.info "extract" ~doc:"extract layout-realistic faults through the staged pipeline") extract_term

let rows =
  Arg.(value & opt int 16 & info [ "rows" ] ~docv:"N" ~doc:"Grid rows.")

let cols =
  Arg.(value & opt int 16 & info [ "cols" ] ~docv:"N" ~doc:"Grid columns.")

let nudge =
  Arg.(value & opt (some (pair ~sep:',' int int)) None
       & info [ "nudge" ] ~docv:"R,C" ~doc:"Shift cell $(docv)'s interior metal2 strap by 500 nm (single-tile edit).")

let mesh =
  Arg.(value & flag & info [ "mesh" ] ~doc:"Generate the pure-interconnect ladder instead of the delay-cell array.")

let synth_cmd =
  Cmd.v
    (Cmd.info "synth" ~doc:"generate pipeline-scale layouts (delay-cell arrays, interconnect meshes)")
    Term.(const run_synth $ rows $ cols $ nudge $ mesh $ output)

let cmd =
  let doc = "extract layout-realistic faults (LIFT)" in
  Cmd.group (Cmd.info "lift" ~doc) [ extract_cmd; synth_cmd ]

let () = exit (Cmd.eval' cmd)
