(* anafaultd: the resident campaign service.

     dune exec bin/anafaultd_main.exe -- --socket PATH [--work-dir DIR]
         [--cache-dir DIR] [--shards N [--worker-exe ANAFAULT]]
         [--verbose]

   Accepts campaign jobs over newline-delimited JSON on a Unix-domain
   socket (submit / stats / ping / shutdown), runs them through the
   shared Campaign machinery, streams typed progress events back, and
   answers repeat submissions of the same campaign fingerprint from a
   content-addressed result cache.  With --shards N > 1 each job is
   split across N `anafault --shard` worker processes whose journals
   are merged into the campaign journal.

   Clients are the anafault CLI's --remote / --remote-stats /
   --remote-shutdown flags; the wire protocol is documented in
   DESIGN.md. *)

let run socket_path work_dir cache_dir shards worker_exe verbose =
  let worker_exe =
    match worker_exe with
    | Some _ as w -> w
    | None when shards > 1 ->
      (* Default to the anafault binary built next to this one. *)
      let sibling =
        Filename.concat (Filename.dirname Sys.executable_name)
          "anafault_main.exe"
      in
      if Sys.file_exists sibling then Some sibling else None
    | None -> None
  in
  if shards > 1 && worker_exe = None then begin
    Format.eprintf
      "error: --shards %d needs --worker-exe pointing at the anafault binary@."
      shards;
    1
  end
  else begin
    let cfg =
      {
        (Anafaultd.Server.default_config ~socket_path ~work_dir) with
        Anafaultd.Server.cache_dir;
        shards;
        worker_exe;
        verbose;
      }
    in
    match Anafaultd.Server.run cfg with
    | Ok () -> 0
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  end

open Cmdliner

let socket_path =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (beware the ~100-character \
                 sun_path limit).")

let work_dir =
  Arg.(value & opt string "anafaultd-work"
       & info [ "work-dir" ] ~docv:"DIR"
           ~doc:"Directory for campaign journals, shard specs and the \
                 default result cache (created if missing).")

let cache_dir =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache root; defaults to DIR/cache under --work-dir.")

let shards =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Split each job across $(docv) anafault --shard worker \
                 processes and merge their journals (1 = in-process).")

let worker_exe =
  Arg.(value & opt (some file) None
       & info [ "worker-exe" ] ~docv:"ANAFAULT"
           ~doc:"The anafault binary used for --shard children; defaults to \
                 the one built next to anafaultd.")

let verbose =
  Arg.(value & flag
       & info [ "verbose" ] ~doc:"Log jobs and cache traffic to stderr.")

let cmd =
  let doc = "resident campaign service for AnaFAULT (job queue + result cache)" in
  Cmd.v
    (Cmd.info "anafaultd" ~doc)
    Term.(
      const run $ socket_path $ work_dir $ cache_dir $ shards $ worker_exe
      $ verbose)

let () = exit (Cmd.eval' cmd)
