(* anafaultd: the resident campaign service.

     dune exec bin/anafaultd_main.exe -- --socket PATH [--work-dir DIR]
         [--cache-dir DIR] [--cache-budget BYTES] [--queue-limit N]
         [--quota N] [--shards N [--worker-exe ANAFAULT]]
         [--shard-retries N] [--lift-domains N]
         [--job-deadline S] [--grace S] [--verbose]

   Accepts campaign jobs over newline-delimited JSON on a Unix-domain
   socket (submit / extract / stats / ping / shutdown), runs them
   through the shared Campaign machinery, streams typed progress events
   back, and answers repeat submissions of the same campaign
   fingerprint from a content-addressed result cache.  An extract
   request runs the staged LIFT pipeline over a shipped layout
   (--lift-domains sets the per-tile fan-out, stage artefacts persist
   under <work-dir>/lift-stages), caches the ranked fault list under
   its lift- fingerprint, and can chain the extracted list straight
   into an attached simulation spec.  Accepted jobs are journalled to a
   write-ahead queue first, so a daemon killed -9 replays and finishes
   them at the next start.  With --shards N > 1 each job is split
   across N `anafault --shard` worker processes whose journals are
   merged into the campaign journal; dead children are respawned with
   --resume up to --shard-retries extra lives.

   Clients are the anafault CLI's --remote / --remote-stats /
   --remote-shutdown flags; the wire protocol is documented in
   DESIGN.md. *)

(* "64M"-style sizes for --cache-budget. *)
let parse_size s =
  let s = String.trim s in
  if s = "" then Error (`Msg "empty size")
  else begin
    let scale, digits =
      match s.[String.length s - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (String.length s - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (String.length s - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (String.length s - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some n when n >= 0 -> Ok (n * scale)
    | Some _ | None -> Error (`Msg (s ^ ": want BYTES with an optional k/M/G"))
  end

let size_conv =
  Cmdliner.Arg.conv
    (parse_size, fun ppf n -> Format.fprintf ppf "%d" n)

let run socket_path work_dir cache_dir cache_budget queue_limit client_quota
    shards shard_retries worker_exe lift_domains job_deadline grace verbose =
  (match Obs.Failpoint.load_env () with
  | Ok () -> ()
  | Error msg -> Format.eprintf "warning: failpoints: %s@." msg);
  let worker_exe =
    match worker_exe with
    | Some _ as w -> w
    | None when shards > 1 ->
      (* Default to the anafault binary built next to this one. *)
      let sibling =
        Filename.concat (Filename.dirname Sys.executable_name)
          "anafault_main.exe"
      in
      if Sys.file_exists sibling then Some sibling else None
    | None -> None
  in
  if shards > 1 && worker_exe = None then begin
    Format.eprintf
      "error: --shards %d needs --worker-exe pointing at the anafault binary@."
      shards;
    1
  end
  else begin
    let cfg =
      {
        (Anafaultd.Server.default_config ~socket_path ~work_dir) with
        Anafaultd.Server.cache_dir;
        cache_budget;
        queue_limit;
        client_quota;
        shards;
        shard_retries;
        worker_exe;
        lift_domains;
        job_deadline;
        grace;
        verbose;
      }
    in
    match Anafaultd.Server.run cfg with
    | Ok () -> 0
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  end

open Cmdliner

let socket_path =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (beware the ~100-character \
                 sun_path limit).")

let work_dir =
  Arg.(value & opt string "anafaultd-work"
       & info [ "work-dir" ] ~docv:"DIR"
           ~doc:"Directory for campaign journals, shard specs, the queue WAL \
                 and the default result cache (created if missing).")

let cache_dir =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache root; defaults to DIR/cache under --work-dir.")

let cache_budget =
  Arg.(value & opt size_conv 0
       & info [ "cache-budget" ] ~docv:"BYTES"
           ~doc:"Bound the result cache to $(docv) (suffixes k/M/G); \
                 least-recently-used entries are evicted past it. 0 = \
                 unbounded.")

let queue_limit =
  Arg.(value & opt int 0
       & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Reject (queue_full) submissions past $(docv) \
                 queued-or-running jobs. 0 = unbounded.")

let client_quota =
  Arg.(value & opt int 0
       & info [ "quota" ] ~docv:"N"
           ~doc:"Reject (quota_exceeded) a client's submissions past $(docv) \
                 of its jobs queued or running. 0 = unbounded.")

let shards =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Split each job across $(docv) anafault --shard worker \
                 processes and merge their journals (1 = in-process).")

let shard_retries =
  Arg.(value & opt int 2
       & info [ "shard-retries" ] ~docv:"N"
           ~doc:"Respawn a dead shard child (resuming its journal) up to \
                 $(docv) times before degrading its slice to typed crashed \
                 results.")

let worker_exe =
  Arg.(value & opt (some file) None
       & info [ "worker-exe" ] ~docv:"ANAFAULT"
           ~doc:"The anafault binary used for --shard children; defaults to \
                 the one built next to anafaultd.")

let lift_domains =
  Arg.(value & opt int 1
       & info [ "lift-domains" ] ~docv:"N"
           ~doc:"Worker domains for the per-tile stages of extract requests' \
                 staged LIFT pipeline (1 = serial).")

let job_deadline =
  Arg.(value & opt (some float) None
       & info [ "job-deadline" ] ~docv:"S"
           ~doc:"Cancel any job still queued or running $(docv) seconds after \
                 its acceptance, salvaging every journalled fault; also caps \
                 each submission's own deadline_s.  Unset = no cap.")

let grace =
  Arg.(value & opt float 2.0
       & info [ "grace" ] ~docv:"S"
           ~doc:"Seconds an orphaned job (every subscriber gone) may keep \
                 running before it is cancelled, and seconds a SIGTERMed \
                 shard child may drain before SIGKILL.")

let verbose =
  Arg.(value & flag
       & info [ "verbose" ] ~doc:"Log jobs and cache traffic to stderr.")

let cmd =
  let doc = "resident campaign service for AnaFAULT (job queue + result cache)" in
  Cmd.v
    (Cmd.info "anafaultd" ~doc)
    Term.(
      const run $ socket_path $ work_dir $ cache_dir $ cache_budget
      $ queue_limit $ client_quota $ shards $ shard_retries $ worker_exe
      $ lift_domains $ job_deadline $ grace $ verbose)

let () = exit (Cmd.eval' cmd)
