#!/usr/bin/env bash
# Staged-pipeline smoke check (dune build @lift-smoke):
#
#   1. synthesize a 4x4 delay-cell array (64 devices) and a variant
#      with one cell's interior strap nudged by 500 nm;
#   2. run the tiled+parallel pipeline cold (fills the stage cache),
#      then warm - the second run must be a 100% cache hit with
#      byte-identical output;
#   3. re-extract the nudged variant over the same cache - exactly one
#      tile per stage (connectivity, sites, critical area) may
#      recompute, the counters prove it, and the ranked list must
#      change;
#   4. diff the incremental answer against a cold serial (untiled,
#      uncached) extraction of the same variant, byte for byte.
set -euo pipefail

LIFT="$1"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# Sum of the per-stage counters in a --stats JSON file.
computed() { grep -o '"computed": *[0-9]*' "$1" | grep -o '[0-9]*$' | awk '{s+=$1} END {print s+0}'; }
cached()   { grep -o '"cached": *[0-9]*'   "$1" | grep -o '[0-9]*$' | awk '{s+=$1} END {print s+0}'; }

"$LIFT" synth --rows 4 --cols 4 -o "$work/base.cif" 2>/dev/null
"$LIFT" synth --rows 4 --cols 4 --nudge 2,2 -o "$work/edited.cif" 2>/dev/null

tile=40000  # one tile per delay cell (Layout_synth.cell_pitch_nm)

# Cold tiled+parallel run fills the stage cache.
"$LIFT" extract "$work/base.cif" --tile $tile --domains 2 \
    --cache "$work/stages" --stats "$work/cold.json" -o "$work/base.flt" 2>/dev/null
if [ "$(cached "$work/cold.json")" -ne 0 ]; then
    echo "FAIL: cold run claimed cache hits: $(cat "$work/cold.json")"; exit 1
fi

# Warm re-run: every tile of every stage served from the cache.
"$LIFT" extract "$work/base.cif" --tile $tile --domains 2 \
    --cache "$work/stages" --stats "$work/warm.json" -o "$work/warm.flt" 2>/dev/null
if [ "$(computed "$work/warm.json")" -ne 0 ]; then
    echo "FAIL: warm run recomputed tiles: $(cat "$work/warm.json")"; exit 1
fi
cmp "$work/base.flt" "$work/warm.flt"

# One-cell edit: exactly one dirty tile per stage recomputes.
"$LIFT" extract "$work/edited.cif" --tile $tile --domains 2 \
    --cache "$work/stages" --stats "$work/incr.json" -o "$work/incr.flt" 2>/dev/null
if [ "$(computed "$work/incr.json")" -ne 3 ]; then
    echo "FAIL: expected 1 dirty tile in each of 3 stages: $(cat "$work/incr.json")"
    exit 1
fi

# The nudge moved a real bridge site: the ranked list must change...
if cmp -s "$work/base.flt" "$work/incr.flt"; then
    echo "FAIL: the edit did not change the ranked fault list"; exit 1
fi

# ...and the incremental answer must equal a cold serial (untiled,
# uncached) extraction of the edited layout, byte for byte.
"$LIFT" extract "$work/edited.cif" --tile 0 -o "$work/serial.flt" 2>/dev/null
cmp "$work/serial.flt" "$work/incr.flt"

echo "lift smoke ok: $(cached "$work/warm.json") cached stage tiles warm," \
     "$(computed "$work/incr.json") recomputed after the edit"
