#!/usr/bin/env bash
# The restart smoke check (dune build @restart-smoke):
#
#   1. start anafaultd with a failpoint that kills the process (hard
#      Unix._exit, nothing flushed) as it journals the third fault of
#      its first job,
#   2. submit the demo campaign: the daemon must die mid-job, the
#      client must report the lost connection and fail,
#   3. restart the daemon over the same work directory with the
#      failpoint gone: the write-ahead queue must replay the job and
#      the campaign journal must salvage the two durable faults,
#   4. resubmit the same campaign (answered by the replayed job or its
#      cache entry) and a second, distinct campaign; diff both CSVs
#      against serial in-process references,
#   5. require the counters to prove the salvage: one replayed job,
#      and 4 + 5 = 9 simulated faults where a from-scratch rerun of
#      both campaigns would have cost 11,
#   6. resubmit the distinct campaign and require a cache hit, then
#      shut the daemon down cleanly.
#
# The socket lives under mktemp -d, NOT the _build tree: sun_path caps
# Unix-socket paths at ~108 characters and sandbox build paths blow
# straight through that.
set -eu

anafaultd=$(realpath "$1")
anafault=$(realpath "$2")
circuit=$(realpath "$3")
faults=$(realpath "$4")
reference6=$(realpath "$5")
reference5=$(realpath "$6")

tmp=$(mktemp -d)
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

socket="$tmp/d.sock"

wait_for_socket() {
  for _ in $(seq 100); do
    [ -S "$socket" ] && return 0
    sleep 0.05
  done
  echo "daemon never bound $socket" >&2
  exit 1
}

submit() { # submit LIMIT CSV [extra flags...]
  local limit=$1 csv=$2
  shift 2
  "$anafault" "$circuit" --faults "$faults" --observe 11 --limit "$limit" \
    --remote "$socket" --csv "$csv" "$@"
}

# --- First life: the daemon dies journalling fault 3 of 6. -----------
ANAFAULT_FAILPOINTS="journal.record=crash@3" \
  "$anafaultd" --socket "$socket" --work-dir "$tmp/work" \
  >"$tmp/daemon1.log" 2>&1 &
daemon_pid=$!
wait_for_socket

if submit 6 "$tmp/lost.csv" --remote-retries 0 >"$tmp/lost.out" 2>&1; then
  echo "the submission survived a daemon crash it should not have:" >&2
  cat "$tmp/lost.out" >&2
  exit 1
fi

wait "$daemon_pid" && daemon_status=0 || daemon_status=$?
daemon_pid=
[ "$daemon_status" -eq 70 ] \
  || { echo "expected the failpoint's _exit 70, got $daemon_status" >&2
       cat "$tmp/daemon1.log" >&2; exit 1; }
grep -q '"op":"push"' "$tmp/work/queue.wal" \
  || { echo "the accepted job never reached the queue WAL" >&2; exit 1; }

# --- Second life: same work dir, no failpoints. ----------------------
"$anafaultd" --socket "$socket" --work-dir "$tmp/work" \
  >"$tmp/daemon2.log" 2>&1 &
daemon_pid=$!
wait_for_socket

# The resubmission coalesces with the replayed job or finds its cache
# entry - either way the answer matches the uninterrupted reference.
submit 6 "$tmp/replayed.csv" >"$tmp/replayed.out" 2>&1
diff -u "$reference6" "$tmp/replayed.csv"

# A second, distinct campaign exercises the restarted daemon end to end.
submit 5 "$tmp/other.csv" >"$tmp/other.out" 2>&1
diff -u "$reference5" "$tmp/other.csv"

"$anafault" --remote-stats "$socket" >"$tmp/stats.json"
grep -q '"replayed":1' "$tmp/stats.json" \
  || { echo "expected one replayed job: $(cat "$tmp/stats.json")" >&2; exit 1; }
# 2 of the 6 faults were journalled before the crash, so the restart
# simulates only 4; the distinct 5-fault campaign adds 5.
grep -q '"faults_simulated":9' "$tmp/stats.json" \
  || { echo "the journalled faults were not salvaged: $(cat "$tmp/stats.json")" >&2
       exit 1; }

submit 5 "$tmp/other2.csv" >"$tmp/other2.out" 2>&1
grep -q "served from the result cache" "$tmp/other2.out" \
  || { echo "resubmission missed the cache:" >&2; cat "$tmp/other2.out" >&2
       exit 1; }
diff -u "$tmp/other.csv" "$tmp/other2.csv"

"$anafault" --remote-shutdown "$socket" >/dev/null
wait "$daemon_pid"
daemon_pid=
echo "restart smoke ok"
