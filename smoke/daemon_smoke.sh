#!/usr/bin/env bash
# The daemon smoke check (dune build @daemon-smoke):
#
#   1. start anafaultd (2-way sharding) on a throwaway Unix socket,
#   2. submit the demo campaign through `anafault --remote` and diff
#      its CSV against the serial in-process reference (full.csv),
#   3. submit the identical campaign again and require a cache hit:
#      the client must announce it and the daemon's counters must show
#      exactly one cache hit with no additional simulation work,
#   4. shut the daemon down over the socket and require a clean exit.
#
# The socket lives under mktemp -d, NOT the _build tree: sun_path caps
# Unix-socket paths at ~108 characters and sandbox build paths blow
# straight through that.
set -eu

anafaultd=$(realpath "$1")
anafault=$(realpath "$2")
circuit=$(realpath "$3")
faults=$(realpath "$4")
reference=$(realpath "$5")

tmp=$(mktemp -d)
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

socket="$tmp/d.sock"

"$anafaultd" --socket "$socket" --work-dir "$tmp/work" \
  --shards 2 --worker-exe "$anafault" >"$tmp/daemon.log" 2>&1 &
daemon_pid=$!

submit() {
  "$anafault" "$circuit" --faults "$faults" --observe 11 --limit 6 \
    --remote "$socket" --csv "$1"
}

# Wait for the daemon to bind rather than sleeping a fixed time.
for _ in $(seq 100); do
  [ -S "$socket" ] && break
  sleep 0.05
done
[ -S "$socket" ] || { echo "daemon never bound $socket" >&2; exit 1; }

submit "$tmp/first.csv" >"$tmp/first.out" 2>&1
grep -q "sharded across 2 worker processes" "$tmp/first.out" \
  || { echo "first submission did not shard:" >&2; cat "$tmp/first.out" >&2; exit 1; }

submit "$tmp/second.csv" >"$tmp/second.out" 2>&1
grep -q "served from the result cache" "$tmp/second.out" \
  || { echo "second submission missed the cache:" >&2; cat "$tmp/second.out" >&2; exit 1; }

"$anafault" --remote-stats "$socket" >"$tmp/stats.json"
grep -q '"cache_hits":1' "$tmp/stats.json" \
  || { echo "expected one cache hit: $(cat "$tmp/stats.json")" >&2; exit 1; }
grep -q '"jobs":1' "$tmp/stats.json" \
  || { echo "expected one job: $(cat "$tmp/stats.json")" >&2; exit 1; }
grep -q '"faults_simulated":6' "$tmp/stats.json" \
  || { echo "cache hit must cost zero simulation: $(cat "$tmp/stats.json")" >&2; exit 1; }

"$anafault" --remote-shutdown "$socket" >/dev/null
wait "$daemon_pid"
daemon_pid=

# The daemon's (sharded, then cached) answers must match the serial
# in-process reference byte for byte.
diff -u "$reference" "$tmp/first.csv"
diff -u "$tmp/first.csv" "$tmp/second.csv"
echo "daemon smoke ok"
