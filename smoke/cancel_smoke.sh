#!/usr/bin/env bash
# The cancel smoke check (dune build @cancel-smoke), two legs:
#
# Leg 1 - cancel, then resume exactly:
#   1. start anafaultd with journal.record=delay:0.3 so the 6-fault
#      demo campaign is slow enough to cancel mid-flight,
#   2. submit it in the background, wait for "progress: 2/6" (two
#      faults journalled, the third in flight), and cancel the job by
#      fingerprint from a second client; the reply must acknowledge
#      "cancelled": true and the submitting client must exit 3 with a
#      terminal cancelled event within a second,
#   3. resubmit the identical campaign: it must NOT be a cache hit,
#      must complete, and its CSV must match the uninterrupted serial
#      reference byte for byte,
#   4. require the counters to prove the exact resume: one cancelled
#      job and faults_simulated == 6 in total - the journalled faults
#      were salvaged and only the interrupted remainder re-simulated.
#
# Leg 2 - a cancel acknowledged is durable, even through a crash:
#   5. fresh work dir, daemon armed with cancel.tombstone=crash: the
#      process dies (hard _exit 70) immediately AFTER the cancel's WAL
#      tombstone is made durable,
#   6. cancel a running job - the daemon must die at the failpoint,
#   7. restart over the same work dir: the cancelled job must NOT be
#      replayed ("replayed":0 - the tombstone held), and resubmitting
#      must salvage the journalled faults (1 <= faults_simulated <= 5)
#      and still match the reference byte for byte.
#
# Sockets live under mktemp -d, NOT the _build tree: sun_path caps
# Unix-socket paths at ~108 characters.
set -eu

anafaultd=$(realpath "$1")
anafault=$(realpath "$2")
circuit=$(realpath "$3")
faults=$(realpath "$4")
reference=$(realpath "$5")

tmp=$(mktemp -d)
daemon_pid=
client_pid=
cleanup() {
  [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

wait_for_socket() { # wait_for_socket SOCKET
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  echo "daemon never bound $1" >&2
  exit 1
}

wait_for_line() { # wait_for_line PATTERN FILE
  for _ in $(seq 200); do
    grep -q "$1" "$2" 2>/dev/null && return 0
    sleep 0.05
  done
  echo "never saw '$1' in $2:" >&2
  cat "$2" >&2
  exit 1
}

submit() { # submit SOCKET [extra flags...]
  local socket=$1
  shift
  "$anafault" "$circuit" --faults "$faults" --observe 11 --limit 6 \
    --remote "$socket" "$@"
}

fingerprint_of() { # fingerprint_of FILE
  sed -n 's/^accepted as \([^ ]*\) .*/\1/p' "$1" | head -n 1
}

# --- Leg 1: cancel mid-fault-3, resubmit, resume exactly. ------------
socket="$tmp/d.sock"
ANAFAULT_FAILPOINTS="journal.record=delay:0.3" \
  "$anafaultd" --socket "$socket" --work-dir "$tmp/work" \
  >"$tmp/daemon1.log" 2>&1 &
daemon_pid=$!
wait_for_socket "$socket"

submit "$socket" >"$tmp/victim.out" 2>&1 &
client_pid=$!
wait_for_line "accepted as" "$tmp/victim.out"
fp=$(fingerprint_of "$tmp/victim.out")
[ -n "$fp" ] || { echo "no fingerprint in $(cat "$tmp/victim.out")" >&2; exit 1; }
wait_for_line "progress: 2/6" "$tmp/victim.out"

cancel_ns=$(date +%s%N)
"$anafault" --cancel "$fp" --remote "$socket" >"$tmp/cancel.out"
grep -q '"cancelled":true' "$tmp/cancel.out" \
  || { echo "cancel not acknowledged: $(cat "$tmp/cancel.out")" >&2; exit 1; }

wait "$client_pid" && client_status=0 || client_status=$?
client_pid=
done_ns=$(date +%s%N)
[ "$client_status" -eq 3 ] \
  || { echo "expected the cancelled client to exit 3, got $client_status:" >&2
       cat "$tmp/victim.out" >&2; exit 1; }
grep -q "cancelled (cancelled by user)" "$tmp/victim.out" \
  || { echo "no cancelled event reached the client:" >&2
       cat "$tmp/victim.out" >&2; exit 1; }
latency_ms=$(( (done_ns - cancel_ns) / 1000000 ))
[ "$latency_ms" -lt 1000 ] \
  || { echo "cancel took ${latency_ms}ms (want < 1000ms)" >&2; exit 1; }

# The identical resubmission resumes the journal: no cache entry (a
# cancelled job is never cached), the remaining faults simulate, and
# the answer matches the uninterrupted serial reference.
submit "$socket" --csv "$tmp/resumed.csv" >"$tmp/resumed.out" 2>&1
if grep -q "served from the result cache" "$tmp/resumed.out"; then
  echo "a cancelled job leaked into the result cache:" >&2
  cat "$tmp/resumed.out" >&2
  exit 1
fi
diff -u "$reference" "$tmp/resumed.csv"

"$anafault" --remote-stats "$socket" >"$tmp/stats1.json"
grep -q '"cancelled":1' "$tmp/stats1.json" \
  || { echo "expected one cancelled job: $(cat "$tmp/stats1.json")" >&2; exit 1; }
# 2 faults before the cancel + 4 after the resume: anything else means
# the journal was dropped (re-simulated) or over-trusted (skipped).
grep -q '"faults_simulated":6' "$tmp/stats1.json" \
  || { echo "resume was not exact: $(cat "$tmp/stats1.json")" >&2; exit 1; }

"$anafault" --remote-shutdown "$socket" >/dev/null
wait "$daemon_pid" || true
daemon_pid=

# --- Leg 2: crash as the cancel tombstone lands; it must hold. -------
socket2="$tmp/d2.sock"
ANAFAULT_FAILPOINTS="journal.record=delay:0.3,cancel.tombstone=crash" \
  "$anafaultd" --socket "$socket2" --work-dir "$tmp/work2" \
  >"$tmp/daemon2.log" 2>&1 &
daemon_pid=$!
wait_for_socket "$socket2"

submit "$socket2" --remote-retries 0 >"$tmp/victim2.out" 2>&1 &
client_pid=$!
wait_for_line "accepted as" "$tmp/victim2.out"
fp2=$(fingerprint_of "$tmp/victim2.out")
wait_for_line "progress: 1/6" "$tmp/victim2.out"

# The daemon dies at the failpoint before replying, so this client
# fails; what matters is the tombstone it leaves behind.
"$anafault" --cancel "$fp2" --remote "$socket2" >"$tmp/cancel2.out" 2>&1 || true

wait "$daemon_pid" && daemon_status=0 || daemon_status=$?
daemon_pid=
[ "$daemon_status" -eq 70 ] \
  || { echo "expected the failpoint's _exit 70, got $daemon_status" >&2
       cat "$tmp/daemon2.log" >&2; exit 1; }
wait "$client_pid" >/dev/null 2>&1 || true
client_pid=

# --- Second life: the tombstoned job must not rise again. ------------
# The crashed daemon left a stale socket file behind; drop it so
# wait_for_socket really waits for the new bind, and ping with retries
# to cover the bind-to-listen window.
rm -f "$socket2"
"$anafaultd" --socket "$socket2" --work-dir "$tmp/work2" \
  >"$tmp/daemon3.log" 2>&1 &
daemon_pid=$!
wait_for_socket "$socket2"
for _ in $(seq 100); do
  "$anafault" --remote-stats "$socket2" >"$tmp/stats2.json" 2>/dev/null && break
  sleep 0.05
done

[ -s "$tmp/stats2.json" ] \
  || { echo "restarted daemon never answered stats" >&2
       cat "$tmp/daemon3.log" >&2; exit 1; }
grep -q '"replayed":0' "$tmp/stats2.json" \
  || { echo "a cancelled job replayed after restart: $(cat "$tmp/stats2.json")" >&2
       exit 1; }

submit "$socket2" --csv "$tmp/resumed2.csv" >"$tmp/resumed2.out" 2>&1
diff -u "$reference" "$tmp/resumed2.csv"

"$anafault" --remote-stats "$socket2" >"$tmp/stats3.json"
sim=$(sed -n 's/.*"faults_simulated":\([0-9]*\).*/\1/p' "$tmp/stats3.json")
[ -n "$sim" ] && [ "$sim" -ge 1 ] && [ "$sim" -le 5 ] \
  || { echo "journalled faults were not salvaged across the crash: \
$(cat "$tmp/stats3.json")" >&2; exit 1; }

"$anafault" --remote-shutdown "$socket2" >/dev/null
wait "$daemon_pid" || true
daemon_pid=
echo "cancel smoke ok"
