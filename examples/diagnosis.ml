(* Fault diagnosis with a fault dictionary: simulate every realistic
   fault once, store the signatures, then identify an "unknown" faulty
   device from its measured output waveform - the fault-recognition
   use-case the paper's state-of-the-art section reviews.

   dune exec examples/diagnosis.exe *)

let () =
  print_endline "building the fault dictionary from LIFT's list...";
  let g =
    Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options
      ~golden:(Cat.Demo.schematic ()) (Cat.Demo.mask ())
  in
  let faults = g.Cat.lift.Defects.Lift.faults in
  let circuit = Cat.Demo.schematic () in
  let dict = Anafault.Diagnose.build Cat.Demo.config circuit faults in
  Printf.printf "dictionary holds %d signatures\n\n" (Anafault.Diagnose.fault_count dict);

  (* A "fabricated die" comes back from the tester with this response -
     actually fault #5 (the 0<->6 mirror bridge) simulated secretly. *)
  let culprit =
    List.find
      (fun (f : Faults.Fault.t) ->
        match f.kind with
        | Faults.Fault.Bridge { net_a; net_b } ->
          List.sort compare [ net_a; net_b ] = [ "0"; "6" ]
        | _ -> false)
      faults
  in
  let tran circuit =
    Sim.Engine.(
      Analysis.waveform
        (run circuit (Analysis.Tran { tstep = 10e-9; tstop = 4e-6; uic = true })))
  in
  let measured =
    let faulty = Faults.Inject.apply ~model:Faults.Inject.default_resistor circuit culprit in
    tran faulty
  in
  Printf.printf "device under test deviates from nominal by %.2f V RMS\n"
    (Anafault.Diagnose.nominal_distance dict measured);
  print_endline "top diagnosis candidates:";
  List.iteri
    (fun i (f, d) ->
      if i < 5 then
        Printf.printf "  %d. %-40s rms %.3f V%s\n" (i + 1) (Faults.Fault.to_string f) d
          (if f.Faults.Fault.id = culprit.Faults.Fault.id then "   <-- injected fault"
           else ""))
    (Anafault.Diagnose.rank dict measured);

  (* And a good die diagnoses as... nothing close. *)
  let good = tran circuit in
  Printf.printf "\na good die deviates by %.3f V RMS from nominal"
    (Anafault.Diagnose.nominal_distance dict good);
  (match Anafault.Diagnose.diagnose dict good with
  | Some (f, d) ->
    Printf.printf "; nearest dictionary entry is %s at %.2f V RMS (far)\n"
      f.Faults.Fault.id d
  | None -> print_newline ())
