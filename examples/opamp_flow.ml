(* A second demonstrator through the complete CAT flow: a two-stage
   Miller opamp in unity-gain configuration.  The layout is synthesised
   from the schematic by the row-floorplan generator, so the whole
   layout-driven pipeline (DRC, extraction, LVS, LIFT, fault simulation)
   runs on a circuit the paper never saw - showing the tool is not
   VCO-shaped.

   dune exec examples/opamp_flow.exe *)

let deck =
  {|two-stage miller opamp, unity gain
VDD vdd 0 5
VINP inp 0 PULSE(2 3 0.2u 10n 10n 2u 4u)
IB bias 0 DC 20u
* bias chain and tail
M8 bias bias vdd vdd PM W=20u L=2u
M5 tail bias vdd vdd PM W=40u L=2u
* pmos input pair, nmos mirror load; the inverting input follows out
M1 x1 out tail vdd PM W=40u L=2u
M2 out1 inp tail vdd PM W=40u L=2u
M3 x1 x1 0 0 NM W=20u L=2u
M4 out1 x1 0 0 NM W=20u L=2u
* second stage with miller compensation
M6 out out1 0 0 NM W=60u L=1u
M7 out bias vdd vdd PM W=60u L=2u
CC out1 out 2p
CL out 0 5p
.model NM NMOS VTO=0.8 KP=60u LAMBDA=0.02
.model PM PMOS VTO=-0.8 KP=25u LAMBDA=0.02
.tran 10n 4u UIC
.end
|}

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  let parsed = Netlist.Parser.parse deck in
  let circuit = parsed.Netlist.Parser.circuit in
  let tran = Option.get parsed.Netlist.Parser.tran in

  banner "DC operating point (unity-gain buffer)";
  let sol = Sim.Engine.(Analysis.solution (run circuit Analysis.Op)) in
  Printf.printf "bias=%.2f V  tail=%.2f V  out1=%.2f V  out=%.2f V (input 2.0 V)\n"
    (Sim.Engine.voltage sol "bias") (Sim.Engine.voltage sol "tail")
    (Sim.Engine.voltage sol "out1") (Sim.Engine.voltage sol "out");

  banner "Layout synthesis -> DRC -> extraction -> LVS";
  let mask = Synth.Row_synth.mask circuit in
  Format.printf "%a@." Layout.Mask.pp_stats mask;
  Printf.printf "DRC violations: %d\n" (List.length (Layout.Drc.check mask));
  let options =
    { Extract.Extractor.nmos_bulk = "0";
      pmos_bulk = "vdd";
      cap_per_nm2 = Synth.Row_synth.default_cap_per_nm2;
      nmos_model =
        (match Netlist.Circuit.find circuit "M3" with
        | Some (Netlist.Device.M { model; _ }) -> model
        | _ -> Netlist.Device.default_nmos);
      pmos_model =
        (match Netlist.Circuit.find circuit "M1" with
        | Some (Netlist.Device.M { model; _ }) -> model
        | _ -> Netlist.Device.default_pmos) }
  in
  let ext = Extract.Extractor.extract ~options mask in
  let lvs = Extract.Compare.run ~golden:circuit ~extracted:ext.Extract.Extraction.circuit () in
  Printf.printf "LVS mismatches: %d\n" (List.length lvs);
  List.iter (fun m -> Format.printf "  %a@." Extract.Compare.pp_mismatch m) lvs;

  banner "LIFT realistic faults";
  let lift = Defects.Lift.run ext in
  Format.printf "%a@." Defects.Lift.pp_classes lift.Defects.Lift.classes;
  List.iteri
    (fun i f -> if i < 8 then Printf.printf "  %s\n" (Faults.Fault.to_string f))
    (Defects.Lift.ranked lift);

  banner "Transient fault simulation (step response, paper tolerances)";
  let config =
    { (Anafault.Simulate.default_config ~tran ~observed:"out" ()) with
      tolerance = { Anafault.Detect.tol_v = 0.5; tol_t = 0.2e-6 } }
  in
  let run =
    Cat.run_fault_simulation ~domains:4 config circuit lift.Defects.Lift.faults
  in
  Format.printf "%a@." Anafault.Report.pp_summary run;

  banner "AC fault simulation (closed-loop magnitude signatures)";
  let ac_config =
    { (Anafault.Ac_sim.default_config ~source:"VINP" ~observed:"out") with
      freqs = Sim.Spectrum.log_grid ~f_start:100.0 ~f_stop:100e6 ~per_decade:5;
      tol_db = 1.0 }
  in
  let ac_run = Anafault.Ac_sim.run ac_config circuit lift.Defects.Lift.faults in
  Format.printf "%a@." Anafault.Ac_sim.pp_summary ac_run;
  let d_tr, _, _ = Anafault.Simulate.tally run in
  let d_ac, _, _ = Anafault.Ac_sim.tally ac_run in
  let both =
    List.fold_left2
      (fun acc (tr : Anafault.Simulate.fault_result) (ac : Anafault.Ac_sim.fault_result) ->
        match (tr.outcome, ac.outcome) with
        | Anafault.Simulate.Detected _, _ | _, Anafault.Ac_sim.Detected _ -> acc + 1
        | _ -> acc)
      0 run.Anafault.Simulate.results ac_run.Anafault.Ac_sim.results
  in
  Printf.printf
    "transient detects %d, AC detects %d, union %d of %d faults -\n\
     the two test preparations complement each other.\n"
    d_tr d_ac both
    (List.length lift.Defects.Lift.faults)
