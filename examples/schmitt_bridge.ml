(* The paper's Fig. 6 study: the drain of Schmitt-trigger transistor M11
   bridged to ground through different resistances.  At 1 kohm the VCO is
   barely affected; tens of ohms distort amplitude and frequency; at
   1 ohm the oscillation dies after the first cycle - showing why the
   "right" short resistance for the resistor fault model depends on the
   fault's location.

   dune exec examples/schmitt_bridge.exe *)

let m11_drain = "13"

let simulate r =
  let base = Cat.Demo.schematic () in
  let faulty =
    Netlist.Circuit.add base
      (Netlist.Device.R { name = "FBRIDGE"; n1 = m11_drain; n2 = "0"; value = r })
  in
  let tran = Vco.Schematic.tran in
  Sim.Engine.(
    Analysis.waveform
      (run faulty
         (Analysis.Tran
            {
              tstep = tran.Netlist.Parser.tstep;
              tstop = tran.Netlist.Parser.tstop;
              uic = true;
            })))

let count_edges wf =
  let s = Sim.Waveform.samples wf Vco.Schematic.out_node in
  let c = ref 0 in
  for i = 1 to Array.length s - 1 do
    if s.(i - 1) < 2.5 && s.(i) >= 2.5 then incr c
  done;
  !c

let series_of wf =
  let r = Sim.Waveform.resample wf ~n:150 in
  Array.to_list
    (Array.map
       (fun t -> (t, Sim.Waveform.value_at r Vco.Schematic.out_node t))
       (Sim.Waveform.times r))

let () =
  let nominal =
    Sim.Engine.(
      Analysis.waveform
        (run (Cat.Demo.schematic ())
           (Analysis.Tran
              {
                tstep = Vco.Schematic.tran.Netlist.Parser.tstep;
                tstop = Vco.Schematic.tran.Netlist.Parser.tstop;
                uic = true;
              })))
  in
  Printf.printf "fault-free: %d rising edges in 4 us\n\n" (count_edges nominal);
  let sweep = [ 1000.0; 41.0; 21.0; 1.0 ] in
  let results = List.map (fun r -> (r, simulate r)) sweep in
  List.iter
    (fun (r, wf) ->
      Printf.printf "R = %7.0f ohm: %3d rising edges, out range [%.2f, %.2f] V\n" r
        (count_edges wf)
        (Sim.Waveform.signal_min wf Vco.Schematic.out_node)
        (Sim.Waveform.signal_max wf Vco.Schematic.out_node))
    results;
  print_newline ();
  (* Overlay the 1 kohm (barely affected) and 1 ohm (dead) cases. *)
  let series =
    ("fault-free", series_of nominal)
    :: List.filter_map
         (fun (r, wf) ->
           if r = 1000.0 || r = 1.0 then
             Some (Printf.sprintf "R=%.0f ohm" r, series_of wf)
           else None)
         results
  in
  print_string
    (Anafault.Ascii_plot.render ~height:16 ~x_label:"time [s]" ~y_label:"V(11)" ~series ())
