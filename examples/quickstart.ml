(* Quickstart: parse a SPICE netlist, simulate it, inject one fault with
   AnaFAULT's machinery and watch it being detected.

     dune exec examples/quickstart.exe *)

let deck =
  {|simple inverter with rc load
VDD vdd 0 5
VIN in 0 PULSE(0 5 0 10n 10n 1u 2u)
RD vdd out 10k
CL out 0 5p IC=0
M1 out in 0 0 NM W=20u L=1u
.model NM NMOS VTO=1 KP=60u LAMBDA=0.02
.tran 10n 4u UIC
.end
|}

let () =
  (* 1. Parse and run the nominal transient. *)
  let parsed = Netlist.Parser.parse deck in
  let circuit = parsed.Netlist.Parser.circuit in
  let tran = Option.get parsed.Netlist.Parser.tran in
  Printf.printf "circuit: %d devices, nodes: %s\n"
    (Netlist.Circuit.device_count circuit)
    (String.concat " " (Netlist.Circuit.nodes circuit));
  let config = Anafault.Simulate.default_config ~tran ~observed:"out" () in
  let nominal, stats = Anafault.Simulate.nominal config circuit in
  Printf.printf "nominal: %d kernel steps, out in [%.2f, %.2f] V\n"
    stats.Sim.Engine.accepted_steps
    (Sim.Waveform.signal_min nominal "out")
    (Sim.Waveform.signal_max nominal "out");

  (* 2. Describe a fault: the output bridged to ground. *)
  let fault =
    Faults.Fault.make ~id:"#1"
      ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "0" })
      ~mechanism:"metal1_short" ~prob:2e-7 ()
  in
  Printf.printf "fault:   %s\n" (Faults.Fault.to_string fault);

  (* 3. Simulate it under both fault models. *)
  List.iter
    (fun (label, model) ->
      let result =
        Anafault.Simulate.run_one { config with model } circuit ~nominal fault
      in
      let outcome =
        match result.Anafault.Simulate.outcome with
        | Anafault.Simulate.Detected t ->
          Printf.sprintf "detected at %s" (Netlist.Eng.to_string t)
        | Anafault.Simulate.Undetected -> "undetected"
        | Anafault.Simulate.Sim_failed f ->
          "simulation failed: " ^ Anafault.Simulate.failure_to_string f
      in
      Printf.printf "%s model: %s\n" label outcome)
    [ ("source  ", Faults.Inject.Source);
      ("resistor", Faults.Inject.default_resistor) ];

  (* 4. The whole schematic fault universe, in one call. *)
  let universe = Faults.Universe.build circuit in
  let run = Anafault.Simulate.run config circuit universe in
  Printf.printf "\nuniverse of %d faults:\n" (List.length universe);
  Format.printf "%a@." Anafault.Report.pp_summary run;
  print_newline ();
  print_string (Anafault.Report.coverage_plot run)
