(* The paper's complete flow on its VCO demonstrator (Fig. 1):

     schematic -> fault universe --------------------\
     layout -> DRC -> extraction -> LVS -> LIFT -> AnaFAULT -> coverage

   dune exec examples/vco_flow.exe *)

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  banner "Schematic";
  let schematic = Cat.Demo.schematic () in
  Printf.printf "%s\n%d devices\n" schematic.Netlist.Circuit.title
    (Netlist.Circuit.device_count schematic);
  let universe = Cat.Demo.universe () in
  let opens, shorts = Faults.Universe.count universe in
  Printf.printf "schematic fault universe: %d opens + %d shorts = %d faults\n" opens
    shorts (opens + shorts);

  banner "Layout";
  let mask = Cat.Demo.mask () in
  Format.printf "%a@." Layout.Mask.pp_stats mask;
  let drc = Layout.Drc.check mask in
  Printf.printf "DRC: %d violations\n" (List.length drc);

  banner "Extraction + LVS + LIFT (GLRFM)";
  let g =
    Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options ~golden:schematic mask
  in
  Format.printf "%a@." Extract.Extraction.pp_summary g.Cat.extraction;
  Printf.printf "LVS mismatches: %d\n" (List.length g.Cat.lvs);
  let lift = g.Cat.lift in
  Format.printf "LIFT: %a@." Defects.Lift.pp_classes lift.Defects.Lift.classes;
  let total = Defects.Lift.total lift.Defects.Lift.classes in
  Printf.printf "reduction vs universe: %d -> %d (%.0f %%)\n" (List.length universe)
    total
    (100.0 *. (1.0 -. (float_of_int total /. float_of_int (List.length universe))));
  Printf.printf "\nten most likely faults:\n";
  List.iteri
    (fun i f -> if i < 10 then Printf.printf "  %s\n" (Faults.Fault.to_string f))
    (Defects.Lift.ranked lift);

  banner "AnaFAULT fault simulation (source model)";
  let run =
    Cat.run_fault_simulation
      { Cat.Demo.config with Anafault.Simulate.domains = 4 }
      schematic lift.Defects.Lift.faults
  in
  Format.printf "%a@." Anafault.Report.pp_summary run;
  Format.printf "@.%a@." Anafault.Report.pp_overview run;

  banner "Fault coverage vs time (Fig. 5 style)";
  print_string (Anafault.Report.coverage_plot run);

  banner "Fault list (LIFT -> AnaFAULT interface file)";
  print_string (Faults.Fault_list.to_string (Defects.Lift.ranked lift))
