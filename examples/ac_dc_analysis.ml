(* AC and DC fault signatures - the frequency/operating-point companions
   of the paper's transient loop (its state-of-the-art section cites the
   AC/DC fault simulators it generalises).

   Part 1: a common-source MOS amplifier with an RC load; faults bend its
   transfer function, and the AC fault loop detects them as departures
   from the nominal magnitude response.

   Part 2: the VCO's DC control path - a sweep of the control voltage
   maps the V-to-I conversion, and a fault in the mirror shows up as a
   bent characteristic.

   dune exec examples/ac_dc_analysis.exe *)

let amplifier =
  (Netlist.Parser.parse
     {|common-source amplifier
VDD vdd 0 5
VIN in 0 DC 1.5
RD vdd out 20k
RS in g 1k
CIN g gate 100n
RB1 vdd gate 300k
RB2 gate 0 100k
M1 out gate 0 0 NM W=20u L=1u
CL out 0 20p
.model NM NMOS VTO=0.8 KP=60u LAMBDA=0.02
.end
|})
    .Netlist.Parser.circuit

let () =
  (* --- Part 1: AC --- *)
  print_endline "=== AC fault signatures of a common-source amplifier ===";
  let config = Anafault.Ac_sim.default_config ~source:"VIN" ~observed:"out" in
  let ac circuit =
    Sim.Engine.(
      Analysis.spectrum
        (run circuit
           (Analysis.Ac { source = "VIN"; freqs = config.Anafault.Ac_sim.freqs })))
  in
  let nominal = ac amplifier in
  let mag = Sim.Spectrum.magnitude_db nominal "out" in
  let freqs = Sim.Spectrum.frequencies nominal in
  let peak = Array.fold_left Float.max neg_infinity mag in
  Printf.printf "nominal midband gain: %.1f dB\n" peak;
  (* Upper -3 dB corner: last frequency still within 3 dB of the peak. *)
  let corner = ref freqs.(0) in
  Array.iteri (fun i m -> if m >= peak -. 3.0 then corner := freqs.(i)) mag;
  Printf.printf "nominal upper -3 dB corner: %.3g Hz\n" !corner;
  let faults = Faults.Universe.build amplifier in
  let run = Anafault.Ac_sim.run config amplifier faults in
  Format.printf "%a@." Anafault.Ac_sim.pp_summary run;
  List.iter
    (fun (r : Anafault.Ac_sim.fault_result) ->
      let o =
        match r.outcome with
        | Anafault.Ac_sim.Detected f -> Printf.sprintf "detected from %.3g Hz" f
        | Anafault.Ac_sim.Undetected -> "undetected"
        | Anafault.Ac_sim.Sim_failed m -> "failed: " ^ m
      in
      Printf.printf "  %-18s %s\n" r.fault.Faults.Fault.id o)
    run.Anafault.Ac_sim.results;
  (* Bode plot of the nominal and one faulty response. *)
  let gate_open =
    Faults.Fault.make ~id:"demo"
      ~kind:(Faults.Fault.Break
               { net = "gate"; moved = [ { Faults.Fault.device = "M1"; port = 1 } ] })
      ~mechanism:"poly_open" ()
  in
  let faulty_c =
    Faults.Inject.apply ~model:Faults.Inject.default_resistor amplifier gate_open
  in
  let faulty = ac faulty_c in
  let series spec =
    Array.to_list
      (Array.map2
         (fun f m -> (log10 f, m))
         (Sim.Spectrum.frequencies spec)
         (Sim.Spectrum.magnitude_db spec "out"))
  in
  print_string
    (Anafault.Ascii_plot.render ~height:14 ~x_label:"log10 f [Hz]" ~y_label:"|H| [dB]"
       ~series:[ ("nominal", series nominal); ("M1 gate open", series faulty) ]
       ());

  (* --- Part 2: DC --- *)
  print_endline "\n=== VCO control path: DC sweep of the V-to-I conversion ===";
  (* The full VCO has no stable DC point (it is an oscillator), so the
     sweep isolates the paper\'s "V-to-I conversion" block: M1..M10 with
     resistive loads standing in for the analogue switch. *)
  let vco = Cat.Demo.schematic () in
  let block =
    let mirror_devices =
      List.filter_map
        (fun name -> Netlist.Circuit.find vco name)
        [ "M1"; "M2"; "M3"; "M4"; "M5"; "M6"; "M7"; "M8"; "M9"; "M10" ]
    in
    Netlist.Circuit.of_devices "v-to-i block"
      (Netlist.Device.V { name = "VDD"; np = "1"; nn = "0"; wave = Netlist.Wave.Dc 5.0 }
      :: Netlist.Device.V { name = "VCTL"; np = "2"; nn = "0"; wave = Netlist.Wave.Dc 3.0 }
      :: Netlist.Device.R { name = "RLC"; n1 = "8"; n2 = "0"; value = 50e3 }
      :: Netlist.Device.R { name = "RLD"; n1 = "1"; n2 = "5"; value = 50e3 }
      :: mirror_devices)
  in
  let values = List.init 9 (fun i -> 1.0 +. (0.375 *. float_of_int i)) in
  let charge_current sol = Sim.Engine.voltage sol "8" /. 50e3 *. 1e6 in
  let sweep circuit =
    Sim.Engine.(
      Analysis.sweep (run circuit (Analysis.Dc_sweep { source = "VCTL"; values })))
  in
  let nominal_sweep = sweep block in
  let faulty_block =
    Netlist.Circuit.add block
      (Netlist.Device.R { name = "FB"; n1 = "6"; n2 = "0"; value = 0.01 })
  in
  let faulty_sweep = sweep faulty_block in
  Printf.printf "%8s %18s %24s\n" "Vctl [V]" "I(charge) [uA]" "I(charge) BRI 6<->0 [uA]";
  List.iter2
    (fun (v, sn) (_, sf) ->
      Printf.printf "%8.3f %18.2f %24.2f\n" v (charge_current sn) (charge_current sf))
    nominal_sweep faulty_sweep;
  print_endline
    "(the charge current rises with the control voltage - the VCO tuning law -\n\
     and the discharge-mirror bridge leaves it untouched: that fault only\n\
     disturbs the discharge phase, which is why Fig. 4 sees it in the frequency)"
