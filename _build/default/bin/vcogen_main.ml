(* vcogen: export the VCO demonstrator's artefacts - the inputs the lift
   and anafault tools consume, plus an SVG rendering of the layout.

     dune exec bin/vcogen_main.exe -- [-o DIR]

   writes  vco.cir  (SPICE netlist with the paper's .tran card)
           vco.cif  (mask layout, CIF-like format)
           vco.svg  (layout rendering)
           vco.flt  (LIFT's ranked fault list) *)

let run dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir name in
  let schematic = Cat.Demo.schematic () in
  Netlist.Printer.save ~tran:Vco.Schematic.tran schematic (path "vco.cir");
  let mask = Cat.Demo.mask () in
  Layout.Cif.save mask (path "vco.cif");
  Layout.Svg.save ~width:1200 mask (path "vco.svg");
  let g =
    Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options ~golden:schematic mask
  in
  Faults.Fault_list.save (Defects.Lift.ranked g.Cat.lift) (path "vco.flt");
  Format.printf "wrote vco.cir, vco.cif, vco.svg, vco.flt to %s@." dir;
  Format.printf "LVS mismatches: %d; %a@." (List.length g.Cat.lvs)
    Defects.Lift.pp_classes g.Cat.lift.Defects.Lift.classes;
  0

open Cmdliner

let dir =
  Arg.(value & opt string "." & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")

let cmd =
  let doc = "export the VCO demonstrator artefacts" in
  Cmd.v (Cmd.info "vcogen" ~doc) Term.(const run $ dir)

let () = exit (Cmd.eval' cmd)
