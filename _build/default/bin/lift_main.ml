(* lift: extract realistic faults from a layout.

     dune exec bin/lift_main.exe -- LAYOUT.cif [-o faults.flt] [--p-min P]
         [--uniform-pdf] [--no-merge] [--report]

   The input is the CIF-like layout format of {!Layout.Cif}; the output is
   the fault-list interface format consumed by anafault. *)

let run input output p_min uniform no_merge report_flag =
  let tech = Layout.Tech.default in
  let mask = Layout.Cif.load ~tech input in
  let ext = Extract.Extractor.extract mask in
  let pdf =
    if uniform then
      Some
        (Geom.Critical_area.Uniform
           { x_min = float_of_int tech.Layout.Tech.defect_x_min;
             x_max = float_of_int tech.Layout.Tech.defect_x_max })
    else None
  in
  let options =
    { Defects.Lift.pdf; p_min; merge_equivalent = not no_merge }
  in
  let result = Defects.Lift.run ~options ext in
  if report_flag then Format.printf "%a@." Defects.Lift.pp_report result
  else begin
    let text = Faults.Fault_list.to_string (Defects.Lift.ranked result) in
    match output with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.eprintf "%a -> %s@." Defects.Lift.pp_classes result.Defects.Lift.classes path
    | None -> print_string text
  end;
  0

open Cmdliner

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LAYOUT" ~doc:"Layout file (CIF-like format).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the fault list to $(docv).")

let p_min =
  Arg.(value & opt float Defects.Lift.default_options.Defects.Lift.p_min
       & info [ "p-min" ] ~docv:"P" ~doc:"Drop faults less likely than $(docv).")

let uniform =
  Arg.(value & flag & info [ "uniform-pdf" ] ~doc:"Use a uniform defect-size density instead of the 1/x^3 model.")

let no_merge =
  Arg.(value & flag & info [ "no-merge" ] ~doc:"Keep electrically equivalent faults separate.")

let report_flag =
  Arg.(value & flag & info [ "report" ] ~doc:"Print a human-readable report instead of a fault list.")

let cmd =
  let doc = "extract layout-realistic faults (LIFT)" in
  Cmd.v
    (Cmd.info "lift" ~doc)
    Term.(const run $ input $ output $ p_min $ uniform $ no_merge $ report_flag)

let () = exit (Cmd.eval' cmd)
