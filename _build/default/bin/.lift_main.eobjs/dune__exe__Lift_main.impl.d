bin/lift_main.ml: Arg Cmd Cmdliner Defects Extract Faults Format Fun Geom Layout Term
