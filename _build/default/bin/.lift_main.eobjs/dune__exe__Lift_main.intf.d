bin/lift_main.mli:
