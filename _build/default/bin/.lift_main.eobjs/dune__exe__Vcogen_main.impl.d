bin/vcogen_main.ml: Arg Cat Cmd Cmdliner Defects Faults Filename Format Layout List Netlist Sys Term Vco
