bin/vcogen_main.mli:
