bin/anafault_main.mli:
