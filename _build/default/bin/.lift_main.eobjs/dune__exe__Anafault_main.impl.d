bin/anafault_main.ml: Anafault Arg Cat Cmd Cmdliner Faults Format Fun List Netlist Option Term
