bin/anafault_main.ml: Anafault Arg Cmd Cmdliner Faults Format Fun List Netlist Option Term
