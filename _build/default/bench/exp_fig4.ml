(* Fig. 4 - output waveforms of three cases: fault-free oscillation, a
   bridging fault that changes the oscillation frequency (the paper's #6,
   an n-channel drain-source short between nodes 5 and 6), and a
   metal short to the supply that freezes the output (the paper's #339,
   metal1 1->5).

   Our layout yields the same 5-6 diffusion bridge; its cascode position
   makes the shift mild, so the harness also shows the 0-6 bridge
   (shorting the discharge mirror output), whose frequency jump matches
   the paper's trace.  The stuck case is the most likely supply bridge
   LIFT found. *)

let describe label wf =
  Printf.printf "%-28s edges=%2d  f=%4.2f MHz  V(11) range [%5.2f, %5.2f]\n" label
    (Helpers.count_edges wf) (Helpers.frequency_mhz wf)
    (Sim.Waveform.signal_min wf Vco.Schematic.out_node)
    (Sim.Waveform.signal_max wf Vco.Schematic.out_node)

let stuck_bridge () =
  (* The most probable extracted bridge to the supply whose response is a
     frozen output. *)
  List.find_opt
    (fun (f : Faults.Fault.t) ->
      match f.kind with
      | Faults.Fault.Bridge { net_a; net_b } ->
        net_a = Vco.Schematic.vdd_node || net_b = Vco.Schematic.vdd_node
      | Faults.Fault.Break _ | Faults.Fault.Stuck_open _ -> false)
    (Defects.Lift.ranked (Lazy.force Helpers.glrfm).Cat.lift)

let run () =
  Helpers.banner "Fig. 4 - fault-free and faulty output waveforms V(11)";
  let base = Cat.Demo.schematic () in
  let nominal = Helpers.simulate base in
  describe "fault-free" nominal;
  let cases = ref [ ("fault-free", nominal) ] in
  (match Helpers.find_bridge [ "5"; "6" ] with
  | Some f ->
    let wf =
      Helpers.simulate (Faults.Inject.apply ~model:Faults.Inject.default_resistor base f)
    in
    describe (f.Faults.Fault.id ^ " BRI ndiff 5<->6") wf
  | None -> Printf.printf "(no 5<->6 bridge extracted)\n");
  (match Helpers.find_bridge [ "0"; "6" ] with
  | Some f ->
    let wf =
      Helpers.simulate (Faults.Inject.apply ~model:Faults.Inject.default_resistor base f)
    in
    describe (f.Faults.Fault.id ^ " BRI ndiff 0<->6 (freq up)") wf;
    cases := (f.Faults.Fault.id ^ " 0<->6", wf) :: !cases
  | None -> Printf.printf "(no 0<->6 bridge extracted)\n");
  (match stuck_bridge () with
  | Some f ->
    let wf =
      Helpers.simulate (Faults.Inject.apply ~model:Faults.Inject.default_resistor base f)
    in
    describe (f.Faults.Fault.id ^ " " ^ f.Faults.Fault.mechanism ^ " (stuck)") wf;
    cases := (f.Faults.Fault.id ^ " supply bridge", wf) :: !cases
  | None -> Printf.printf "(no supply bridge extracted)\n");
  Printf.printf "\n";
  List.iter
    (fun (label, wf) ->
      Printf.printf "%s:\n%s\n" label
        (Anafault.Ascii_plot.render ~height:10 ~x_label:"time [s]"
           ~series:[ ("V(11)", Helpers.series_of wf) ]
           ()))
    (List.rev !cases);
  Printf.printf
    "paper shape: top trace oscillates, #6 oscillates visibly faster, #339 sits at a rail.\n"
