bench/helpers.ml: Array Cat Defects Faults Lazy List Netlist Printf Sim Vco
