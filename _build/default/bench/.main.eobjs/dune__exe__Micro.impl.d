bench/micro.ml: Anafault Analyze Array Bechamel Benchmark Cat Defects Faults Float Geom Hashtbl Helpers Instance Layout Lazy List Measure Netlist Printf Sim Staged Test Time Toolkit
