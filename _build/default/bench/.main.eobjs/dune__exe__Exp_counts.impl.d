bench/exp_counts.ml: Cat Defects Faults Float Helpers Lazy List Printf
