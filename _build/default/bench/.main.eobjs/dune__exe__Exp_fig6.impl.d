bench/exp_fig6.ml: Anafault Cat Helpers List Printf
