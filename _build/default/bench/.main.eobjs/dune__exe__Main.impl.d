bench/main.ml: Array Exp_ablation Exp_batch Exp_counts Exp_fig4 Exp_fig5 Exp_fig6 Exp_l2rfm Exp_models Exp_montecarlo Exp_tab1 Exp_testprep Helpers Micro Printf String Sys
