bench/exp_fig4.ml: Anafault Cat Defects Faults Helpers Lazy List Printf Sim Vco
