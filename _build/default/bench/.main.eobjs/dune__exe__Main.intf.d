bench/main.mli:
