bench/exp_tab1.ml: Helpers Layout List Printf
