bench/exp_fig5.ml: Anafault Cat Format Helpers List Printf
