bench/exp_batch.ml: Anafault Array Domain Faults Float Fun Gc Helpers List Netlist Printf Sim Unix
