bench/exp_l2rfm.ml: Cat Defects Faults Helpers List Printf
