bench/exp_models.ml: Anafault Cat Faults Float Helpers List Printf Sim Unix
