bench/exp_ablation.ml: Anafault Cat Defects Domain Faults Geom Helpers Layout Lazy List Netlist Printf Sim String Unix
