bench/exp_testprep.ml: Anafault Cat Format Helpers Netlist Printf
