bench/exp_montecarlo.ml: Cat Defects Extract Faults Format Geom Helpers Layout Lazy List Printf
