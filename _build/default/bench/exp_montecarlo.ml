(* Validation of LIFT's closed-form critical-area ranking against the
   original Monte-Carlo inductive fault analysis ([25]): random spot
   defects dropped on the layout must hit the faults LIFT predicted, at
   rates proportional to the analytic probabilities. *)

let samples = 200_000

let run () =
  Helpers.banner "IFA cross-check - Monte-Carlo defects vs LIFT's analytic ranking";
  let ext = (Lazy.force Helpers.glrfm).Cat.extraction in
  let tech = Layout.Tech.default in
  let die =
    Geom.Rect.expand
      (Layout.Mask.bbox ext.Extract.Extraction.mask)
      tech.Layout.Tech.defect_x_max
  in
  let a_die = float_of_int (Geom.Rect.area die) in
  (* Analytic expectation of topology-changing shorts per sample. *)
  let weights =
    [ (Layout.Layer.Ndiff, 1.0); (Layout.Layer.Pdiff, 1.0); (Layout.Layer.Poly, 1.25);
      (Layout.Layer.Metal1, 1.0); (Layout.Layer.Metal2, 1.5) ]
  in
  let total_w = 1.0 +. 1.0 +. 1.25 +. 1.0 +. 1.5 +. 0.01 +. 0.01 +. 0.25 +. 0.01 +. 0.02 +. 0.66 +. 0.67 +. 0.8 in
  let expected_shorts =
    List.fold_left
      (fun acc (s : Defects.Sites.bridge_site) ->
        let w = List.assoc s.Defects.Sites.bridge_layer weights in
        acc +. (w /. total_w *. (s.Defects.Sites.bridge_ca /. a_die)))
      0.0 (Defects.Sites.bridges ext)
    *. float_of_int samples
  in
  let mc = Defects.Monte_carlo.run ~samples ext in
  Format.printf "%a@." Defects.Monte_carlo.pp_summary mc;
  Printf.printf "%-44s %10.1f\n" "analytic expectation (shorts)" expected_shorts;
  Printf.printf "%-44s %10d\n" "observed topology-changing defects"
    mc.Defects.Monte_carlo.effective;
  Printf.printf "%-44s %9.1f%%\n" "hits landing on LIFT-listed faults"
    (100.0 *. Defects.Monte_carlo.agreement mc (Helpers.lift_faults ()));
  Printf.printf "%-44s %10d\n" "defects causing multiple faults at once"
    mc.Defects.Monte_carlo.multi_effect;
  Printf.printf "\nmost frequent Monte-Carlo faults (LIFT's #1 should lead):\n";
  List.iteri
    (fun i (f, n) ->
      if i < 8 then Printf.printf "%6d hits  %s\n" n (Faults.Fault.to_string f))
    mc.Defects.Monte_carlo.hits
