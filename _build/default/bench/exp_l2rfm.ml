(* Fig. 1's second reduction path: L2RFM (pre-layout, per-element
   templates) versus GLRFM (LIFT on the final layout).  The paper's
   claim: GLRFM "additionally takes into account global short conditions
   and single defects causing global multiple open faults". *)

let run () =
  Helpers.banner "Fig. 1 - L2RFM (pre-layout) vs GLRFM (final layout)";
  let schematic = Cat.Demo.schematic () in
  let l2 = Defects.L2rfm.run schematic in
  let glrfm = Helpers.lift_faults () in
  let `Anticipated anticipated, `Global_only global_only =
    Defects.L2rfm.compare_with_glrfm ~l2rfm:l2 ~glrfm
  in
  Printf.printf "%-44s %8d\n" "schematic universe" (List.length (Cat.Demo.universe ()));
  Printf.printf "%-44s %8d\n" "L2RFM local realistic faults" (List.length l2.Defects.L2rfm.faults);
  Printf.printf "%-44s %8d\n" "GLRFM (LIFT) realistic faults" (List.length glrfm);
  Printf.printf "%-44s %8d\n" "  of which L2RFM anticipated" (List.length anticipated);
  Printf.printf "%-44s %8d\n" "  of which visible only globally" (List.length global_only);
  let bridges, opens =
    List.partition
      (fun (f : Faults.Fault.t) ->
        match f.kind with
        | Faults.Fault.Bridge _ -> true
        | Faults.Fault.Break _ | Faults.Fault.Stuck_open _ -> false)
      global_only
  in
  Printf.printf "%-44s %8d\n" "  global-only bridges (routing shorts)" (List.length bridges);
  Printf.printf "%-44s %8d\n" "  global-only opens/splits" (List.length opens);
  Printf.printf
    "\npaper claim reproduced: the pre-layout mapping catches the element-local\n\
     faults, but the routing-induced shorts and multi-terminal splits only\n\
     appear once LIFT sees the final layout.\n"
