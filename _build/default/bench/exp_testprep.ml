(* Section III's application procedure: "AnaFAULT performs an automatic
   fault simulation with the actual set of faults using a given stimulus
   that has to be checked ... Depending on the result the stimulus can be
   refined."  Here four candidate stimuli for the VCO test compete on the
   LIFT fault list. *)

let with_vctl v circuit =
  match Netlist.Circuit.find circuit "VCTL" with
  | Some (Netlist.Device.V src) ->
    Netlist.Circuit.replace circuit
      (Netlist.Device.V { src with wave = Netlist.Wave.Dc v })
  | Some _ | None -> circuit

let with_vctl_step lo hi circuit =
  match Netlist.Circuit.find circuit "VCTL" with
  | Some (Netlist.Device.V src) ->
    Netlist.Circuit.replace circuit
      (Netlist.Device.V
         { src with
           wave =
             Netlist.Wave.Pulse
               { v1 = lo; v2 = hi; delay = 2e-6; rise = 50e-9; fall = 50e-9;
                 width = 1.0; period = 0.0 } })
  | Some _ | None -> circuit

let run () =
  Helpers.banner "Sec. III - comparison of test preparation (stimulus refinement)";
  let base = Cat.Demo.config in
  let candidates =
    [
      { Anafault.Testprep.label = "Vctl = 2.0 V (slow)"; prepare = with_vctl 2.0;
        config = base };
      { Anafault.Testprep.label = "Vctl = 3.0 V (paper)"; prepare = with_vctl 3.0;
        config = base };
      { Anafault.Testprep.label = "Vctl = 4.0 V (fast)"; prepare = with_vctl 4.0;
        config = base };
      { Anafault.Testprep.label = "Vctl step 2 -> 4 V"; prepare = with_vctl_step 2.0 4.0;
        config = base };
    ]
  in
  let verdicts =
    Anafault.Testprep.compare ~domains:8 (Cat.Demo.schematic ())
      (Helpers.lift_faults ()) candidates
  in
  Format.printf "%a@." Anafault.Testprep.pp_table verdicts;
  Printf.printf
    "(the paper holds the control voltage constant; the ranking shows what the\n\
     CAT loop is for - candidate stimuli are judged by weighted coverage and\n\
     test time, and the stimulus is refined accordingly)\n"
