(* Fig. 6 - the resistor fault model's value matters: the drain of
   Schmitt-trigger transistor M11 (node 13) bridged to ground through
   1 kohm, 41 ohm, 21 ohm and 1 ohm.

   Paper: at 1 kohm the waveform is only slightly affected; decreasing R
   makes the impact more visible; at 1 ohm the oscillation stops after
   one cycle. *)

let m11_drain = "13"

let run () =
  Helpers.banner "Fig. 6 - resistor-model sweep on M11 drain -> GND";
  let base = Cat.Demo.schematic () in
  let nominal = Helpers.simulate base in
  Printf.printf "%-14s %6s %8s %22s\n" "R [ohm]" "edges" "f [MHz]" "behaviour";
  Printf.printf "%-14s %6d %8.2f %22s\n" "fault-free"
    (Helpers.count_edges nominal) (Helpers.frequency_mhz nominal) "reference";
  let behave edges nominal_edges =
    if edges <= 1 then "oscillation stops"
    else if edges > nominal_edges then "faster, distorted"
    else "slightly affected"
  in
  let cases =
    List.map
      (fun r ->
        let wf = Helpers.simulate (Helpers.inject_resistor base m11_drain "0" r) in
        let e = Helpers.count_edges wf in
        Printf.printf "%-14.0f %6d %8.2f %22s\n" r e (Helpers.frequency_mhz wf)
          (behave e (Helpers.count_edges nominal));
        (r, wf))
      [ 1000.0; 41.0; 21.0; 1.0 ]
  in
  Printf.printf "\n";
  print_string
    (Anafault.Ascii_plot.render ~height:14 ~x_label:"time [s]" ~y_label:"V(11)"
       ~series:
         (("fault-free", Helpers.series_of nominal)
         :: List.filter_map
              (fun (r, wf) ->
                if r = 41.0 || r = 1.0 then
                  Some (Printf.sprintf "R=%.0f" r, Helpers.series_of wf)
                else None)
              cases)
       ());
  Printf.printf
    "paper shape: 1 kohm barely visible, 41/21 ohm visible distortion, 1 ohm dies\n\
     after one cycle - the optimal modelling resistance depends on the location.\n"
