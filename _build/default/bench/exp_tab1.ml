(* Tab. 1 - Likely physical failure modes in a digital CMOS process and
   typical failure densities.  The table is the tool's default defect
   statistics; this prints it in the paper's layout together with the
   paper's values so any drift is visible. *)

let paper =
  [ ("ad", 0.01); ("bd", 1.00); ("ap", 0.25); ("bp", 1.25); ("am1", 0.01);
    ("bm1", 1.00); ("am2", 0.02); ("bm2", 1.50); ("acd", 0.66); ("acp", 0.67);
    ("acv", 0.80) ]

let run () =
  Helpers.banner "Tab. 1 - failure mechanisms and relative defect densities";
  Printf.printf "%-18s %-7s %-6s %10s %10s\n" "layer(s)" "failure" "symbol" "ours"
    "paper";
  let rows = Layout.Tech.table1 Layout.Tech.default in
  List.iter
    (fun (layer, failure, sym, density) ->
      let expected = List.assoc sym paper in
      Printf.printf "%-18s %-7s %-6s %10.2f %10.2f%s\n" layer failure sym density
        expected
        (if density = expected then "" else "   <-- MISMATCH"))
    rows;
  Printf.printf "\nmetal-1 short density anchor: %.1f defect/cm^2 (paper: 1)\n"
    Layout.Tech.default.Layout.Tech.d0_per_cm2
