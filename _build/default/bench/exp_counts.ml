(* Section VI fault-count experiment: the schematic fault universe versus
   LIFT's layout-realistic list.

   Paper: 79 opens (78 on transistors + 1 capacitor) and 73 shorts from
   the schematic; LIFT extracted 70 different failures (55 bridging,
   8 line opens, 7 transistor stuck open) - a 53 % reduction. *)

let run () =
  Helpers.banner "Sec. VI - schematic fault universe vs LIFT extraction";
  let universe = Cat.Demo.universe () in
  let opens, shorts = Faults.Universe.count universe in
  Printf.printf "%-34s %8s %8s\n" "" "ours" "paper";
  Printf.printf "%-34s %8d %8d\n" "schematic opens" opens 79;
  Printf.printf "%-34s %8d %8d\n" "schematic shorts" shorts 73;
  Printf.printf "%-34s %8d %8d\n" "schematic total" (opens + shorts) 152;
  let g = Lazy.force Helpers.glrfm in
  Printf.printf "%-34s %8d %8d\n" "LVS mismatches" (List.length g.Cat.lvs) 0;
  let c = g.Cat.lift.Defects.Lift.classes in
  Printf.printf "%-34s %8d %8d\n" "LIFT bridging" c.Defects.Lift.bridging 55;
  Printf.printf "%-34s %8d %8d\n" "LIFT line opens" c.Defects.Lift.line_opens 8;
  Printf.printf "%-34s %8d %8d\n" "LIFT contact/via opens" c.Defects.Lift.contact_opens 0;
  Printf.printf "%-34s %8d %8d\n" "LIFT stuck open" c.Defects.Lift.stuck_opens 7;
  let total = Defects.Lift.total c in
  Printf.printf "%-34s %8d %8d\n" "LIFT total" total 70;
  let reduction t u = 100.0 *. (1.0 -. (float_of_int t /. float_of_int u)) in
  Printf.printf "%-34s %7.0f%% %7.0f%%\n" "reduction vs schematic"
    (reduction total (opens + shorts))
    53.0;
  Printf.printf "%-34s %8d %8s\n" "universe after fault collapsing"
    (List.length (Faults.Universe.collapse universe))
    "n/a";
  Printf.printf "\nprobability range of extracted faults: %.1e .. %.1e (paper: 1e-7 .. 1e-9)\n"
    (List.fold_left (fun m (f : Faults.Fault.t) -> Float.max m f.prob) 0.0
       g.Cat.lift.Defects.Lift.faults)
    (List.fold_left (fun m (f : Faults.Fault.t) -> Float.min m f.prob) infinity
       g.Cat.lift.Defects.Lift.faults)
