(* Section VI model experiments:

   E6 - runtime: the paper's source-model run took 43 % longer than the
   resistor-model run (4383 s vs 3068 s on their hardware); we compare
   wall-clock for the same fault list on the same machine.

   E7 - equivalence: both models are reported to yield nearly identical
   fault coverage plots. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run () =
  Helpers.banner "Sec. VI - source model vs resistor model";
  let faults = Helpers.lift_faults () in
  let circuit = Cat.Demo.schematic () in
  let config model = { Cat.Demo.config with Anafault.Simulate.model } in
  let run_source, t_source =
    wall (fun () ->
        Anafault.Simulate.run (config Faults.Inject.Source) circuit faults)
  in
  let run_resistor, t_resistor =
    wall (fun () ->
        Anafault.Simulate.run (config Faults.Inject.default_resistor) circuit faults)
  in
  Printf.printf "%-28s %12s %12s\n" "" "source" "resistor";
  Printf.printf "%-28s %11.1fs %11.1fs\n" "wall clock (serial)" t_source t_resistor;
  Printf.printf "%-28s %11.1f%% %12s\n" "source-model overhead"
    (100.0 *. ((t_source /. t_resistor) -. 1.0))
    "(paper: +43%)";
  let steps r =
    List.fold_left
      (fun acc (x : Anafault.Simulate.fault_result) ->
        acc + x.stats.Sim.Engine.accepted_steps)
      0 r.Anafault.Simulate.results
  in
  Printf.printf "%-28s %12d %12d\n" "kernel steps" (steps run_source)
    (steps run_resistor);
  Printf.printf "%-28s %11.1f%% %11.1f%%\n" "final coverage"
    (Anafault.Coverage.final_percent run_source)
    (Anafault.Coverage.final_percent run_resistor);
  (* E7: per-fault agreement between the models. *)
  let outcome (r : Anafault.Simulate.fault_result) =
    match r.outcome with
    | Anafault.Simulate.Detected _ -> `D
    | Anafault.Simulate.Undetected -> `U
    | Anafault.Simulate.Sim_failed _ -> `F
  in
  let disagreements =
    List.fold_left2
      (fun acc a b -> if outcome a <> outcome b then acc + 1 else acc)
      0 run_source.Anafault.Simulate.results run_resistor.Anafault.Simulate.results
  in
  Printf.printf "%-28s %12d %12s\n" "per-fault disagreements" disagreements
    "(paper: ~0)";
  let curve r = Anafault.Coverage.curve r ~points:50 in
  let max_div =
    List.fold_left2
      (fun acc (_, a) (_, b) -> Float.max acc (Float.abs (a -. b)))
      0.0 (curve run_source) (curve run_resistor)
  in
  Printf.printf "%-28s %11.1f%% %12s\n" "max coverage divergence" max_div
    "(paper: ~0)"
