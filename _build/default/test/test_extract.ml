(* Tests for layout extraction: connectivity, MOS recognition, netlist
   generation and LVS comparison. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tech = Layout.Tech.default

let pt = Geom.Point.make

(* A CMOS inverter: NMOS below, PMOS above, poly gates tied, drains tied
   by metal1, supply rails. *)
let inverter_mask () =
  let b = Layout.Builder.create tech in
  let mn = Layout.Builder.mos b ~name:"MN" ~kind:`N ~at:(pt 0 0) ~w:4000 ~l:1000 () in
  let mp = Layout.Builder.mos b ~name:"MP" ~kind:`P ~at:(pt 0 20000) ~w:8000 ~l:1000 () in
  (* Gates: poly wire joining the two gate stubs, with an input contact. *)
  Layout.Builder.wire b Layout.Layer.Poly ~width:1000
    [ mn.Layout.Builder.gate; pt mn.Layout.Builder.gate.Geom.Point.x 14000 ];
  Layout.Builder.wire b Layout.Layer.Poly ~width:1000
    [ pt mp.Layout.Builder.gate.Geom.Point.x 14000; mp.Layout.Builder.gate ];
  Layout.Builder.wire b Layout.Layer.Poly ~width:1000
    [ pt mn.Layout.Builder.gate.Geom.Point.x 14000; pt (-2000) 14000 ];
  Layout.Builder.contact b ~to_:Layout.Layer.Poly (pt (-2000) 14000);
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ pt (-2000) 14000; pt (-8000) 14000 ];
  (* Output: drains joined on metal1. *)
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn.Layout.Builder.drain; mp.Layout.Builder.drain ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn.Layout.Builder.drain; pt 25000 2000 ];
  (* Rails. *)
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn.Layout.Builder.source; pt mn.Layout.Builder.source.Geom.Point.x (-8000) ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mp.Layout.Builder.source; pt mp.Layout.Builder.source.Geom.Point.x 36000 ];
  Layout.Builder.label b Layout.Layer.Metal1 (pt mn.Layout.Builder.source.Geom.Point.x (-8000)) "0";
  Layout.Builder.label b Layout.Layer.Metal1 (pt mp.Layout.Builder.source.Geom.Point.x 36000) "1";
  Layout.Builder.label b Layout.Layer.Metal1 (pt (-8000) 14000) "in";
  Layout.Builder.label b Layout.Layer.Metal1 (pt 25000 2000) "out";
  Layout.Builder.finish b

let golden_inverter =
  Netlist.Circuit.of_devices "inverter"
    [
      Netlist.Device.M
        { name = "MN"; d = "out"; g = "in"; s = "0"; b = "0";
          model = Netlist.Device.default_nmos; w = 4e-6; l = 1e-6 };
      Netlist.Device.M
        { name = "MP"; d = "out"; g = "in"; s = "1"; b = "1";
          model = Netlist.Device.default_pmos; w = 8e-6; l = 1e-6 };
    ]

let extraction_tests =
  [
    Alcotest.test_case "inverter: two transistors recognised" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        check_int "mosfets" 2 (List.length ext.Extract.Extraction.channels);
        check_int "devices" 2 (Netlist.Circuit.device_count ext.Extract.Extraction.circuit));
    Alcotest.test_case "inverter: nets named from labels" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let names = Array.to_list ext.Extract.Extraction.net_names in
        List.iter
          (fun n -> check_bool ("net " ^ n) true (List.mem n names))
          [ "0"; "1"; "in"; "out" ]);
    Alcotest.test_case "inverter: connections correct" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        match Netlist.Circuit.find ext.Extract.Extraction.circuit "MN" with
        | Some (Netlist.Device.M { g; d; s; _ }) ->
          check_string "gate" "in" g;
          check_bool "d/s" true
            (List.sort compare [ d; s ] = [ "0"; "out" ])
        | _ -> Alcotest.fail "MN missing");
    Alcotest.test_case "inverter: W/L from geometry" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let ch =
          List.find
            (fun (c : Extract.Extraction.channel) -> c.device = "MN")
            ext.Extract.Extraction.channels
        in
        check_int "W" 4000 ch.Extract.Extraction.w_nm;
        check_int "L" 1000 ch.Extract.Extraction.l_nm);
    Alcotest.test_case "inverter: device kinds" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let kind name =
          let ch =
            List.find
              (fun (c : Extract.Extraction.channel) -> c.device = name)
              ext.Extract.Extraction.channels
          in
          ch.Extract.Extraction.kind
        in
        check_bool "MN is N" true (kind "MN" = `N);
        check_bool "MP is P" true (kind "MP" = `P));
    Alcotest.test_case "inverter: LVS clean vs golden" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let mismatches =
          Extract.Compare.run ~golden:golden_inverter
            ~extracted:ext.Extract.Extraction.circuit ()
        in
        Alcotest.(check (list string))
          "clean" []
          (List.map (Format.asprintf "%a" Extract.Compare.pp_mismatch) mismatches));
    Alcotest.test_case "LVS catches a miswired gate" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let bad =
          Netlist.Circuit.replace golden_inverter
            (Netlist.Device.M
               { name = "MN"; d = "out"; g = "out"; s = "0"; b = "0";
                 model = Netlist.Device.default_nmos; w = 4e-6; l = 1e-6 })
        in
        check_bool "mismatch found" true
          (Extract.Compare.run ~golden:bad ~extracted:ext.Extract.Extraction.circuit ()
           <> []));
    Alcotest.test_case "LVS catches a missing device" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        let bigger =
          Netlist.Circuit.add golden_inverter
            (Netlist.Device.R { name = "RX"; n1 = "a"; n2 = "b"; value = 1.0 })
        in
        check_bool "missing reported" true
          (List.exists
             (fun m -> m = Extract.Compare.Missing_device "RX")
             (Extract.Compare.run ~golden:bigger ~extracted:ext.Extract.Extraction.circuit ())));
    Alcotest.test_case "terminals anchored on conductors" `Quick (fun () ->
        let ext = Extract.Extractor.extract (inverter_mask ()) in
        check_int "3 per mosfet" 6 (List.length ext.Extract.Extraction.terminals);
        List.iter
          (fun (t : Extract.Extraction.terminal) ->
            check_bool "conductor in range" true
              (t.conductor >= 0 && t.conductor < Array.length ext.Extract.Extraction.conductors))
          ext.Extract.Extraction.terminals);
    Alcotest.test_case "unlabeled layout synthesises names" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        ignore (Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(pt 0 0) ~w:4000 ~l:1000 ());
        let ext = Extract.Extractor.extract (Layout.Builder.finish b) in
        check_bool "nets > 0" true (Extract.Extraction.net_count ext > 0));
    Alcotest.test_case "label over empty space errors" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        ignore (Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(pt 0 0) ~w:4000 ~l:1000 ());
        Layout.Builder.label b Layout.Layer.Metal2 (pt 99999 99999) "ghost";
        match Extract.Extractor.extract (Layout.Builder.finish b) with
        | exception Extract.Extractor.Extract_error _ -> ()
        | _ -> Alcotest.fail "expected Extract_error");
    Alcotest.test_case "plate capacitor recognised" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        let plate = Geom.Rect.make 0 0 20000 20000 in
        Layout.Builder.rect b Layout.Layer.Poly plate;
        Layout.Builder.rect b Layout.Layer.Metal2 plate;
        (match Layout.Builder.finish b with
        | m ->
          let m = Layout.Mask.add_hint m "C1" plate in
          let ext = Extract.Extractor.extract m in
          (match Netlist.Circuit.find ext.Extract.Extraction.circuit "C1" with
          | Some (Netlist.Device.C { value; _ }) ->
            Alcotest.(check (float 1e-18))
              "value" (4e8 *. Extract.Extractor.default_options.cap_per_nm2) value
          | _ -> Alcotest.fail "C1 missing")));
    Alcotest.test_case "series transistors share a diffusion piece" `Quick (fun () ->
        (* Two gates crossing one diffusion strip: 3 pieces, middle shared. *)
        let b = Layout.Builder.create tech in
        let strip = Geom.Rect.make 0 0 30000 4000 in
        Layout.Builder.rect b Layout.Layer.Ndiff strip;
        Layout.Builder.wire b Layout.Layer.Poly ~width:1000 [ pt 10000 (-2000); pt 10000 6000 ];
        Layout.Builder.wire b Layout.Layer.Poly ~width:1000 [ pt 20000 (-2000); pt 20000 6000 ];
        let ext = Extract.Extractor.extract (Layout.Builder.finish b) in
        check_int "two mosfets" 2 (List.length ext.Extract.Extraction.channels);
        match ext.Extract.Extraction.channels with
        | [ c1; c2 ] ->
          check_bool "share a piece" true
            (c1.Extract.Extraction.drain = c2.Extract.Extraction.source
            || c1.Extract.Extraction.source = c2.Extract.Extraction.drain
            || c1.Extract.Extraction.drain = c2.Extract.Extraction.drain
            || c1.Extract.Extraction.source = c2.Extract.Extraction.source)
        | _ -> Alcotest.fail "expected 2 channels");
  ]

(* Property: a random row of disjoint transistors extracts to exactly
   that many devices with consistent W/L and three terminals each. *)
let extraction_qcheck =
  let open QCheck in
  let spec =
    Gen.(
      list_size (int_range 1 6)
        (triple (oneofl [ `N; `P ]) (int_range 2000 20000) (int_range 1000 4000)))
  in
  let print_spec l =
    String.concat ";"
      (List.map (fun (k, w, l') ->
           Printf.sprintf "%s/%d/%d" (match k with `N -> "N" | `P -> "P") w l') l)
  in
  [
    Test.make ~name:"random transistor rows extract faithfully" ~count:60
      (make ~print:print_spec spec)
      (fun devices ->
        let b = Layout.Builder.create tech in
        let x = ref 0 in
        List.iteri
          (fun i (kind, w, l) ->
            ignore
              (Layout.Builder.mos b
                 ~name:(Printf.sprintf "M%d" (i + 1))
                 ~kind ~at:(pt !x 0) ~w ~l ());
            x := !x + l + 40000)
          devices;
        let ext = Extract.Extractor.extract (Layout.Builder.finish b) in
        List.length ext.Extract.Extraction.channels = List.length devices
        && List.for_all2
             (fun (kind, w, l) (c : Extract.Extraction.channel) ->
               c.kind = kind && c.w_nm = w && c.l_nm = l)
             devices
             (List.sort
                (fun (a : Extract.Extraction.channel) b ->
                  compare a.device b.device)
                ext.Extract.Extraction.channels)
        && List.length ext.Extract.Extraction.terminals = 3 * List.length devices);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [ ("extract", extraction_tests); ("extract.properties", extraction_qcheck) ]
