(* Tests for LIFT: fault-site enumeration and probability ranking.  The
   small fixtures keep each geometric situation legible. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tech = Layout.Tech.default

let pt = Geom.Point.make

(* Two parallel metal1 wires on different nets, 2.5 um apart. *)
let two_wires () =
  let b = Layout.Builder.create tech in
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 0; pt 50000 0 ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 4500; pt 50000 4500 ];
  Layout.Builder.label b Layout.Layer.Metal1 (pt 0 0) "a";
  Layout.Builder.label b Layout.Layer.Metal1 (pt 0 4500) "b";
  Extract.Extractor.extract (Layout.Builder.finish b)

(* A wire chain: terminal-less, but with two transistors hanging off it so
   opens have observable terminals. *)
let chain () =
  let b = Layout.Builder.create tech in
  let m1 = Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(pt 0 0) ~w:4000 ~l:1000 () in
  let m2 = Layout.Builder.mos b ~name:"M2" ~kind:`N ~at:(pt 60000 0) ~w:4000 ~l:1000 () in
  (* One long metal1 wire joins M1's drain to M2's source. *)
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ m1.Layout.Builder.drain; pt 30000 2000; m2.Layout.Builder.source ];
  Layout.Builder.label b Layout.Layer.Metal1 (pt 30000 2000) "mid";
  Layout.Builder.finish b |> Extract.Extractor.extract

let sites_tests =
  [
    Alcotest.test_case "parallel wires yield one bridge site" `Quick (fun () ->
        let ext = two_wires () in
        let sites = Defects.Sites.bridges ext in
        check_int "one pair" 1 (List.length sites);
        match sites with
        | [ s ] ->
          check_bool "metal1" true
            (Layout.Layer.equal s.Defects.Sites.bridge_layer Layout.Layer.Metal1);
          check_bool "positive CA" true (s.Defects.Sites.bridge_ca > 0.0)
        | _ -> assert false);
    Alcotest.test_case "distant wires yield no bridge" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 0; pt 50000 0 ];
        Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 50000; pt 50000 50000 ];
        let ext = Extract.Extractor.extract (Layout.Builder.finish b) in
        check_int "none" 0 (List.length (Defects.Sites.bridges ext)));
    Alcotest.test_case "closer spacing has larger bridge CA" `Quick (fun () ->
        let at_spacing s =
          let b = Layout.Builder.create tech in
          Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 0 0; pt 50000 0 ];
          Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
            [ pt 0 (2000 + s); pt 50000 (2000 + s) ];
          let ext = Extract.Extractor.extract (Layout.Builder.finish b) in
          match Defects.Sites.bridges ext with
          | [ site ] -> site.Defects.Sites.bridge_ca
          | _ -> Alcotest.fail "expected one site"
        in
        check_bool "monotone" true (at_spacing 2000 > at_spacing 4000));
    Alcotest.test_case "wire open splits the chain" `Quick (fun () ->
        let ext = chain () in
        let sites = Defects.Sites.opens ext in
        check_bool "has m1 opens" true
          (List.exists
             (fun (s : Defects.Sites.open_site) ->
               Layout.Layer.equal s.open_layer Layout.Layer.Metal1
               && s.moved <> [])
             sites));
    Alcotest.test_case "single-cut contact open splits, double survives" `Quick (fun () ->
        (* Two transistors joined through their contacts: losing a single
           cut separates the terminals; a redundant pair survives. *)
        let with_cuts cuts =
          let b = Layout.Builder.create tech in
          let m1 =
            Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(pt 0 0) ~w:4000 ~l:1000
              ~contact_cuts:cuts ()
          in
          let m2 =
            Layout.Builder.mos b ~name:"M2" ~kind:`N ~at:(pt 60000 0) ~w:4000 ~l:1000
              ~contact_cuts:cuts ()
          in
          Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
            [ m1.Layout.Builder.drain; m2.Layout.Builder.source ];
          Defects.Sites.cut_opens (Extract.Extractor.extract (Layout.Builder.finish b))
        in
        check_bool "single splits" true (with_cuts 1 <> []);
        check_bool "double survives" true (with_cuts 2 = []));
    Alcotest.test_case "stuck sites: one per transistor" `Quick (fun () ->
        let ext = chain () in
        check_int "two" 2 (List.length (Defects.Sites.stuck ext)));
    Alcotest.test_case "uniform pdf also yields positive CA" `Quick (fun () ->
        let ext = two_wires () in
        let pdf = Geom.Critical_area.Uniform { x_min = 1000.0; x_max = 8000.0 } in
        match Defects.Sites.bridges ~pdf ext with
        | [ s ] -> check_bool "positive" true (s.Defects.Sites.bridge_ca > 0.0)
        | _ -> Alcotest.fail "expected one site");
  ]

let vco_ext =
  lazy
    (Extract.Extractor.extract ~options:Cat.Demo.extractor_options (Cat.Demo.mask ()))

let lift_tests =
  [
    Alcotest.test_case "lift on the VCO reproduces the paper's shape" `Slow (fun () ->
        let r = Defects.Lift.run (Lazy.force vco_ext) in
        let c = r.Defects.Lift.classes in
        let universe = List.length (Cat.Demo.universe ()) in
        let total = Defects.Lift.total c in
        (* The paper: 70 realistic faults vs 152 schematic faults (54 %
           reduction), bridges dominant.  Shape, not exact numbers. *)
        check_bool "reduction vs universe" true (total < universe);
        check_bool "at least a third fewer" true
          (float_of_int total < 0.67 *. float_of_int universe);
        check_bool "bridges dominate" true
          (c.Defects.Lift.bridging > c.Defects.Lift.line_opens);
        check_bool "some stuck opens" true (c.Defects.Lift.stuck_opens > 0));
    Alcotest.test_case "probabilities in the paper's range" `Slow (fun () ->
        let r = Defects.Lift.run (Lazy.force vco_ext) in
        List.iter
          (fun (f : Faults.Fault.t) ->
            check_bool
              (Printf.sprintf "%s prob %g sane" f.id f.prob)
              true
              (f.prob > 1e-9 && f.prob < 1e-4))
          r.Defects.Lift.faults);
    Alcotest.test_case "ranked is sorted by probability" `Slow (fun () ->
        let r = Defects.Lift.run (Lazy.force vco_ext) in
        let probs = List.map (fun (f : Faults.Fault.t) -> f.prob) (Defects.Lift.ranked r) in
        let rec sorted = function
          | a :: (b :: _ as rest) -> a >= b && sorted rest
          | [ _ ] | [] -> true
        in
        check_bool "sorted" true (sorted probs));
    Alcotest.test_case "the paper's 5-6 diffusion bridge is in the list" `Slow (fun () ->
        (* Fig. 4's fault #6 is an n-diffusion drain-source short between
           nodes 5 and 6; our layout produces the same site. *)
        let r = Defects.Lift.run (Lazy.force vco_ext) in
        check_bool "found" true
          (List.exists
             (fun (f : Faults.Fault.t) ->
               match f.kind with
               | Faults.Fault.Bridge { net_a; net_b } ->
                 List.sort compare [ net_a; net_b ] = [ "5"; "6" ]
                 && f.mechanism = "ndiff_short"
               | Faults.Fault.Break _ | Faults.Fault.Stuck_open _ -> false)
             r.Defects.Lift.faults));
    Alcotest.test_case "merging sums probabilities" `Slow (fun () ->
        let ext = Lazy.force vco_ext in
        let merged = Defects.Lift.run ext in
        let raw =
          Defects.Lift.run
            ~options:{ Defects.Lift.default_options with merge_equivalent = false }
            ext
        in
        check_bool "fewer after merge" true
          (List.length merged.Defects.Lift.faults <= List.length raw.Defects.Lift.faults));
    Alcotest.test_case "higher threshold keeps fewer faults" `Slow (fun () ->
        let ext = Lazy.force vco_ext in
        let n p =
          Defects.Lift.total
            (Defects.Lift.run ~options:{ Defects.Lift.default_options with p_min = p } ext)
              .Defects.Lift.classes
        in
        check_bool "monotone" true (n 1e-7 <= n 1e-8));
    Alcotest.test_case "classes render" `Quick (fun () ->
        let c =
          { Defects.Lift.bridging = 5; line_opens = 2; contact_opens = 1; stuck_opens = 1 }
        in
        check_int "total" 9 (Defects.Lift.total c);
        check_bool "renders" true
          (String.length (Format.asprintf "%a" Defects.Lift.pp_classes c) > 0));
  ]

let suites = [ ("defects.sites", sites_tests); ("defects.lift", lift_tests) ]
