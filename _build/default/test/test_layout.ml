(* Tests for the layout database, builder, CIF I/O and DRC. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tech = Layout.Tech.default

let tech_tests =
  [
    Alcotest.test_case "table1 matches the paper" `Quick (fun () ->
        let t1 = Layout.Tech.table1 tech in
        check_int "rows" 11 (List.length t1);
        let density sym =
          let _, _, _, d = List.find (fun (_, _, s, _) -> s = sym) t1 in
          d
        in
        Alcotest.(check (float 0.0)) "ad" 0.01 (density "ad");
        Alcotest.(check (float 0.0)) "bd" 1.00 (density "bd");
        Alcotest.(check (float 0.0)) "ap" 0.25 (density "ap");
        Alcotest.(check (float 0.0)) "bp" 1.25 (density "bp");
        Alcotest.(check (float 0.0)) "am1" 0.01 (density "am1");
        Alcotest.(check (float 0.0)) "bm1" 1.00 (density "bm1");
        Alcotest.(check (float 0.0)) "am2" 0.02 (density "am2");
        Alcotest.(check (float 0.0)) "bm2" 1.50 (density "bm2");
        Alcotest.(check (float 0.0)) "acd" 0.66 (density "acd");
        Alcotest.(check (float 0.0)) "acp" 0.67 (density "acp");
        Alcotest.(check (float 0.0)) "acv" 0.80 (density "acv"));
    Alcotest.test_case "metal2 shorts dominate" `Quick (fun () ->
        let d m = tech.Layout.Tech.rel_density m in
        check_bool "bm2 largest" true
          (d (Layout.Tech.Short_on Layout.Layer.Metal2)
          >= d (Layout.Tech.Short_on Layout.Layer.Metal1)));
    Alcotest.test_case "layer string round trip" `Quick (fun () ->
        List.iter
          (fun l ->
            check_bool "rt" true
              (Layout.Layer.equal l (Layout.Layer.of_string (Layout.Layer.to_string l))))
          Layout.Layer.all);
  ]

let builder_tests =
  [
    Alcotest.test_case "wire emits one rect per segment" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
          [ Geom.Point.make 0 0; Geom.Point.make 10000 0; Geom.Point.make 10000 8000 ];
        let m = Layout.Builder.finish b in
        check_int "rects" 2 (List.length (Layout.Mask.on m Layout.Layer.Metal1)));
    Alcotest.test_case "diagonal wire rejected" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        match
          Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
            [ Geom.Point.make 0 0; Geom.Point.make 5 7 ]
        with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "contact emits cut and two pads" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        Layout.Builder.contact b ~to_:Layout.Layer.Poly (Geom.Point.make 0 0);
        let m = Layout.Builder.finish b in
        check_int "cut" 1 (List.length (Layout.Mask.on m Layout.Layer.Contact));
        check_int "m1 pad" 1 (List.length (Layout.Mask.on m Layout.Layer.Metal1));
        check_int "poly pad" 1 (List.length (Layout.Mask.on m Layout.Layer.Poly)));
    Alcotest.test_case "contact to metal rejected" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        match Layout.Builder.contact b ~to_:Layout.Layer.Metal2 (Geom.Point.make 0 0) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "nmos registers hint and ports" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        let p =
          Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(Geom.Point.make 0 0) ~w:4000
            ~l:1000 ()
        in
        let m = Layout.Builder.finish b in
        check_int "hints" 1 (List.length m.Layout.Mask.hints);
        check_bool "ports ordered" true (p.Layout.Builder.source.Geom.Point.x < p.Layout.Builder.drain.Geom.Point.x);
        check_bool "hinted" true
          (Layout.Mask.hint_for m p.Layout.Builder.channel = Some "M1"));
    Alcotest.test_case "pmos adds nwell" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        ignore
          (Layout.Builder.mos b ~name:"M2" ~kind:`P ~at:(Geom.Point.make 0 0) ~w:4000
             ~l:1000 ());
        let m = Layout.Builder.finish b in
        check_int "nwell" 1 (List.length (Layout.Mask.on m Layout.Layer.Nwell)));
    Alcotest.test_case "transistor layout is DRC clean" `Quick (fun () ->
        let b = Layout.Builder.create tech in
        ignore
          (Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(Geom.Point.make 0 0) ~w:4000
             ~l:1000 ());
        let violations = Layout.Drc.check (Layout.Builder.finish b) in
        Alcotest.(check (list string))
          "clean" []
          (List.map (Format.asprintf "%a" Layout.Drc.pp_violation) violations));
  ]

let drc_tests =
  let open Layout in
  [
    Alcotest.test_case "narrow wire flagged" `Quick (fun () ->
        let m =
          Mask.add_shape (Mask.empty tech) Layer.Metal1 (Geom.Rect.make 0 0 500 10000)
        in
        check_bool "flagged" true
          (List.exists (fun v -> v.Drc.kind = Drc.Width) (Drc.check m)));
    Alcotest.test_case "close unconnected wires flagged" `Quick (fun () ->
        let m =
          Mask.add_shape
            (Mask.add_shape (Mask.empty tech) Layer.Metal1 (Geom.Rect.make 0 0 2000 10000))
            Layer.Metal1
            (Geom.Rect.make 2500 0 4500 10000)
        in
        check_bool "flagged" true
          (List.exists (fun v -> v.Drc.kind = Drc.Spacing) (Drc.check m)));
    Alcotest.test_case "touching shapes not a spacing violation" `Quick (fun () ->
        let m =
          Mask.add_shape
            (Mask.add_shape (Mask.empty tech) Layer.Metal1 (Geom.Rect.make 0 0 2000 10000))
            Layer.Metal1
            (Geom.Rect.make 2000 0 4000 10000)
        in
        check_bool "clean" true
          (not (List.exists (fun v -> v.Drc.kind = Drc.Spacing) (Drc.check m))));
    Alcotest.test_case "bare cut flagged for enclosure" `Quick (fun () ->
        let m =
          Mask.add_shape (Mask.empty tech) Layer.Contact (Geom.Rect.make 0 0 1500 1500)
        in
        check_bool "flagged" true
          (List.exists (fun v -> v.Drc.kind = Drc.Enclosure) (Drc.check m)));
  ]

let cif_tests =
  let build () =
    let b = Layout.Builder.create tech in
    ignore
      (Layout.Builder.mos b ~name:"M1" ~kind:`N ~at:(Geom.Point.make 0 0) ~w:4000 ~l:1000 ());
    Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
      [ Geom.Point.make 0 0; Geom.Point.make 9000 0 ];
    Layout.Builder.label b Layout.Layer.Metal1 (Geom.Point.make 0 0) "GND";
    Layout.Builder.finish b
  in
  [
    Alcotest.test_case "round trip preserves everything" `Quick (fun () ->
        let m = build () in
        let m2 = Layout.Cif.of_string ~tech (Layout.Cif.to_string m) in
        check_int "shapes" (Layout.Mask.shape_count m) (Layout.Mask.shape_count m2);
        check_int "labels" (List.length m.Layout.Mask.labels)
          (List.length m2.Layout.Mask.labels);
        check_int "hints" (List.length m.Layout.Mask.hints)
          (List.length m2.Layout.Mask.hints);
        check_bool "same shapes" true
          (List.sort compare m.Layout.Mask.shapes = List.sort compare m2.Layout.Mask.shapes));
    Alcotest.test_case "comments and blank lines tolerated" `Quick (fun () ->
        let m =
          Layout.Cif.of_string ~tech "# header\n\nshape metal1 0 0 10 10\n\nend\n"
        in
        check_int "shapes" 1 (Layout.Mask.shape_count m));
    Alcotest.test_case "bad layer reports line" `Quick (fun () ->
        match Layout.Cif.of_string ~tech "shape bogus 0 0 1 1\n" with
        | exception Layout.Cif.Parse_error (1, _) -> ()
        | exception Layout.Cif.Parse_error (n, _) -> Alcotest.failf "wrong line %d" n
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "mask stats printable" `Quick (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let s = Format.asprintf "%a" Layout.Mask.pp_stats (build ()) in
        check_bool "mentions metal1" true (contains s "metal1"));
  ]

let suites =
  [
    ("layout.tech", tech_tests);
    ("layout.builder", builder_tests);
    ("layout.drc", drc_tests);
    ("layout.cif", cif_tests);
  ]
