test/test_anafault.ml: Alcotest Anafault Array Faults Float Format Int List Netlist Printf Sim String
