test/test_anafault.ml: Alcotest Anafault Array Faults Float Format List Netlist Printf Sim String
