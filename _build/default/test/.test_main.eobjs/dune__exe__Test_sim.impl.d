test/test_sim.ml: Alcotest Array Complex Float Gen List Netlist Printf QCheck QCheck_alcotest Sim String Test
