test/test_netlist.ml: Alcotest Circuit Device Float Gen List Netlist Option Parser Printer QCheck QCheck_alcotest Sim Test Wave
