test/test_faults.ml: Alcotest Faults List Netlist Sim String Vco
