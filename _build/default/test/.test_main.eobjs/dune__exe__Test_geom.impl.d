test/test_geom.ml: Alcotest Array Gen Geom List QCheck QCheck_alcotest Test
