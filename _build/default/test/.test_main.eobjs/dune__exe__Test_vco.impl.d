test/test_vco.ml: Alcotest Anafault Array Cat Defects Extract Format Layout List Netlist Sim String Vco
