test/test_extensions.ml: Alcotest Anafault Array Cat Complex Defects Extract Faults Float Format Fun Gen Geom Layout List Netlist Printf QCheck QCheck_alcotest Sim String Synth Test
