test/test_defects.ml: Alcotest Cat Defects Extract Faults Format Geom Layout Lazy List Printf String
