test/test_layout.ml: Alcotest Drc Format Geom Layer Layout List Mask String
