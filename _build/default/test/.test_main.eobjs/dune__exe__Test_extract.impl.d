test/test_extract.ml: Alcotest Array Extract Format Gen Geom Layout List Netlist Printf QCheck QCheck_alcotest String Test
