(* Layout-to-netlist walkthrough on a hand-built CMOS NAND2 gate: draw it
   with the builder, check design rules, extract the transistor netlist,
   verify it against the intended schematic, and list the realistic
   faults LIFT finds in the geometry.

   dune exec examples/layout_extraction.exe *)

let pt = Geom.Point.make

(* NAND2: two series NMOS to ground, two parallel PMOS to VDD. *)
let nand2_mask () =
  let b = Layout.Builder.create Layout.Tech.default in
  (* Series NMOS pair sharing a diffusion strip. *)
  let mn1 = Layout.Builder.mos b ~name:"MN1" ~kind:`N ~at:(pt 0 0) ~w:6000 ~l:1000 () in
  let mn2 =
    Layout.Builder.mos b ~name:"MN2" ~kind:`N ~at:(pt 30000 0) ~w:6000 ~l:1000 ()
  in
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn1.Layout.Builder.drain; mn2.Layout.Builder.source ];
  (* Parallel PMOS pair. *)
  let mp1 =
    Layout.Builder.mos b ~name:"MP1" ~kind:`P ~at:(pt 0 40000) ~w:12000 ~l:1000 ()
  in
  let mp2 =
    Layout.Builder.mos b ~name:"MP2" ~kind:`P ~at:(pt 30000 40000) ~w:12000 ~l:1000 ()
  in
  (* Gates: A drives MN1 and MP1, B drives MN2 and MP2. *)
  List.iter
    (fun ((m : Layout.Builder.mos_ports), name, x_contact) ->
      let g = m.Layout.Builder.gate in
      Layout.Builder.wire b Layout.Layer.Poly ~width:1000
        [ g; pt g.Geom.Point.x 30000; pt x_contact 30000 ];
      ignore name)
    [ (mn1, "a", -8000); (mp1, "a", -8000) ];
  Layout.Builder.wire b Layout.Layer.Poly ~width:1000
    [ mn2.Layout.Builder.gate; pt mn2.Layout.Builder.gate.Geom.Point.x 24000;
      pt 52000 24000 ];
  Layout.Builder.wire b Layout.Layer.Poly ~width:1000
    [ mp2.Layout.Builder.gate; pt mp2.Layout.Builder.gate.Geom.Point.x 32000;
      pt 52000 32000 ];
  Layout.Builder.contact b ~to_:Layout.Layer.Poly (pt (-8000) 30000);
  Layout.Builder.contact b ~to_:Layout.Layer.Poly (pt 52000 24000);
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000 [ pt 52000 24000; pt 52000 32000 ];
  Layout.Builder.contact b ~to_:Layout.Layer.Poly (pt 52000 32000);
  (* Output: MN2 drain + both PMOS drains; MP1's drain jogs through the
     routing gap between the rows so it never crosses MP2's supply rail. *)
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn2.Layout.Builder.drain; pt 60000 3000; pt 60000 46000;
      mp2.Layout.Builder.drain ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mp1.Layout.Builder.drain; pt mp1.Layout.Builder.drain.Geom.Point.x 37000;
      pt 60000 37000; pt 60000 46000 ];
  (* Rails. *)
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mn1.Layout.Builder.source; pt mn1.Layout.Builder.source.Geom.Point.x (-9000) ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mp1.Layout.Builder.source; pt mp1.Layout.Builder.source.Geom.Point.x 70000 ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ mp2.Layout.Builder.source; pt mp2.Layout.Builder.source.Geom.Point.x 70000 ];
  Layout.Builder.wire b Layout.Layer.Metal1 ~width:2000
    [ pt mp1.Layout.Builder.source.Geom.Point.x 70000;
      pt mp2.Layout.Builder.source.Geom.Point.x 70000 ];
  Layout.Builder.label b Layout.Layer.Metal1
    (pt mn1.Layout.Builder.source.Geom.Point.x (-9000)) "0";
  Layout.Builder.label b Layout.Layer.Metal1
    (pt mp1.Layout.Builder.source.Geom.Point.x 70000) "vdd";
  Layout.Builder.label b Layout.Layer.Metal1 (pt (-8000) 30000) "a";
  Layout.Builder.label b Layout.Layer.Metal1 (pt 52000 28000) "b";
  Layout.Builder.label b Layout.Layer.Metal1 (pt 60000 40000) "out";
  Layout.Builder.finish b

let golden =
  Netlist.Circuit.of_devices "nand2"
    [
      Netlist.Device.M
        { name = "MN1"; d = "x"; g = "a"; s = "0"; b = "0";
          model = Netlist.Device.default_nmos; w = 6e-6; l = 1e-6 };
      Netlist.Device.M
        { name = "MN2"; d = "out"; g = "b"; s = "x"; b = "0";
          model = Netlist.Device.default_nmos; w = 6e-6; l = 1e-6 };
      Netlist.Device.M
        { name = "MP1"; d = "out"; g = "a"; s = "vdd"; b = "vdd";
          model = Netlist.Device.default_pmos; w = 12e-6; l = 1e-6 };
      Netlist.Device.M
        { name = "MP2"; d = "out"; g = "b"; s = "vdd"; b = "vdd";
          model = Netlist.Device.default_pmos; w = 12e-6; l = 1e-6 };
    ]

let () =
  let mask = nand2_mask () in
  Format.printf "mask:@.%a@." Layout.Mask.pp_stats mask;
  let drc = Layout.Drc.check mask in
  Printf.printf "\nDRC: %d violations\n" (List.length drc);
  List.iter (fun v -> Format.printf "  %a@." Layout.Drc.pp_violation v) drc;
  let options = { Extract.Extractor.default_options with pmos_bulk = "vdd" } in
  let ext = Extract.Extractor.extract ~options mask in
  Format.printf "\nextracted netlist:@.%a@." Netlist.Circuit.pp
    ext.Extract.Extraction.circuit;
  (* The internal node between the series NMOS gets a synthesised name;
     LVS only needs the labelled nets to match, so rename the golden "x"
     to whatever extraction called it. *)
  let internal =
    match Netlist.Circuit.find ext.Extract.Extraction.circuit "MN1" with
    | Some (Netlist.Device.M { d; s; _ }) -> if d = "0" then s else d
    | _ -> failwith "MN1 missing"
  in
  let golden = Netlist.Circuit.rename_node golden ~from_:"x" ~to_:internal in
  let mism = Extract.Compare.run ~golden ~extracted:ext.Extract.Extraction.circuit () in
  Printf.printf "LVS mismatches: %d\n" (List.length mism);
  List.iter (fun m -> Format.printf "  %a@." Extract.Compare.pp_mismatch m) mism;
  (* What can physically go wrong in this little layout? *)
  let lift = Defects.Lift.run ext in
  Format.printf "\nLIFT: %a@." Defects.Lift.pp_classes lift.Defects.Lift.classes;
  List.iter
    (fun f -> Printf.printf "  %s\n" (Faults.Fault.to_string f))
    (Defects.Lift.ranked lift)
