examples/vco_flow.mli:
