examples/ac_dc_analysis.ml: Anafault Array Cat Faults Float Format List Netlist Printf Sim
