examples/vco_flow.ml: Anafault Cat Defects Extract Faults Format Layout List Netlist Printf
