examples/opamp_flow.ml: Anafault Cat Defects Extract Faults Format Layout List Netlist Option Printf Sim Synth
