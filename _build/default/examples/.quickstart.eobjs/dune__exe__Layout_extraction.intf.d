examples/layout_extraction.mli:
