examples/layout_extraction.ml: Defects Extract Faults Format Geom Layout List Netlist Printf
