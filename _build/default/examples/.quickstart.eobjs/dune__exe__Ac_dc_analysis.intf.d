examples/ac_dc_analysis.mli:
