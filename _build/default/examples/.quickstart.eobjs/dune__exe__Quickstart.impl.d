examples/quickstart.ml: Anafault Faults Format List Netlist Option Printf Sim String
