examples/diagnosis.ml: Anafault Cat Defects Faults List Printf Sim
