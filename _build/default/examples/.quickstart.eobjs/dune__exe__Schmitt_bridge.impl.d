examples/schmitt_bridge.ml: Anafault Array Cat List Netlist Printf Sim Vco
