examples/opamp_flow.mli:
