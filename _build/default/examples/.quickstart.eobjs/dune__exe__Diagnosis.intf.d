examples/diagnosis.mli:
