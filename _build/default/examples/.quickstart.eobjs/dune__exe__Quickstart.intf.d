examples/quickstart.mli:
