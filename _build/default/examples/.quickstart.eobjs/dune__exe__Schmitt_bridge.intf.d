examples/schmitt_bridge.mli:
