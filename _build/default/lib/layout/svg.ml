(* Paint order and palette: background layers first, cuts and labels on
   top. *)
let styles =
  [ (Layer.Nwell, ("#f2e6c9", 0.5));
    (Layer.Ndiff, ("#4caf50", 0.7));
    (Layer.Pdiff, ("#ff9800", 0.7));
    (Layer.Poly, ("#d32f2f", 0.7));
    (Layer.Metal1, ("#1976d2", 0.55));
    (Layer.Metal2, ("#7b1fa2", 0.45));
    (Layer.Contact, ("#212121", 0.9));
    (Layer.Via, ("#616161", 0.9)) ]

let render ?(width = 800) (mask : Mask.t) =
  let bbox = Mask.bbox mask in
  let w_nm = max 1 (Geom.Rect.width bbox) and h_nm = max 1 (Geom.Rect.height bbox) in
  let scale = float_of_int width /. float_of_int w_nm in
  let height = int_of_float (Float.ceil (scale *. float_of_int h_nm)) in
  let x nm = scale *. float_of_int (nm - bbox.Geom.Rect.x0) in
  (* SVG's y axis points down; layouts' points up. *)
  let y nm = scale *. float_of_int (bbox.Geom.Rect.y1 - nm) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
       width height width height);
  List.iter
    (fun (layer, (color, opacity)) ->
      let shapes = Mask.on mask layer in
      if shapes <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "<g fill=\"%s\" fill-opacity=\"%.2f\">\n" color opacity);
        List.iter
          (fun (r : Geom.Rect.t) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\"/>\n"
                 (x r.Geom.Rect.x0) (y r.Geom.Rect.y1)
                 (scale *. float_of_int (Geom.Rect.width r))
                 (scale *. float_of_int (Geom.Rect.height r))))
          shapes;
        Buffer.add_string buf "</g>\n"
      end)
    styles;
  List.iter
    (fun (l : Mask.label) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" font-family=\"monospace\" \
            fill=\"black\">%s</text>\n"
           (x l.at.Geom.Point.x) (y l.at.Geom.Point.y) l.net))
    mask.Mask.labels;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width mask path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (render ?width mask))
