lib/layout/layer.ml: Format Stdlib String
