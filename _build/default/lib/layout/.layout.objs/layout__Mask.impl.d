lib/layout/mask.ml: Format Geom Layer List Tech
