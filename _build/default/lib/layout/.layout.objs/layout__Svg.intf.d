lib/layout/svg.mli: Mask
