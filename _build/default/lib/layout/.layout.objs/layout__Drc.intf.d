lib/layout/drc.mli: Format Geom Layer Mask
