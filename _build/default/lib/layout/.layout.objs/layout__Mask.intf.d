lib/layout/mask.mli: Format Geom Layer Tech
