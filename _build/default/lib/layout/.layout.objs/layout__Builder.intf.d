lib/layout/builder.mli: Geom Layer Mask Tech
