lib/layout/tech.mli: Format Geom Layer
