lib/layout/cif.ml: Buffer Fun Geom Layer List Mask Printf String Tech
