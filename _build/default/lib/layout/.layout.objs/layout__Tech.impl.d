lib/layout/tech.ml: Format Geom Layer
