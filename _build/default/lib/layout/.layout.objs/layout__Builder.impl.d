lib/layout/builder.ml: Format Geom Layer List Mask Tech
