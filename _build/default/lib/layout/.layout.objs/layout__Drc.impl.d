lib/layout/drc.ml: Array Format Geom Layer List Mask Printf Tech
