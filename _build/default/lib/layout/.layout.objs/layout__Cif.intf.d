lib/layout/cif.mli: Mask Tech
