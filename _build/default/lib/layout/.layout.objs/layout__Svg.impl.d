lib/layout/svg.ml: Buffer Float Fun Geom Layer List Mask Printf
