(** Geometric design-rule checking.

    The paper notes that design rules are set so the target process yields
    acceptably; LIFT's defect statistics are calibrated against those
    rules, so a layout fed to LIFT should be DRC-clean.  This checker
    covers the rules the demo process needs: minimum width, minimum
    same-layer spacing between unconnected shapes, and cut enclosure. *)

type kind =
  | Width  (** shape narrower than the layer's minimum width *)
  | Spacing  (** two disconnected shapes closer than minimum spacing *)
  | Enclosure  (** cut not enclosed by both connected layers *)

type violation = {
  kind : kind;
  layer : Layer.t;
  where : Geom.Rect.t;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** [check mask] lists all violations (empty means DRC-clean).

    Spacing is only flagged between shapes in different connected
    components of the layer (abutting or overlapping shapes of one wire
    are fine at any spacing). *)
val check : Mask.t -> violation list
