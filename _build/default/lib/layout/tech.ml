type mechanism =
  | Short_on of Layer.t
  | Open_on of Layer.t
  | Contact_open_to of Layer.t
  | Via_open

let mechanism_to_string = function
  | Short_on l -> Layer.to_string l ^ "_short"
  | Open_on l -> Layer.to_string l ^ "_open"
  | Contact_open_to l -> "contact_" ^ Layer.to_string l ^ "_open"
  | Via_open -> "via_open"

let pp_mechanism ppf m = Format.pp_print_string ppf (mechanism_to_string m)

type rules = { min_width : int; min_space : int }

type t = {
  name : string;
  lambda : int;
  rules : Layer.t -> rules;
  cut_side : int;
  cut_enclosure : int;
  defect_x_min : int;
  defect_x_max : int;
  d0_per_cm2 : float;
  rel_density : mechanism -> float;
}

(* Tab. 1 of the paper: relative defect densities, normalised to the
   metal-1 short density.  Diffusion rows apply to both ndiff and pdiff. *)
let default_rel_density = function
  | Open_on (Layer.Ndiff | Layer.Pdiff) -> 0.01
  | Short_on (Layer.Ndiff | Layer.Pdiff) -> 1.00
  | Open_on Layer.Poly -> 0.25
  | Short_on Layer.Poly -> 1.25
  | Open_on Layer.Metal1 -> 0.01
  | Short_on Layer.Metal1 -> 1.00
  | Open_on Layer.Metal2 -> 0.02
  | Short_on Layer.Metal2 -> 1.50
  | Contact_open_to (Layer.Ndiff | Layer.Pdiff) -> 0.66
  | Contact_open_to Layer.Poly -> 0.67
  | Via_open -> 0.80
  | Open_on (Layer.Contact | Layer.Via | Layer.Nwell)
  | Short_on (Layer.Contact | Layer.Via | Layer.Nwell)
  | Contact_open_to (Layer.Metal1 | Layer.Metal2 | Layer.Contact | Layer.Via | Layer.Nwell)
    -> 0.0

let default_rules = function
  | Layer.Ndiff | Layer.Pdiff -> { min_width = 2000; min_space = 3000 }
  | Layer.Poly -> { min_width = 1000; min_space = 2000 }
  | Layer.Metal1 -> { min_width = 2000; min_space = 2000 }
  | Layer.Metal2 -> { min_width = 2500; min_space = 2500 }
  | Layer.Contact | Layer.Via -> { min_width = 1500; min_space = 2000 }
  | Layer.Nwell -> { min_width = 6000; min_space = 6000 }

let default =
  {
    name = "demo-cmos-1u";
    lambda = 500;
    rules = default_rules;
    cut_side = 1500;
    cut_enclosure = 500;
    defect_x_min = 1000;
    defect_x_max = 8000;
    d0_per_cm2 = 1.0;
    rel_density = default_rel_density;
  }

let table1 t =
  [
    ("Diffusion", "open", "ad", t.rel_density (Open_on Layer.Ndiff));
    ("Diffusion", "short", "bd", t.rel_density (Short_on Layer.Ndiff));
    ("Polysilicon", "open", "ap", t.rel_density (Open_on Layer.Poly));
    ("Polysilicon", "short", "bp", t.rel_density (Short_on Layer.Poly));
    ("Metal_1", "open", "am1", t.rel_density (Open_on Layer.Metal1));
    ("Metal_1", "short", "bm1", t.rel_density (Short_on Layer.Metal1));
    ("Metal_2", "open", "am2", t.rel_density (Open_on Layer.Metal2));
    ("Metal_2", "short", "bm2", t.rel_density (Short_on Layer.Metal2));
    ("Al/diff.contacts", "open", "acd", t.rel_density (Contact_open_to Layer.Ndiff));
    ("m1/poly contacts", "open", "acp", t.rel_density (Contact_open_to Layer.Poly));
    ("vias", "open", "acv", t.rel_density Via_open);
  ]

let size_pdf t = Geom.Critical_area.Cubic { x_min = float_of_int t.defect_x_min }
