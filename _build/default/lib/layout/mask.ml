type shape = { layer : Layer.t; rect : Geom.Rect.t }

type label = { layer : Layer.t; at : Geom.Point.t; net : string }

type device_hint = { name : string; channel : Geom.Rect.t }

type t = {
  tech : Tech.t;
  shapes : shape list;
  labels : label list;
  hints : device_hint list;
}

let empty tech = { tech; shapes = []; labels = []; hints = [] }

let add_shape t layer rect = { t with shapes = { layer; rect } :: t.shapes }

let add_label t layer at net = { t with labels = { layer; at; net } :: t.labels }

let add_hint t name channel = { t with hints = { name; channel } :: t.hints }

let on t layer =
  List.filter_map
    (fun (s : shape) -> if Layer.equal s.layer layer then Some s.rect else None)
    t.shapes

let labels_on t layer = List.filter (fun l -> Layer.equal l.layer layer) t.labels

let shape_count t = List.length t.shapes

let bbox t =
  Geom.Rect_set.bounding_box (List.map (fun s -> s.rect) t.shapes)

let hint_for t rect =
  List.find_map
    (fun h -> if Geom.Rect.touches h.channel rect then Some h.name else None)
    t.hints

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun layer ->
      let n = List.length (on t layer) in
      if n > 0 then Format.fprintf ppf "%-8s %4d shapes@," (Layer.to_string layer) n)
    Layer.all;
  Format.fprintf ppf "labels   %4d@,hints    %4d@]" (List.length t.labels)
    (List.length t.hints)
