(** Imperative layout construction DSL.

    The builder places technology-correct primitives — transistors, wires,
    contacts, vias — so that hand-written cell generators (like the VCO
    demonstrator) stay short and pass DRC by construction. *)

type t

(** Contact points of a placed MOS transistor: where metal1 (source/drain)
    or poly (gate) routing may attach. *)
type mos_ports = {
  source : Geom.Point.t;
  drain : Geom.Point.t;
  gate : Geom.Point.t;  (** top end of the poly gate strip *)
  channel : Geom.Rect.t;
}

val create : Tech.t -> t

val tech : t -> Tech.t

(** [rect b layer r] draws a raw rectangle. *)
val rect : t -> Layer.t -> Geom.Rect.t -> unit

(** [label b layer p net] names the net of the shape under [p]. *)
val label : t -> Layer.t -> Geom.Point.t -> string -> unit

(** [wire b layer ~width pts] draws a Manhattan path through [pts]; each
    consecutive pair must be axis-aligned.  Segment ends are extended by
    [width/2] so corners merge.  Raises [Invalid_argument] on diagonal
    segments or fewer than 2 points. *)
val wire : t -> Layer.t -> width:int -> Geom.Point.t list -> unit

(** [contact b ~to_ p] places a metal1-to-[to_] contact centred at [p]
    ([to_] must be [Poly], [Ndiff] or [Pdiff]); emits the cut(s) plus
    enclosing pads on both layers.  [cuts] > 1 places that many redundant
    cuts side by side (standard yield practice: one missing cut no longer
    opens the connection). *)
val contact : t -> ?cuts:int -> to_:Layer.t -> Geom.Point.t -> unit

(** [via b p] places a metal1-to-metal2 via centred at [p]; [cuts] as for
    {!contact}. *)
val via : t -> ?cuts:int -> Geom.Point.t -> unit

(** [hint b name rect] registers a device-name hint (used for capacitor
    recognition and for naming devices drawn with raw rectangles). *)
val hint : t -> string -> Geom.Rect.t -> unit

(** [mos b ~name ~kind ~at ~w ~l] places a transistor with its diffusion
    lower-left corner at [at], channel width [w] (vertical extent) and
    drawn gate length [l].  The gate strip is vertical; source is the left
    diffusion region, drain the right one.  Source/drain contacts are
    placed automatically.  PMOS devices get an n-well.  [sd_w] overrides
    the width of each source/drain region (default: just enough for one
    contact); wider regions spread the terminals for riser-based routing.
    Returns the attachment ports and registers a device hint under
    [name]. *)
val mos :
  t ->
  name:string ->
  kind:[ `N | `P ] ->
  at:Geom.Point.t ->
  w:int ->
  l:int ->
  ?sd_w:int ->
  ?contact_cuts:int ->
  unit ->
  mos_ports

val finish : t -> Mask.t
