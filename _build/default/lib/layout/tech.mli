(** Technology description: geometric design rules plus the defect
    statistics of Tab. 1 of the paper.

    The defect statistics drive LIFT's probability evaluation: each failure
    mechanism has a relative defect density (normalised to the metal-1
    short density), and the absolute metal-1 short density [d0_per_cm2]
    anchors the absolute fault probabilities (typically 1 defect/cm^2,
    after Feltham & Maly). *)

(** A likely physical failure mechanism of the process (Tab. 1 rows). *)
type mechanism =
  | Short_on of Layer.t  (** bridge between neighbouring lines of a layer *)
  | Open_on of Layer.t  (** line open on a conducting layer *)
  | Contact_open_to of Layer.t  (** missing metal1 contact to poly or diffusion *)
  | Via_open

val mechanism_to_string : mechanism -> string

val pp_mechanism : Format.formatter -> mechanism -> unit

(** Width/spacing design rules of one layer, in nanometres. *)
type rules = { min_width : int; min_space : int }

type t = {
  name : string;
  lambda : int;  (** layout grid unit, nm *)
  rules : Layer.t -> rules;
  cut_side : int;  (** contact/via cut dimension, nm *)
  cut_enclosure : int;  (** surround of cuts by connected layers, nm *)
  defect_x_min : int;  (** smallest defect diameter of the size pdf, nm *)
  defect_x_max : int;  (** search radius for bridge candidates, nm *)
  d0_per_cm2 : float;  (** absolute metal-1 short defect density *)
  rel_density : mechanism -> float;
      (** relative density per Tab. 1; 0.0 for mechanisms the process does
          not exhibit *)
}

(** The single-poly double-metal 1 um-class CMOS demo process, with the
    exact relative densities of Tab. 1. *)
val default : t

(** The Tab. 1 rows of [t], in paper order:
    (layer(s) description, failure kind, symbol, relative density). *)
val table1 : t -> (string * string * string * float) list

(** [size_pdf t] is the Ferris-Prabhu defect-size density anchored at
    [t.defect_x_min]. *)
val size_pdf : t -> Geom.Critical_area.size_pdf
