(** SVG rendering of mask databases, for documentation and debugging.

    Layers draw bottom-up (wells, diffusion, poly, cuts, metals) with
    translucent fills so overlaps stay readable; labels render as text at
    their anchor points. *)

(** [render ?width mask] is a standalone SVG document scaled so the
    layout's bounding box spans [width] pixels (default 800). *)
val render : ?width:int -> Mask.t -> string

val save : ?width:int -> Mask.t -> string -> unit
