(** A minimal CIF-like textual interchange format for mask databases.

    Grammar (one record per line, [#] starts a comment):
    {v
    tech <name>
    shape <layer> <x0> <y0> <x1> <y1>
    label <layer> <x> <y> <net>
    device <name> <x0> <y0> <x1> <y1>
    end
    v} *)

exception Parse_error of int * string
(** Line number and message. *)

val to_string : Mask.t -> string

(** [of_string ~tech s] parses a mask; shapes/labels/hints come from [s],
    process data from [tech] (the [tech] record of the file only carries
    the name). *)
val of_string : tech:Tech.t -> string -> Mask.t

val save : Mask.t -> string -> unit

val load : tech:Tech.t -> string -> Mask.t
