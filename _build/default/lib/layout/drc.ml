type kind = Width | Spacing | Enclosure

type violation = {
  kind : kind;
  layer : Layer.t;
  where : Geom.Rect.t;
  detail : string;
}

let kind_to_string = function
  | Width -> "width"
  | Spacing -> "spacing"
  | Enclosure -> "enclosure"

let pp_violation ppf v =
  Format.fprintf ppf "%s/%s at %a: %s" (Layer.to_string v.layer)
    (kind_to_string v.kind) Geom.Rect.pp v.where v.detail

let width_violations tech layer shapes =
  let { Tech.min_width; _ } = tech.Tech.rules layer in
  List.filter_map
    (fun r ->
      let w = min (Geom.Rect.width r) (Geom.Rect.height r) in
      if w < min_width then
        Some
          {
            kind = Width;
            layer;
            where = r;
            detail = Printf.sprintf "width %d < %d" w min_width;
          }
      else None)
    shapes

let spacing_violations tech layer shapes =
  let { Tech.min_space; _ } = tech.Tech.rules layer in
  let arr = Array.of_list shapes in
  let comp, _ = Geom.Rect_set.components arr in
  Geom.Rect_set.close_pairs ~within:(min_space - 1) arr
  |> List.filter_map (fun (i, j, spacing, _len) ->
         if comp.(i) <> comp.(j) then
           Some
             {
               kind = Spacing;
               layer;
               where = Geom.Rect.hull arr.(i) arr.(j);
               detail = Printf.sprintf "spacing %d < %d" spacing min_space;
             }
         else None)

let enclosure_violations tech mask cut_layer targets =
  let cuts = Mask.on mask cut_layer in
  let metal1 = Mask.on mask Layer.Metal1 in
  let target_shapes = List.concat_map (Mask.on mask) targets in
  let enclosed shapes need =
    List.exists (fun s -> Geom.Rect.contains s need) shapes
  in
  List.filter_map
    (fun cut ->
      let need = Geom.Rect.expand cut tech.Tech.cut_enclosure in
      if not (enclosed metal1 need) then
        Some
          { kind = Enclosure; layer = cut_layer; where = cut; detail = "metal1 enclosure" }
      else if not (enclosed target_shapes need) then
        Some
          {
            kind = Enclosure;
            layer = cut_layer;
            where = cut;
            detail = "lower-layer enclosure";
          }
      else None)
    cuts

let check (mask : Mask.t) =
  let tech = mask.Mask.tech in
  let per_layer layer =
    if Layer.conducting layer then begin
      let shapes = Mask.on mask layer in
      width_violations tech layer shapes @ spacing_violations tech layer shapes
    end
    else []
  in
  List.concat_map per_layer Layer.all
  @ enclosure_violations tech mask Layer.Contact [ Layer.Poly; Layer.Ndiff; Layer.Pdiff ]
  @ enclosure_violations tech mask Layer.Via [ Layer.Metal2 ]
