(** The mask database: every rectangle of every layer of a flattened
    layout, plus net-name labels and device-name hints.

    Labels attach a net name to the conducting shape(s) under a point;
    device hints attach a schematic device name to a MOS channel region so
    extraction and fault reports can use the designer's names. *)

type shape = { layer : Layer.t; rect : Geom.Rect.t }

type label = { layer : Layer.t; at : Geom.Point.t; net : string }

type device_hint = { name : string; channel : Geom.Rect.t }

type t = {
  tech : Tech.t;
  shapes : shape list;
  labels : label list;
  hints : device_hint list;
}

val empty : Tech.t -> t

val add_shape : t -> Layer.t -> Geom.Rect.t -> t

val add_label : t -> Layer.t -> Geom.Point.t -> string -> t

val add_hint : t -> string -> Geom.Rect.t -> t

(** [on t layer] lists the rectangles drawn on [layer]. *)
val on : t -> Layer.t -> Geom.Rect.t list

(** [labels_on t layer] lists the labels attached to [layer]. *)
val labels_on : t -> Layer.t -> label list

val shape_count : t -> int

(** Bounding box of all shapes; raises [Invalid_argument] when empty. *)
val bbox : t -> Geom.Rect.t

(** [hint_for t rect] is the device name whose hint channel intersects
    [rect], if any. *)
val hint_for : t -> Geom.Rect.t -> string option

val pp_stats : Format.formatter -> t -> unit
