(** Mask layers of the single-poly, double-metal CMOS process used by the
    paper's VCO demonstrator. *)

type t =
  | Ndiff  (** n+ diffusion (NMOS source/drain) *)
  | Pdiff  (** p+ diffusion (PMOS source/drain) *)
  | Poly  (** polysilicon (gates and local interconnect) *)
  | Metal1
  | Metal2
  | Contact  (** cut connecting metal1 to poly or diffusion *)
  | Via  (** cut connecting metal1 to metal2 *)
  | Nwell  (** PMOS body well; not conducting for signal routing *)

val all : t list

(** Layers that carry signal nets. *)
val conducting : t -> bool

(** Cut layers that join two conducting layers vertically. *)
val is_cut : t -> bool

val to_string : t -> string

(** Inverse of {!to_string}; raises [Invalid_argument] on unknown names. *)
val of_string : string -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
