exception Parse_error of int * string

let to_string (m : Mask.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("tech " ^ m.tech.Tech.name ^ "\n");
  List.iter
    (fun (s : Mask.shape) ->
      let r = s.rect in
      Buffer.add_string buf
        (Printf.sprintf "shape %s %d %d %d %d\n" (Layer.to_string s.layer)
           r.Geom.Rect.x0 r.Geom.Rect.y0 r.Geom.Rect.x1 r.Geom.Rect.y1))
    (List.rev m.shapes);
  List.iter
    (fun (l : Mask.label) ->
      Buffer.add_string buf
        (Printf.sprintf "label %s %d %d %s\n" (Layer.to_string l.layer) l.at.Geom.Point.x
           l.at.Geom.Point.y l.net))
    (List.rev m.labels);
  List.iter
    (fun (h : Mask.device_hint) ->
      let r = h.channel in
      Buffer.add_string buf
        (Printf.sprintf "device %s %d %d %d %d\n" h.name r.Geom.Rect.x0 r.Geom.Rect.y0
           r.Geom.Rect.x1 r.Geom.Rect.y1))
    (List.rev m.hints);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string ~tech s =
  let mask = ref (Mask.empty tech) in
  let err ln msg = raise (Parse_error (ln, msg)) in
  let int ln w = try int_of_string w with Failure _ -> err ln ("not an integer: " ^ w) in
  let parse_line ln line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
    with
    | [] -> ()
    | [ "end" ] -> ()
    | [ "tech"; name ] ->
      mask := { !mask with Mask.tech = { tech with Tech.name } }
    | [ "shape"; layer; x0; y0; x1; y1 ] ->
      let layer = try Layer.of_string layer with Invalid_argument m -> err ln m in
      mask :=
        Mask.add_shape !mask layer
          (Geom.Rect.make (int ln x0) (int ln y0) (int ln x1) (int ln y1))
    | [ "label"; layer; x; y; net ] ->
      let layer = try Layer.of_string layer with Invalid_argument m -> err ln m in
      mask := Mask.add_label !mask layer (Geom.Point.make (int ln x) (int ln y)) net
    | [ "device"; name; x0; y0; x1; y1 ] ->
      mask :=
        Mask.add_hint !mask name
          (Geom.Rect.make (int ln x0) (int ln y0) (int ln x1) (int ln y1))
    | w :: _ -> err ln ("unknown record: " ^ w)
  in
  List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' s);
  (* Rebuild in file order: the accumulators above reversed each list. *)
  let m = !mask in
  {
    m with
    Mask.shapes = List.rev m.Mask.shapes;
    labels = List.rev m.Mask.labels;
    hints = List.rev m.Mask.hints;
  }

let save m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string m))

let load ~tech path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let n = in_channel_length ic in
      of_string ~tech (really_input_string ic n))
