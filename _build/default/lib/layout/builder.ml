type t = { tech : Tech.t; mutable mask : Mask.t }

type mos_ports = {
  source : Geom.Point.t;
  drain : Geom.Point.t;
  gate : Geom.Point.t;
  channel : Geom.Rect.t;
}

let create tech = { tech; mask = Mask.empty tech }

let tech b = b.tech

let rect b layer r = b.mask <- Mask.add_shape b.mask layer r

let label b layer p net = b.mask <- Mask.add_label b.mask layer p net

let wire b layer ~width pts =
  let half = width / 2 in
  let segment (p : Geom.Point.t) (q : Geom.Point.t) =
    if p.y = q.y then
      rect b layer
        (Geom.Rect.make (min p.x q.x - half) (p.y - half) (max p.x q.x + half)
           (p.y + half))
    else if p.x = q.x then
      rect b layer
        (Geom.Rect.make (p.x - half) (min p.y q.y - half) (p.x + half)
           (max p.y q.y + half))
    else
      invalid_arg
        (Format.asprintf "Builder.wire: diagonal segment %a -> %a" Geom.Point.pp p
           Geom.Point.pp q)
  in
  match pts with
  | [] | [ _ ] -> invalid_arg "Builder.wire: need at least 2 points"
  | first :: rest -> ignore (List.fold_left (fun p q -> segment p q; q) first rest)

let pad_side tech = tech.Tech.cut_side + (2 * tech.Tech.cut_enclosure)

(* Redundant cuts sit side by side along x, spaced by their own minimum
   pitch; the shared pad covers them all. *)
let cut_pitch tech = tech.Tech.cut_side + (tech.Tech.rules Layer.Contact).Tech.min_space

let cut_rects tech ~cuts (p : Geom.Point.t) =
  let pitch = cut_pitch tech in
  List.init cuts (fun i ->
      let cx = p.x + ((2 * i) - (cuts - 1)) * pitch / 2 in
      Geom.Rect.of_center ~cx ~cy:p.y ~w:tech.Tech.cut_side ~h:tech.Tech.cut_side)

let pad_rect tech ~cuts (p : Geom.Point.t) =
  let side = pad_side tech in
  let w = side + ((cuts - 1) * cut_pitch tech) in
  Geom.Rect.of_center ~cx:p.x ~cy:p.y ~w ~h:side

let contact b ?(cuts = 1) ~to_ p =
  (match to_ with
  | Layer.Poly | Layer.Ndiff | Layer.Pdiff -> ()
  | Layer.Metal1 | Layer.Metal2 | Layer.Contact | Layer.Via | Layer.Nwell ->
    invalid_arg "Builder.contact: target must be poly or diffusion");
  assert (cuts >= 1);
  List.iter (rect b Layer.Contact) (cut_rects b.tech ~cuts p);
  rect b Layer.Metal1 (pad_rect b.tech ~cuts p);
  rect b to_ (pad_rect b.tech ~cuts p)

let via b ?(cuts = 1) p =
  assert (cuts >= 1);
  List.iter (rect b Layer.Via) (cut_rects b.tech ~cuts p);
  rect b Layer.Metal1 (pad_rect b.tech ~cuts p);
  rect b Layer.Metal2 (pad_rect b.tech ~cuts p)

(* Transistor geometry (gate strip vertical, current flow horizontal):

        poly extension
        +---+
   +----|   |----+   ^
   | S  |   |  D |   | w
   +----|   |----+   v
        +---+
    sd_w  l  sd_w

   Source/drain regions are wide enough for one contact each. *)
let hint b name rect = b.mask <- Mask.add_hint b.mask name rect

let mos b ~name ~kind ~at:(at : Geom.Point.t) ~w ~l ?sd_w ?(contact_cuts = 1) () =
  let tech = b.tech in
  let diff_layer =
    match kind with
    | `N -> Layer.Ndiff
    | `P -> Layer.Pdiff
  in
  let pad_w = pad_side tech + ((contact_cuts - 1) * cut_pitch tech) in
  let sd_w =
    match sd_w with
    | Some v ->
      assert (v >= pad_w + (2 * tech.Tech.cut_enclosure));
      v
    | None -> pad_w + (2 * tech.Tech.cut_enclosure)
  in
  let poly_ext = 2 * tech.Tech.lambda in
  let x_src = at.x
  and x_gate = at.x + sd_w
  and x_drn = at.x + sd_w + l in
  let diff = Geom.Rect.make at.x at.y (x_drn + sd_w) (at.y + w) in
  rect b diff_layer diff;
  let gate_top = at.y + w + poly_ext in
  rect b Layer.Poly (Geom.Rect.make x_gate (at.y - poly_ext) x_drn gate_top);
  let mid_y = at.y + (w / 2) in
  let source = Geom.Point.make (x_src + (sd_w / 2)) mid_y in
  let drain = Geom.Point.make (x_drn + (sd_w / 2)) mid_y in
  contact b ~cuts:contact_cuts ~to_:diff_layer source;
  contact b ~cuts:contact_cuts ~to_:diff_layer drain;
  (match kind with
  | `P ->
    let well = Geom.Rect.expand diff (4 * tech.Tech.lambda) in
    rect b Layer.Nwell well
  | `N -> ());
  let channel = Geom.Rect.make x_gate at.y x_drn (at.y + w) in
  b.mask <- Mask.add_hint b.mask name channel;
  { source; drain; gate = Geom.Point.make ((x_gate + x_drn) / 2) gate_top; channel }

let finish b = b.mask
