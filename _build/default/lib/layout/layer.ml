type t = Ndiff | Pdiff | Poly | Metal1 | Metal2 | Contact | Via | Nwell

let all = [ Ndiff; Pdiff; Poly; Metal1; Metal2; Contact; Via; Nwell ]

let conducting = function
  | Ndiff | Pdiff | Poly | Metal1 | Metal2 -> true
  | Contact | Via | Nwell -> false

let is_cut = function
  | Contact | Via -> true
  | Ndiff | Pdiff | Poly | Metal1 | Metal2 | Nwell -> false

let to_string = function
  | Ndiff -> "ndiff"
  | Pdiff -> "pdiff"
  | Poly -> "poly"
  | Metal1 -> "metal1"
  | Metal2 -> "metal2"
  | Contact -> "contact"
  | Via -> "via"
  | Nwell -> "nwell"

let of_string s =
  match String.lowercase_ascii s with
  | "ndiff" -> Ndiff
  | "pdiff" -> Pdiff
  | "poly" -> Poly
  | "metal1" | "m1" -> Metal1
  | "metal2" | "m2" -> Metal2
  | "contact" -> Contact
  | "via" -> Via
  | "nwell" -> Nwell
  | other -> invalid_arg ("Layer.of_string: " ^ other)

let equal = ( = )

let compare = Stdlib.compare

let pp ppf t = Format.pp_print_string ppf (to_string t)
