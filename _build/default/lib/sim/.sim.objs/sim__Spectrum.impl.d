lib/sim/spectrum.ml: Array Complex Float Hashtbl List
