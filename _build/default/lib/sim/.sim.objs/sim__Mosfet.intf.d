lib/sim/mosfet.mli: Netlist
