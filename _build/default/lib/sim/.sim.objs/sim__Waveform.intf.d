lib/sim/waveform.mli:
