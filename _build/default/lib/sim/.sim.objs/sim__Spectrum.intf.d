lib/sim/spectrum.mli: Complex
