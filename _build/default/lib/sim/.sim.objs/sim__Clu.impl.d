lib/sim/clu.ml: Array Complex
