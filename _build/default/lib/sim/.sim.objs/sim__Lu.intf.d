lib/sim/lu.mli:
