lib/sim/mna.ml: Array Hashtbl List Netlist Option String
