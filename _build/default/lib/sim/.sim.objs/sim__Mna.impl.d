lib/sim/mna.ml: Array Hashtbl List Netlist String
