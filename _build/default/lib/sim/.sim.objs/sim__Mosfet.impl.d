lib/sim/mosfet.ml: Netlist
