lib/sim/lu.ml: Array Float
