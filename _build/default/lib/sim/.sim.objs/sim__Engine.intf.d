lib/sim/engine.mli: Netlist Spectrum Waveform
