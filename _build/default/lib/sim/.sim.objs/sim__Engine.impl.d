lib/sim/engine.ml: Array Clu Complex Float List Lu Mna Mosfet Netlist Printf Spectrum String Waveform
