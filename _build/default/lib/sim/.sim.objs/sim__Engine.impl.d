lib/sim/engine.ml: Array Clu Complex Float Fun List Lu Mna Mosfet Netlist Option Printf Spectrum String Waveform
