lib/sim/waveform.ml: Array Buffer Hashtbl List Printf
