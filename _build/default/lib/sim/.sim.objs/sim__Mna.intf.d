lib/sim/mna.mli: Netlist
