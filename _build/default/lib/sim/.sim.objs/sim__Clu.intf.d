lib/sim/clu.mli: Complex
