type eval = { ids : float; gm : float; gds : float }

(* Shichman-Hodges for an NMOS with vds >= 0. *)
let core ~beta ~vto ~lambda ~vgs ~vds =
  let vov = vgs -. vto in
  if vov <= 0.0 then { ids = 0.0; gm = 0.0; gds = 0.0 }
  else if vds < vov then begin
    let cm = 1.0 +. (lambda *. vds) in
    let shape = (vov *. vds) -. (0.5 *. vds *. vds) in
    {
      ids = beta *. shape *. cm;
      gm = beta *. vds *. cm;
      gds = (beta *. (vov -. vds) *. cm) +. (beta *. shape *. lambda);
    }
  end
  else begin
    let cm = 1.0 +. (lambda *. vds) in
    let half = 0.5 *. beta *. vov *. vov in
    { ids = half *. cm; gm = beta *. vov *. cm; gds = half *. lambda }
  end

(* NMOS at arbitrary vds: for vds < 0 the physical source is the drawn
   drain; evaluate the mirrored device and map the partial derivatives
   back through ids(vgs,vds) = -f(vgs - vds, -vds). *)
let eval_nmos ~beta ~vto ~lambda ~vgs ~vds =
  if vds >= 0.0 then core ~beta ~vto ~lambda ~vgs ~vds
  else begin
    let e = core ~beta ~vto ~lambda ~vgs:(vgs -. vds) ~vds:(-.vds) in
    { ids = -.e.ids; gm = -.e.gm; gds = e.gm +. e.gds }
  end

let eval (model : Netlist.Device.mos_model) ~w ~l ~vgs ~vds =
  let beta = model.kp *. w /. l in
  match model.kind with
  | Netlist.Device.Nmos -> eval_nmos ~beta ~vto:model.vto ~lambda:model.lambda ~vgs ~vds
  | Netlist.Device.Pmos ->
    (* ids_p(vgs,vds) = -f_n(-vgs,-vds) with the NMOS-equivalent
       threshold |vto|; gm/gds keep their sign through the double
       negation. *)
    let e =
      eval_nmos ~beta ~vto:(-.model.vto) ~lambda:model.lambda ~vgs:(-.vgs) ~vds:(-.vds)
    in
    { ids = -.e.ids; gm = e.gm; gds = e.gds }

let region (model : Netlist.Device.mos_model) ~vgs ~vds =
  let vgs, vds =
    match model.kind with
    | Netlist.Device.Nmos -> (vgs, vds)
    | Netlist.Device.Pmos -> (-.vgs, -.vds)
  in
  let vto = match model.kind with Netlist.Device.Nmos -> model.vto | Netlist.Device.Pmos -> -.model.vto in
  let vgs, vds = if vds >= 0.0 then (vgs, vds) else (vgs -. vds, -.vds) in
  if vgs -. vto <= 0.0 then "off"
  else if vds < vgs -. vto then "linear"
  else "saturation"
