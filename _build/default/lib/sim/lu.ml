exception Singular of int

let solve a b =
  let n = Array.length b in
  assert (Array.length a = n);
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Partial pivot: largest magnitude in column k at or below row k. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(piv.(i)).(k) > Float.abs a.(piv.(!best)).(k) then best := i
    done;
    if !best <> k then begin
      let t = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- t
    end;
    let akk = a.(piv.(k)).(k) in
    if Float.abs akk < 1e-30 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = a.(piv.(i)).(k) /. akk in
      if f <> 0.0 then begin
        a.(piv.(i)).(k) <- f;
        for j = k + 1 to n - 1 do
          a.(piv.(i)).(j) <- a.(piv.(i)).(j) -. (f *. a.(piv.(k)).(j))
        done
      end
      else a.(piv.(i)).(k) <- 0.0
    done
  done;
  (* Forward substitution on the permuted rows. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(piv.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (a.(piv.(i)).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.(piv.(i)).(j) *. b.(j))
    done;
    b.(i) <- !s /. a.(piv.(i)).(i)
  done

let solve_copy a b =
  let a = Array.map Array.copy a and b = Array.copy b in
  solve a b;
  b
