type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  freqs : float array;
  data : Complex.t array array; (* data.(signal).(point) *)
}

let make ~names ~points =
  let ns = Array.length names in
  let k = List.length points in
  let freqs = Array.make k 0.0 in
  let data = Array.init ns (fun _ -> Array.make k Complex.zero) in
  List.iteri
    (fun i (f, row) ->
      if Array.length row <> ns then invalid_arg "Spectrum.make: ragged point";
      if i > 0 && f <= freqs.(i - 1) then
        invalid_arg "Spectrum.make: non-increasing frequencies";
      freqs.(i) <- f;
      for s = 0 to ns - 1 do
        data.(s).(i) <- row.(s)
      done)
    points;
  let index = Hashtbl.create ns in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  { names; index; freqs; data }

let names t = t.names

let length t = Array.length t.freqs

let frequencies t = t.freqs

let row t name = t.data.(Hashtbl.find t.index name)

let phasor t name k = (row t name).(k)

let magnitude_db t name =
  Array.map
    (fun z ->
      let m = Complex.norm z in
      if m <= 0.0 then -400.0 else 20.0 *. log10 m)
    (row t name)

let phase_deg t name =
  Array.map (fun z -> Complex.arg z *. 180.0 /. Float.pi) (row t name)

let corner_frequency t name =
  let mag = magnitude_db t name in
  let n = Array.length mag in
  if n = 0 then None
  else begin
    let target = mag.(0) -. 3.0 in
    let rec find i =
      if i >= n then None
      else if mag.(i) <= target then begin
        if i = 0 then Some t.freqs.(0)
        else begin
          (* log-linear interpolation between points i-1 and i *)
          let f0 = log10 t.freqs.(i - 1) and f1 = log10 t.freqs.(i) in
          let m0 = mag.(i - 1) and m1 = mag.(i) in
          let frac = if m1 = m0 then 0.0 else (target -. m0) /. (m1 -. m0) in
          Some (10.0 ** (f0 +. (frac *. (f1 -. f0))))
        end
      end
      else find (i + 1)
    in
    find 0
  end

let log_grid ~f_start ~f_stop ~per_decade =
  if f_start <= 0.0 || f_stop <= f_start || per_decade < 1 then
    invalid_arg "Spectrum.log_grid";
  let ratio = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec go f acc =
    if f >= f_stop *. (1.0 -. 1e-12) then List.rev (f_stop :: acc)
    else go (f *. ratio) (f :: acc)
  in
  go f_start []
