exception Singular of int

let solve a b =
  let n = Array.length b in
  assert (Array.length a = n);
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm a.(piv.(i)).(k) > Complex.norm a.(piv.(!best)).(k) then best := i
    done;
    if !best <> k then begin
      let t = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- t
    end;
    let akk = a.(piv.(k)).(k) in
    if Complex.norm akk < 1e-30 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = Complex.div a.(piv.(i)).(k) akk in
      if f <> Complex.zero then begin
        a.(piv.(i)).(k) <- f;
        for j = k + 1 to n - 1 do
          a.(piv.(i)).(j) <- Complex.sub a.(piv.(i)).(j) (Complex.mul f a.(piv.(k)).(j))
        done
      end
      else a.(piv.(i)).(k) <- Complex.zero
    done
  done;
  let y = Array.make n Complex.zero in
  for i = 0 to n - 1 do
    let s = ref b.(piv.(i)) in
    for j = 0 to i - 1 do
      s := Complex.sub !s (Complex.mul a.(piv.(i)).(j) y.(j))
    done;
    y.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul a.(piv.(i)).(j) b.(j))
    done;
    b.(i) <- Complex.div !s a.(piv.(i)).(i)
  done

let solve_copy a b =
  let a = Array.map Array.copy a and b = Array.copy b in
  solve a b;
  b
