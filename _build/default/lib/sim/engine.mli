(** The kernel simulator: DC operating point and transient analysis.

    This plays the role ELDO played for the paper's AnaFAULT: it accepts a
    netlist (possibly rewritten by fault injection) and produces transient
    waveforms.  Nonlinear solves use damped Newton-Raphson; DC falls back
    to gmin stepping then source stepping; transient steps adaptively
    (iteration-count control) between source breakpoints. *)

type integration = Backward_euler | Trapezoidal

type options = {
  gmin : float;  (** conductance to ground on every node (default 1e-12) *)
  reltol : float;  (** relative convergence tolerance (1e-3) *)
  abstol : float;  (** absolute voltage tolerance, V (1e-6) *)
  max_iter : int;  (** Newton iteration limit per solve (150) *)
  dv_limit : float;  (** per-iteration Newton step clamp, V (1.0) *)
  cmin : float;  (** parasitic node-to-ground capacitance in transient, F
                     (1e-16); damps idealised regenerative loops *)
  integration : integration;
      (** default [Backward_euler]: its numerical damping settles the
          high-gain metastable equilibria fault injection creates, which
          trapezoidal integration rings on; use [Trapezoidal] for
          accuracy-sensitive lightly-damped circuits *)
}

val default_options : options

exception No_convergence of string

type solution

(** Node voltage in a DC solution ([0.0] for ground). *)
val voltage : solution -> string -> float

(** Branch current through a voltage source or inductor. *)
val branch_current : solution -> string -> float

(** Work counters of an analysis (for the paper's runtime comparison of
    fault models). *)
type stats = {
  newton_iterations : int;
  accepted_steps : int;
  rejected_steps : int;
}

val dc_operating_point : ?options:options -> Netlist.Circuit.t -> solution

(** [transient circuit ~tstep ~tstop ~uic] integrates from 0 to [tstop].
    [tstep] is the suggested output resolution and the maximum internal
    step.  With [uic] the initial state is zero node voltages overridden
    by capacitor [IC=] values (SPICE "use initial conditions"); otherwise
    the DC operating point is computed first.  The waveform carries every
    node voltage plus ["I(name)"] for each branch device. *)
val transient :
  ?options:options ->
  Netlist.Circuit.t ->
  tstep:float ->
  tstop:float ->
  uic:bool ->
  Waveform.t

(** Like {!transient}, also returning work counters. *)
val transient_with_stats :
  ?options:options ->
  Netlist.Circuit.t ->
  tstep:float ->
  tstop:float ->
  uic:bool ->
  Waveform.t * stats

(** [dc_sweep circuit ~source ~values] computes the DC transfer
    characteristic: the operating point is re-solved for each value of
    the named V or I source, warm-starting from the previous point
    (continuation).  Raises [Invalid_argument] when [source] names no
    independent source. *)
val dc_sweep :
  ?options:options ->
  Netlist.Circuit.t ->
  source:string ->
  values:float list ->
  (float * solution) list

(** [ac circuit ~source ~freqs] performs small-signal AC analysis: the DC
    operating point is computed, every device is linearised around it,
    and the complex MNA system is solved at each frequency of [freqs]
    (Hz, increasing).  The V or I source called [source] drives with unit
    magnitude; all other independent sources are quenched, so each node's
    phasor IS the transfer function to that node.  Raises
    [Invalid_argument] when [source] names no independent source and
    {!No_convergence} if the operating point fails. *)
val ac :
  ?options:options ->
  Netlist.Circuit.t ->
  source:string ->
  freqs:float list ->
  Spectrum.t
