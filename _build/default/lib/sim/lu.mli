(** Dense LU factorisation with partial pivoting.

    Circuit matrices here are tens of rows (the VCO has ~30 unknowns), so
    a dense solver is the right tool; sparsity machinery would cost more
    than it saves. *)

exception Singular of int
(** Column index at which no usable pivot was found. *)

(** [solve a b] overwrites [a] with its LU factors and [b] with the
    solution of [a x = b].  Raises {!Singular} on a numerically singular
    matrix (pivot magnitude below 1e-30). *)
val solve : float array array -> float array -> unit

(** [solve_copy a b] is {!solve} on copies, leaving inputs intact. *)
val solve_copy : float array array -> float array -> float array
