(** Dense complex LU factorisation with partial pivoting, for AC
    (small-signal) analysis. *)

exception Singular of int

(** [solve a b] overwrites [a] with its LU factors and [b] with the
    solution of [a x = b]. *)
val solve : Complex.t array array -> Complex.t array -> unit

(** [solve_copy a b] is {!solve} on copies, leaving inputs intact. *)
val solve_copy : Complex.t array array -> Complex.t array -> Complex.t array
