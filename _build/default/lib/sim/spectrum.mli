(** AC (small-signal) analysis results: complex node phasors over a
    frequency grid. *)

type t

(** [make ~names ~points] builds a spectrum from frequency-ordered
    samples; each carries one phasor per name. *)
val make : names:string array -> points:(float * Complex.t array) list -> t

val names : t -> string array

val length : t -> int

val frequencies : t -> float array

(** [phasor t name k] is the complex response of signal [name] at the
    [k]-th frequency point. *)
val phasor : t -> string -> int -> Complex.t

(** Magnitude in dB (20 log10 |H|); -400 dB floor for zero responses. *)
val magnitude_db : t -> string -> float array

(** Phase in degrees. *)
val phase_deg : t -> string -> float array

(** [corner_frequency t name] estimates the -3 dB frequency relative to
    the first point's magnitude, by log-linear interpolation; [None] if
    the response never drops 3 dB. *)
val corner_frequency : t -> string -> float option

(** Logarithmically spaced frequency grid, [per_decade] points from
    [f_start] to [f_stop] inclusive. *)
val log_grid : f_start:float -> f_stop:float -> per_decade:int -> float list
