(** Level-1 (Shichman-Hodges) MOSFET evaluation.

    Conventions follow SPICE: for an NMOS, [ids] flows drain -> source and
    is >= 0 in normal operation; the evaluator handles source/drain
    interchange internally when [vds < 0], and PMOS by sign symmetry. *)

type eval = {
  ids : float;  (** drain current (drain->source through the channel), A *)
  gm : float;  (** d ids / d vgs *)
  gds : float;  (** d ids / d vds *)
}

(** [eval model ~w ~l ~vgs ~vds] evaluates the DC channel current and its
    derivatives at the given terminal voltages (both measured with the
    SPICE sign convention relative to the {e nominal} source terminal). *)
val eval : Netlist.Device.mos_model -> w:float -> l:float -> vgs:float -> vds:float -> eval

(** Operating region at the given bias (after internal D/S swap):
    ["off"], ["linear"] or ["saturation"] — for reports and tests. *)
val region : Netlist.Device.mos_model -> vgs:float -> vds:float -> string
