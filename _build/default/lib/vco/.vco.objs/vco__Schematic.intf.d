lib/vco/schematic.mli: Netlist
