lib/vco/layout_gen.ml: Schematic Synth
