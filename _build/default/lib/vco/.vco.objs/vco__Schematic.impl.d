lib/vco/schematic.ml: Netlist
