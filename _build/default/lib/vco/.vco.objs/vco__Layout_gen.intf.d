lib/vco/layout_gen.mli: Layout
