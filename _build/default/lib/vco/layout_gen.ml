let cap_per_nm2 = Synth.Row_synth.default_cap_per_nm2

let cap_side = Synth.Row_synth.cap_side ~cap_per_nm2 20e-12

let mask () = Synth.Row_synth.mask ~cap_per_nm2 (Schematic.schematic ())
