(** The paper's demonstrator: a 26-transistor CMOS relaxation VCO
    (Fig. 3) - V-to-I conversion, analogue switch, Schmitt trigger - as a
    schematic netlist and, in {!Vco_layout}, as a full mask layout.

    Architecture: the control voltage sets a reference current through M1;
    cascoded P and N mirrors (six gate-drain-connected devices, matching
    the paper's six designed gate-drain shorts) derive a charge and a
    discharge current.  A transmission-gate analogue switch steers the
    capacitor between them under control of a CMOS Schmitt trigger
    observing the capacitor voltage; inverters derive the switch phases
    and buffer the output.

    Node names follow the paper's numbering where it is visible in the
    text: node 1 = VDD, node 5/6 = the discharge-mirror nodes whose bridge
    raises the oscillation frequency (fault #6), node 11 = the buffered
    output whose waveform Figs. 4-6 plot. *)

(** Output node of the VCO ("11"). *)
val out_node : string

(** Capacitor node name. *)
val cap_node : string

(** Supply node ("1") and control node ("2"). *)
val vdd_node : string

val vctl_node : string

(** [schematic ~vctl ()] is the full VCO netlist with a stepped 5 V supply
    (50 ns activation ramp at t = 0, per the paper's procedure) and the
    control voltage held at [vctl] (default 3.0 V). *)
val schematic : ?vctl:float -> unit -> Netlist.Circuit.t

(** The transient run of the paper's experiments: 400 output points over
    4 us, from a cold (UIC) start. *)
val tran : Netlist.Parser.tran

(** Number of MOS devices (26) - used by tests and the fault-count
    experiment. *)
val transistor_count : int

(** Names of the six gate-drain-connected (diode) devices. *)
val diode_connected : string list

(** The MOS models of the demo process (used when extracting the layout,
    so LVS compares like against like). *)
val nmos_model : Netlist.Device.mos_model

val pmos_model : Netlist.Device.mos_model
