(* Node map (paper-visible numbers kept):
   1 vdd   2 vctl  3 p-mirror gate  4 ref cascode drain
   5 discharge node (switch side)   6 discharge mirror drain
   7 charge mirror drain  8 charge node (switch side)
   9 n-mirror feed  10 n-mirror gate  11 output  12 capacitor
   13 schmitt N source  14 schmitt P source  15 schmitt out
   16 q (discharge phase)  17 qb (charge phase) *)

let vdd_node = "1"
let vctl_node = "2"
let dis_node = "5"
let dis0_node = "6"
let chg_node = "8"
let out_node = "11"
let cap_node = "12"

let nmos = { Netlist.Device.mname = "NVCO"; kind = Netlist.Device.Nmos;
             vto = 0.8; kp = 60e-6; lambda = 0.02; cox = Netlist.Device.default_cox }

let pmos = { Netlist.Device.mname = "PVCO"; kind = Netlist.Device.Pmos;
             vto = -0.8; kp = 25e-6; lambda = 0.02; cox = Netlist.Device.default_cox }

let m name d g s kind w l =
  let model = match kind with `N -> nmos | `P -> pmos in
  let b = match kind with `N -> "0" | `P -> vdd_node in
  Netlist.Device.M { name; d; g; s; b; model; w = w *. 1e-6; l = l *. 1e-6 }

let diode_connected = [ "M2"; "M3"; "M5"; "M7"; "M8"; "M10" ]

let transistor_count = 26

let schematic ?(vctl = 3.0) () =
  let devices =
    [
      (* Supply activation: 0 -> 5 V in 50 ns at t = 0 (paper: simulation
         starts when the supply is switched on; no other stimulus). *)
      Netlist.Device.V
        {
          name = "VDD";
          np = vdd_node;
          nn = "0";
          wave =
            Netlist.Wave.Pulse
              { v1 = 0.0; v2 = 5.0; delay = 0.0; rise = 50e-9; fall = 50e-9;
                width = 1.0; period = 0.0 };
        };
      Netlist.Device.V { name = "VCTL"; np = vctl_node; nn = "0"; wave = Netlist.Wave.Dc vctl };
      (* V-to-I conversion: reference leg and cascoded mirrors. *)
      m "M1" "4" vctl_node "0" `N 2.0 4.0;      (* input V-to-I device *)
      m "M2" "3" "3" vdd_node `P 8.0 1.0;       (* P mirror diode *)
      m "M3" "4" "4" "3" `P 8.0 1.0;            (* P reference cascode diode *)
      m "M4" "7" "3" vdd_node `P 8.0 1.0;       (* charge mirror output *)
      m "M5" chg_node chg_node "7" `P 8.0 1.0;  (* charge cascode diode *)
      m "M6" "9" "3" vdd_node `P 8.0 1.0;       (* feeds the N mirror *)
      m "M7" "9" "9" "10" `N 4.0 1.0;           (* N cascode diode *)
      m "M8" "10" "10" "0" `N 4.0 1.0;          (* N mirror diode *)
      m "M9" dis0_node "10" "0" `N 4.0 1.0;     (* discharge mirror output *)
      m "M10" dis_node dis_node dis0_node `N 4.0 1.0; (* discharge cascode diode *)
      (* Schmitt trigger observing the capacitor voltage. *)
      m "M11" "13" cap_node "0" `N 300.0 1.0;
      m "M12" "15" cap_node "13" `N 20.0 1.0;
      m "M13" vdd_node "15" "13" `N 200.0 1.0;  (* N feedback (dominant) *)
      m "M14" "14" cap_node vdd_node `P 12.0 1.0;
      m "M15" "15" cap_node "14" `P 12.0 1.0;
      m "M16" "0" "15" "14" `P 2.0 20.0;        (* P feedback (vestigial) *)
      (* Analogue switch: charge gate (on when qb high) and discharge gate
         (on when q high). *)
      m "M17" chg_node "17" cap_node `N 6.0 1.0;
      m "M18" chg_node "16" cap_node `P 12.0 1.0;
      m "M19" cap_node "16" dis_node `N 6.0 1.0;
      m "M20" cap_node "17" dis_node `P 12.0 1.0;
      (* Phase inverters: q = not(st), qb = not(q). *)
      m "M21" "16" "15" "0" `N 4.0 1.0;
      m "M22" "16" "15" vdd_node `P 8.0 1.0;
      m "M23" "17" "16" "0" `N 4.0 1.0;
      m "M24" "17" "16" vdd_node `P 8.0 1.0;
      (* Output buffer: out toggles with the charge phase. *)
      m "M25" out_node "17" "0" `N 6.0 1.0;
      m "M26" out_node "17" vdd_node `P 12.0 1.0;
      Netlist.Device.C { name = "C1"; n1 = cap_node; n2 = "0"; value = 20e-12; ic = Some 0.0 };
    ]
  in
  Netlist.Circuit.of_devices "CMOS relaxation VCO (Sebeke et al., DATE 1995 demonstrator)"
    devices

let tran = { Netlist.Parser.tstep = 10e-9; tstop = 4e-6; uic = true }

let nmos_model = nmos

let pmos_model = pmos
