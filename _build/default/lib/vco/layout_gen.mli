(** Mask layout of the VCO demonstrator, generated from the schematic of
    {!Schematic.schematic} by the row-floorplan synthesizer
    {!Synth.Row_synth}, so that extraction provably recovers the same
    netlist (DRC-clean, LVS-identical).

    Bulk terminals are not drawn (the demo process implies substrate/well
    ties); extraction assigns bulks from its options, matching the
    schematic. *)

(** [mask ()] builds the full VCO layout (DRC-clean under
    {!Layout.Drc.check}). *)
val mask : unit -> Layout.Mask.t

(** Plate capacitance density that makes the drawn capacitor 20 pF; pass
    it (with {!Schematic.nmos_model}/{!Schematic.pmos_model} and bulks "0"/"1") to the
    extractor so LVS compares like against like. *)
val cap_per_nm2 : float

(** Side of the square capacitor plate, nm. *)
val cap_side : int
