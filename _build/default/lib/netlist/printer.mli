(** SPICE netlist writer; [Parser.parse (to_string d)] round-trips every
    deck the tool produces. *)

val deck_to_string : ?tran:Parser.tran -> Circuit.t -> string

val save : ?tran:Parser.tran -> Circuit.t -> string -> unit
