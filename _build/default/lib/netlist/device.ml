type node = string

let ground = "0"

type mos_kind = Nmos | Pmos

type mos_model = {
  mname : string;
  kind : mos_kind;
  vto : float;
  kp : float;
  lambda : float;
  cox : float;
}

type diode_model = { dname : string; is_sat : float; n_emission : float }

type t =
  | R of { name : string; n1 : node; n2 : node; value : float }
  | C of { name : string; n1 : node; n2 : node; value : float; ic : float option }
  | L of { name : string; n1 : node; n2 : node; value : float; ic : float option }
  | V of { name : string; np : node; nn : node; wave : Wave.t }
  | I of { name : string; np : node; nn : node; wave : Wave.t }
  | D of { name : string; na : node; nc : node; model : diode_model }
  | M of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      model : mos_model;
      w : float;
      l : float;
    }

let name = function
  | R { name; _ } | C { name; _ } | L { name; _ } | V { name; _ } | I { name; _ }
  | D { name; _ } | M { name; _ } ->
    name

let nodes = function
  | R { n1; n2; _ } | C { n1; n2; _ } | L { n1; n2; _ } -> [ n1; n2 ]
  | V { np; nn; _ } | I { np; nn; _ } -> [ np; nn ]
  | D { na; nc; _ } -> [ na; nc ]
  | M { d; g; s; b; _ } -> [ d; g; s; b ]

let rename f = function
  | R r -> R { r with n1 = f r.n1; n2 = f r.n2 }
  | C c -> C { c with n1 = f c.n1; n2 = f c.n2 }
  | L l -> L { l with n1 = f l.n1; n2 = f l.n2 }
  | V v -> V { v with np = f v.np; nn = f v.nn }
  | I i -> I { i with np = f i.np; nn = f i.nn }
  | D d -> D { d with na = f d.na; nc = f d.nc }
  | M m -> M { m with d = f m.d; g = f m.g; s = f m.s; b = f m.b }

let rename_port i n dev =
  let out_of_range () =
    invalid_arg
      (Printf.sprintf "Device.rename_port: %s has no port %d" (name dev) i)
  in
  match (dev, i) with
  | R r, 0 -> R { r with n1 = n }
  | R r, 1 -> R { r with n2 = n }
  | C c, 0 -> C { c with n1 = n }
  | C c, 1 -> C { c with n2 = n }
  | L l, 0 -> L { l with n1 = n }
  | L l, 1 -> L { l with n2 = n }
  | V v, 0 -> V { v with np = n }
  | V v, 1 -> V { v with nn = n }
  | I s, 0 -> I { s with np = n }
  | I s, 1 -> I { s with nn = n }
  | D d, 0 -> D { d with na = n }
  | D d, 1 -> D { d with nc = n }
  | M m, 0 -> M { m with d = n }
  | M m, 1 -> M { m with g = n }
  | M m, 2 -> M { m with s = n }
  | M m, 3 -> M { m with b = n }
  | (R _ | C _ | L _ | V _ | I _ | D _ | M _), _ -> out_of_range ()

let with_name n = function
  | R r -> R { r with name = n }
  | C c -> C { c with name = n }
  | L l -> L { l with name = n }
  | V v -> V { v with name = n }
  | I i -> I { i with name = n }
  | D d -> D { d with name = n }
  | M m -> M { m with name = n }

let default_cox = 1.7e-3

let default_nmos =
  { mname = "NMOS_DEFAULT"; kind = Nmos; vto = 0.8; kp = 60e-6; lambda = 0.02;
    cox = default_cox }

let default_pmos =
  { mname = "PMOS_DEFAULT"; kind = Pmos; vto = -0.8; kp = 25e-6; lambda = 0.02;
    cox = default_cox }

let default_diode = { dname = "D_DEFAULT"; is_sat = 1e-14; n_emission = 1.0 }

let pp ppf = function
  | R { name; n1; n2; value } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (Eng.to_string value)
  | C { name; n1; n2; value; ic } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (Eng.to_string value);
    Option.iter (fun v -> Format.fprintf ppf " IC=%s" (Eng.to_string v)) ic
  | L { name; n1; n2; value; ic } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (Eng.to_string value);
    Option.iter (fun v -> Format.fprintf ppf " IC=%s" (Eng.to_string v)) ic
  | V { name; np; nn; wave } -> Format.fprintf ppf "%s %s %s %a" name np nn Wave.pp wave
  | I { name; np; nn; wave } -> Format.fprintf ppf "%s %s %s %a" name np nn Wave.pp wave
  | D { name; na; nc; model } -> Format.fprintf ppf "%s %s %s %s" name na nc model.dname
  | M { name; d; g; s; b; model; w; l } ->
    Format.fprintf ppf "%s %s %s %s %s %s W=%s L=%s" name d g s b model.mname
      (Eng.to_string w) (Eng.to_string l)
