exception Parse_error of int * string

type tran = { tstep : float; tstop : float; uic : bool }

type deck = { circuit : Circuit.t; tran : tran option }

(* Logical lines: title first, then element/control cards with [+]
   continuations folded in and comments stripped. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip line =
    let line =
      match String.index_opt line ';' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let rec fold acc = function
    | [] -> List.rev acc
    | (ln, line) :: rest ->
      let line = strip line in
      if line = "" || line.[0] = '*' then fold acc rest
      else if line.[0] = '+' then begin
        match acc with
        | (ln0, prev) :: acc' ->
          fold ((ln0, prev ^ " " ^ String.sub line 1 (String.length line - 1)) :: acc') rest
        | [] -> raise (Parse_error (ln, "continuation with no previous card"))
      end
      else fold ((ln, line) :: acc) rest
  in
  match raw with
  | [] -> ("", [])
  | title :: rest ->
    (String.trim title, fold [] (List.mapi (fun i l -> (i + 2, l)) rest))

let tokens line =
  String.map
    (fun c ->
      match c with
      | '(' | ')' | '=' | ',' -> ' '
      | _ -> c)
    line
  |> String.split_on_char ' '
  |> List.filter (fun w -> w <> "")

let err ln fmt = Format.kasprintf (fun m -> raise (Parse_error (ln, m))) fmt

let num ln w =
  match Eng.parse w with
  | Some v -> v
  | None -> err ln "expected a number, got %S" w

let parse_wave ln = function
  | [] -> err ln "source needs a value"
  | [ v ] -> Wave.Dc (num ln v)
  | "DC" :: [ v ] | "dc" :: [ v ] -> Wave.Dc (num ln v)
  | kw :: args -> begin
    match String.uppercase_ascii kw with
    | "PULSE" -> begin
      let a = Array.of_list (List.map (num ln) args) in
      let get i d = if i < Array.length a then a.(i) else d in
      match Array.length a with
      | 0 | 1 -> err ln "PULSE needs at least v1 v2"
      | _ ->
        Wave.Pulse
          {
            v1 = get 0 0.0;
            v2 = get 1 0.0;
            delay = get 2 0.0;
            rise = get 3 1e-9;
            fall = get 4 1e-9;
            width = get 5 Float.max_float;
            period = get 6 0.0;
          }
    end
    | "PWL" ->
      let vals = List.map (num ln) args in
      let rec pair = function
        | [] -> []
        | t :: v :: rest -> (t, v) :: pair rest
        | [ _ ] -> err ln "PWL needs an even number of values"
      in
      Wave.Pwl (pair vals)
    | "SIN" -> begin
      let a = Array.of_list (List.map (num ln) args) in
      let get i d = if i < Array.length a then a.(i) else d in
      match Array.length a with
      | 0 | 1 | 2 -> err ln "SIN needs offset ampl freq"
      | _ ->
        Wave.Sin { offset = get 0 0.0; ampl = get 1 0.0; freq = get 2 0.0; delay = get 3 0.0 }
    end
    | _ -> err ln "unknown source waveform %S" kw
  end

(* Key-value option tails like [W 10u L 1u IC 0] (the '=' was tokenised
   away). *)
let rec kv ln = function
  | [] -> []
  | k :: v :: rest -> (String.uppercase_ascii k, num ln v) :: kv ln rest
  | [ k ] -> err ln "dangling parameter %S" k

type models = {
  mutable mos : (string * Device.mos_model) list;
  mutable dio : (string * Device.diode_model) list;
}

let parse_model ln models = function
  | name :: typ :: params -> begin
    let pairs = kv ln params in
    let get key d = match List.assoc_opt key pairs with Some v -> v | None -> d in
    match String.uppercase_ascii typ with
    | "NMOS" | "PMOS" ->
      let kind = if String.uppercase_ascii typ = "NMOS" then Device.Nmos else Device.Pmos in
      let vto_default = if kind = Device.Nmos then 0.8 else -0.8 in
      let m =
        {
          Device.mname = name;
          kind;
          vto = get "VTO" vto_default;
          kp = get "KP" 60e-6;
          lambda = get "LAMBDA" 0.0;
          cox = get "COX" Device.default_cox;
        }
      in
      models.mos <- (String.uppercase_ascii name, m) :: models.mos
    | "D" ->
      let m =
        {
          Device.dname = name;
          is_sat = get "IS" 1e-14;
          n_emission = get "N" 1.0;
        }
      in
      models.dio <- (String.uppercase_ascii name, m) :: models.dio
    | other -> err ln "unknown model type %S" other
  end
  | _ -> err ln ".model needs a name and a type"

let parse_element ln models toks =
  match toks with
  | [] -> assert false
  | name :: args -> begin
    let n2 nm = List.filteri (fun i _ -> i < nm) args in
    ignore n2;
    match (Char.uppercase_ascii name.[0], args) with
    | 'R', n1 :: n2 :: v :: _ -> Device.R { name; n1; n2; value = num ln v }
    | 'C', n1 :: n2 :: v :: rest ->
      let pairs = kv ln rest in
      Device.C { name; n1; n2; value = num ln v; ic = List.assoc_opt "IC" pairs }
    | 'L', n1 :: n2 :: v :: rest ->
      let pairs = kv ln rest in
      Device.L { name; n1; n2; value = num ln v; ic = List.assoc_opt "IC" pairs }
    | 'V', np :: nn :: rest -> Device.V { name; np; nn; wave = parse_wave ln rest }
    | 'I', np :: nn :: rest -> Device.I { name; np; nn; wave = parse_wave ln rest }
    | 'D', na :: nc :: rest ->
      let model =
        match rest with
        | m :: _ -> begin
          match List.assoc_opt (String.uppercase_ascii m) models.dio with
          | Some model -> model
          | None -> err ln "unknown diode model %S" m
        end
        | [] -> Device.default_diode
      in
      Device.D { name; na; nc; model }
    | 'M', d :: g :: s :: b :: m :: rest ->
      let model =
        match List.assoc_opt (String.uppercase_ascii m) models.mos with
        | Some model -> model
        | None -> err ln "unknown MOS model %S" m
      in
      let pairs = kv ln rest in
      let get key d = match List.assoc_opt key pairs with Some v -> v | None -> d in
      Device.M { name; d; g; s; b; model; w = get "W" 10e-6; l = get "L" 1e-6 }
    | c, _ -> err ln "cannot parse element %C card (too few fields?)" c
  end

(* Subcircuit definitions: collected verbatim, expanded (flattened) at
   each X-instance with hierarchical "inst.node" / "inst.dev" names. *)
type subckt = { ports : string list; body : (int * string) list }

let split_subckts lines =
  let defs : (string, subckt) Hashtbl.t = Hashtbl.create 4 in
  let rec go acc current = function
    | [] -> begin
      match current with
      | Some (ln, _, _, _) -> err ln ".subckt without .ends"
      | None -> List.rev acc
    end
    | ((ln, line) as entry) :: rest -> begin
      match (tokens line, current) with
      | ".subckt" :: name :: ports, None ->
        if ports = [] then err ln ".subckt %s needs at least one port" name;
        go acc (Some (ln, String.uppercase_ascii name, ports, [])) rest
      | ".subckt" :: _, Some _ -> err ln "nested .subckt definitions are not supported"
      | [ ".ends" ], Some (_, name, ports, body) ->
        Hashtbl.replace defs name { ports; body = List.rev body };
        go acc None rest
      | [ ".ends" ], None -> err ln ".ends without .subckt"
      | _, Some (l0, name, ports, body) -> go acc (Some (l0, name, ports, entry :: body)) rest
      | _, None -> go (entry :: acc) None rest
    end
  in
  let top = go [] None lines in
  (defs, top)

let max_subckt_depth = 20

(* Expand one card into flat devices.  [prefix] scopes names; [map_node]
   resolves a local node to its flat name. *)
let rec expand_card ~depth ~defs ~models ~prefix ~map_node (ln, line) =
  match tokens line with
  | [] -> []
  | card :: rest when Char.uppercase_ascii card.[0] = 'X' && card.[0] <> '.' -> begin
    if depth > max_subckt_depth then err ln "subcircuit nesting deeper than %d" max_subckt_depth;
    match List.rev rest with
    | sub :: rev_nodes -> begin
      let actuals = List.rev_map map_node rev_nodes in
      match Hashtbl.find_opt defs (String.uppercase_ascii sub) with
      | None -> err ln "unknown subcircuit %S" sub
      | Some { ports; body } ->
        if List.length ports <> List.length actuals then
          err ln "subcircuit %s expects %d ports, got %d" sub (List.length ports)
            (List.length actuals);
        let binding = List.combine ports actuals in
        let inner_prefix = prefix ^ card ^ "." in
        let inner_map n =
          if String.equal n "0" then "0"
          else
            match List.assoc_opt n binding with
            | Some actual -> actual
            | None -> inner_prefix ^ n
        in
        List.concat_map
          (expand_card ~depth:(depth + 1) ~defs ~models ~prefix:inner_prefix
             ~map_node:inner_map)
          body
    end
    | [] -> err ln "X card needs nodes and a subcircuit name"
  end
  | card :: _ when card.[0] = '.' ->
    err ln "control card %S not allowed inside a subcircuit" card
  | card :: rest ->
    let dev = parse_element ln models (card :: rest) in
    let dev = Device.rename map_node dev in
    [ Device.with_name (prefix ^ Device.name dev) dev ]

let parse text =
  let title, lines = logical_lines text in
  let models = { mos = []; dio = [] } in
  (* First pass: models, so elements can reference models declared later
     (model cards may live inside or outside .subckt blocks). *)
  List.iter
    (fun (ln, line) ->
      match tokens line with
      | card :: rest when String.lowercase_ascii card = ".model" ->
        parse_model ln models rest
      | _ -> ())
    lines;
  let defs, top = split_subckts lines in
  (* Model cards inside subckt bodies were already collected; strip them
     from the bodies so expansion only sees elements. *)
  Hashtbl.iter
    (fun name ({ body; _ } as sc) ->
      let body =
        List.filter
          (fun (_, line) ->
            match tokens line with
            | card :: _ -> String.lowercase_ascii card <> ".model"
            | [] -> false)
          body
      in
      Hashtbl.replace defs name { sc with body })
    defs;
  let circuit = ref (Circuit.empty title) in
  let tran = ref None in
  List.iter
    (fun (ln, line) ->
      match tokens line with
      | [] -> ()
      | card :: rest -> begin
        match String.lowercase_ascii card with
        | ".model" | ".end" | ".options" | ".option" | ".print" | ".plot" | ".probe" -> ()
        | ".tran" -> begin
          let uic =
            List.exists (fun w -> String.uppercase_ascii w = "UIC") rest
          in
          match List.filter (fun w -> String.uppercase_ascii w <> "UIC") rest with
          | tstep :: tstop :: _ ->
            tran := Some { tstep = num ln tstep; tstop = num ln tstop; uic }
          | _ -> err ln ".tran needs tstep and tstop"
        end
        | c when String.length c > 0 && c.[0] = '.' -> err ln "unknown card %S" card
        | _ ->
          List.iter
            (fun dev ->
              circuit :=
                (try Circuit.add !circuit dev
                 with Invalid_argument m -> err ln "%s" m))
            (expand_card ~depth:0 ~defs ~models ~prefix:"" ~map_node:Fun.id (ln, line))
      end)
    top;
  { circuit = !circuit; tran = !tran }

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      parse (really_input_string ic (in_channel_length ic)))
