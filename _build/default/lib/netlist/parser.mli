(** Parser for the SPICE netlist dialect understood by the tool.

    Supported cards: title line, R/C/L/V/I/D/M elements, [.model]
    (NMOS/PMOS/D), [.subckt]/[.ends] definitions with [X] instances
    (flattened at parse time into ["inst.node"]/["inst.dev"] names,
    nested up to 20 levels), [.tran], [.end]; [*] comment lines, [+]
    continuations, engineering suffixes.  This is the subset AnaFAULT's
    fault-injection machinery manipulates — enough to round-trip every
    netlist the tool itself produces. *)

exception Parse_error of int * string
(** Line number (of the logical, continuation-joined line) and message. *)

(** A [.tran tstep tstop [UIC]] request. *)
type tran = { tstep : float; tstop : float; uic : bool }

type deck = { circuit : Circuit.t; tran : tran option }

val parse : string -> deck

val parse_file : string -> deck
