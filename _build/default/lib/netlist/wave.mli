(** Independent-source waveforms (the SPICE stimulus language subset the
    fault simulator needs). *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list  (** (time, value) knots, time-sorted *)
  | Sin of { offset : float; ampl : float; freq : float; delay : float }

(** [value w t] evaluates the waveform at time [t] (>= 0).  DC analyses use
    [value w 0.] except for [Pulse], whose DC value is [v1]. *)
val value : t -> float -> float

(** The value used during DC operating-point analysis. *)
val dc_value : t -> float

(** [breakpoints w ~tstop] lists the times in [0, tstop] where the waveform
    has a slope discontinuity; the transient engine aligns steps on them. *)
val breakpoints : t -> tstop:float -> float list

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
