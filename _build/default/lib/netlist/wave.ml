type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
  | Sin of { offset : float; ampl : float; freq : float; delay : float }

let pulse_value p t =
  match p with
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    if t < delay then v1
    else begin
      let t' =
        if period > 0.0 then Float.rem (t -. delay) period else t -. delay
      in
      if t' < rise then
        if rise <= 0.0 then v2 else v1 +. ((v2 -. v1) *. t' /. rise)
      else if t' < rise +. width then v2
      else if t' < rise +. width +. fall then
        if fall <= 0.0 then v1 else v2 +. ((v1 -. v2) *. (t' -. rise -. width) /. fall)
      else v1
    end
  | Dc _ | Pwl _ | Sin _ -> assert false

let pwl_value knots t =
  let rec go = function
    | [] -> 0.0
    | [ (_, v) ] -> v
    | (t1, v1) :: ((t2, v2) :: _ as rest) ->
      if t <= t1 then v1
      else if t < t2 then v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
      else go rest
  in
  go knots

let value w t =
  match w with
  | Dc v -> v
  | Pulse _ -> pulse_value w t
  | Pwl knots -> pwl_value knots t
  | Sin { offset; ampl; freq; delay } ->
    if t < delay then offset
    else offset +. (ampl *. sin (2.0 *. Float.pi *. freq *. (t -. delay)))

let dc_value = function
  | Dc v -> v
  | Pulse { v1; _ } -> v1
  | Pwl knots -> pwl_value knots 0.0
  | Sin { offset; _ } -> offset

let breakpoints w ~tstop =
  match w with
  | Dc _ | Sin _ -> []
  | Pwl knots -> List.filter_map (fun (t, _) -> if t <= tstop then Some t else None) knots
  | Pulse { delay; rise; fall; width; period; _ } ->
    let cycle = [ 0.0; rise; rise +. width; rise +. width +. fall ] in
    let rec per_period t0 acc =
      if t0 > tstop then acc
      else begin
        let acc =
          List.fold_left
            (fun acc dt ->
              let t = t0 +. dt in
              if t <= tstop then t :: acc else acc)
            acc cycle
        in
        if period > 0.0 then per_period (t0 +. period) acc else acc
      end
    in
    List.sort_uniq compare (per_period delay [])

let pp ppf = function
  | Dc v -> Format.fprintf ppf "DC %s" (Eng.to_string v)
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    Format.fprintf ppf "PULSE(%s %s %s %s %s %s %s)" (Eng.to_string v1)
      (Eng.to_string v2) (Eng.to_string delay) (Eng.to_string rise)
      (Eng.to_string fall) (Eng.to_string width) (Eng.to_string period)
  | Pwl knots ->
    Format.fprintf ppf "PWL(";
    List.iteri
      (fun i (t, v) ->
        if i > 0 then Format.pp_print_char ppf ' ';
        Format.fprintf ppf "%s %s" (Eng.to_string t) (Eng.to_string v))
      knots;
    Format.fprintf ppf ")"
  | Sin { offset; ampl; freq; delay } ->
    Format.fprintf ppf "SIN(%s %s %s %s)" (Eng.to_string offset) (Eng.to_string ampl)
      (Eng.to_string freq) (Eng.to_string delay)

let equal = ( = )
