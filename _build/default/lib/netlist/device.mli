(** Circuit elements.

    Nodes are strings; ["0"] is ground.  MOSFETs use the level-1
    (Shichman-Hodges) model, which is what the qualitative analogue fault
    behaviour of the paper requires. *)

type node = string

val ground : node

type mos_kind = Nmos | Pmos

type mos_model = {
  mname : string;
  kind : mos_kind;
  vto : float;  (** threshold voltage, V (negative for PMOS) *)
  kp : float;  (** transconductance parameter, A/V^2 *)
  lambda : float;  (** channel-length modulation, 1/V *)
  cox : float;  (** gate-oxide capacitance, F/m^2; the gate loads its
                    source and drain with Cgs = Cgd = cox*W*L/2 *)
}

type diode_model = {
  dname : string;
  is_sat : float;  (** saturation current, A *)
  n_emission : float;  (** emission coefficient *)
}

type t =
  | R of { name : string; n1 : node; n2 : node; value : float }
  | C of { name : string; n1 : node; n2 : node; value : float; ic : float option }
  | L of { name : string; n1 : node; n2 : node; value : float; ic : float option }
  | V of { name : string; np : node; nn : node; wave : Wave.t }
  | I of { name : string; np : node; nn : node; wave : Wave.t }
      (** current flows from [np] through the source to [nn] *)
  | D of { name : string; na : node; nc : node; model : diode_model }
  | M of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      model : mos_model;
      w : float;  (** channel width, m *)
      l : float;  (** channel length, m *)
    }

val name : t -> string

(** Terminals in fixed order (R/C/L/V/I: 2; D: anode, cathode; M: d g s b). *)
val nodes : t -> node list

(** [rename f dev] rewrites every terminal through [f]. *)
val rename : (node -> node) -> t -> t

(** [rename_port i n dev] rewires terminal [i] (in {!nodes} order) to
    node [n].  Raises [Invalid_argument] when [i] is out of range. *)
val rename_port : int -> node -> t -> t

(** [with_name n dev] is [dev] renamed to [n] (used when flattening
    subcircuit instances). *)
val with_name : string -> t -> t

(** Gate-oxide capacitance of the default models (20 nm oxide). *)
val default_cox : float

(** Default models used when a netlist omits parameters. *)
val default_nmos : mos_model

val default_pmos : mos_model

val default_diode : diode_model

val pp : Format.formatter -> t -> unit
