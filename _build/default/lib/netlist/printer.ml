let model_card (m : Device.mos_model) =
  Printf.sprintf ".model %s %s VTO=%s KP=%s LAMBDA=%s COX=%s" m.mname
    (match m.kind with Device.Nmos -> "NMOS" | Device.Pmos -> "PMOS")
    (Eng.to_string m.vto) (Eng.to_string m.kp) (Eng.to_string m.lambda)
    (Eng.to_string m.cox)

let diode_card (m : Device.diode_model) =
  Printf.sprintf ".model %s D IS=%s N=%s" m.dname (Eng.to_string m.is_sat)
    (Eng.to_string m.n_emission)

let deck_to_string ?tran circuit =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (circuit.Circuit.title ^ "\n");
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" Device.pp d))
    (Circuit.devices circuit);
  List.iter
    (fun m -> Buffer.add_string buf (model_card m ^ "\n"))
    (Circuit.mos_models circuit);
  List.iter
    (fun m -> Buffer.add_string buf (diode_card m ^ "\n"))
    (Circuit.diode_models circuit);
  Option.iter
    (fun (t : Parser.tran) ->
      Buffer.add_string buf
        (Printf.sprintf ".tran %s %s%s\n" (Eng.to_string t.tstep) (Eng.to_string t.tstop)
           (if t.uic then " UIC" else "")))
    tran;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let save ?tran circuit path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (deck_to_string ?tran circuit))
