(** A flat transistor-level circuit (the unit AnaFAULT simulates).

    The device list order is preserved; device names must be unique
    ([add] enforces this). *)

type t = { title : string; devices : Device.t list }

val empty : string -> t

(** [add t dev] appends [dev].  Raises [Invalid_argument] when a device of
    the same name is already present. *)
val add : t -> Device.t -> t

val of_devices : string -> Device.t list -> t

val devices : t -> Device.t list

val device_count : t -> int

(** All node names, ground included, sorted. *)
val nodes : t -> Device.node list

(** [find t name] is the device called [name]. *)
val find : t -> string -> Device.t option

(** [remove t name] drops the device called [name] (no-op when absent). *)
val remove : t -> string -> t

(** [replace t dev] substitutes the existing device of the same name.
    Raises [Not_found] when absent. *)
val replace : t -> Device.t -> t

(** [rename_node t ~from_ ~to_] rewires every terminal equal to [from_]
    to [to_] (the electrical effect of an ideal short). *)
val rename_node : t -> from_:Device.node -> to_:Device.node -> t

(** [devices_on t node] lists devices with a terminal on [node]. *)
val devices_on : t -> Device.node -> Device.t list

(** [fresh_node t base] is a node name starting with [base] not yet used. *)
val fresh_node : t -> string -> Device.node

(** [fresh_name t base] is a device name starting with [base] not yet used. *)
val fresh_name : t -> string -> string

(** Distinct MOS models (by model name) used in the circuit, for .model
    cards. *)
val mos_models : t -> Device.mos_model list

val diode_models : t -> Device.diode_model list

val pp : Format.formatter -> t -> unit
