type t = { title : string; devices : Device.t list }

let empty title = { title; devices = [] }

let find t name = List.find_opt (fun d -> Device.name d = name) t.devices

let add t dev =
  let n = Device.name dev in
  if find t n <> None then invalid_arg ("Circuit.add: duplicate device " ^ n)
  else { t with devices = t.devices @ [ dev ] }

let of_devices title devices = List.fold_left add (empty title) devices

let devices t = t.devices

let device_count t = List.length t.devices

let nodes t =
  List.concat_map Device.nodes t.devices |> List.sort_uniq String.compare

let remove t name =
  { t with devices = List.filter (fun d -> Device.name d <> name) t.devices }

let replace t dev =
  let n = Device.name dev in
  if find t n = None then raise Not_found
  else
    { t with
      devices = List.map (fun d -> if Device.name d = n then dev else d) t.devices }

let rename_node t ~from_ ~to_ =
  let f n = if String.equal n from_ then to_ else n in
  { t with devices = List.map (Device.rename f) t.devices }

let devices_on t node =
  List.filter (fun d -> List.exists (String.equal node) (Device.nodes d)) t.devices

let fresh_in used base =
  let rec go i =
    let cand = Printf.sprintf "%s%d" base i in
    if List.exists (String.equal cand) used then go (i + 1) else cand
  in
  if List.exists (String.equal base) used then go 1 else base

let fresh_node t base = fresh_in (nodes t) base

let fresh_name t base = fresh_in (List.map Device.name t.devices) base

let mos_models t =
  List.filter_map
    (function
      | Device.M { model; _ } -> Some model
      | Device.R _ | Device.C _ | Device.L _ | Device.V _ | Device.I _ | Device.D _ ->
        None)
    t.devices
  |> List.sort_uniq (fun (a : Device.mos_model) b -> String.compare a.mname b.mname)

let diode_models t =
  List.filter_map
    (function
      | Device.D { model; _ } -> Some model
      | Device.R _ | Device.C _ | Device.L _ | Device.V _ | Device.I _ | Device.M _ ->
        None)
    t.devices
  |> List.sort_uniq (fun (a : Device.diode_model) b -> String.compare a.dname b.dname)

let pp ppf t =
  Format.fprintf ppf "@[<v>* %s@," t.title;
  List.iter (fun d -> Format.fprintf ppf "%a@," Device.pp d) t.devices;
  Format.fprintf ppf "@]"
