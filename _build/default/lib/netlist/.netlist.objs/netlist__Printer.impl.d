lib/netlist/printer.ml: Buffer Circuit Device Eng Format Fun List Option Parser Printf
