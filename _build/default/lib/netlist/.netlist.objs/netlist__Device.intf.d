lib/netlist/device.mli: Format Wave
