lib/netlist/wave.mli: Format
