lib/netlist/parser.ml: Array Char Circuit Device Eng Float Format Fun Hashtbl List String Wave
