lib/netlist/printer.mli: Circuit Parser
