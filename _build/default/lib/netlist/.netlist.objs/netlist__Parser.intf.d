lib/netlist/parser.mli: Circuit
