lib/netlist/eng.ml: Float List Printf String
