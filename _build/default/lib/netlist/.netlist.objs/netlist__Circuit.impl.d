lib/netlist/circuit.ml: Device Format List Printf String
