lib/netlist/device.ml: Eng Format Option Printf Wave
