lib/netlist/eng.mli:
