lib/netlist/wave.ml: Eng Float Format List
