let suffixes =
  [ ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let is_digit_part c =
  (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-' || c = 'e' || c = 'E'

let parse s =
  let s = String.trim s in
  if s = "" then None
  else begin
    (* Split the leading numeric part from the suffix.  'e' only belongs to
       the number when followed by a digit or sign (exponent), so "1e3"
       stays numeric while the "e" of a unit like "1kHertz" does not
       arise (suffix letters are consumed separately). *)
    let n = String.length s in
    let rec numeric_end i =
      if i >= n then i
      else if is_digit_part s.[i] then
        if (s.[i] = 'e' || s.[i] = 'E')
           && not (i + 1 < n && (s.[i + 1] = '+' || s.[i + 1] = '-'
                                 || (s.[i + 1] >= '0' && s.[i + 1] <= '9')))
        then i
        else if (s.[i] = '+' || s.[i] = '-') && i > 0
                && not (s.[i - 1] = 'e' || s.[i - 1] = 'E')
        then i
        else numeric_end (i + 1)
      else i
    in
    let split = numeric_end 0 in
    if split = 0 then None
    else begin
      match float_of_string_opt (String.sub s 0 split) with
      | None -> None
      | Some base ->
        let rest = String.lowercase_ascii (String.sub s split (n - split)) in
        if rest = "" then Some base
        else begin
          let mult =
            List.find_map
              (fun (suf, m) ->
                if String.length rest >= String.length suf
                   && String.sub rest 0 (String.length suf) = suf
                then Some m
                else None)
              suffixes
          in
          match mult with
          | Some m -> Some (base *. m)
          | None ->
            (* Unknown letters: treat as a bare unit ("5V"). *)
            if String.for_all (fun c -> c >= 'a' && c <= 'z') rest then Some base
            else None
        end
    end
  end

let parse_exn s =
  match parse s with
  | Some v -> v
  | None -> failwith ("Eng.parse: not a number: " ^ s)

let to_string x =
  if x = 0.0 then "0"
  else begin
    let a = Float.abs x in
    let pick =
      if a >= 1e12 then Some ("t", 1e12)
      else if a >= 1e9 then Some ("g", 1e9)
      else if a >= 1e6 then Some ("meg", 1e6)
      else if a >= 1e3 then Some ("k", 1e3)
      else if a >= 1.0 then None
      else if a >= 1e-3 then Some ("m", 1e-3)
      else if a >= 1e-6 then Some ("u", 1e-6)
      else if a >= 1e-9 then Some ("n", 1e-9)
      else if a >= 1e-12 then Some ("p", 1e-12)
      else Some ("f", 1e-15)
    in
    let mant, suf =
      match pick with
      | None -> (x, "")
      | Some (s, m) -> (x /. m, s)
    in
    let str = Printf.sprintf "%.6g" mant in
    str ^ suf
  end
