(** SPICE engineering-notation numbers.

    [parse "10k"] is 1e4, [parse "0.1u"] is 1e-7, [parse "2meg"] is 2e6.
    Suffixes (case-insensitive): t g meg k m u n p f; any trailing unit
    letters after a recognised suffix are ignored ("10pF" parses as
    1e-11). *)

(** [parse s] returns [None] when [s] is not a number. *)
val parse : string -> float option

(** Like {!parse} but raises [Failure]. *)
val parse_exn : string -> float

(** [to_string x] renders with the largest suffix that keeps the mantissa
    in [1, 1000), e.g. [to_string 1e4 = "10k"]. *)
val to_string : float -> string
