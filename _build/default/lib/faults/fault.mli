(** Hard (catastrophic) fault descriptions - the interface format between
    LIFT and AnaFAULT (the paper's fault list).

    Faults are electrical, expressed against netlist nets and device
    terminals, with the physical mechanism and probability of occurrence
    attached when the fault came from layout analysis. *)

(** One device terminal; [port] indexes {!Netlist.Device.nodes} order. *)
type terminal = { device : string; port : int }

type kind =
  | Bridge of { net_a : string; net_b : string }
      (** a short between two nets (local when the nets share a device,
          global otherwise - Fig. 2) *)
  | Break of { net : string; moved : terminal list }
      (** an open splitting [net]: the [moved] terminals end up on a new
          node (a split node of order n into k and n-k, Fig. 2); a single
          moved terminal is a local open *)
  | Stuck_open of { device : string }
      (** a transistor whose channel never conducts (missing gate over
          channel / broken channel diffusion) *)

type t = {
  id : string;  (** "#12" style identifier *)
  kind : kind;
  mechanism : string;  (** e.g. "metal1_short", "n_ds_short", "via_open" *)
  prob : float;  (** probability of occurrence; 0 when unknown *)
  note : string;  (** free-form locality information *)
}

val make : id:string -> kind:kind -> mechanism:string -> ?prob:float -> ?note:string -> unit -> t

(** [is_local circuit f] holds when a bridge joins two terminals of one
    device (the paper's "local short") or an open affects a single
    terminal. *)
val is_local : Netlist.Circuit.t -> t -> bool

(** [canonical k] normalises net and terminal order, so two kinds with
    the same electrical effect compare equal. *)
val canonical : kind -> kind

(** [equivalent a b] holds when the two faults have the same electrical
    effect (same kind up to net/terminal ordering), whatever their
    mechanism or probability. *)
val equivalent : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
