(** The fault-list file format: the interface between LIFT and AnaFAULT
    (the paper merges LIFT's list into AnaFAULT's configuration during
    setup).

    One fault per line:
    {v
    # comment
    #1 metal1_short BRI netA netB p=3.2e-07
    #2 poly_open OPEN net / M1.0 M2.2 p=4e-08
    #3 channel_open SOPEN M11 p=5.7e-07
    v}
    Terminals are written [device.port]. *)

exception Parse_error of int * string

val to_string : Fault.t list -> string

val of_string : string -> Fault.t list

val save : Fault.t list -> string -> unit

val load : string -> Fault.t list
