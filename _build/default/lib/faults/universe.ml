let two_terminal_faults mk name n1 n2 =
  mk (Fault.Break { net = n1; moved = [ { Fault.device = name; port = 0 } ] })
    (name ^ "_open")
  :: (if String.equal n1 n2 then []
      else [ mk (Fault.Bridge { net_a = n1; net_b = n2 }) (name ^ "_short") ])

let device_faults mk = function
  | Netlist.Device.M { name; d; g; s; _ } ->
    let opens =
      List.map
        (fun (port, net, tag) ->
          mk (Fault.Break { net; moved = [ { Fault.device = name; port } ] })
            (name ^ "_" ^ tag ^ "_open"))
        [ (0, d, "d"); (1, g, "g"); (2, s, "s") ]
    in
    let shorts =
      List.filter_map
        (fun (na, nb, tag) ->
          if String.equal na nb then None
          else Some (mk (Fault.Bridge { net_a = na; net_b = nb }) (name ^ "_" ^ tag ^ "_short")))
        [ (g, d, "gd"); (g, s, "gs"); (d, s, "ds") ]
    in
    opens @ shorts
  | Netlist.Device.R { name; n1; n2; _ } -> two_terminal_faults mk name n1 n2
  | Netlist.Device.C { name; n1; n2; _ } -> two_terminal_faults mk name n1 n2
  | Netlist.Device.L { name; n1; n2; _ } -> two_terminal_faults mk name n1 n2
  | Netlist.Device.D { name; na; nc; _ } -> two_terminal_faults mk name na nc
  | Netlist.Device.V _ | Netlist.Device.I _ -> []

let build circuit =
  let counter = ref 0 in
  let mk kind mechanism =
    incr counter;
    Fault.make ~id:(Printf.sprintf "U%d" !counter) ~kind ~mechanism ()
  in
  List.concat_map (device_faults mk) (Netlist.Circuit.devices circuit)

let count faults =
  List.fold_left
    (fun (opens, shorts) (f : Fault.t) ->
      match f.kind with
      | Fault.Break _ | Fault.Stuck_open _ -> (opens + 1, shorts)
      | Fault.Bridge _ -> (opens, shorts + 1))
    (0, 0) faults

let collapse faults =
  let rec fold acc = function
    | [] -> List.rev acc
    | f :: rest ->
      let same, rest = List.partition (Fault.equivalent f) rest in
      let merged =
        List.fold_left
          (fun (a : Fault.t) (b : Fault.t) -> { a with prob = a.prob +. b.prob })
          f same
      in
      fold ((merged, 1 + List.length same) :: acc) rest
  in
  fold [] faults
