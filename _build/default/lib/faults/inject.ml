type model =
  | Resistor of { r_short : float; r_open : float }
  | Source

let default_resistor = Resistor { r_short = 0.01; r_open = 100e6 }

let break_node_name (f : Fault.t) =
  let clean =
    String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_')
      f.Fault.id
  in
  "brk" ^ clean

let apply_bridge ~model circuit ~net_a ~net_b =
  if String.equal net_a net_b then circuit
  else begin
    match model with
    | Resistor { r_short; _ } ->
      Netlist.Circuit.add circuit
        (Netlist.Device.R
           { name = Netlist.Circuit.fresh_name circuit "F_BRI";
             n1 = net_a; n2 = net_b; value = r_short })
    | Source ->
      Netlist.Circuit.add circuit
        (Netlist.Device.V
           { name = Netlist.Circuit.fresh_name circuit "VF_BRI";
             np = net_a; nn = net_b; wave = Netlist.Wave.Dc 0.0 })
  end

let apply_break ~model circuit fault ~net ~moved =
  let fresh = Netlist.Circuit.fresh_node circuit (break_node_name fault) in
  let circuit =
    List.fold_left
      (fun c ({ Fault.device; port } : Fault.terminal) ->
        match Netlist.Circuit.find c device with
        | None -> raise Not_found
        | Some dev ->
          let nodes = Netlist.Device.nodes dev in
          (match List.nth_opt nodes port with
          | Some n when String.equal n net -> ()
          | Some _ | None -> raise Not_found);
          Netlist.Circuit.replace c (Netlist.Device.rename_port port fresh dev))
      circuit moved
  in
  match model with
  | Resistor { r_open; _ } ->
    Netlist.Circuit.add circuit
      (Netlist.Device.R
         { name = Netlist.Circuit.fresh_name circuit "F_OPEN";
           n1 = net; n2 = fresh; value = r_open })
  | Source ->
    Netlist.Circuit.add circuit
      (Netlist.Device.I
         { name = Netlist.Circuit.fresh_name circuit "IF_OPEN";
           np = net; nn = fresh; wave = Netlist.Wave.Dc 0.0 })

let apply_stuck_open circuit ~device =
  match Netlist.Circuit.find circuit device with
  | Some (Netlist.Device.M m) ->
    let dead =
      { m.model with Netlist.Device.mname = m.model.Netlist.Device.mname ^ "_SOPEN";
        kp = 0.0 }
    in
    Netlist.Circuit.replace circuit (Netlist.Device.M { m with model = dead })
  | Some (Netlist.Device.R _ | Netlist.Device.C _ | Netlist.Device.L _
         | Netlist.Device.V _ | Netlist.Device.I _ | Netlist.Device.D _)
  | None ->
    raise Not_found

let apply ~model circuit (fault : Fault.t) =
  match fault.kind with
  | Fault.Bridge { net_a; net_b } -> apply_bridge ~model circuit ~net_a ~net_b
  | Fault.Break { net; moved } -> apply_break ~model circuit fault ~net ~moved
  | Fault.Stuck_open { device } -> apply_stuck_open circuit ~device
