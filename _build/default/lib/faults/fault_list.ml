exception Parse_error of int * string

let terminal_to_string (t : Fault.terminal) = Printf.sprintf "%s.%d" t.device t.port

let line_of_fault (f : Fault.t) =
  let body =
    match f.kind with
    | Fault.Bridge { net_a; net_b } -> Printf.sprintf "BRI %s %s" net_a net_b
    | Fault.Break { net; moved } ->
      Printf.sprintf "OPEN %s / %s" net
        (String.concat " " (List.map terminal_to_string moved))
    | Fault.Stuck_open { device } -> Printf.sprintf "SOPEN %s" device
  in
  Printf.sprintf "%s %s %s p=%.6g" f.id f.mechanism body f.prob

let to_string faults = String.concat "\n" (List.map line_of_fault faults) ^ "\n"

let err ln fmt = Format.kasprintf (fun m -> raise (Parse_error (ln, m))) fmt

let parse_terminal ln w =
  match String.rindex_opt w '.' with
  | None -> err ln "terminal %S lacks a .port suffix" w
  | Some i -> begin
    let device = String.sub w 0 i in
    match int_of_string_opt (String.sub w (i + 1) (String.length w - i - 1)) with
    | Some port when device <> "" -> { Fault.device; port }
    | Some _ | None -> err ln "bad terminal %S" w
  end

let parse_line ln line =
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  let prob, words =
    match List.rev words with
    | last :: rest when String.length last > 2 && String.sub last 0 2 = "p=" -> begin
      match float_of_string_opt (String.sub last 2 (String.length last - 2)) with
      | Some p -> (p, List.rev rest)
      | None -> err ln "bad probability %S" last
    end
    | _ -> (0.0, words)
  in
  match words with
  | id :: mechanism :: "BRI" :: net_a :: net_b :: [] ->
    Fault.make ~id ~kind:(Fault.Bridge { net_a; net_b }) ~mechanism ~prob ()
  | id :: mechanism :: "OPEN" :: net :: "/" :: terminals when terminals <> [] ->
    let moved = List.map (parse_terminal ln) terminals in
    Fault.make ~id ~kind:(Fault.Break { net; moved }) ~mechanism ~prob ()
  | [ id; mechanism; "SOPEN"; device ] ->
    Fault.make ~id ~kind:(Fault.Stuck_open { device }) ~mechanism ~prob ()
  | _ -> err ln "cannot parse fault line %S" line

(* "# " (hash-space) and ";" open comments; a bare "#<n>" is a fault id. *)
let is_comment line =
  line = ""
  || line.[0] = ';'
  || (String.length line > 1 && line.[0] = '#' && line.[1] = ' ')

let of_string text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter_map (fun (ln, line) ->
         if is_comment line then None else Some (parse_line ln line))

let save faults path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string faults))

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (really_input_string ic (in_channel_length ic)))
