(** The schematic fault universe: the complete set of possible single
    hard faults assumed on each component, irrespective of whether they
    are realistic (the paper's default initial fault list, [20]).

    Per MOS transistor: opens on drain, gate and source; shorts
    gate-drain, gate-source and drain-source.  Per passive two-terminal
    element: one open and one terminal-to-terminal short.  Shorts between
    terminals that already share a net (e.g. designed gate-drain diodes)
    are skipped, and independent sources contribute no faults - exactly
    the accounting that gives the paper's VCO 79 opens and 73 shorts. *)

(** [build circuit] enumerates the universe; ids are ["U1"], ["U2"], ...
    in device order, opens before shorts per device. *)
val build : Netlist.Circuit.t -> Fault.t list

(** Partition helper: (opens, shorts) counts of a fault list. *)
val count : Fault.t list -> int * int

(** [device_faults mk dev] enumerates one device's universe faults using
    [mk kind mechanism] to build each fault (exposed for L2RFM's
    fallback on template-less elements). *)
val device_faults : (Fault.kind -> string -> Fault.t) -> Netlist.Device.t -> Fault.t list

(** [collapse faults] merges electrically equivalent faults (classic
    fault collapsing): parallel devices share their terminal shorts, so
    simulating one representative covers the class.  Probabilities sum;
    each representative carries the size of its class. *)
val collapse : Fault.t list -> (Fault.t * int) list
