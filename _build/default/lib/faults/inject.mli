(** Fault injection: rewriting a netlist so the kernel simulator simulates
    the faulty circuit.

    Two simulation models, following the paper (and [30][31]):
    - the {e resistor model} adds a small resistor for a short and a large
      resistor for an open (defaults 0.01 ohm / 100 Mohm);
    - the {e source model} adds a 0 V source for a short (an ideal short
      whose branch current is observable) and a 0 A source for an open
      (an ideal disconnection).

    A transistor stuck-open is modelled identically under both: the
    device's transconductance is zeroed (channel never conducts) while its
    gate capacitances remain. *)

type model =
  | Resistor of { r_short : float; r_open : float }
  | Source

(** The paper's resistor-model values: 0.01 ohm short, 100 Mohm open. *)
val default_resistor : model

(** [apply ~model circuit fault] returns the faulty circuit.  Injected
    devices are named [F_<kind><n>].  A bridge between two nets that are
    already the same net returns the circuit unchanged (the fault has no
    electrical effect).  Raises [Not_found] if the fault references
    devices or ports absent from [circuit]. *)
val apply : model:model -> Netlist.Circuit.t -> Fault.t -> Netlist.Circuit.t

(** The name of the node created for the detached side of a [Break]
    fault, for probing. *)
val break_node_name : Fault.t -> string
