lib/faults/inject.mli: Fault Netlist
