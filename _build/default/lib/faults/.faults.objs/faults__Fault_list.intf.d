lib/faults/fault_list.mli: Fault
