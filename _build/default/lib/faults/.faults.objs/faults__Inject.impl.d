lib/faults/inject.ml: Fault List Netlist String
