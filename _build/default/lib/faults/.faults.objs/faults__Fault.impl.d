lib/faults/fault.ml: Format List Netlist String
