lib/faults/fault.mli: Format Netlist
