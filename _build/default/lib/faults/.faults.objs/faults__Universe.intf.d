lib/faults/universe.mli: Fault Netlist
