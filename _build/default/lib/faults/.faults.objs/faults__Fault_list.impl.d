lib/faults/fault_list.ml: Fault Format Fun List Printf String
