lib/faults/universe.ml: Fault List Netlist Printf String
