type terminal = { device : string; port : int }

type kind =
  | Bridge of { net_a : string; net_b : string }
  | Break of { net : string; moved : terminal list }
  | Stuck_open of { device : string }

type t = {
  id : string;
  kind : kind;
  mechanism : string;
  prob : float;
  note : string;
}

let make ~id ~kind ~mechanism ?(prob = 0.0) ?(note = "") () =
  { id; kind; mechanism; prob; note }

let is_local circuit t =
  match t.kind with
  | Stuck_open _ -> true
  | Break { moved; _ } -> List.length moved <= 1
  | Bridge { net_a; net_b } ->
    List.exists
      (fun d ->
        let nodes = Netlist.Device.nodes d in
        List.exists (String.equal net_a) nodes && List.exists (String.equal net_b) nodes)
      (Netlist.Circuit.devices circuit)

let canonical = function
  | Bridge { net_a; net_b } ->
    let a, b = if String.compare net_a net_b <= 0 then (net_a, net_b) else (net_b, net_a) in
    Bridge { net_a = a; net_b = b }
  | Break { net; moved } -> Break { net; moved = List.sort compare moved }
  | Stuck_open _ as k -> k

let equivalent a b = canonical a.kind = canonical b.kind

let pp_terminal ppf t = Format.fprintf ppf "%s.%d" t.device t.port

let pp ppf t =
  let pp_kind ppf = function
    | Bridge { net_a; net_b } -> Format.fprintf ppf "BRI %s<->%s" net_a net_b
    | Break { net; moved } ->
      Format.fprintf ppf "OPEN %s /" net;
      List.iter (fun m -> Format.fprintf ppf " %a" pp_terminal m) moved
    | Stuck_open { device } -> Format.fprintf ppf "SOPEN %s" device
  in
  Format.fprintf ppf "%s %s %a" t.id t.mechanism pp_kind t.kind;
  if t.prob > 0.0 then Format.fprintf ppf " p=%.3g" t.prob;
  if t.note <> "" then Format.fprintf ppf " (%s)" t.note

let to_string t = Format.asprintf "%a" pp t
