(** The CAT (Computer-Aided Test) system of the paper: LIFT and AnaFAULT
    linked into one flow (Fig. 1).

    {v
      all faults --------\
      schematic -> [L2RFM] -> fault list -> AnaFAULT -> coverage
      layout ----> [LIFT/GLRFM] --^
    v}

    This module is glue: each stage lives in its own library ([geom],
    [layout], [netlist], [extract], [defects], [sim], [faults],
    [anafault], [vco]); here the common pipelines are one call. *)

(** Everything the layout-driven flow produces. *)
type glrfm = {
  extraction : Extract.Extraction.t;
  lvs : Extract.Compare.mismatch list;
      (** empty when the layout implements [golden] *)
  lift : Defects.Lift.result;
}

(** [run_glrfm ?lift_options ?extractor_options ~golden mask] extracts the
    circuit from [mask], verifies it against the [golden] schematic, and
    runs LIFT.  Raises {!Extract.Extractor.Extract_error} on malformed
    layouts. *)
val run_glrfm :
  ?lift_options:Defects.Lift.options ->
  ?extractor_options:Extract.Extractor.options ->
  golden:Netlist.Circuit.t ->
  Layout.Mask.t ->
  glrfm

(** [run_fault_simulation ?domains config circuit faults] runs AnaFAULT
    serially ([domains] absent or 1) or on that many domains. *)
val run_fault_simulation :
  ?domains:int ->
  Anafault.Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Anafault.Simulate.run

(** The paper's demonstrator, packaged: VCO schematic, generated layout,
    extractor options that recover the schematic, and the 400-step / 4 us
    AnaFAULT configuration observing node 11. *)
module Demo : sig
  val schematic : unit -> Netlist.Circuit.t

  val mask : unit -> Layout.Mask.t

  val extractor_options : Extract.Extractor.options

  val config : Anafault.Simulate.config

  (** [universe ()] is the complete schematic fault list (79 opens + 73
      shorts for the VCO). *)
  val universe : unit -> Faults.Fault.t list
end
