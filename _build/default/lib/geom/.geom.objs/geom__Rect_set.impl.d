lib/geom/rect_set.ml: Array Hashtbl Int List Rect Union_find
