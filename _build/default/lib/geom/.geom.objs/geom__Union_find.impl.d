lib/geom/union_find.ml: Array Hashtbl Int List
