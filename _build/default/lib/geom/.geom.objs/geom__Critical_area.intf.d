lib/geom/critical_area.mli:
