lib/geom/union_find.mli:
