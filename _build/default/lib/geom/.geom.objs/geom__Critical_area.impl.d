lib/geom/critical_area.ml: Float
