lib/geom/rect_set.mli: Rect
