type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let size t = Array.length t.parent

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b

let groups t =
  let n = size t in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> Int.compare x y
         | [], _ | _, [] -> assert false)

let count t =
  let n = size t in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr c
  done;
  !c
