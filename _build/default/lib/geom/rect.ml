type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make x0 y0 x1 y1 =
  { x0 = min x0 x1; y0 = min y0 y1; x1 = max x0 x1; y1 = max y0 y1 }

let of_corners (p : Point.t) (q : Point.t) = make p.x p.y q.x q.y

let of_center ~cx ~cy ~w ~h =
  assert (w >= 0 && h >= 0);
  make (cx - (w / 2)) (cy - (h / 2)) (cx - (w / 2) + w) (cy - (h / 2) + h)

let width r = r.x1 - r.x0

let height r = r.y1 - r.y0

let area r = width r * height r

let is_degenerate r = r.x0 = r.x1 || r.y0 = r.y1

let x_span r = Interval.make r.x0 r.x1

let y_span r = Interval.make r.y0 r.y1

let center r = Point.make ((r.x0 + r.x1) / 2) ((r.y0 + r.y1) / 2)

let inter a b =
  let x0 = max a.x0 b.x0
  and y0 = max a.y0 b.y0
  and x1 = min a.x1 b.x1
  and y1 = min a.y1 b.y1 in
  if x0 <= x1 && y0 <= y1 then Some { x0; y0; x1; y1 } else None

let overlaps a b =
  min a.x1 b.x1 > max a.x0 b.x0 && min a.y1 b.y1 > max a.y0 b.y0

let touches a b =
  min a.x1 b.x1 >= max a.x0 b.x0 && min a.y1 b.y1 >= max a.y0 b.y0

let contains_point r (p : Point.t) =
  r.x0 <= p.x && p.x <= r.x1 && r.y0 <= p.y && p.y <= r.y1

let contains a b = a.x0 <= b.x0 && a.y0 <= b.y0 && b.x1 <= a.x1 && b.y1 <= a.y1

let expand r d =
  let x0 = r.x0 - d and x1 = r.x1 + d and y0 = r.y0 - d and y1 = r.y1 + d in
  if x0 <= x1 && y0 <= y1 then { x0; y0; x1; y1 }
  else
    let c = center r in
    { x0 = c.x; y0 = c.y; x1 = c.x; y1 = c.y }

let translate r (p : Point.t) =
  { x0 = r.x0 + p.x; y0 = r.y0 + p.y; x1 = r.x1 + p.x; y1 = r.y1 + p.y }

let hull a b =
  { x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1 }

let gap a b =
  let dx = max 0 (max a.x0 b.x0 - min a.x1 b.x1)
  and dy = max 0 (max a.y0 b.y0 - min a.y1 b.y1) in
  (dx, dy)

let facing a b =
  let dx, dy = gap a b in
  if dx = 0 && dy = 0 then None
  else if dx > 0 && dy = 0 then
    let l = Interval.overlap (y_span a) (y_span b) in
    if l > 0 then Some (dx, l) else None
  else if dy > 0 && dx = 0 then
    let l = Interval.overlap (x_span a) (x_span b) in
    if l > 0 then Some (dy, l) else None
  else None

(* Subtraction peels at most four disjoint slabs off [a]: full-width bands
   above and below [b], then left/right slabs of the remaining middle band. *)
let subtract a b =
  match inter a b with
  | None -> [ a ]
  | Some i ->
    if contains i a then []
    else
      let pieces = ref [] in
      let push x0 y0 x1 y1 =
        if x1 > x0 && y1 > y0 then pieces := { x0; y0; x1; y1 } :: !pieces
      in
      push a.x0 a.y0 a.x1 i.y0;
      push a.x0 i.y1 a.x1 a.y1;
      push a.x0 i.y0 i.x0 i.y1;
      push i.x1 i.y0 a.x1 i.y1;
      !pieces

let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1

let compare a b = Stdlib.compare (a.x0, a.y0, a.x1, a.y1) (b.x0, b.y0, b.x1, b.y1)

let pp ppf r = Format.fprintf ppf "[%d,%d..%d,%d]" r.x0 r.y0 r.x1 r.y1

let to_string r = Format.asprintf "%a" pp r
