(** Closed integer intervals [lo, hi] with [lo <= hi].

    Used for the 1-D projections of rectangles when computing overlaps,
    facing lengths and spacings. *)

type t = private { lo : int; hi : int }

(** [make a b] is the interval spanning [a] and [b] (order-insensitive). *)
val make : int -> int -> t

val length : t -> int

val contains : t -> int -> bool

(** [overlap a b] is the length of the intersection of [a] and [b], or 0
    when they are disjoint.  Touching intervals overlap by 0. *)
val overlap : t -> t -> int

(** [inter a b] is the common sub-interval, if any.  Touching intervals
    ([a.hi = b.lo]) yield a zero-length interval. *)
val inter : t -> t -> t option

(** [gap a b] is the distance separating [a] and [b]; 0 when they overlap
    or touch. *)
val gap : t -> t -> int

(** [hull a b] is the smallest interval containing both. *)
val hull : t -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
