(** Imperative union-find over the integers [0 .. n-1], with path
    compression and union by rank.

    Used for layer connectivity (shapes that touch belong to one net) and
    for regrouping nets after open-fault injection. *)

type t

val create : int -> t

val size : t -> int

val find : t -> int -> int

(** [union t a b] merges the classes of [a] and [b]; returns the resulting
    representative. *)
val union : t -> int -> int -> int

val same : t -> int -> int -> bool

(** [groups t] lists the equivalence classes, each as the list of its
    members in increasing order.  Classes appear in order of their smallest
    member. *)
val groups : t -> int list list

(** [count t] is the number of distinct classes. *)
val count : t -> int
