type t = { lo : int; hi : int }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }

let length t = t.hi - t.lo

let contains t x = t.lo <= x && x <= t.hi

let overlap a b = max 0 (min a.hi b.hi - max a.lo b.lo)

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let gap a b = max 0 (max a.lo b.lo - min a.hi b.hi)

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf t = Format.fprintf ppf "[%d,%d]" t.lo t.hi
