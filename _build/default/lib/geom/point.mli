(** Integer 2-D points.

    All layout coordinates in this code base are integers, interpreted as
    nanometres. *)

type t = { x : int; y : int }

val make : int -> int -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

(** [manhattan a b] is the L1 distance between [a] and [b]. *)
val manhattan : t -> t -> int

(** [chebyshev a b] is the L-infinity distance between [a] and [b]. *)
val chebyshev : t -> t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
