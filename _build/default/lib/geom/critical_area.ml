type size_pdf =
  | Cubic of { x_min : float }
  | Uniform of { x_min : float; x_max : float }

let pdf d x =
  match d with
  | Cubic { x_min } -> if x < x_min then 0.0 else 2.0 *. x_min *. x_min /. (x *. x *. x)
  | Uniform { x_min; x_max } ->
    if x < x_min || x > x_max then 0.0 else 1.0 /. (x_max -. x_min)

let short_area ~spacing ~length x =
  let s = float_of_int spacing in
  if x <= s then 0.0 else float_of_int length *. (x -. s)

let open_area ~width ~length x =
  let w = float_of_int width in
  if x <= w then 0.0 else float_of_int length *. (x -. w)

let contact_open_area ~side x =
  let s = float_of_int side in
  if x <= s then 0.0 else (x -. s) *. (x -. s)

(* Simpson's rule on a log-spaced grid; the integrands are smooth and decay
   like 1/x^2 or slower, so a generous fixed cutoff loses only a negligible
   tail (bounded by ~1/cutoff relative mass). *)
let integrate f lo hi =
  if hi <= lo then 0.0
  else begin
    let n = 4096 in
    let ratio = (hi /. lo) ** (1.0 /. float_of_int n) in
    let acc = ref 0.0 in
    let x = ref lo in
    for _ = 1 to n do
      let a = !x and b = !x *. ratio in
      let m = 0.5 *. (a +. b) in
      acc := !acc +. ((b -. a) /. 6.0 *. (f a +. (4.0 *. f m) +. f b));
      x := b
    done;
    !acc
  end

let weighted ?x_max d a_c =
  let lo, hi =
    match d with
    | Cubic { x_min } ->
      (x_min, match x_max with Some m -> m | None -> 1000.0 *. x_min)
    | Uniform { x_min; x_max = hi } -> (x_min, hi)
  in
  let body = integrate (fun x -> a_c x *. pdf d x) lo hi in
  match d with
  | Uniform _ -> body
  | Cubic _ when x_max <> None -> body
  | Cubic { x_min } ->
    (* Analytic tail beyond the cutoff: every profile here becomes affine
       a + b*x for large x, and
       int_X^inf (a + b x) 2 x_min^2 / x^3 dx = x_min^2 (a / X^2 + 2 b / X). *)
    let dx = 0.01 *. hi in
    let slope = (a_c hi -. a_c (hi -. dx)) /. dx in
    let intercept = a_c hi -. (slope *. hi) in
    body +. (x_min *. x_min *. ((intercept /. (hi *. hi)) +. (2.0 *. slope /. hi)))

(* Exact integrals for the 1/x^3 density and linear area profiles.
   Untruncated, a profile L*(x - s)+ weighs L*x_min^2/s for s >= x_min and
   L*(2*x_min - s) for s < x_min; truncating at X removes the tail
   int_X^inf L*(x-s) 2 x_min^2/x^3 dx = L*x_min^2*(2/X - s/X^2), i.e. a
   factor (1 - s/X)^2 on the s >= x_min form. *)
let weighted_linear_cubic ?x_max ~x_min ~onset ~slope () =
  let s = float_of_int onset in
  let untruncated =
    if s >= x_min then slope *. x_min *. x_min /. s
    else slope *. ((2.0 *. x_min) -. s)
  in
  match x_max with
  | None -> untruncated
  | Some hi ->
    if s >= hi then 0.0
    else begin
      let tail = slope *. x_min *. x_min *. ((2.0 /. hi) -. (s /. (hi *. hi))) in
      Float.max 0.0 (untruncated -. tail)
    end

let weighted_short_cubic ?x_max ~x_min ~spacing ~length () =
  weighted_linear_cubic ?x_max ~x_min ~onset:spacing ~slope:(float_of_int length) ()

let weighted_open_cubic ?x_max ~x_min ~width ~length () =
  weighted_linear_cubic ?x_max ~x_min ~onset:width ~slope:(float_of_int length) ()

let nm2_to_cm2 a = a *. 1e-14
