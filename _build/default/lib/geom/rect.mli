(** Axis-aligned integer rectangles.

    The invariant [x0 <= x1 && y0 <= y1] always holds; [make] normalises its
    arguments.  Rectangles are half-open in no direction: [x0 = x1] or
    [y0 = y1] denotes a degenerate (zero-area) rectangle, which is still a
    valid value (used e.g. for cut lines). *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

(** [make x0 y0 x1 y1] normalises corners so the invariant holds. *)
val make : int -> int -> int -> int -> t

(** [of_corners p q] is the bounding box of the two points. *)
val of_corners : Point.t -> Point.t -> t

(** [of_center ~cx ~cy ~w ~h] is the [w] x [h] rectangle centred at
    ([cx], [cy]).  [w] and [h] must be non-negative and even for an exact
    centre. *)
val of_center : cx:int -> cy:int -> w:int -> h:int -> t

val width : t -> int

val height : t -> int

val area : t -> int

val is_degenerate : t -> bool

val x_span : t -> Interval.t

val y_span : t -> Interval.t

val center : t -> Point.t

(** [inter a b] is the common rectangle, if the interiors or boundaries
    meet.  The result may be degenerate when [a] and [b] only touch. *)
val inter : t -> t -> t option

(** [overlaps a b] holds when the interiors intersect (positive area). *)
val overlaps : t -> t -> bool

(** [touches a b] holds when interiors intersect or boundaries meet; this
    is the connectivity predicate used for same-layer electrical contact. *)
val touches : t -> t -> bool

val contains_point : t -> Point.t -> bool

(** [contains a b] holds when [b] lies entirely inside [a]. *)
val contains : t -> t -> bool

(** [expand r d] grows [r] by [d] on every side ([d] may be negative to
    shrink; the result is clamped to a degenerate rectangle at the centre
    if over-shrunk). *)
val expand : t -> int -> t

val translate : t -> Point.t -> t

val hull : t -> t -> t

(** [gap a b] is the pair of separations [(dx, dy)] along each axis, both 0
    when the rectangles overlap or touch. *)
val gap : t -> t -> int * int

(** [facing a b] describes how [a] and [b] face each other across empty
    space: [Some (spacing, length)] when they are disjoint but their
    projections on one axis overlap by [length] > 0 with [spacing] > 0
    along the other axis; [None] when they touch/overlap or are purely
    diagonal neighbours. *)
val facing : t -> t -> (int * int) option

(** [subtract a b] is [a] minus [b], as at most four disjoint rectangles. *)
val subtract : t -> t -> t list

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
