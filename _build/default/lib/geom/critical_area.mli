(** Critical-area evaluation for spot defects (Stapper / Ferris-Prabhu).

    A spot defect of diameter [x] landing on the layout causes a failure
    when its centre falls inside the {e critical area} [a_c x] of a fault
    site.  The expected number of faults is the defect density times the
    size-weighted critical area [integral a_c(x) p(x) dx], with [p] the
    defect-size probability density.

    All geometric inputs are integers in nanometres; results are floats in
    nm^2 (or cm^2 via {!nm2_to_cm2}). *)

(** Defect-size probability density on [x >= x_min]:
    - [Cubic] is the Ferris-Prabhu 1/x^3 tail, [p x = 2 x_min^2 / x^3],
      the standard model for lithography-dominated spot defects;
    - [Uniform] spreads the mass evenly over [x_min, x_max] (ablation). *)
type size_pdf = Cubic of { x_min : float } | Uniform of { x_min : float; x_max : float }

(** [pdf d x] is the density of [d] at diameter [x] (0 outside support). *)
val pdf : size_pdf -> float -> float

(** [short_area ~spacing ~length x] is the critical area of a bridge
    between two parallel edges facing over [length] at [spacing], for a
    (square) defect of diameter [x]: [length * (x - spacing)] clamped
    at 0. *)
val short_area : spacing:int -> length:int -> float -> float

(** [open_area ~width ~length x] is the critical area of an open cut of a
    wire of [width] along its [length]: [length * (x - width)] clamped
    at 0. *)
val open_area : width:int -> length:int -> float -> float

(** [contact_open_area ~side x] is the critical area for a defect covering
    a [side] x [side] contact/via: a defect must blanket the cut, giving
    [(x - side)^2] clamped at 0. *)
val contact_open_area : side:int -> float -> float

(** [weighted ?x_max pdf a_c] integrates [a_c x * pdf x dx] over the
    support of [pdf], truncated at [x_max] when given (defects larger than
    the process's maximum observed spot size do not occur; the lost
    probability mass is (x_min/x_max)^2 for the cubic density).  General
    profiles are integrated numerically (Simpson on a log grid) with an
    analytic tail correction when untruncated. *)
val weighted : ?x_max:float -> size_pdf -> (float -> float) -> float

(** Closed forms for the cubic pdf (exact, used as oracles in tests):
    [weighted_short_cubic ~x_min ~spacing ~length = length * x_min^2 / spacing]
    when [spacing >= x_min]; truncation at [x_max] multiplies this by
    [(1 - spacing/x_max)^2]. *)
val weighted_short_cubic :
  ?x_max:float -> x_min:float -> spacing:int -> length:int -> unit -> float

val weighted_open_cubic :
  ?x_max:float -> x_min:float -> width:int -> length:int -> unit -> float

val nm2_to_cm2 : float -> float
