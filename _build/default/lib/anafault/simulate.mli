(** The automatic fault-simulation loop: nominal run, then one kernel
    simulation per fault with result comparison (the paper's repetitive
    preprocessing / kernel / post-processing cycle). *)

type config = {
  model : Faults.Inject.model;  (** fault simulation model *)
  tran : Netlist.Parser.tran;  (** analysis request *)
  observed : string;  (** the node whose waveform the test observes *)
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
  samples : int;  (** output grid size (the paper uses a 400-step run) *)
}

(** [default_config ~tran ~observed] uses the source model, the paper's
    tolerances and a 400-point grid. *)
val default_config : tran:Netlist.Parser.tran -> observed:string -> config

type outcome =
  | Detected of float  (** first detection time *)
  | Undetected
  | Sim_failed of string  (** kernel did not converge *)

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  total_cpu_seconds : float;
}

(** [nominal config circuit] runs the fault-free simulation, resampled
    onto the uniform output grid. *)
val nominal : config -> Netlist.Circuit.t -> Sim.Waveform.t * Sim.Engine.stats

(** [run_one config circuit ~nominal fault] injects, simulates and
    compares one fault. *)
val run_one :
  config -> Netlist.Circuit.t -> nominal:Sim.Waveform.t -> Faults.Fault.t -> fault_result

(** [run config circuit faults] performs the whole loop serially.
    [progress] (if given) is called after each fault with (done, total). *)
val run :
  ?progress:(int -> int -> unit) ->
  config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  run

(** Detected / undetected / failed counts. *)
val tally : run -> int * int * int
