let detection_times (run : Simulate.run) =
  List.filter_map
    (fun (r : Simulate.fault_result) ->
      match r.outcome with
      | Simulate.Detected t -> Some t
      | Simulate.Undetected | Simulate.Sim_failed _ -> None)
    run.results

let curve (run : Simulate.run) ~points =
  if points < 2 then invalid_arg "Coverage.curve: need at least 2 points";
  let total = List.length run.results in
  let times = detection_times run in
  let tstop = run.config.tran.Netlist.Parser.tstop in
  List.init points (fun i ->
      let t = tstop *. float_of_int i /. float_of_int (points - 1) in
      let detected = List.length (List.filter (fun td -> td <= t) times) in
      let pct =
        if total = 0 then 0.0 else 100.0 *. float_of_int detected /. float_of_int total
      in
      (t, pct))

let final_percent run =
  let total = List.length run.Simulate.results in
  if total = 0 then 0.0
  else
    100.0
    *. float_of_int (List.length (detection_times run))
    /. float_of_int total

let time_to_percent run p =
  let total = List.length run.Simulate.results in
  if total = 0 then None
  else begin
    let times = List.sort compare (detection_times run) in
    let need = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
    List.nth_opt times (max 0 (need - 1))
  end

let weighted_percent (run : Simulate.run) =
  let num, den =
    List.fold_left
      (fun (num, den) (r : Simulate.fault_result) ->
        let w = r.fault.Faults.Fault.prob in
        match r.outcome with
        | Simulate.Detected _ -> (num +. w, den +. w)
        | Simulate.Undetected | Simulate.Sim_failed _ -> (num, den +. w))
      (0.0, 0.0) run.results
  in
  if den = 0.0 then 0.0 else 100.0 *. num /. den
