(** AC fault simulation: the frequency-domain counterpart of the
    transient loop - the established approach of the AC/DC fault
    simulators the paper builds on (its refs [30][31][6], e.g. linear
    microcircuit fault detection from magnitude responses).

    Each fault is injected (resistor model by default - a 0 V source is
    invisible to small-signal magnitudes), the small-signal transfer
    function to the observed node is recomputed, and the fault counts as
    detected when the magnitude response leaves a +-[tol_db] band around
    the nominal response at one or more frequencies. *)

type config = {
  model : Faults.Inject.model;
  source : string;  (** AC-driven independent source *)
  observed : string;
  freqs : float list;  (** analysis grid, Hz, increasing *)
  tol_db : float;  (** acceptance band around the nominal magnitude *)
  sim_options : Sim.Engine.options;
}

(** Resistor model, 3 dB band, 10 points/decade over 10 Hz .. 100 MHz. *)
val default_config : source:string -> observed:string -> config

type outcome =
  | Detected of float  (** lowest frequency at which the band is left *)
  | Undetected
  | Sim_failed of string

type fault_result = { fault : Faults.Fault.t; outcome : outcome }

type run = {
  config : config;
  nominal : Sim.Spectrum.t;
  results : fault_result list;
}

val run : config -> Netlist.Circuit.t -> Faults.Fault.t list -> run

(** Detected / undetected / failed counts. *)
val tally : run -> int * int * int

val pp_summary : Format.formatter -> run -> unit
