let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") ~series () =
  let all_points = List.concat_map snd series in
  match all_points with
  | [] -> "(no data)\n"
  | (x0, y0) :: rest ->
    let fold (xmin, xmax, ymin, ymax) (x, y) =
      (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y)
    in
    let xmin, xmax, ymin, ymax = List.fold_left fold (x0, x0, y0, y0) rest in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot_point g (x, y) =
      let cx =
        int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
      in
      let cy =
        int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
      in
      if cx >= 0 && cx < width && cy >= 0 && cy < height then
        grid.(height - 1 - cy).(cx) <- g
    in
    (* Linear interpolation between samples so sparse series still read as
       lines. *)
    let plot_series g pts =
      let rec walk = function
        | [] -> ()
        | [ p ] -> plot_point g p
        | ((x1, y1) as p) :: ((x2, y2) :: _ as rest) ->
          plot_point g p;
          let steps = width in
          for i = 1 to steps - 1 do
            let f = float_of_int i /. float_of_int steps in
            plot_point g (x1 +. (f *. (x2 -. x1)), y1 +. (f *. (y2 -. y1)))
          done;
          walk rest
      in
      walk pts
    in
    List.iteri
      (fun i (_, pts) -> plot_series glyphs.(i mod Array.length glyphs) pts)
      series;
    let buf = Buffer.create (width * height * 2) in
    if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
    Array.iteri
      (fun row line ->
        let edge =
          if row = 0 then Printf.sprintf "%10.3g +" ymax
          else if row = height - 1 then Printf.sprintf "%10.3g +" ymin
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf edge;
        Buffer.add_string buf (String.init width (fun i -> line.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%11s%.3g%s%.3g\n" "" xmin
         (String.make (max 1 (width - 12)) ' ')
         xmax);
    if x_label <> "" then Buffer.add_string buf (Printf.sprintf "%*s\n" (width / 2) x_label);
    List.iteri
      (fun i (label, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" glyphs.(i mod Array.length glyphs) label))
      series;
    Buffer.contents buf
