(** Character-cell plots for terminal reports (AnaFAULT presented its
    results as fault-coverage plots; this renders them, and the Fig. 4/6
    waveforms, without any graphics dependency). *)

(** [render ~width ~height ~series ()] plots each (label, points) series
    with its own glyph on a shared frame; axes are annotated with the data
    extrema.  Points are (x, y) pairs, x ascending. *)
val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
