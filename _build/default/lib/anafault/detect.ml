type tolerance = { tol_v : float; tol_t : float }

let paper_tolerance = { tol_v = 2.0; tol_t = 0.2e-6 }

(* Detection works on the two responses sampled over the nominal time
   grid.  A fault is detected at grid instant [t] when either

   - the raw responses have differed by more than [tol_v] continuously
     for the whole preceding time tolerance (stuck levels, large shifts:
     a genuine, persistent discrepancy), or
   - the tol_t-wide moving averages have: an oscillation whose frequency
     changes so much that the raw signals keep crossing still carries a
     persistently different local mean.

   Both criteria need a full window, so nothing can be detected before
   [tol_t] - the flat start of the paper's Fig. 5 plot.  Phase wobble
   well inside the time tolerance moves neither criterion: the raw
   divergence collapses at each crossing and the local means stay
   close. *)

type sampled = { dt : float; nom : float array; flt : float array }

let sample ~signal ~nominal ~faulty =
  let times = Sim.Waveform.times nominal in
  let n = Array.length times in
  if n < 2 then invalid_arg "Detect: nominal waveform too short";
  let nom = Sim.Waveform.samples nominal signal in
  let flt = Array.map (Sim.Waveform.value_at faulty signal) times in
  { dt = (times.(n - 1) -. times.(0)) /. float_of_int (n - 1); nom; flt }

let moving_average ~half x =
  let n = Array.length x in
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. x.(i)
  done;
  Array.init n (fun i ->
      let lo = max 0 (i - half) and hi = min (n - 1) (i + half) in
      (prefix.(hi + 1) -. prefix.(lo)) /. float_of_int (hi + 1 - lo))

(* Index of the first grid point from which a window of [k] samples of
   continuous divergence ends, or None. *)
let first_sustained ~tol_v ~k a b =
  let n = Array.length a in
  let rec go i run =
    if i >= n then None
    else begin
      let run = if Float.abs (a.(i) -. b.(i)) > tol_v then run + 1 else 0 in
      if run >= k + 1 then Some i else go (i + 1) run
    end
  in
  go 0 0

let detection_index ~tolerance s =
  let k = max 1 (int_of_float (Float.round (tolerance.tol_t /. s.dt))) in
  let raw = first_sustained ~tol_v:tolerance.tol_v ~k s.nom s.flt in
  let nom_avg = moving_average ~half:(k / 2) s.nom in
  let flt_avg = moving_average ~half:(k / 2) s.flt in
  let smooth = first_sustained ~tol_v:tolerance.tol_v ~k nom_avg flt_avg in
  match (raw, smooth) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as r), None | None, (Some _ as r) -> r
  | None, None -> None

let first_detection ~tolerance ~signal ~nominal ~faulty =
  let s = sample ~signal ~nominal ~faulty in
  match detection_index ~tolerance s with
  | Some i -> Some (Sim.Waveform.times nominal).(i)
  | None -> None

let detected_at ~tolerance ~signal ~nominal ~faulty t =
  match first_detection ~tolerance ~signal ~nominal ~faulty with
  | Some td -> td <= t
  | None -> false
