(** Fault-coverage evaluation: the progress of detection over the test
    (simulation) time - the data behind the paper's Fig. 5 plot. *)

(** [curve run ~points] samples cumulative coverage (in percent of all
    faults, failed simulations counted as undetected) on a uniform grid of
    [points] times spanning the analysis; returns (time, percent) pairs. *)
val curve : Simulate.run -> points:int -> (float * float) list

(** [final_percent run] is the coverage at the end of the test. *)
val final_percent : Simulate.run -> float

(** [time_to_percent run p] is the earliest time at which coverage reaches
    [p] percent, if it ever does. *)
val time_to_percent : Simulate.run -> float -> float option

(** [weighted_percent run] weights each fault by its probability of
    occurrence (LIFT's ranking): the expected escape fraction depends on
    the likely faults, not the raw count.  Faults with probability 0 count
    with weight 0. *)
val weighted_percent : Simulate.run -> float
