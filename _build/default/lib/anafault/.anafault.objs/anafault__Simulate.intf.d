lib/anafault/simulate.mli: Detect Faults Netlist Sim
