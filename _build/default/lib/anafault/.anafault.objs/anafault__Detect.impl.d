lib/anafault/detect.ml: Array Float Sim
