lib/anafault/diagnose.ml: Array Faults Float List Netlist Sim Simulate
