lib/anafault/report.ml: Ascii_plot Buffer Coverage Faults Format Hashtbl List Netlist Option Parsim Printf Sim Simulate
