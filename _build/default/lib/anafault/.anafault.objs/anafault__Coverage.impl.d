lib/anafault/coverage.ml: Faults List Netlist Simulate
