lib/anafault/testprep.ml: Coverage Float Format List Netlist Parsim Simulate Stdlib
