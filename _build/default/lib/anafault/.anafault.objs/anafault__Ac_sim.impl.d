lib/anafault/ac_sim.ml: Array Faults Float Format List Sim
