lib/anafault/testprep.mli: Faults Format Netlist Simulate
