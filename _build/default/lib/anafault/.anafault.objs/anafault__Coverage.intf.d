lib/anafault/coverage.mli: Simulate
