lib/anafault/diagnose.mli: Faults Netlist Sim Simulate
