lib/anafault/ac_sim.mli: Faults Format Netlist Sim
