lib/anafault/simulate.ml: Detect Faults List Netlist Printexc Sim Sys Unix
