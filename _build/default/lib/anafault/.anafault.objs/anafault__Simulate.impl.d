lib/anafault/simulate.ml: Detect Faults List Netlist Sim Sys
