lib/anafault/ascii_plot.mli:
