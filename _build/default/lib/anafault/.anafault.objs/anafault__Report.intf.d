lib/anafault/report.mli: Format Parsim Simulate
