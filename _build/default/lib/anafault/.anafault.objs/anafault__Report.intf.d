lib/anafault/report.mli: Format Simulate
