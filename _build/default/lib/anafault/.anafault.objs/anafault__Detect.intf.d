lib/anafault/detect.mli: Sim
