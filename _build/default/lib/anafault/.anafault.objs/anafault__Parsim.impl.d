lib/anafault/parsim.ml: Array Atomic Domain Int List Sim Simulate Sys Unix
