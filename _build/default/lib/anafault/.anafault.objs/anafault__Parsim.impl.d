lib/anafault/parsim.ml: Domain Int List Simulate Unix
