lib/anafault/parsim.mli: Faults Netlist Simulate
