(* Static chunking: fault k goes to domain k mod n.  Per-fault runtimes
   are similar (same circuit, same analysis), so round-robin balances
   well without a work queue. *)
let run ~domains config circuit faults =
  let domains = max 1 (min domains (Domain.recommended_domain_count ())) in
  let t0 = Unix.gettimeofday () in
  let nominal, nominal_stats = Simulate.nominal config circuit in
  let indexed = List.mapi (fun i f -> (i, f)) faults in
  let chunk d =
    List.filter (fun (i, _) -> i mod domains = d) indexed
  in
  let work d () =
    List.map (fun (i, f) -> (i, Simulate.run_one config circuit ~nominal f)) (chunk d)
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1))) in
  let mine = work 0 () in
  let all = mine @ List.concat_map Domain.join spawned in
  let results =
    List.sort (fun (i, _) (j, _) -> Int.compare i j) all |> List.map snd
  in
  {
    Simulate.config;
    nominal;
    nominal_stats;
    results;
    total_cpu_seconds = Unix.gettimeofday () -. t0;
  }
