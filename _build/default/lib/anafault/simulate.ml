type config = {
  model : Faults.Inject.model;
  tran : Netlist.Parser.tran;
  observed : string;
  tolerance : Detect.tolerance;
  sim_options : Sim.Engine.options;
  samples : int;
}

let default_config ~tran ~observed =
  {
    model = Faults.Inject.Source;
    tran;
    observed;
    tolerance = Detect.paper_tolerance;
    sim_options = Sim.Engine.default_options;
    samples = 400;
  }

type outcome = Detected of float | Undetected | Sim_failed of string

type fault_result = {
  fault : Faults.Fault.t;
  outcome : outcome;
  stats : Sim.Engine.stats;
  cpu_seconds : float;
}

type run = {
  config : config;
  nominal : Sim.Waveform.t;
  nominal_stats : Sim.Engine.stats;
  results : fault_result list;
  wall_seconds : float;
  cpu_seconds : float;
}

let simulate config circuit =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let wf, stats =
    Sim.Engine.transient_with_stats ~options:config.sim_options circuit ~tstep ~tstop
      ~uic
  in
  (Sim.Waveform.resample wf ~n:config.samples, stats)

let simulate_session config session =
  let { Netlist.Parser.tstep; tstop; uic } = config.tran in
  let wf, stats = Sim.Engine.Session.transient session ~tstep ~tstop ~uic in
  (Sim.Waveform.resample wf ~n:config.samples, stats)

let nominal config circuit = simulate config circuit

let session config circuit =
  Sim.Engine.Session.create ~options:config.sim_options circuit

let zero_stats =
  { Sim.Engine.newton_iterations = 0; accepted_steps = 0; rejected_steps = 0 }

let detect_outcome config ~nominal ~faulty =
  match
    Detect.first_detection ~tolerance:config.tolerance ~signal:config.observed
      ~nominal ~faulty
  with
  | Some t -> Detected t
  | None -> Undetected

(* A 0 V source bridging two nodes that other voltage sources already
   constrain creates a singular source loop; the paper notes both models
   yield near-identical coverage, so such faults silently fall back to
   the resistor model. *)
let with_model_fallback config ~finish attempt =
  match attempt config.model with
  | result -> result
  | exception Not_found ->
    finish (Sim_failed "fault references unknown device/terminal") zero_stats
  | exception Sim.Engine.No_convergence msg -> begin
    match config.model with
    | Faults.Inject.Source -> begin
      match attempt Faults.Inject.default_resistor with
      | result -> result
      | exception Sim.Engine.No_convergence msg -> finish (Sim_failed msg) zero_stats
    end
    | Faults.Inject.Resistor _ -> finish (Sim_failed msg) zero_stats
  end

(* The rebuild-per-fault cycle: every fault pays Mna.make + compile +
   fresh buffers.  Kept as the reference path (and for callers holding
   only a circuit); the batch loop below goes through a session. *)
let run_one config circuit ~nominal fault =
  let t0 = Sys.time () in
  let finish outcome stats =
    { fault; outcome; stats; cpu_seconds = Sys.time () -. t0 }
  in
  let attempt model =
    let faulty_circuit = Faults.Inject.apply ~model circuit fault in
    let faulty, stats = simulate config faulty_circuit in
    finish (detect_outcome config ~nominal ~faulty) stats
  in
  with_model_fallback config ~finish attempt

(* The batch cycle: patch the session with the injected devices, simulate
   in the shared buffers, compare.  Node maps and solver storage are
   shared across the whole fault list. *)
let run_one_in config sess ~nominal fault =
  let t0 = Sys.time () in
  let finish outcome stats =
    { fault; outcome; stats; cpu_seconds = Sys.time () -. t0 }
  in
  let base = Sim.Engine.Session.circuit sess in
  let attempt model =
    let faulty_circuit = Faults.Inject.apply ~model base fault in
    let faulty, stats =
      Sim.Engine.Session.with_patch sess faulty_circuit (fun s ->
          simulate_session config s)
    in
    finish (detect_outcome config ~nominal ~faulty) stats
  in
  match with_model_fallback config ~finish attempt with
  | result -> result
  | exception Sim.Engine.Patch_overflow _ ->
    (* The injection rewrote more than the overlay holds; pay the full
       rebuild for this one fault. *)
    run_one config base ~nominal fault

let guard fault thunk =
  match thunk () with
  | result -> result
  | exception exn ->
    {
      fault;
      outcome = Sim_failed (Printexc.to_string exn);
      stats = zero_stats;
      cpu_seconds = 0.0;
    }

let run ?progress config circuit faults =
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  let sess = session config circuit in
  let nominal_wf, nominal_stats = simulate_session config sess in
  let total = List.length faults in
  let results =
    List.mapi
      (fun i fault ->
        let r = guard fault (fun () -> run_one_in config sess ~nominal:nominal_wf fault) in
        (match progress with Some f -> f (i + 1) total | None -> ());
        r)
      faults
  in
  {
    config;
    nominal = nominal_wf;
    nominal_stats;
    results;
    wall_seconds = Unix.gettimeofday () -. wall0;
    cpu_seconds = Sys.time () -. cpu0;
  }

let tally run =
  List.fold_left
    (fun (d, u, f) r ->
      match r.outcome with
      | Detected _ -> (d + 1, u, f)
      | Undetected -> (d, u + 1, f)
      | Sim_failed _ -> (d, u, f + 1))
    (0, 0, 0) run.results
