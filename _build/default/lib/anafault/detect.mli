(** Tolerance-based fault detection (the comparison phase of AnaFAULT's
    post-processing).

    A fault is detected at observation instant [t] when the faulty and
    nominal responses have diverged by more than the amplitude tolerance
    [tol_v] continuously over the whole preceding time-tolerance window
    [t - tol_t, t] - either as raw waveforms (stuck levels, large shifts)
    or after [tol_t]-wide moving-average smoothing (frequency changes
    whose raw waveforms keep crossing but whose local means differ).
    Level shifts below [tol_v] and phase wobble well below [tol_t] count
    as process variation, not faults.  A full window is required, so
    nothing is detected before [tol_t] - the flat start of the paper's
    Fig. 5 plot.  The tolerance pair is the one its caption quotes:
    "2V for the amplitude and 0.2 us for the time". *)

type tolerance = { tol_v : float; tol_t : float }

(** The paper's working point: 2 V / 0.2 us. *)
val paper_tolerance : tolerance

(** [first_detection ~tolerance ~signal ~nominal ~faulty] is the earliest
    nominal-grid sample time at which the fault is visible, if any.
    Raises [Not_found] if [signal] is missing from either waveform. *)
val first_detection :
  tolerance:tolerance ->
  signal:string ->
  nominal:Sim.Waveform.t ->
  faulty:Sim.Waveform.t ->
  float option

(** [detected_at ~tolerance ~signal ~nominal ~faulty t] holds when the
    first detection happens at or before [t]. *)
val detected_at :
  tolerance:tolerance ->
  signal:string ->
  nominal:Sim.Waveform.t ->
  faulty:Sim.Waveform.t ->
  float ->
  bool
