type candidate = {
  label : string;
  prepare : Netlist.Circuit.t -> Netlist.Circuit.t;
  config : Simulate.config;
}

type verdict = {
  candidate : candidate;
  run : Simulate.run;
  coverage : float;
  weighted : float;
  test_time : float option;
}

let judge ?(domains = 1) circuit faults candidate =
  let prepared = candidate.prepare circuit in
  let run =
    if domains <= 1 then Simulate.run candidate.config prepared faults
    else Parsim.run ~domains candidate.config prepared faults
  in
  let coverage = Coverage.final_percent run in
  {
    candidate;
    run;
    coverage;
    weighted = Coverage.weighted_percent run;
    test_time = Coverage.time_to_percent run coverage;
  }

let compare ?domains circuit faults candidates =
  List.map (judge ?domains circuit faults) candidates
  |> List.sort (fun a b ->
         match Float.compare b.weighted a.weighted with
         | 0 -> Stdlib.compare a.test_time b.test_time
         | c -> c)

let pp_table ppf verdicts =
  Format.fprintf ppf "@[<v>%-26s %10s %10s %12s@," "candidate test" "coverage"
    "weighted" "t(final)";
  List.iter
    (fun v ->
      let t =
        match v.test_time with
        | Some t -> Netlist.Eng.to_string t ^ "s"
        | None -> "-"
      in
      Format.fprintf ppf "%-26s %9.1f%% %9.1f%% %12s@," v.candidate.label v.coverage
        v.weighted t)
    verdicts;
  Format.fprintf ppf "@]"
