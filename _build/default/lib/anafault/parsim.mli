(** Parallel fault simulation on OCaml 5 domains.

    The paper notes AnaFAULT was "improved for parallel execution in a
    workstation cluster environment"; per-fault simulations are
    independent, so the same structure maps onto shared-memory domains:
    the fault list is split into as many chunks as domains, each domain
    runs its chunk against the shared nominal waveform, and results are
    re-assembled in fault order. *)

(** [run ~domains config circuit faults] behaves like {!Simulate.run} but
    distributes the per-fault simulations over [domains] domains
    (clamped to [1 .. recommended_domain_count]).  Results keep the input
    fault order; [total_cpu_seconds] is wall-clock here, making speed-up
    directly visible. *)
val run :
  domains:int ->
  Simulate.config ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  Simulate.run
