(** Test-preparation comparison - the tool's stated purpose: "a
    comprehensive tool ... for the comparison of different test
    preparation techniques and target faults", with the procedure of
    section III: run the fault simulation for a candidate stimulus,
    inspect the coverage, refine, repeat.

    A {e candidate test} is a named function rewriting the circuit (a
    different control voltage, a supply ramp, an added load ...) plus the
    AnaFAULT configuration to judge it under. *)

type candidate = {
  label : string;
  prepare : Netlist.Circuit.t -> Netlist.Circuit.t;
      (** applies the stimulus to the circuit under test *)
  config : Simulate.config;
}

type verdict = {
  candidate : candidate;
  run : Simulate.run;
  coverage : float;  (** final coverage, % *)
  weighted : float;  (** probability-weighted coverage, % *)
  test_time : float option;  (** time to reach the final coverage, s *)
}

(** [compare ?domains circuit faults candidates] runs AnaFAULT once per
    candidate and ranks the verdicts: higher weighted coverage first,
    shorter time-to-final-coverage as the tie-breaker. *)
val compare :
  ?domains:int ->
  Netlist.Circuit.t ->
  Faults.Fault.t list ->
  candidate list ->
  verdict list

val pp_table : Format.formatter -> verdict list -> unit
