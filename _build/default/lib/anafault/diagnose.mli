(** Fault dictionary and diagnosis - the complement of fault simulation
    the paper's state-of-the-art reviews (Bandler & Salama's fault
    diagnosis [3], Epstein et al.'s fault recognition from measurements
    [6]): once every fault's response is simulated, an observed faulty
    waveform can be matched back to the most likely candidate faults.

    The dictionary stores each fault's response sampled on the nominal
    grid; diagnosis ranks faults by RMS distance between the observation
    and the stored signature. *)

type t

(** [build config circuit faults] simulates every fault and stores its
    signature at the observed node.  Faults whose simulation fails are
    kept with an empty signature (they never match). *)
val build : Simulate.config -> Netlist.Circuit.t -> Faults.Fault.t list -> t

val fault_count : t -> int

(** [nominal_distance t wf] is the RMS distance of waveform [wf] (signal
    = the config's observed node) from the fault-free response - a quick
    pass/fail indicator. *)
val nominal_distance : t -> Sim.Waveform.t -> float

(** [rank t wf] orders the dictionary's faults by ascending RMS distance
    to the observation; each entry carries its distance (V, RMS). *)
val rank : t -> Sim.Waveform.t -> (Faults.Fault.t * float) list

(** [diagnose t wf] is the best match, when any signature exists. *)
val diagnose : t -> Sim.Waveform.t -> (Faults.Fault.t * float) option
