(** Schematic-to-layout synthesis with a row floorplan.

    Every MOS transistor is placed in one row (wide source/drain regions
    with redundant contacts); each device terminal escapes on its own
    metal2 column to the horizontal metal1 track of its net in a routing
    channel north of the row; plate capacitors (poly under metal2) go to
    the right of the row.  Labels on each track carry the schematic node
    names, so extraction recovers the netlist with identical net names -
    the generated masks are DRC-clean and LVS-identical to their
    schematics by construction (a property the test suite checks on
    random circuits).

    This is the generator behind the paper demonstrator's layout
    ({!Vco.Layout_gen}); it handles any circuit made of MOSFETs and
    capacitors plus ignored stimulus sources. *)

(** Default plate capacitance used to size capacitors, F/nm^2 (20 fF/um^2,
    a thin-oxide plate). *)
val default_cap_per_nm2 : float

(** [mask ?tech ?cap_per_nm2 circuit] synthesises the layout.  V and I
    sources are skipped (they are stimulus, not silicon).  Raises
    [Invalid_argument] on R, L or D devices - the demo process has no
    resistor or diode primitives. *)
val mask :
  ?tech:Layout.Tech.t -> ?cap_per_nm2:float -> Netlist.Circuit.t -> Layout.Mask.t

(** [cap_side ?cap_per_nm2 value] is the drawn plate side (nm) for a
    capacitor of [value] farads. *)
val cap_side : ?cap_per_nm2:float -> float -> int
