(* Floorplan constants (nm).  Terminal columns inside a device are spaced
   by SD_W, so the 4 um metal2 risers clear each other; devices are
   separated by DEVICE_GAP; net tracks sit TRACK_PITCH apart in a channel
   above the tallest device. *)
let sd_w = 16000

let device_gap = 15000

let track_pitch = 6500

let track_w = 4000

let m2_w = 4000

let poly_w = 1000

let default_cap_per_nm2 = 2e-20

let cap_side ?(cap_per_nm2 = default_cap_per_nm2) value =
  max 2000 (int_of_float (Float.round (Float.sqrt (value /. cap_per_nm2))))

let pt = Geom.Point.make

type placed_mos = {
  d : string;
  g : string;
  s : string;
  ports : Layout.Builder.mos_ports;
}

type placed_cap = { n1 : string; n2 : string; x : int; side : int }

let classify circuit =
  List.fold_left
    (fun (mos, caps) dev ->
      match dev with
      | Netlist.Device.M { name; d; g; s; model; w; l; _ } ->
        let kind =
          match model.Netlist.Device.kind with
          | Netlist.Device.Nmos -> `N
          | Netlist.Device.Pmos -> `P
        in
        ( (name, d, g, s, kind, int_of_float (w *. 1e9), int_of_float (l *. 1e9)) :: mos,
          caps )
      | Netlist.Device.C { name; n1; n2; value; _ } -> (mos, (name, n1, n2, value) :: caps)
      | Netlist.Device.V _ | Netlist.Device.I _ -> (mos, caps)
      | Netlist.Device.R { name; _ } | Netlist.Device.L { name; _ }
      | Netlist.Device.D { name; _ } ->
        invalid_arg ("Row_synth: no layout primitive for device " ^ name))
    ([], []) (Netlist.Circuit.devices circuit)
  |> fun (mos, caps) -> (List.rev mos, List.rev caps)

let mask ?(tech = Layout.Tech.default) ?(cap_per_nm2 = default_cap_per_nm2) circuit =
  let b = Layout.Builder.create tech in
  let mos, caps = classify circuit in
  (* Place the transistor row. *)
  let x = ref 0 in
  let max_top = ref 0 in
  let placed =
    List.map
      (fun (name, d, g, s, kind, w_nm, l_nm) ->
        let ports =
          Layout.Builder.mos b ~name ~kind ~at:(pt !x 0) ~w:w_nm ~l:l_nm ~sd_w
            ~contact_cuts:2 ()
        in
        x := !x + (2 * sd_w) + l_nm + device_gap;
        max_top := max !max_top (w_nm + (2 * tech.Layout.Tech.lambda));
        { d; g; s; ports })
      mos
  in
  (* Capacitor plates: poly below, metal2 above, plus the recognition
     hint. *)
  let placed_caps =
    List.map
      (fun (name, n1, n2, value) ->
        let side = cap_side ~cap_per_nm2 value in
        let cap_x = !x in
        let plate = Geom.Rect.make cap_x 0 (cap_x + side) side in
        Layout.Builder.rect b Layout.Layer.Poly plate;
        Layout.Builder.rect b Layout.Layer.Metal2 plate;
        Layout.Builder.hint b name plate;
        x := !x + side + device_gap + 8000;
        max_top := max !max_top side;
        { n1; n2; x = cap_x; side })
      caps
  in
  (* Net -> track y (ground last, so supply-heavy tracks sit low). *)
  let nets =
    List.filter (fun n -> n <> Netlist.Device.ground) (Netlist.Circuit.nodes circuit)
    @ [ Netlist.Device.ground ]
  in
  let track_base = !max_top + 13000 in
  let track_y =
    let tbl = Hashtbl.create 20 in
    List.iteri (fun i n -> Hashtbl.replace tbl n (track_base + (i * track_pitch))) nets;
    fun net ->
      match Hashtbl.find_opt tbl net with
      | Some y -> y
      | None -> invalid_arg ("Row_synth: unknown net " ^ net)
  in
  (* Terminal risers: metal2 column from the terminal to its net track,
     with a via at each end.  Track extents accumulate per net. *)
  let extents : (string, (int * int) ref) Hashtbl.t = Hashtbl.create 20 in
  let note net x =
    match Hashtbl.find_opt extents net with
    | Some r ->
      let lo, hi = !r in
      r := (min lo x, max hi x)
    | None -> Hashtbl.add extents net (ref (x, x))
  in
  let riser net (p : Geom.Point.t) =
    let ty = track_y net in
    Layout.Builder.via b ~cuts:2 p;
    Layout.Builder.wire b Layout.Layer.Metal2 ~width:m2_w [ p; pt p.x ty ];
    Layout.Builder.via b ~cuts:2 (pt p.x ty);
    note net p.x
  in
  List.iter
    (fun dev ->
      riser dev.s dev.ports.Layout.Builder.source;
      riser dev.d dev.ports.Layout.Builder.drain;
      (* The contact pad spreads around its centre; lift it clear of the
         diffusion on a short poly stub. *)
      let gate_pt = dev.ports.Layout.Builder.gate in
      let contact_pt = pt gate_pt.Geom.Point.x (gate_pt.Geom.Point.y + 2500) in
      Layout.Builder.wire b Layout.Layer.Poly ~width:poly_w [ gate_pt; contact_pt ];
      Layout.Builder.contact b ~cuts:2 ~to_:Layout.Layer.Poly contact_pt;
      riser dev.g contact_pt)
    placed;
  (* Capacitor connections: poly plate -> contact -> riser to [n1];
     metal2 plate -> native metal2 column to [n2]. *)
  List.iter
    (fun c ->
      let cap_contact = pt (c.x - 8000) (c.side / 2) in
      Layout.Builder.wire b Layout.Layer.Poly ~width:poly_w
        [ pt c.x (c.side / 2); cap_contact ];
      Layout.Builder.contact b ~cuts:2 ~to_:Layout.Layer.Poly cap_contact;
      riser c.n1 cap_contact;
      let col_x = c.x + (c.side / 2) in
      Layout.Builder.wire b Layout.Layer.Metal2 ~width:m2_w
        [ pt col_x (c.side / 2); pt col_x (track_y c.n2) ];
      Layout.Builder.via b ~cuts:2 (pt col_x (track_y c.n2));
      note c.n2 col_x)
    placed_caps;
  (* Tracks with their labels. *)
  List.iter
    (fun net ->
      match Hashtbl.find_opt extents net with
      | Some r ->
        let lo, hi = !r in
        let y = track_y net in
        let hi = if hi = lo then lo + 6000 else hi in
        Layout.Builder.wire b Layout.Layer.Metal1 ~width:track_w [ pt lo y; pt hi y ];
        Layout.Builder.label b Layout.Layer.Metal1 (pt lo y) net
      | None -> ())
    nets;
  Layout.Builder.finish b
