lib/synth/row_synth.ml: Float Geom Hashtbl Layout List Netlist
