lib/synth/row_synth.mli: Layout Netlist
