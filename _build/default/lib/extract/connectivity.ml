let cut_targets = function
  | Layout.Layer.Contact ->
    [ Layout.Layer.Metal1; Layout.Layer.Poly; Layout.Layer.Ndiff; Layout.Layer.Pdiff ]
  | Layout.Layer.Via -> [ Layout.Layer.Metal1; Layout.Layer.Metal2 ]
  | Layout.Layer.Ndiff | Layout.Layer.Pdiff | Layout.Layer.Poly | Layout.Layer.Metal1
  | Layout.Layer.Metal2 | Layout.Layer.Nwell ->
    invalid_arg "Connectivity: not a cut layer"

let unify ~conductors ~cut_shapes ~skip_conductor ~skip_cut =
  let n = Array.length conductors in
  let uf = Geom.Union_find.create n in
  (* Same-layer adjacency. *)
  List.iter
    (fun layer ->
      let members =
        Array.of_seq
          (Seq.filter_map
             (fun (i, (c : Extraction.conductor)) ->
               if Layout.Layer.equal c.layer layer && not (skip_conductor i) then
                 Some (i, c.rect)
               else None)
             (Array.to_seqi conductors))
      in
      let rects = Array.map snd members in
      List.iter
        (fun (a, b) ->
          ignore (Geom.Union_find.union uf (fst members.(a)) (fst members.(b))))
        (Geom.Rect_set.touching_pairs rects))
    [ Layout.Layer.Ndiff; Layout.Layer.Pdiff; Layout.Layer.Poly; Layout.Layer.Metal1;
      Layout.Layer.Metal2 ];
  (* Vertical connections through cuts. *)
  let joins =
    Array.mapi
      (fun ci (cut_layer, cut_rect) ->
        if skip_cut ci then []
        else begin
          let targets = cut_targets cut_layer in
          let joined = ref [] in
          Array.iteri
            (fun i (c : Extraction.conductor) ->
              if (not (skip_conductor i))
                 && List.exists (Layout.Layer.equal c.layer) targets
                 && Geom.Rect.touches c.rect cut_rect
              then joined := i :: !joined)
            conductors;
          (match !joined with
          | first :: rest -> List.iter (fun i -> ignore (Geom.Union_find.union uf first i)) rest
          | [] -> ());
          List.rev !joined
        end)
      cut_shapes
  in
  (uf, joins)
