(** Net connectivity over conductors and cuts.

    Exposed separately from the extractor because LIFT re-runs it with a
    conductor or cut suppressed, to decide whether a spot defect that
    removes that shape actually splits a net. *)

(** [unify ~conductors ~cut_shapes ~skip_conductor ~skip_cut] merges
    conductors that touch on the same layer, plus the conductor groups
    joined by each cut (a contact joins metal1 with poly/diffusion; a via
    joins metal1 with metal2).  Suppressed conductors/cuts take no part.
    Returns the union-find and, for each cut, the conductor indices it
    joined. *)
val unify :
  conductors:Extraction.conductor array ->
  cut_shapes:(Layout.Layer.t * Geom.Rect.t) array ->
  skip_conductor:(int -> bool) ->
  skip_cut:(int -> bool) ->
  Geom.Union_find.t * int list array
