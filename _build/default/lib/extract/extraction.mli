(** Result of transistor-level extraction: the electrical interpretation
    of a mask database.

    The geometry is broken into {e conductors} - the unit of fault
    analysis: a diffusion region between channels, a poly shape, a metal
    shape.  Conductors carrying the same net share a net id.  Cuts
    (contacts/vias) record which conductors they join, and every device
    terminal is anchored to the conductor it electrically enters through,
    so LIFT can decide what a missing shape disconnects. *)

type conductor = { layer : Layout.Layer.t; rect : Geom.Rect.t }

type cut = {
  cut_layer : Layout.Layer.t;
  cut_rect : Geom.Rect.t;
  joins : int list;  (** conductor indices this cut connects *)
}

(** A recognised MOS channel (poly over diffusion). *)
type channel = {
  device : string;
  kind : [ `N | `P ];
  channel_rect : Geom.Rect.t;
  w_nm : int;  (** electrical width *)
  l_nm : int;  (** drawn gate length *)
  gate : int;  (** conductor index of the poly gate *)
  source : int;  (** conductor index of the source diffusion piece *)
  drain : int;  (** conductor index of the drain diffusion piece *)
}

(** Anchor of a device terminal: [port] indexes {!Netlist.Device.nodes}
    order. *)
type terminal = { device : string; port : int; conductor : int }

type t = {
  mask : Layout.Mask.t;
  conductors : conductor array;
  net_of : int array;  (** conductor index -> net id *)
  net_names : string array;  (** net id -> name *)
  cuts : cut array;
  channels : channel list;
  circuit : Netlist.Circuit.t;
  terminals : terminal list;
}

val net_count : t -> int

(** [net_name t id] is the (label-derived or synthesised) name of net
    [id]. *)
val net_name : t -> int -> string

(** [conductors_of_net t id] lists the conductor indices on net [id]. *)
val conductors_of_net : t -> int -> int list

(** [terminals_on_conductor t k] lists terminals anchored on conductor
    [k]. *)
val terminals_on_conductor : t -> int -> terminal list

(** [terminals_of_net t id] lists all terminals anchored anywhere on net
    [id]. *)
val terminals_of_net : t -> int -> terminal list

val pp_summary : Format.formatter -> t -> unit
