type mismatch =
  | Missing_device of string
  | Extra_device of string
  | Kind_differs of string
  | Connection_differs of { device : string; detail : string }
  | Size_differs of { device : string; detail : string }

let pp_mismatch ppf = function
  | Missing_device d -> Format.fprintf ppf "missing device %s" d
  | Extra_device d -> Format.fprintf ppf "extra device %s" d
  | Kind_differs d -> Format.fprintf ppf "device %s has a different kind" d
  | Connection_differs { device; detail } ->
    Format.fprintf ppf "device %s connections differ: %s" device detail
  | Size_differs { device; detail } ->
    Format.fprintf ppf "device %s size differs: %s" device detail

let is_stimulus = function
  | Netlist.Device.V _ | Netlist.Device.I _ -> true
  | Netlist.Device.R _ | Netlist.Device.C _ | Netlist.Device.L _ | Netlist.Device.D _
  | Netlist.Device.M _ ->
    false

let close ~reltol a b = Float.abs (a -. b) <= reltol *. Float.max (Float.abs a) (Float.abs b)

let compare_one ~reltol golden extracted =
  let name = Netlist.Device.name golden in
  match (golden, extracted) with
  | ( Netlist.Device.M { d = d1; g = g1; s = s1; model = m1; w = w1; l = l1; _ },
      Netlist.Device.M { d = d2; g = g2; s = s2; model = m2; w = w2; l = l2; _ } ) ->
    let conn =
      if g1 <> g2 then
        Some (Printf.sprintf "gate %s vs %s" g1 g2)
      else begin
        let ds1 = List.sort compare [ d1; s1 ] and ds2 = List.sort compare [ d2; s2 ] in
        if ds1 <> ds2 then
          Some
            (Printf.sprintf "d/s {%s} vs {%s}" (String.concat "," ds1)
               (String.concat "," ds2))
        else None
      end
    in
    let kind_ok = m1.Netlist.Device.kind = m2.Netlist.Device.kind in
    let size =
      if not (close ~reltol w1 w2) then Some (Printf.sprintf "W %g vs %g" w1 w2)
      else if not (close ~reltol l1 l2) then Some (Printf.sprintf "L %g vs %g" l1 l2)
      else None
    in
    (if kind_ok then [] else [ Kind_differs name ])
    @ (match conn with Some detail -> [ Connection_differs { device = name; detail } ] | None -> [])
    @ (match size with Some detail -> [ Size_differs { device = name; detail } ] | None -> [])
  | ( Netlist.Device.C { n1 = a1; n2 = b1; value = v1; _ },
      Netlist.Device.C { n1 = a2; n2 = b2; value = v2; _ } ) ->
    let p1 = List.sort compare [ a1; b1 ] and p2 = List.sort compare [ a2; b2 ] in
    (if p1 <> p2 then
       [ Connection_differs
           { device = name;
             detail = Printf.sprintf "{%s} vs {%s}" (String.concat "," p1) (String.concat "," p2) } ]
     else [])
    @
    if close ~reltol v1 v2 then []
    else [ Size_differs { device = name; detail = Printf.sprintf "C %g vs %g" v1 v2 } ]
  | ( Netlist.Device.R { n1 = a1; n2 = b1; value = v1; _ },
      Netlist.Device.R { n1 = a2; n2 = b2; value = v2; _ } ) ->
    let p1 = List.sort compare [ a1; b1 ] and p2 = List.sort compare [ a2; b2 ] in
    (if p1 <> p2 then
       [ Connection_differs
           { device = name;
             detail = Printf.sprintf "{%s} vs {%s}" (String.concat "," p1) (String.concat "," p2) } ]
     else [])
    @
    if close ~reltol v1 v2 then []
    else [ Size_differs { device = name; detail = Printf.sprintf "R %g vs %g" v1 v2 } ]
  | (Netlist.Device.R _ | Netlist.Device.C _ | Netlist.Device.L _ | Netlist.Device.V _
    | Netlist.Device.I _ | Netlist.Device.D _ | Netlist.Device.M _), _ ->
    [ Kind_differs name ]

let run ?(size_reltol = 0.05) ~golden ~extracted () =
  let golden_devs =
    List.filter (fun d -> not (is_stimulus d)) (Netlist.Circuit.devices golden)
  in
  let missing_or_diff =
    List.concat_map
      (fun g ->
        match Netlist.Circuit.find extracted (Netlist.Device.name g) with
        | Some e -> compare_one ~reltol:size_reltol g e
        | None -> [ Missing_device (Netlist.Device.name g) ])
      golden_devs
  in
  let extras =
    List.filter_map
      (fun e ->
        let n = Netlist.Device.name e in
        if List.exists (fun g -> Netlist.Device.name g = n) golden_devs then None
        else Some (Extra_device n))
      (Netlist.Circuit.devices extracted)
  in
  missing_or_diff @ extras
