lib/extract/compare.mli: Format Netlist
