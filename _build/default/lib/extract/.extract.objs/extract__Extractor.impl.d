lib/extract/extractor.ml: Array Connectivity Extraction Format Geom Hashtbl Layout List Netlist Printf String
