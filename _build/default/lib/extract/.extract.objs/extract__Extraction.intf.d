lib/extract/extraction.mli: Format Geom Layout Netlist
