lib/extract/connectivity.ml: Array Extraction Geom Layout List Seq
