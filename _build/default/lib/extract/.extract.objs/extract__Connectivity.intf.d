lib/extract/connectivity.mli: Extraction Geom Layout
