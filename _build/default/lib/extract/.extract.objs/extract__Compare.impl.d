lib/extract/compare.ml: Float Format List Netlist Printf String
