lib/extract/extractor.mli: Extraction Layout Netlist
