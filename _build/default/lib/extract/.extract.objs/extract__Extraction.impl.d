lib/extract/extraction.ml: Array Format Geom Layout List Netlist Seq
