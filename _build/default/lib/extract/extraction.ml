type conductor = { layer : Layout.Layer.t; rect : Geom.Rect.t }

type cut = {
  cut_layer : Layout.Layer.t;
  cut_rect : Geom.Rect.t;
  joins : int list;
}

type channel = {
  device : string;
  kind : [ `N | `P ];
  channel_rect : Geom.Rect.t;
  w_nm : int;
  l_nm : int;
  gate : int;
  source : int;
  drain : int;
}

type terminal = { device : string; port : int; conductor : int }

type t = {
  mask : Layout.Mask.t;
  conductors : conductor array;
  net_of : int array;
  net_names : string array;
  cuts : cut array;
  channels : channel list;
  circuit : Netlist.Circuit.t;
  terminals : terminal list;
}

let net_count t = Array.length t.net_names

let net_name t id = t.net_names.(id)

let conductors_of_net t id =
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (k, net) -> if net = id then Some k else None)
          (Array.to_seqi t.net_of)))

let terminals_on_conductor t k = List.filter (fun term -> term.conductor = k) t.terminals

let terminals_of_net t id =
  List.filter (fun term -> t.net_of.(term.conductor) = id) t.terminals

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>conductors %d@,nets       %d@,cuts       %d@,mosfets    %d@,devices    %d@]"
    (Array.length t.conductors) (net_count t) (Array.length t.cuts)
    (List.length t.channels)
    (Netlist.Circuit.device_count t.circuit)
