(** LVS-style comparison of an extracted circuit against its intended
    schematic.

    Devices are matched by name (layout device hints carry the schematic
    names), nets by name (layout labels).  MOS source/drain are compared
    as an unordered pair, since extraction cannot tell them apart. *)

type mismatch =
  | Missing_device of string  (** in the schematic, not extracted *)
  | Extra_device of string  (** extracted, not in the schematic *)
  | Kind_differs of string
  | Connection_differs of { device : string; detail : string }
  | Size_differs of { device : string; detail : string }

val pp_mismatch : Format.formatter -> mismatch -> unit

(** [run ~golden ~extracted] lists all mismatches; [[]] means the layout
    implements the schematic.  Independent sources and the bulk terminals
    of MOS devices in [golden] are ignored (a layout has neither stimulus
    sources nor explicit bulk wiring).  [size_reltol] (default 0.05)
    bounds the accepted relative W/L and capacitance deviation. *)
val run :
  ?size_reltol:float ->
  golden:Netlist.Circuit.t ->
  extracted:Netlist.Circuit.t ->
  unit ->
  mismatch list
