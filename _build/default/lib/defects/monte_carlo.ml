type result = {
  samples : int;
  effective : int;
  multi_effect : int;
  hits : (Faults.Fault.t * int) list;
}

(* Mechanism menu with Tab. 1 relative densities, split so each entry
   applies to one physical layer. *)
let mechanisms tech =
  let d m = tech.Layout.Tech.rel_density m in
  List.filter
    (fun (_, w) -> w > 0.0)
    [ (Layout.Tech.Short_on Layout.Layer.Ndiff, d (Layout.Tech.Short_on Layout.Layer.Ndiff));
      (Layout.Tech.Short_on Layout.Layer.Pdiff, d (Layout.Tech.Short_on Layout.Layer.Pdiff));
      (Layout.Tech.Short_on Layout.Layer.Poly, d (Layout.Tech.Short_on Layout.Layer.Poly));
      (Layout.Tech.Short_on Layout.Layer.Metal1, d (Layout.Tech.Short_on Layout.Layer.Metal1));
      (Layout.Tech.Short_on Layout.Layer.Metal2, d (Layout.Tech.Short_on Layout.Layer.Metal2));
      (Layout.Tech.Open_on Layout.Layer.Ndiff, d (Layout.Tech.Open_on Layout.Layer.Ndiff));
      (Layout.Tech.Open_on Layout.Layer.Pdiff, d (Layout.Tech.Open_on Layout.Layer.Pdiff));
      (Layout.Tech.Open_on Layout.Layer.Poly, d (Layout.Tech.Open_on Layout.Layer.Poly));
      (Layout.Tech.Open_on Layout.Layer.Metal1, d (Layout.Tech.Open_on Layout.Layer.Metal1));
      (Layout.Tech.Open_on Layout.Layer.Metal2, d (Layout.Tech.Open_on Layout.Layer.Metal2));
      (Layout.Tech.Contact_open_to Layout.Layer.Ndiff,
       d (Layout.Tech.Contact_open_to Layout.Layer.Ndiff));
      (Layout.Tech.Contact_open_to Layout.Layer.Poly,
       d (Layout.Tech.Contact_open_to Layout.Layer.Poly));
      (Layout.Tech.Via_open, d Layout.Tech.Via_open) ]

let pick_mechanism rng menu total =
  let x = Random.State.float rng total in
  let rec go acc = function
    | [] -> invalid_arg "Monte_carlo: empty mechanism menu"
    | [ (m, _) ] -> m
    | (m, w) :: rest -> if acc +. w >= x then m else go (acc +. w) rest
  in
  go 0.0 menu

(* Inverse CDF of the 1/x^3 density truncated to [x_min, x_max]. *)
let sample_diameter rng ~x_min ~x_max =
  let u = Random.State.float rng 1.0 in
  let r = x_min /. x_max in
  let denom = Float.sqrt (1.0 -. (u *. (1.0 -. (r *. r)))) in
  x_min /. denom

(* Does the defect square cut the conductor - cover a full cross-section
   of its narrow dimension?  (The same assumption the critical-area open
   profile makes.) *)
let cuts_conductor defect (c : Extract.Extraction.conductor) =
  match Geom.Rect.inter defect c.rect with
  | None -> false
  | Some i ->
    if Geom.Rect.is_degenerate i then false
    else if Geom.Rect.width c.rect <= Geom.Rect.height c.rect then
      (* narrow in x: the cut must span the full width *)
      i.Geom.Rect.x0 <= c.rect.Geom.Rect.x0 && i.Geom.Rect.x1 >= c.rect.Geom.Rect.x1
    else i.Geom.Rect.y0 <= c.rect.Geom.Rect.y0 && i.Geom.Rect.y1 >= c.rect.Geom.Rect.y1

let shorts_of (ext : Extract.Extraction.t) layer defect =
  let nets = ref [] in
  Array.iteri
    (fun i (c : Extract.Extraction.conductor) ->
      if Layout.Layer.equal c.layer layer && Geom.Rect.overlaps c.rect defect then begin
        let n = ext.net_of.(i) in
        if not (List.mem n !nets) then nets := n :: !nets
      end)
    ext.conductors;
  let rec pairs = function
    | [] | [ _ ] -> []
    | a :: rest -> List.map (fun b -> (min a b, max a b)) rest @ pairs rest
  in
  pairs (List.sort compare !nets)

let opens_of (ext : Extract.Extraction.t) layer defect =
  (* All conductors of the layer the defect cuts; one defect may sever
     several (the paper's "global multiple open"). *)
  let cut = ref [] in
  Array.iteri
    (fun i (c : Extract.Extraction.conductor) ->
      if Layout.Layer.equal c.layer layer && cuts_conductor defect c then cut := i :: !cut)
    ext.conductors;
  let cut = !cut in
  if cut = [] then []
  else begin
    let affected_nets = List.sort_uniq compare (List.map (fun i -> ext.net_of.(i)) cut) in
    List.filter_map
      (fun net ->
        match
          Sites.split_effect ext
            ~skip_conductor:(fun i -> List.mem i cut)
            ~skip_cut:(fun _ -> false)
            ~net
        with
        | Some moved ->
          Some (Faults.Fault.Break { net = Extract.Extraction.net_name ext net; moved })
        | None -> None)
      affected_nets
  end

let stuck_of (ext : Extract.Extraction.t) defect =
  List.filter_map
    (fun (c : Extract.Extraction.channel) ->
      (* Missing poly across the channel: the defect must span the gate
         length. *)
      let fake =
        { Extract.Extraction.layer = Layout.Layer.Poly; rect = c.channel_rect }
      in
      if cuts_conductor defect fake then
        Some (Faults.Fault.Stuck_open { device = c.device })
      else None)
    ext.channels

let cut_opens_of (ext : Extract.Extraction.t) ~want defect =
  let killed = ref [] in
  Array.iteri
    (fun ci (cut : Extract.Extraction.cut) ->
      let lower_matches =
        match want with
        | `Via -> Layout.Layer.equal cut.cut_layer Layout.Layer.Via
        | `Contact_to layer ->
          Layout.Layer.equal cut.cut_layer Layout.Layer.Contact
          && List.exists
               (fun j ->
                 Layout.Layer.equal ext.conductors.(j).Extract.Extraction.layer layer)
               cut.joins
      in
      if lower_matches && Geom.Rect.contains defect cut.cut_rect then killed := ci :: !killed)
    ext.cuts;
  let killed = !killed in
  if killed = [] then []
  else begin
    let affected =
      List.filter_map
        (fun ci ->
          match ext.cuts.(ci).Extract.Extraction.joins with
          | anchor :: _ -> Some ext.net_of.(anchor)
          | [] -> None)
        killed
      |> List.sort_uniq compare
    in
    List.filter_map
      (fun net ->
        match
          Sites.split_effect ext
            ~skip_conductor:(fun _ -> false)
            ~skip_cut:(fun ci -> List.mem ci killed)
            ~net
        with
        | Some moved ->
          Some (Faults.Fault.Break { net = Extract.Extraction.net_name ext net; moved })
        | None -> None)
      affected
  end

let run ?(seed = 42) ~samples (ext : Extract.Extraction.t) =
  let tech = ext.mask.Layout.Mask.tech in
  let rng = Random.State.make [| seed |] in
  let menu = mechanisms tech in
  let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 menu in
  let bbox = Layout.Mask.bbox ext.mask in
  let x_max = float_of_int tech.Layout.Tech.defect_x_max in
  let margin = tech.Layout.Tech.defect_x_max in
  let die = Geom.Rect.expand bbox margin in
  let counts : (Faults.Fault.kind * string, int) Hashtbl.t = Hashtbl.create 64 in
  let effective = ref 0 and multi = ref 0 in
  for _ = 1 to samples do
    let mech = pick_mechanism rng menu total_weight in
    let d =
      sample_diameter rng ~x_min:(float_of_int tech.Layout.Tech.defect_x_min) ~x_max
    in
    let half = int_of_float (d /. 2.0) in
    let cx = die.Geom.Rect.x0 + Random.State.int rng (max 1 (Geom.Rect.width die)) in
    let cy = die.Geom.Rect.y0 + Random.State.int rng (max 1 (Geom.Rect.height die)) in
    let defect = Geom.Rect.make (cx - half) (cy - half) (cx + half) (cy + half) in
    let faults =
      match mech with
      | Layout.Tech.Short_on layer ->
        List.map
          (fun (a, b) ->
            Faults.Fault.Bridge
              { net_a = Extract.Extraction.net_name ext a;
                net_b = Extract.Extraction.net_name ext b })
          (shorts_of ext layer defect)
      | Layout.Tech.Open_on Layout.Layer.Poly ->
        opens_of ext Layout.Layer.Poly defect @ stuck_of ext defect
      | Layout.Tech.Open_on layer -> opens_of ext layer defect
      | Layout.Tech.Contact_open_to layer -> cut_opens_of ext ~want:(`Contact_to layer) defect
      | Layout.Tech.Via_open -> cut_opens_of ext ~want:`Via defect
    in
    if faults <> [] then begin
      incr effective;
      if List.length faults > 1 then incr multi;
      List.iter
        (fun kind ->
          let key = (Faults.Fault.canonical kind, Layout.Tech.mechanism_to_string mech) in
          Hashtbl.replace counts key
            (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
        faults
    end
  done;
  let hits =
    Hashtbl.fold
      (fun (kind, mechanism) n acc ->
        let prob =
          if !effective = 0 then 0.0 else float_of_int n /. float_of_int !effective
        in
        (Faults.Fault.make ~id:"MC" ~kind ~mechanism ~prob (), n) :: acc)
      counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
    |> List.mapi (fun i (f, n) ->
           ({ f with Faults.Fault.id = Printf.sprintf "MC%d" (i + 1) }, n))
  in
  { samples; effective = !effective; multi_effect = !multi; hits }

let agreement result faults =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 result.hits in
  if total = 0 then 0.0
  else begin
    let matched =
      List.fold_left
        (fun acc (f, n) ->
          if List.exists (fun g -> Faults.Fault.equivalent f g) faults then acc + n
          else acc)
        0 result.hits
    in
    float_of_int matched /. float_of_int total
  end

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>defects sampled      %d@,topology-changing    %d (%.1f %%)@,\
     multi-fault defects  %d@,distinct faults      %d@]"
    r.samples r.effective
    (100.0 *. float_of_int r.effective /. float_of_int (max 1 r.samples))
    r.multi_effect (List.length r.hits)
