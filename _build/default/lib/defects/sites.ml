type bridge_site = {
  bridge_layer : Layout.Layer.t;
  net_a : int;
  net_b : int;
  bridge_ca : float;
}

type open_site = {
  open_layer : Layout.Layer.t;
  conductor : int;
  moved : Faults.Fault.terminal list;
  open_net : int;
  open_ca : float;
}

type cut_open_site = {
  cut_index : int;
  cut_mech : Layout.Tech.mechanism;
  cut_moved : Faults.Fault.terminal list;
  cut_net : int;
  cut_ca : float;
}

type stuck_site = {
  channel : Extract.Extraction.channel;
  stuck_ca : float;
}

let tech_of (ext : Extract.Extraction.t) = ext.mask.Layout.Mask.tech

let pdf_of ?pdf ext =
  match pdf with
  | Some p -> p
  | None -> Layout.Tech.size_pdf (tech_of ext)

(* Weighted short critical area: closed form for the cubic pdf, numeric
   integration otherwise. *)
let short_ca ~x_max pdf ~spacing ~length =
  match pdf with
  | Geom.Critical_area.Cubic { x_min } ->
    Geom.Critical_area.weighted_short_cubic ~x_max ~x_min ~spacing ~length ()
  | Geom.Critical_area.Uniform _ ->
    Geom.Critical_area.weighted pdf (Geom.Critical_area.short_area ~spacing ~length)

let open_ca_of ~x_max pdf ~width ~length =
  match pdf with
  | Geom.Critical_area.Cubic { x_min } ->
    Geom.Critical_area.weighted_open_cubic ~x_max ~x_min ~width ~length ()
  | Geom.Critical_area.Uniform _ ->
    Geom.Critical_area.weighted pdf (Geom.Critical_area.open_area ~width ~length)

let x_max_of ext = float_of_int (tech_of ext).Layout.Tech.defect_x_max

let bridges ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  let x_max = (tech_of ext).Layout.Tech.defect_x_max in
  let acc : (Layout.Layer.t * int * int, float ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun layer ->
      let members =
        Array.of_seq
          (Seq.filter_map
             (fun (i, (c : Extract.Extraction.conductor)) ->
               if Layout.Layer.equal c.layer layer then Some (i, c.rect) else None)
             (Array.to_seqi ext.conductors))
      in
      let rects = Array.map snd members in
      List.iter
        (fun (a, b, spacing, length) ->
          let ia = fst members.(a) and ib = fst members.(b) in
          let na = ext.net_of.(ia) and nb = ext.net_of.(ib) in
          if na <> nb then begin
            let key = (layer, min na nb, max na nb) in
            let ca = short_ca ~x_max:(x_max_of ext) pdf ~spacing ~length in
            match Hashtbl.find_opt acc key with
            | Some r -> r := !r +. ca
            | None -> Hashtbl.add acc key (ref ca)
          end)
        (Geom.Rect_set.close_pairs ~within:x_max rects))
    (List.filter Layout.Layer.conducting Layout.Layer.all);
  Hashtbl.fold
    (fun (bridge_layer, net_a, net_b) ca l ->
      { bridge_layer; net_a; net_b; bridge_ca = !ca } :: l)
    acc []
  |> List.sort compare

(* Effect of suppressing conductor [k] (or cut [c]): group the net's
   terminals by the component their anchor lands in; terminals anchored on
   the suppressed conductor form their own (disconnected) group.  The
   largest group keeps the original net; the others move.  [None] when the
   topology is unchanged (at most one group). *)
let split_effect (ext : Extract.Extraction.t) ~skip_conductor ~skip_cut ~net =
  let cut_shapes =
    Array.map (fun (c : Extract.Extraction.cut) -> (c.cut_layer, c.cut_rect)) ext.cuts
  in
  let uf, _ =
    Extract.Connectivity.unify ~conductors:ext.conductors ~cut_shapes ~skip_conductor ~skip_cut
  in
  let terminals = Extract.Extraction.terminals_of_net ext net in
  let groups : (int, Faults.Fault.terminal list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (t : Extract.Extraction.terminal) ->
      let key =
        if skip_conductor t.conductor then -1 else Geom.Union_find.find uf t.conductor
      in
      let term = { Faults.Fault.device = t.device; port = t.port } in
      match Hashtbl.find_opt groups key with
      | Some r -> r := term :: !r
      | None -> Hashtbl.add groups key (ref [ term ]))
    terminals;
  let group_list =
    Hashtbl.fold (fun key r acc -> (key, List.sort compare !r) :: acc) groups []
    |> List.sort compare
  in
  match group_list with
  | [] | [ _ ] -> None
  | _ ->
    let keep =
      List.fold_left
        (fun best (key, members) ->
          match best with
          | None -> Some (key, members)
          | Some (bkey, bmembers) ->
            (* Prefer the most populous group; never keep the detached
               group (-1) if an attached one exists. *)
            if key = -1 then best
            else if bkey = -1 then Some (key, members)
            else if List.length members > List.length bmembers then Some (key, members)
            else best)
        None group_list
    in
    let keep_key = match keep with Some (k, _) -> k | None -> assert false in
    let moved =
      List.concat_map
        (fun (key, members) -> if key = keep_key then [] else members)
        group_list
    in
    if moved = [] then None else Some moved

let opens ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  Array.to_list
    (Array.mapi
       (fun k (c : Extract.Extraction.conductor) ->
         let net = ext.net_of.(k) in
         match
           split_effect ext ~skip_conductor:(Int.equal k) ~skip_cut:(fun _ -> false) ~net
         with
         | None -> None
         | Some moved ->
           let w = min (Geom.Rect.width c.rect) (Geom.Rect.height c.rect)
           and l = max (Geom.Rect.width c.rect) (Geom.Rect.height c.rect) in
           Some
             {
               open_layer = c.layer;
               conductor = k;
               moved;
               open_net = net;
               open_ca = open_ca_of ~x_max:(x_max_of ext) pdf ~width:w ~length:l;
             })
       ext.conductors)
  |> List.filter_map Fun.id

let cut_opens ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  let tech = tech_of ext in
  Array.to_list
    (Array.mapi
       (fun ci (cut : Extract.Extraction.cut) ->
         match cut.joins with
         | [] | [ _ ] -> None
         | anchor :: _ ->
           let net = ext.net_of.(anchor) in
           (match
              split_effect ext
                ~skip_conductor:(fun _ -> false)
                ~skip_cut:(Int.equal ci) ~net
            with
           | None -> None
           | Some moved ->
             let mech =
               match cut.cut_layer with
               | Layout.Layer.Via -> Layout.Tech.Via_open
               | Layout.Layer.Contact ->
                 (* Which lower layer does this contact land on? *)
                 let lower =
                   List.find_map
                     (fun j ->
                       let layer = ext.conductors.(j).Extract.Extraction.layer in
                       match layer with
                       | Layout.Layer.Poly | Layout.Layer.Ndiff | Layout.Layer.Pdiff ->
                         Some layer
                       | Layout.Layer.Metal1 | Layout.Layer.Metal2 | Layout.Layer.Contact
                       | Layout.Layer.Via | Layout.Layer.Nwell ->
                         None)
                     cut.joins
                 in
                 Layout.Tech.Contact_open_to
                   (Option.value lower ~default:Layout.Layer.Poly)
               | Layout.Layer.Ndiff | Layout.Layer.Pdiff | Layout.Layer.Poly
               | Layout.Layer.Metal1 | Layout.Layer.Metal2 | Layout.Layer.Nwell ->
                 assert false
             in
             let ca =
               Geom.Critical_area.weighted
                 ~x_max:(float_of_int tech.Layout.Tech.defect_x_max) pdf
                 (Geom.Critical_area.contact_open_area ~side:tech.Layout.Tech.cut_side)
             in
             Some { cut_index = ci; cut_mech = mech; cut_moved = moved; cut_net = net; cut_ca = ca }))
       ext.cuts)
  |> List.filter_map Fun.id

let stuck ?pdf (ext : Extract.Extraction.t) =
  let pdf = pdf_of ?pdf ext in
  List.map
    (fun (c : Extract.Extraction.channel) ->
      (* Missing gate poly across the channel: the defect must span the
         gate length somewhere along the width, leaving a channel that can
         never invert. *)
      { channel = c;
        stuck_ca = open_ca_of ~x_max:(x_max_of ext) pdf ~width:c.l_nm ~length:c.w_nm })
    ext.channels
