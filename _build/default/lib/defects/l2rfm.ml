type result = {
  faults : Faults.Fault.t list;
  per_device : (string * int) list;
}

(* A single-element template layout, extracted and LIFT-analysed. *)
let mos_template ~name ~kind ~w_nm ~l_nm =
  let b = Layout.Builder.create Layout.Tech.default in
  ignore
    (Layout.Builder.mos b ~name ~kind ~at:(Geom.Point.make 0 0) ~w:w_nm ~l:l_nm
       ~contact_cuts:2 ());
  Extract.Extractor.extract (Layout.Builder.finish b)

let cap_template ~name ~value =
  let b = Layout.Builder.create Layout.Tech.default in
  let side =
    int_of_float
      (Float.sqrt (value /. Extract.Extractor.default_options.Extract.Extractor.cap_per_nm2))
  in
  let plate = Geom.Rect.make 0 0 (max side 2000) (max side 2000) in
  Layout.Builder.rect b Layout.Layer.Poly plate;
  Layout.Builder.rect b Layout.Layer.Metal2 plate;
  Layout.Builder.hint b name plate;
  Extract.Extractor.extract (Layout.Builder.finish b)

(* Template net id -> schematic net, via the device's recognised
   terminals. *)
let mos_net_map (ext : Extract.Extraction.t) ~d ~g ~s =
  match ext.channels with
  | [ c ] ->
    [ (ext.net_of.(c.Extract.Extraction.drain), d);
      (ext.net_of.(c.Extract.Extraction.gate), g);
      (ext.net_of.(c.Extract.Extraction.source), s) ]
  | _ -> invalid_arg "L2rfm: template must contain exactly one channel"

let cap_net_map (ext : Extract.Extraction.t) ~name ~n1 ~n2 =
  let terminal port =
    match
      List.find_opt
        (fun (t : Extract.Extraction.terminal) -> t.device = name && t.port = port)
        ext.terminals
    with
    | Some t -> ext.net_of.(t.conductor)
    | None -> invalid_arg "L2rfm: capacitor template lacks terminals"
  in
  [ (terminal 0, n1); (terminal 1, n2) ]

(* Rewrite a template fault onto schematic nets; [None] when the fault
   touches a net outside the element (cannot happen in a well-formed
   template) or degenerates (bridge across one net, e.g. a diode-connected
   device's gate-drain short). *)
let rename_fault net_names map (f : Faults.Fault.t) =
  let net tmpl_name =
    let id =
      let found = ref None in
      Array.iteri (fun i n -> if n = tmpl_name then found := Some i) net_names;
      !found
    in
    Option.bind id (fun id -> List.assoc_opt id map)
  in
  match f.kind with
  | Faults.Fault.Bridge { net_a; net_b } -> begin
    match (net net_a, net net_b) with
    | Some a, Some b when a <> b ->
      Some { f with kind = Faults.Fault.Bridge { net_a = a; net_b = b } }
    | _ -> None
  end
  | Faults.Fault.Break { net = n; moved } -> begin
    match net n with
    | Some n -> Some { f with kind = Faults.Fault.Break { net = n; moved } }
    | None -> None
  end
  | Faults.Fault.Stuck_open _ -> Some f

let element_faults ~options dev =
  match dev with
  | Netlist.Device.M { name; d; g; s; model; w; l; _ } ->
    let kind =
      match model.Netlist.Device.kind with
      | Netlist.Device.Nmos -> `N
      | Netlist.Device.Pmos -> `P
    in
    let ext =
      mos_template ~name ~kind
        ~w_nm:(int_of_float (w *. 1e9))
        ~l_nm:(int_of_float (l *. 1e9))
    in
    let map = mos_net_map ext ~d ~g ~s in
    let lift = Lift.run ~options ext in
    List.filter_map
      (rename_fault ext.Extract.Extraction.net_names map)
      lift.Lift.faults
  | Netlist.Device.C { name; n1; n2; value; _ } ->
    let ext = cap_template ~name ~value in
    let map = cap_net_map ext ~name ~n1 ~n2 in
    let lift = Lift.run ~options ext in
    List.filter_map
      (rename_fault ext.Extract.Extraction.net_names map)
      lift.Lift.faults
  | Netlist.Device.R _ | Netlist.Device.L _ | Netlist.Device.D _ ->
    (* No layout template for these elements: keep their universe faults
       (opens/shorts with unknown probability). *)
    let counter = ref 0 in
    let mk kind mechanism =
      incr counter;
      Faults.Fault.make ~id:"" ~kind ~mechanism ()
    in
    Faults.Universe.device_faults mk dev
  | Netlist.Device.V _ | Netlist.Device.I _ -> []

let run ?(options = Lift.default_options) circuit =
  let per_device = ref [] in
  let all =
    List.concat_map
      (fun dev ->
        let faults = element_faults ~options dev in
        per_device := (Netlist.Device.name dev, List.length faults) :: !per_device;
        faults)
      (Netlist.Circuit.devices circuit)
  in
  let faults =
    List.mapi (fun i f -> { f with Faults.Fault.id = Printf.sprintf "L%d" (i + 1) }) all
  in
  { faults; per_device = List.rev !per_device }

let compare_with_glrfm ~l2rfm ~glrfm =
  let anticipated, global_only =
    List.partition
      (fun gf -> List.exists (fun lf -> Faults.Fault.equivalent gf lf) l2rfm.faults)
      glrfm
  in
  (`Anticipated anticipated, `Global_only global_only)
