type t = {
  lambda : float;
  poisson_yield : float;
  per_mechanism : (string * float) list;
}

let estimate ext =
  let all =
    Lift.run
      ~options:{ Lift.pdf = None; p_min = 0.0; merge_equivalent = false }
      ext
  in
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Faults.Fault.t) ->
      Hashtbl.replace tbl f.mechanism
        (f.prob +. Option.value (Hashtbl.find_opt tbl f.mechanism) ~default:0.0))
    all.Lift.faults;
  let per_mechanism =
    Hashtbl.fold (fun m l acc -> (m, l) :: acc) tbl [] |> List.sort compare
  in
  let lambda = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 per_mechanism in
  { lambda; poisson_yield = exp (-.lambda); per_mechanism }

let negative_binomial t ~alpha =
  if alpha <= 0.0 then invalid_arg "Yield_model.negative_binomial: alpha <= 0";
  (1.0 +. (t.lambda /. alpha)) ** -.alpha

let pp ppf t =
  Format.fprintf ppf "@[<v>lambda (faults/die)  %.3g@,Poisson yield        %.6f@,"
    t.lambda t.poisson_yield;
  List.iter
    (fun (m, l) -> Format.fprintf ppf "  %-22s %.3g@," m l)
    t.per_mechanism;
  Format.fprintf ppf "@]"
