(** LIFT: Layout-Induced Fault exTraction (the paper's GLRFM, after
    inductive fault analysis).

    From an extracted layout and the technology's defect statistics, LIFT
    produces the list of realistic faults - each a {!Faults.Fault.t} with
    its probability of occurrence [p_j = d_rel * D0 * A_crit], ready for
    AnaFAULT. *)

type options = {
  pdf : Geom.Critical_area.size_pdf option;
      (** defect-size density; [None] uses the technology's 1/x^3 model *)
  p_min : float;
      (** faults less likely than this are dropped (the paper reports
          p_j between 1e-7 and 1e-9; default 3e-8, calibrated so the
          demo VCO reproduces the paper's ~53 % list reduction) *)
  merge_equivalent : bool;
      (** merge faults with identical electrical effect, summing their
          probabilities (default true) *)
}

val default_options : options

(** Counts per fault class, mirroring the paper's "55 bridging, 8 line
    opens and 7 transistor stuck open". *)
type classes = {
  bridging : int;
  line_opens : int;
  contact_opens : int;
  stuck_opens : int;
}

val total : classes -> int

type result = {
  faults : Faults.Fault.t list;  (** in enumeration order, ids ["#1"].. *)
  classes : classes;
  sites_considered : int;  (** before thresholding and merging *)
}

(** [run ?options ext] performs the extraction. *)
val run : ?options:options -> Extract.Extraction.t -> result

(** [ranked r] is [r.faults] sorted by decreasing probability. *)
val ranked : result -> Faults.Fault.t list

val classify : Faults.Fault.t list -> classes

val pp_classes : Format.formatter -> classes -> unit

(** A one-line-per-fault report, most probable first. *)
val pp_report : Format.formatter -> result -> unit
