lib/defects/sites.ml: Array Extract Faults Fun Geom Hashtbl Int Layout List Option Seq
