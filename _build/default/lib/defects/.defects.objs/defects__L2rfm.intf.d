lib/defects/l2rfm.mli: Faults Lift Netlist
