lib/defects/monte_carlo.mli: Extract Faults Format
