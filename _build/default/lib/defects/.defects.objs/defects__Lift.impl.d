lib/defects/lift.ml: Array Extract Faults Float Format Geom Layout List Printf Sites String
