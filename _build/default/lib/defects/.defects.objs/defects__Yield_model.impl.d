lib/defects/yield_model.ml: Faults Format Hashtbl Lift List Option
