lib/defects/lift.mli: Extract Faults Format Geom
