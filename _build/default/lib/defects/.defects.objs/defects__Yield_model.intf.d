lib/defects/yield_model.mli: Extract Format
