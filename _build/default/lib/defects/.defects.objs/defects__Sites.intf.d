lib/defects/sites.mli: Extract Faults Geom Layout
