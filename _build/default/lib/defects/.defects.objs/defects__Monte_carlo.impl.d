lib/defects/monte_carlo.ml: Array Extract Faults Float Format Geom Hashtbl Int Layout List Option Printf Random Sites
