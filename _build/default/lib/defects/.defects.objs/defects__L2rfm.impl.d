lib/defects/l2rfm.ml: Array Extract Faults Float Geom Layout Lift List Netlist Option Printf
