(** Monte-Carlo inductive fault analysis: the original IFA procedure the
    paper builds on ([25], [16]) - "based on random spot defects
    introduced on the layout according to statistics, defects large
    enough to modify the circuit topology ... are identified and
    translated into realistic faults".

    Random defects (mechanism ~ relative densities, diameter ~ the
    defect-size density, position uniform over the die) are dropped on
    the extracted layout and mapped to their electrical effect with the
    same connectivity analysis LIFT uses.  The hit frequencies validate
    LIFT's closed-form critical-area ranking; single defects cutting
    several conductors surface as the "global multiple open" faults the
    paper credits to layout-level analysis. *)

type result = {
  samples : int;
  effective : int;  (** defects that changed the circuit topology *)
  multi_effect : int;  (** defects causing more than one fault at once *)
  hits : (Faults.Fault.t * int) list;
      (** distinct faults with hit counts, most frequent first; each
          fault's [prob] is its relative frequency among effective
          defects *)
}

(** [run ?seed ~samples ext] drops [samples] defects (deterministic for a
    fixed [seed], default 42). *)
val run : ?seed:int -> samples:int -> Extract.Extraction.t -> result

(** [agreement result faults] compares the Monte-Carlo ranking with an
    analytic fault list: the fraction of Monte-Carlo hits that land on a
    fault present in [faults] (weighted by hit count). *)
val agreement : result -> Faults.Fault.t list -> float

val pp_summary : Format.formatter -> result -> unit
