(** Functional-yield estimation from the same critical areas LIFT uses
    (Stapper's integrated-circuit yield statistics, the paper's [28]).

    Each fault site contributes an expected fault count
    [lambda_j = d_rel * D0 * A_crit_j]; under the Poisson model the
    probability that a die carries no topology-changing defect is
    [Y = exp(-sum lambda_j)].  The negative-binomial variant with
    clustering parameter [alpha] (Stapper's model) is also provided. *)

type t = {
  lambda : float;  (** expected topology-changing defects per die *)
  poisson_yield : float;
  per_mechanism : (string * float) list;  (** lambda split by mechanism *)
}

(** [estimate ext] sums over {e all} fault sites (no probability
    threshold, no merging - every site kills the die). *)
val estimate : Extract.Extraction.t -> t

(** [negative_binomial t ~alpha] is Stapper's clustered yield
    [(1 + lambda/alpha)^-alpha]; [alpha -> infinity] recovers Poisson. *)
val negative_binomial : t -> alpha:float -> float

val pp : Format.formatter -> t -> unit
