(** L2RFM - "Local Layout Realistic Faults Mapping" (the paper's
    pre-layout reduction path in Fig. 1, after [18]).

    Before the final layout exists, each schematic element is mapped to
    the realistic faults of its {e standard cell template}: a single-
    device layout is generated from the element's W/L and the technology
    rules, analysed exactly like a full layout (critical areas, size
    density, thresholds), and the resulting local faults are expressed
    against the element's schematic nets.

    By construction the list contains only {e local} faults - the paper's
    GLRFM contrast: global shorts between routed nets and single defects
    causing multiple opens only appear once the real layout is known. *)

type result = {
  faults : Faults.Fault.t list;  (** ids ["L1"].. in device order *)
  per_device : (string * int) list;  (** fault count per element *)
}

(** [run ?options circuit] maps every MOS transistor and capacitor of
    [circuit].  [options] are {!Lift.options} (threshold, density);
    independent sources and elements without a template (R, L, diodes)
    contribute the plain universe faults for that element. *)
val run : ?options:Lift.options -> Netlist.Circuit.t -> result

(** [compare_with_glrfm ~l2rfm ~glrfm] partitions the GLRFM list into
    faults L2RFM anticipated (same electrical effect) and faults only
    visible globally - the paper's argument for running LIFT on the
    final layout. *)
val compare_with_glrfm :
  l2rfm:result ->
  glrfm:Faults.Fault.t list ->
  [ `Anticipated of Faults.Fault.t list ] * [ `Global_only of Faults.Fault.t list ]
