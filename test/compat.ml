(* The pre-Analysis engine entry points, re-expressed through
   {!Sim.Engine.run}.  The test suites predate the unified API and call
   these shims; keeping them here (instead of silencing the deprecation
   alert file by file) means the tests exercise exactly the code paths
   the deprecated wrappers forward to. *)

open Sim

let dc_operating_point ?options c =
  Engine.(Analysis.solution (run ?options c Analysis.Op))

let transient_with_stats ?options c ~tstep ~tstop ~uic =
  let result = Engine.(run ?options c (Analysis.Tran { tstep; tstop; uic })) in
  (Engine.Analysis.waveform result, Engine.Analysis.stats result)

let transient ?options c ~tstep ~tstop ~uic =
  fst (transient_with_stats ?options c ~tstep ~tstop ~uic)

let dc_sweep ?options c ~source ~values =
  Engine.(Analysis.sweep (run ?options c (Analysis.Dc_sweep { source; values })))

let ac ?options c ~source ~freqs =
  Engine.(Analysis.spectrum (run ?options c (Analysis.Ac { source; freqs })))
