let () =
  Alcotest.run "liftsim"
    (Test_geom.suites @ Test_layout.suites @ Test_netlist.suites @ Test_sim.suites
    @ Test_extract.suites @ Test_faults.suites @ Test_defects.suites
    @ Test_pipeline.suites
    @ Test_anafault.suites @ Test_campaign.suites @ Test_extensions.suites
    @ Test_obs.suites @ Test_vco.suites)
