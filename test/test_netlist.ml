(* Tests for the netlist representation, SPICE parser and printer. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let eng_tests =
  let open Netlist.Eng in
  let p s = Option.get (parse s) in
  [
    Alcotest.test_case "plain numbers" `Quick (fun () ->
        checkf "int" 42.0 (p "42");
        checkf "float" 3.5 (p "3.5");
        checkf "exp" 1500.0 (p "1.5e3");
        checkf "neg" (-2.0) (p "-2"));
    Alcotest.test_case "suffixes" `Quick (fun () ->
        checkf "k" 1e4 (p "10k");
        checkf "meg" 2e6 (p "2meg");
        checkf "m" 1e-3 (p "1m");
        checkf "u" 1e-7 (p "0.1u");
        checkf "n" 5e-9 (p "5n");
        checkf "p" 1e-11 (p "10p");
        checkf "f" 2e-15 (p "2f");
        checkf "g" 3e9 (p "3G");
        checkf "t" 1e12 (p "1T"));
    Alcotest.test_case "unit letters after suffix" `Quick (fun () ->
        checkf "pF" 1e-11 (p "10pF");
        checkf "V" 5.0 (p "5V");
        checkf "kohm" 2e3 (p "2kohm"));
    Alcotest.test_case "MEG is not milli" `Quick (fun () -> checkf "meg" 1e6 (p "1MEG"));
    Alcotest.test_case "rejects garbage" `Quick (fun () ->
        check_bool "empty" true (parse "" = None);
        check_bool "word" true (parse "hello" = None));
    Alcotest.test_case "round trip via to_string" `Quick (fun () ->
        List.iter
          (fun x -> checkf "rt" x (p (to_string x)))
          [ 0.0; 5.0; 1e4; 2.5e6; 1e-3; 4.7e-9; -3.3 ]);
  ]

let wave_tests =
  let open Netlist.Wave in
  [
    Alcotest.test_case "dc" `Quick (fun () ->
        checkf "v" 5.0 (value (Dc 5.0) 0.3);
        checkf "dc" 5.0 (dc_value (Dc 5.0)));
    Alcotest.test_case "pulse phases" `Quick (fun () ->
        let p =
          Pulse { v1 = 0.; v2 = 5.; delay = 1e-6; rise = 1e-7; fall = 1e-7;
                  width = 1e-6; period = 0. }
        in
        checkf "before delay" 0.0 (value p 0.5e-6);
        checkf "mid rise" 2.5 (value p (1e-6 +. 0.5e-7));
        checkf "plateau" 5.0 (value p 2e-6);
        checkf "mid fall" 2.5 (value p (1e-6 +. 1e-7 +. 1e-6 +. 0.5e-7));
        checkf "after" 0.0 (value p 3e-6);
        checkf "dc is v1" 0.0 (dc_value p));
    Alcotest.test_case "pulse periodic" `Quick (fun () ->
        let p =
          Pulse { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9; fall = 1e-9;
                  width = 1e-6; period = 2e-6 }
        in
        checkf "cycle 2 plateau" 1.0 (value p (2e-6 +. 0.5e-6)));
    Alcotest.test_case "pwl interpolates" `Quick (fun () ->
        let w = Pwl [ (0., 0.); (1., 10.); (2., 10.); (3., 0.) ] in
        checkf "mid" 5.0 (value w 0.5);
        checkf "flat" 10.0 (value w 1.7);
        checkf "end clamp" 0.0 (value w 9.0);
        checkf "start clamp" 0.0 (value w (-1.0)));
    Alcotest.test_case "sin" `Quick (fun () ->
        let w = Sin { offset = 1.0; ampl = 2.0; freq = 1.0; delay = 0.0 } in
        checkf "zero" 1.0 (value w 0.0);
        checkf "quarter" 3.0 (value w 0.25));
    Alcotest.test_case "breakpoints of pulse" `Quick (fun () ->
        let p =
          Pulse { v1 = 0.; v2 = 1.; delay = 1e-6; rise = 1e-7; fall = 1e-7;
                  width = 1e-6; period = 0. }
        in
        let bps = breakpoints p ~tstop:1e-5 in
        check_int "count" 4 (List.length bps);
        check_bool "sorted" true (List.sort compare bps = bps));
  ]

let circuit_tests =
  let open Netlist in
  let r name n1 n2 value = Device.R { name; n1; n2; value } in
  [
    Alcotest.test_case "add and find" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0; r "R2" "b" "0" 2.0 ] in
        check_int "count" 2 (Circuit.device_count c);
        check_bool "found" true (Circuit.find c "R1" <> None);
        check_bool "absent" true (Circuit.find c "RX" = None));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0 ] in
        Alcotest.check_raises "dup" (Invalid_argument "Circuit.add: duplicate device R1")
          (fun () -> ignore (Circuit.add c (r "R1" "x" "y" 2.0))));
    Alcotest.test_case "nodes sorted unique" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0; r "R2" "b" "0" 2.0 ] in
        Alcotest.(check (list string)) "nodes" [ "0"; "a"; "b" ] (Circuit.nodes c));
    Alcotest.test_case "rename_node rewires" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0 ] in
        let c = Circuit.rename_node c ~from_:"b" ~to_:"a" in
        match Circuit.find c "R1" with
        | Some (Device.R { n1; n2; _ }) ->
          Alcotest.(check string) "n1" "a" n1;
          Alcotest.(check string) "n2" "a" n2
        | _ -> Alcotest.fail "R1 missing");
    Alcotest.test_case "devices_on" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0; r "R2" "b" "0" 2.0 ] in
        check_int "on b" 2 (List.length (Circuit.devices_on c "b"));
        check_int "on a" 1 (List.length (Circuit.devices_on c "a")));
    Alcotest.test_case "fresh names avoid collisions" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0 ] in
        check_bool "node" true (Circuit.fresh_node c "a" <> "a");
        check_bool "dev" true (Circuit.fresh_name c "R1" <> "R1"));
    Alcotest.test_case "replace" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0 ] in
        let c = Circuit.replace c (r "R1" "a" "b" 9.0) in
        match Circuit.find c "R1" with
        | Some (Device.R { value; _ }) -> checkf "value" 9.0 value
        | _ -> Alcotest.fail "R1 missing");
    Alcotest.test_case "remove" `Quick (fun () ->
        let c = Circuit.of_devices "t" [ r "R1" "a" "b" 1.0 ] in
        check_int "left" 0 (Circuit.device_count (Circuit.remove c "R1")));
  ]

let sample_deck =
  {|* sample deck
VDD vdd 0 DC 5
VIN in 0 PULSE(0 5 0 1n 1n 2u 4u)
R1 vdd out 10k
C1 out 0 10p IC=0
M1 out in 0 0 NMOD W=10u L=1u
D1 out 0 DCLAMP
.model NMOD NMOS (VTO=1 KP=40u LAMBDA=0.02)
.model DCLAMP D (IS=1e-14)
.tran 10n 4u UIC
.end
|}

let parser_tests =
  let open Netlist in
  [
    Alcotest.test_case "parses sample deck" `Quick (fun () ->
        let deck = Parser.parse sample_deck in
        check_int "devices" 6 (Circuit.device_count deck.circuit);
        match deck.tran with
        | Some { tstep; tstop; uic } ->
          checkf "tstep" 1e-8 tstep;
          checkf "tstop" 4e-6 tstop;
          check_bool "uic" true uic
        | None -> Alcotest.fail "missing .tran");
    Alcotest.test_case "mosfet fields" `Quick (fun () ->
        let deck = Parser.parse sample_deck in
        match Circuit.find deck.circuit "M1" with
        | Some (Device.M { model; w; l; d; g; s; b; _ }) ->
          checkf "W" 1e-5 w;
          checkf "L" 1e-6 l;
          checkf "VTO" 1.0 model.vto;
          checkf "KP" 4e-5 model.kp;
          check_bool "kind" true (model.kind = Device.Nmos);
          Alcotest.(check (list string)) "terms" [ "out"; "in"; "0"; "0" ] [ d; g; s; b ]
        | _ -> Alcotest.fail "M1 missing");
    Alcotest.test_case "pulse source" `Quick (fun () ->
        let deck = Parser.parse sample_deck in
        match Circuit.find deck.circuit "VIN" with
        | Some (Device.V { wave = Wave.Pulse p; _ }) ->
          checkf "v2" 5.0 p.v2;
          checkf "width" 2e-6 p.width;
          checkf "period" 4e-6 p.period
        | _ -> Alcotest.fail "VIN not a pulse");
    Alcotest.test_case "continuation lines" `Quick (fun () ->
        let deck =
          Parser.parse "t\nVX a 0 PWL(0 0\n+ 1u 5)\n.end\n"
        in
        match Circuit.find deck.circuit "VX" with
        | Some (Device.V { wave = Wave.Pwl [ (0.0, 0.0); (t1, v1) ]; _ }) ->
          checkf "t1" 1e-6 t1;
          checkf "v1" 5.0 v1
        | _ -> Alcotest.fail "continuation not folded");
    Alcotest.test_case "comments ignored" `Quick (fun () ->
        let deck = Parser.parse "t\n* nothing\nR1 a 0 1k ; trailing\n.end\n" in
        check_int "devices" 1 (Circuit.device_count deck.circuit));
    Alcotest.test_case "unknown model errors with line" `Quick (fun () ->
        match Parser.parse "t\nM1 d g s b NOPE\n.end\n" with
        | exception Parser.Parse_error (2, _) -> ()
        | exception Parser.Parse_error (n, _) ->
          Alcotest.failf "wrong line %d" n
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "printer round-trips" `Quick (fun () ->
        let deck = Parser.parse sample_deck in
        let text = Printer.deck_to_string ?tran:deck.tran deck.circuit in
        let deck2 = Parser.parse text in
        check_int "devices" (Circuit.device_count deck.circuit)
          (Circuit.device_count deck2.circuit);
        Alcotest.(check (list string))
          "names"
          (List.map Device.name (Circuit.devices deck.circuit))
          (List.map Device.name (Circuit.devices deck2.circuit));
        check_bool "tran" true (deck2.tran = deck.tran));
  ]

let more_parser_tests =
  [
    Alcotest.test_case "inductor card with IC" `Quick (fun () ->
        let c = (Netlist.Parser.parse "t\nL1 a 0 1m IC=2m\n.end\n").Netlist.Parser.circuit in
        match Netlist.Circuit.find c "L1" with
        | Some (Netlist.Device.L { value; ic; _ }) ->
          checkf "value" 1e-3 value;
          check_bool "ic" true (ic = Some 2e-3)
        | _ -> Alcotest.fail "L1 missing");
    Alcotest.test_case "diode without model uses default" `Quick (fun () ->
        let c = (Netlist.Parser.parse "t\nD1 a 0\n.end\n").Netlist.Parser.circuit in
        match Netlist.Circuit.find c "D1" with
        | Some (Netlist.Device.D { model; _ }) ->
          checkf "is" 1e-14 model.is_sat
        | _ -> Alcotest.fail "D1 missing");
    Alcotest.test_case "sin source parses" `Quick (fun () ->
        let c =
          (Netlist.Parser.parse "t\nV1 a 0 SIN(1 2 1k 0)\n.end\n").Netlist.Parser.circuit
        in
        match Netlist.Circuit.find c "V1" with
        | Some (Netlist.Device.V { wave = Netlist.Wave.Sin s; _ }) ->
          checkf "freq" 1e3 s.freq
        | _ -> Alcotest.fail "not a SIN");
    Alcotest.test_case "duplicate device name errors with line" `Quick (fun () ->
        match Netlist.Parser.parse "t\nR1 a 0 1k\nR1 b 0 1k\n.end\n" with
        | exception Netlist.Parser.Parse_error (3, _) -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "printer round-trips inductors and diodes" `Quick (fun () ->
        let deck =
          Netlist.Parser.parse "t\nL1 a b 1m IC=1m\nD1 b 0 DX\n.model DX D IS=2e-14 N=1.5\n.end\n"
        in
        let text = Netlist.Printer.deck_to_string deck.Netlist.Parser.circuit in
        let again = Netlist.Parser.parse text in
        check_int "count" 2 (Netlist.Circuit.device_count again.Netlist.Parser.circuit));
  ]

let subckt_deck =
  {|hierarchy demo
VDD vdd 0 5
VIN in 0 1
XA in mid INV
XB mid out INV
.subckt INV a y
M1 y a 0 0 NM W=10u L=1u
RL vdd y 10k
.model NM NMOS VTO=1 KP=60u
.ends
.end
|}

let subckt_tests =
  [
    Alcotest.test_case "instances are flattened with scoped names" `Quick (fun () ->
        let c = (Netlist.Parser.parse subckt_deck).Netlist.Parser.circuit in
        check_int "devices" 6 (Netlist.Circuit.device_count c);
        check_bool "XA.M1" true (Netlist.Circuit.find c "XA.M1" <> None);
        check_bool "XB.RL" true (Netlist.Circuit.find c "XB.RL" <> None));
    Alcotest.test_case "ports map to actual nets, internals scoped" `Quick (fun () ->
        let c = (Netlist.Parser.parse subckt_deck).Netlist.Parser.circuit in
        (match Netlist.Circuit.find c "XA.M1" with
        | Some (Netlist.Device.M { d; g; s; _ }) ->
          Alcotest.(check string) "gate" "in" g;
          Alcotest.(check string) "drain" "mid" d;
          Alcotest.(check string) "source is ground" "0" s
        | _ -> Alcotest.fail "XA.M1 missing");
        (* vdd inside the subckt is NOT a port: it scopes per instance. *)
        match Netlist.Circuit.find c "XA.RL" with
        | Some (Netlist.Device.R { n1; _ }) -> Alcotest.(check string) "scoped" "XA.vdd" n1
        | _ -> Alcotest.fail "XA.RL missing");
    Alcotest.test_case "nested subcircuits expand" `Quick (fun () ->
        let deck =
          "t\nX1 a b TWO\n.subckt ONE p q\nR1 p q 1k\n.ends\n.subckt TWO p q\nXI p m ONE\nXJ m q ONE\n.ends\n.end\n"
        in
        let c = (Netlist.Parser.parse deck).Netlist.Parser.circuit in
        check_int "devices" 2 (Netlist.Circuit.device_count c);
        check_bool "deep name" true (Netlist.Circuit.find c "X1.XI.R1" <> None);
        match Netlist.Circuit.find c "X1.XI.R1" with
        | Some (Netlist.Device.R { n1; n2; _ }) ->
          Alcotest.(check string) "outer port" "a" n1;
          Alcotest.(check string) "inner net scoped" "X1.m" n2
        | _ -> Alcotest.fail "missing");
    Alcotest.test_case "port arity mismatch errors" `Quick (fun () ->
        let deck = "t\nX1 a b c INV\n.subckt INV a y\nR1 a y 1k\n.ends\n.end\n" in
        match Netlist.Parser.parse deck with
        | exception Netlist.Parser.Parse_error (_, _) -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "unknown subcircuit errors" `Quick (fun () ->
        match Netlist.Parser.parse "t\nX1 a b NOPE\n.end\n" with
        | exception Netlist.Parser.Parse_error (2, _) -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "missing .ends errors" `Quick (fun () ->
        match Netlist.Parser.parse "t\n.subckt INV a y\nR1 a y 1k\n.end\n" with
        | exception Netlist.Parser.Parse_error (_, _) -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "flattened circuit simulates" `Quick (fun () ->
        let c = (Netlist.Parser.parse subckt_deck).Netlist.Parser.circuit in
        (* The local vdd nets float; tie them for a meaningful solve. *)
        let c = Netlist.Circuit.rename_node c ~from_:"XA.vdd" ~to_:"vdd" in
        let c = Netlist.Circuit.rename_node c ~from_:"XB.vdd" ~to_:"vdd" in
        let sol = Compat.dc_operating_point c in
        (* in = 1 V < VTO: first inverter output high, second low-ish. *)
        check_bool "mid high" true (Sim.Engine.voltage sol "mid" > 4.0);
        check_bool "out low" true (Sim.Engine.voltage sol "out" < 1.0));
  ]

let qcheck_tests =
  let open QCheck in
  let mag = Gen.float_range 1e-15 1e12 in
  [
    Test.make ~name:"eng to_string/parse round-trip" ~count:300
      (make ~print:string_of_float mag) (fun x ->
        match Netlist.Eng.parse (Netlist.Eng.to_string x) with
        | Some y -> Float.abs (y -. x) <= 1e-5 *. Float.abs x
        | None -> false);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("netlist.eng", eng_tests);
    ("netlist.wave", wave_tests);
    ("netlist.circuit", circuit_tests);
    ("netlist.parser", parser_tests);
    ("netlist.parser.more", more_parser_tests);
    ("netlist.subckt", subckt_tests);
    ("netlist.properties", qcheck_tests);
  ]
