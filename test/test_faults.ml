(* Tests for fault representation, the schematic universe and injection. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let parse s = (Netlist.Parser.parse s).Netlist.Parser.circuit

let divider = parse "div\nV1 in 0 10\nR1 in out 1k\nR2 out 0 1k\n.end\n"

let bridge_fault =
  Faults.Fault.make ~id:"#1"
    ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "0" })
    ~mechanism:"metal1_short" ()

let open_fault =
  Faults.Fault.make ~id:"#2"
    ~kind:(Faults.Fault.Break
             { net = "out"; moved = [ { Faults.Fault.device = "R2"; port = 0 } ] })
    ~mechanism:"metal1_open" ()

let fault_tests =
  [
    Alcotest.test_case "equivalent ignores net order" `Quick (fun () ->
        let f1 =
          Faults.Fault.make ~id:"a"
            ~kind:(Faults.Fault.Bridge { net_a = "x"; net_b = "y" })
            ~mechanism:"m1" ()
        in
        let f2 =
          Faults.Fault.make ~id:"b"
            ~kind:(Faults.Fault.Bridge { net_a = "y"; net_b = "x" })
            ~mechanism:"poly" ~prob:0.5 ()
        in
        check_bool "equiv" true (Faults.Fault.equivalent f1 f2));
    Alcotest.test_case "equivalent ignores terminal order" `Quick (fun () ->
        let t1 = { Faults.Fault.device = "M1"; port = 0 } in
        let t2 = { Faults.Fault.device = "M2"; port = 2 } in
        let f1 =
          Faults.Fault.make ~id:"a"
            ~kind:(Faults.Fault.Break { net = "n"; moved = [ t1; t2 ] })
            ~mechanism:"m1" ()
        in
        let f2 =
          Faults.Fault.make ~id:"b"
            ~kind:(Faults.Fault.Break { net = "n"; moved = [ t2; t1 ] })
            ~mechanism:"m1" ()
        in
        check_bool "equiv" true (Faults.Fault.equivalent f1 f2));
    Alcotest.test_case "distinct faults not equivalent" `Quick (fun () ->
        check_bool "not equiv" false (Faults.Fault.equivalent bridge_fault open_fault));
    Alcotest.test_case "is_local bridge on one device" `Quick (fun () ->
        check_bool "local" true (Faults.Fault.is_local divider bridge_fault);
        let global =
          Faults.Fault.make ~id:"g"
            ~kind:(Faults.Fault.Bridge { net_a = "in"; net_b = "0" })
            ~mechanism:"m1" ()
        in
        (* in-0: no single device spans both nets (V1 does!). *)
        check_bool "V1 spans in-0" true (Faults.Fault.is_local divider global));
    Alcotest.test_case "printing includes id and mechanism" `Quick (fun () ->
        let s = Faults.Fault.to_string bridge_fault in
        check_bool "id" true (String.length s > 0 && s.[0] = '#');
        check_bool "mech" true
          (let rec has i =
             i + 12 <= String.length s && (String.sub s i 12 = "metal1_short" || has (i + 1))
           in
           has 0));
  ]

let universe_tests =
  [
    Alcotest.test_case "VCO universe matches the paper counts" `Quick (fun () ->
        let u = Faults.Universe.build (Vco.Schematic.schematic ()) in
        let opens, shorts = Faults.Universe.count u in
        (* 26 transistors x 3 opens + capacitor open = 79;
           26 x 3 shorts - 6 designed gate-drain diodes + capacitor = 73. *)
        check_int "opens" 79 opens;
        check_int "shorts" 73 shorts;
        check_int "total" 152 (opens + shorts));
    Alcotest.test_case "six diode-connected devices lose their gd short" `Quick (fun () ->
        check_int "diode count" 6 (List.length Vco.Schematic.diode_connected));
    Alcotest.test_case "sources contribute nothing" `Quick (fun () ->
        let c = parse "t\nV1 a 0 5\nI1 a 0 1m\n.end\n" in
        check_int "none" 0 (List.length (Faults.Universe.build c)));
    Alcotest.test_case "rc universe" `Quick (fun () ->
        let c = parse "t\nR1 a b 1k\nC1 b 0 1n\n.end\n" in
        let u = Faults.Universe.build c in
        check_int "2 opens + 2 shorts" 4 (List.length u));
    Alcotest.test_case "unique ids" `Quick (fun () ->
        let u = Faults.Universe.build (Vco.Schematic.schematic ()) in
        let ids = List.map (fun (f : Faults.Fault.t) -> f.id) u in
        check_int "unique" (List.length ids) (List.length (List.sort_uniq compare ids)));
  ]

let collapse_tests =
  [
    Alcotest.test_case "parallel devices collapse their shorts" `Quick (fun () ->
        let c =
          parse
            ("t\nM1 d g s 0 NM\nM2 d g s 0 NM\n.model NM NMOS VTO=1\n.end\n")
        in
        let u = Faults.Universe.build c in
        let collapsed = Faults.Universe.collapse u in
        (* 6 opens stay distinct (different terminals), 6 shorts collapse
           pairwise into 3 classes. *)
        check_int "universe" 12 (List.length u);
        check_int "collapsed" 9 (List.length collapsed);
        check_int "classes of 2" 3
          (List.length (List.filter (fun (_, n) -> n = 2) collapsed)));
    Alcotest.test_case "vco universe collapses meaningfully" `Quick (fun () ->
        let u = Faults.Universe.build (Vco.Schematic.schematic ()) in
        let collapsed = Faults.Universe.collapse u in
        check_bool "smaller" true (List.length collapsed < List.length u);
        check_int "classes cover all" (List.length u)
          (List.fold_left (fun acc (_, n) -> acc + n) 0 collapsed));
    Alcotest.test_case "probabilities sum within a class" `Quick (fun () ->
        let f p =
          Faults.Fault.make ~id:"x" ~kind:(Faults.Fault.Bridge { net_a = "a"; net_b = "b" })
            ~mechanism:"m" ~prob:p ()
        in
        match Faults.Universe.collapse [ f 1.0; f 2.0 ] with
        | [ (g, 2) ] -> checkf 1e-12 "sum" 3.0 g.Faults.Fault.prob
        | _ -> Alcotest.fail "expected one class of 2");
  ]

let resistor_model = Faults.Inject.default_resistor

let inject_tests =
  [
    Alcotest.test_case "bridge resistor model shorts the divider" `Quick (fun () ->
        let faulty = Faults.Inject.apply ~model:resistor_model divider bridge_fault in
        check_int "one extra device" 4 (Netlist.Circuit.device_count faulty);
        let sol = Compat.dc_operating_point faulty in
        checkf 1e-3 "out shorted" 0.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "bridge source model shorts the divider" `Quick (fun () ->
        let faulty = Faults.Inject.apply ~model:Faults.Inject.Source divider bridge_fault in
        let sol = Compat.dc_operating_point faulty in
        checkf 1e-9 "out shorted" 0.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "bridge on same net is a no-op" `Quick (fun () ->
        let f =
          Faults.Fault.make ~id:"x"
            ~kind:(Faults.Fault.Bridge { net_a = "out"; net_b = "out" })
            ~mechanism:"m1" ()
        in
        let faulty = Faults.Inject.apply ~model:resistor_model divider f in
        check_int "unchanged" 3 (Netlist.Circuit.device_count faulty));
    Alcotest.test_case "open resistor model floats the divider tap" `Quick (fun () ->
        (* Detach R2's top terminal: out becomes in (no load current). *)
        let faulty = Faults.Inject.apply ~model:resistor_model divider open_fault in
        let sol = Compat.dc_operating_point faulty in
        checkf 0.01 "out pulled up" 10.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "open source model disconnects" `Quick (fun () ->
        let faulty = Faults.Inject.apply ~model:Faults.Inject.Source divider open_fault in
        let sol = Compat.dc_operating_point faulty in
        checkf 0.01 "out pulled up" 10.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "break rewires the named terminal" `Quick (fun () ->
        let faulty = Faults.Inject.apply ~model:resistor_model divider open_fault in
        match Netlist.Circuit.find faulty "R2" with
        | Some (Netlist.Device.R { n1; _ }) ->
          check_bool "moved off out" true (n1 <> "out")
        | _ -> Alcotest.fail "R2 missing");
    Alcotest.test_case "stuck-open kills the channel but keeps gate load" `Quick (fun () ->
        let c =
          parse
            "inv\nVDD vdd 0 5\nVIN in 0 5\nRD vdd out 10k\nM1 out in 0 0 NM W=10u L=1u\n.model NM NMOS VTO=1 KP=60u\n.end\n"
        in
        let f =
          Faults.Fault.make ~id:"s" ~kind:(Faults.Fault.Stuck_open { device = "M1" })
            ~mechanism:"channel_open" ()
        in
        let faulty = Faults.Inject.apply ~model:resistor_model c f in
        let sol = Compat.dc_operating_point faulty in
        (* The transistor never conducts: the output stays high. *)
        checkf 1e-3 "out high" 5.0 (Sim.Engine.voltage sol "out"));
    Alcotest.test_case "stuck-open on non-mos raises" `Quick (fun () ->
        let f =
          Faults.Fault.make ~id:"s" ~kind:(Faults.Fault.Stuck_open { device = "R1" })
            ~mechanism:"x" ()
        in
        match Faults.Inject.apply ~model:resistor_model divider f with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "break of unknown terminal raises" `Quick (fun () ->
        let f =
          Faults.Fault.make ~id:"b"
            ~kind:(Faults.Fault.Break
                     { net = "out"; moved = [ { Faults.Fault.device = "R9"; port = 0 } ] })
            ~mechanism:"x" ()
        in
        match Faults.Inject.apply ~model:resistor_model divider f with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "break terminal/net mismatch raises" `Quick (fun () ->
        let f =
          Faults.Fault.make ~id:"b"
            ~kind:(Faults.Fault.Break
                     { net = "in"; moved = [ { Faults.Fault.device = "R2"; port = 0 } ] })
            ~mechanism:"x" ()
        in
        (* R2 port 0 is on "out", not "in". *)
        match Faults.Inject.apply ~model:resistor_model divider f with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    Alcotest.test_case "split node moves several terminals together" `Quick (fun () ->
        let c = parse "t\nV1 n 0 1\nR1 n a 1k\nR2 n b 1k\nR3 a 0 1k\nR4 b 0 1k\n.end\n" in
        let f =
          Faults.Fault.make ~id:"sp"
            ~kind:(Faults.Fault.Break
                     { net = "n";
                       moved =
                         [ { Faults.Fault.device = "R1"; port = 0 };
                           { Faults.Fault.device = "R2"; port = 0 } ] })
            ~mechanism:"m1" ()
        in
        let faulty = Faults.Inject.apply ~model:Faults.Inject.Source c f in
        let sol = Compat.dc_operating_point faulty in
        (* Both resistor taps are detached from the source. *)
        checkf 1e-3 "a floats low" 0.0 (Sim.Engine.voltage sol "a");
        checkf 1e-3 "b floats low" 0.0 (Sim.Engine.voltage sol "b"));
  ]

let suites =
  [
    ("faults.fault", fault_tests);
    ("faults.universe", universe_tests);
    ("faults.collapse", collapse_tests);
    ("faults.inject", inject_tests);
  ]
