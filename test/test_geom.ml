(* Tests for the geometry kernel. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rect = Geom.Rect.make

let interval_tests =
  let open Geom.Interval in
  [
    Alcotest.test_case "make normalises" `Quick (fun () ->
        check_bool "equal" true (equal (make 5 1) (make 1 5)));
    Alcotest.test_case "length" `Quick (fun () -> check_int "len" 4 (length (make 1 5)));
    Alcotest.test_case "overlap positive" `Quick (fun () ->
        check_int "ovl" 2 (overlap (make 0 4) (make 2 9)));
    Alcotest.test_case "overlap disjoint" `Quick (fun () ->
        check_int "ovl" 0 (overlap (make 0 2) (make 5 9)));
    Alcotest.test_case "overlap touching" `Quick (fun () ->
        check_int "ovl" 0 (overlap (make 0 2) (make 2 4)));
    Alcotest.test_case "gap disjoint" `Quick (fun () ->
        check_int "gap" 3 (gap (make 0 2) (make 5 9)));
    Alcotest.test_case "gap overlapping" `Quick (fun () ->
        check_int "gap" 0 (gap (make 0 4) (make 2 9)));
    Alcotest.test_case "contains" `Quick (fun () ->
        check_bool "in" true (contains (make 0 4) 4);
        check_bool "out" false (contains (make 0 4) 5));
    Alcotest.test_case "hull" `Quick (fun () ->
        check_bool "hull" true (equal (hull (make 0 2) (make 5 9)) (make 0 9)));
  ]

let rect_tests =
  let open Geom.Rect in
  [
    Alcotest.test_case "make normalises corners" `Quick (fun () ->
        check_bool "eq" true (equal (rect 5 7 1 2) (rect 1 2 5 7)));
    Alcotest.test_case "area, width, height" `Quick (fun () ->
        let r = rect 1 2 5 9 in
        check_int "w" 4 (width r);
        check_int "h" 7 (height r);
        check_int "a" 28 (area r));
    Alcotest.test_case "of_center" `Quick (fun () ->
        let r = of_center ~cx:10 ~cy:20 ~w:4 ~h:6 in
        check_bool "eq" true (equal r (rect 8 17 12 23)));
    Alcotest.test_case "inter overlapping" `Quick (fun () ->
        match inter (rect 0 0 4 4) (rect 2 2 8 8) with
        | Some i -> check_bool "eq" true (equal i (rect 2 2 4 4))
        | None -> Alcotest.fail "expected intersection");
    Alcotest.test_case "inter disjoint" `Quick (fun () ->
        check_bool "none" true (inter (rect 0 0 1 1) (rect 5 5 6 6) = None));
    Alcotest.test_case "touching is not overlapping" `Quick (fun () ->
        let a = rect 0 0 4 4 and b = rect 4 0 8 4 in
        check_bool "overlaps" false (overlaps a b);
        check_bool "touches" true (touches a b));
    Alcotest.test_case "expand grows all sides" `Quick (fun () ->
        check_bool "eq" true (equal (expand (rect 2 2 4 4) 1) (rect 1 1 5 5)));
    Alcotest.test_case "expand over-shrink degenerates" `Quick (fun () ->
        let r = expand (rect 0 0 4 4) (-10) in
        check_bool "degenerate" true (is_degenerate r));
    Alcotest.test_case "gap" `Quick (fun () ->
        let dx, dy = gap (rect 0 0 2 2) (rect 5 0 7 2) in
        check_int "dx" 3 dx;
        check_int "dy" 0 dy);
    Alcotest.test_case "facing horizontal" `Quick (fun () ->
        match facing (rect 0 0 2 10) (rect 5 4 7 20) with
        | Some (s, l) ->
          check_int "spacing" 3 s;
          check_int "length" 6 l
        | None -> Alcotest.fail "expected facing pair");
    Alcotest.test_case "facing diagonal is none" `Quick (fun () ->
        check_bool "none" true (facing (rect 0 0 2 2) (rect 5 5 7 7) = None));
    Alcotest.test_case "facing overlapping is none" `Quick (fun () ->
        check_bool "none" true (facing (rect 0 0 4 4) (rect 2 2 8 8) = None));
    Alcotest.test_case "subtract disjoint" `Quick (fun () ->
        check_bool "same" true (subtract (rect 0 0 2 2) (rect 5 5 6 6) = [ rect 0 0 2 2 ]));
    Alcotest.test_case "subtract covering" `Quick (fun () ->
        check_bool "empty" true (subtract (rect 1 1 2 2) (rect 0 0 4 4) = []));
    Alcotest.test_case "subtract middle strip splits" `Quick (fun () ->
        (* Vertical cut through the middle of a horizontal bar. *)
        let pieces = subtract (rect 0 0 10 2) (rect 4 (-1) 6 3) in
        check_int "pieces" 2 (List.length pieces);
        let total = List.fold_left (fun acc r -> acc + area r) 0 pieces in
        check_int "area" (20 - 4) total);
    Alcotest.test_case "subtract hole punches 4 pieces" `Quick (fun () ->
        let pieces = subtract (rect 0 0 10 10) (rect 4 4 6 6) in
        check_int "pieces" 4 (List.length pieces);
        let total = List.fold_left (fun acc r -> acc + area r) 0 pieces in
        check_int "area" 96 total);
  ]

let union_find_tests =
  let open Geom.Union_find in
  [
    Alcotest.test_case "singletons" `Quick (fun () ->
        let t = create 4 in
        check_int "count" 4 (count t);
        check_bool "not same" false (same t 0 1));
    Alcotest.test_case "union merges" `Quick (fun () ->
        let t = create 4 in
        ignore (union t 0 1);
        ignore (union t 2 3);
        check_bool "0~1" true (same t 0 1);
        check_bool "0!~2" false (same t 0 2);
        check_int "count" 2 (count t);
        ignore (union t 1 3);
        check_int "count" 1 (count t));
    Alcotest.test_case "groups ordered" `Quick (fun () ->
        let t = create 5 in
        ignore (union t 4 1);
        ignore (union t 3 2);
        Alcotest.(check (list (list int)))
          "groups" [ [ 0 ]; [ 1; 4 ]; [ 2; 3 ] ] (groups t));
  ]

let rect_set_tests =
  let open Geom.Rect_set in
  [
    Alcotest.test_case "union area no overlap" `Quick (fun () ->
        check_int "area" 8 (union_area [ rect 0 0 2 2; rect 4 0 6 2 ]));
    Alcotest.test_case "union area with overlap counted once" `Quick (fun () ->
        check_int "area" 28 (union_area [ rect 0 0 4 4; rect 2 2 6 6 ]));
    Alcotest.test_case "union area empty" `Quick (fun () -> check_int "area" 0 (union_area []));
    Alcotest.test_case "subtract_all" `Quick (fun () ->
        let remain = subtract_all [ rect 0 0 10 2 ] [ rect 2 0 4 2; rect 6 0 8 2 ] in
        let total = List.fold_left (fun acc r -> acc + Geom.Rect.area r) 0 remain in
        check_int "area" 12 total);
    Alcotest.test_case "components split" `Quick (fun () ->
        let comp, n =
          components [| rect 0 0 2 2; rect 2 0 4 2; rect 10 10 12 12 |]
        in
        check_int "n" 2 n;
        check_bool "0~1" true (comp.(0) = comp.(1));
        check_bool "0!~2" false (comp.(0) = comp.(2)));
    Alcotest.test_case "close_pairs finds facing pair" `Quick (fun () ->
        let pairs = close_pairs ~within:5 [| rect 0 0 2 10; rect 5 0 7 10 |] in
        check_bool "pairs" true (pairs = [ (0, 1, 3, 10) ]));
    Alcotest.test_case "close_pairs respects distance bound" `Quick (fun () ->
        let pairs = close_pairs ~within:2 [| rect 0 0 2 10; rect 5 0 7 10 |] in
        check_int "none" 0 (List.length pairs));
    Alcotest.test_case "bounding_box" `Quick (fun () ->
        check_bool "eq" true
          (Geom.Rect.equal
             (bounding_box [ rect 0 0 1 1; rect 5 7 9 8 ])
             (rect 0 0 9 8)));
    (* Sweep-line edge cases: abutting, degenerate, duplicated and
       singleton inputs must not double-count or drop area. *)
    Alcotest.test_case "union area touching not overlapping" `Quick (fun () ->
        (* Abutting along a shared edge: zero overlap, exact sum. *)
        check_int "area" 8 (union_area [ rect 0 0 2 2; rect 2 0 4 2 ]);
        check_int "area" 8 (union_area [ rect 0 0 2 2; rect 0 2 2 4 ]);
        (* Corner-touching only. *)
        check_int "area" 8 (union_area [ rect 0 0 2 2; rect 2 2 4 4 ]));
    Alcotest.test_case "union area degenerate rects" `Quick (fun () ->
        (* Zero-width and zero-height rectangles contribute nothing. *)
        check_int "zero width" 0 (union_area [ rect 3 0 3 10 ]);
        check_int "zero height" 0 (union_area [ rect 0 3 10 3 ]);
        check_int "mixed" 4 (union_area [ rect 0 0 2 2; rect 5 0 5 9; rect 0 5 9 5 ]));
    Alcotest.test_case "union area duplicates counted once" `Quick (fun () ->
        let r = rect 1 1 4 3 in
        check_int "dups" (Geom.Rect.area r) (union_area [ r; r; r ]));
    Alcotest.test_case "union area single rect" `Quick (fun () ->
        check_int "single" 6 (union_area [ rect (-1) (-2) 1 1 ]));
    Alcotest.test_case "union_area_in clips first" `Quick (fun () ->
        let rs = [ rect 0 0 4 4; rect 2 2 6 6 ] in
        (* Full window reproduces union_area; a quadrant window sees
           only the clipped parts; a disjoint window sees nothing. *)
        check_int "full" (union_area rs) (union_area_in ~clip:(rect 0 0 6 6) rs);
        check_int "quadrant" 9 (union_area_in ~clip:(rect 3 3 6 6) rs);
        check_int "outside" 0 (union_area_in ~clip:(rect 10 10 20 20) rs));
    Alcotest.test_case "union_area_in partition sums to union_area" `Quick
      (fun () ->
        let rs = [ rect 0 0 4 4; rect 2 2 6 6; rect 5 0 7 2; rect 1 5 3 7 ] in
        let total = ref 0 in
        for cx = 0 to 3 do
          for cy = 0 to 3 do
            total :=
              !total
              + union_area_in
                  ~clip:(rect (cx * 2) (cy * 2) ((cx + 1) * 2) ((cy + 1) * 2))
                  rs
          done
        done;
        check_int "partition" (union_area rs) !total);
    Alcotest.test_case "touching_pairs abutting edge" `Quick (fun () ->
        (* Shares an edge: touching, and reported exactly once, sorted. *)
        check_bool "edge" true
          (touching_pairs [| rect 0 0 2 2; rect 2 0 4 2 |] = [ (0, 1) ]);
        (* Corner contact still counts as touching. *)
        check_bool "corner" true
          (touching_pairs [| rect 0 0 2 2; rect 2 2 4 4 |] = [ (0, 1) ]);
        (* A 1-unit gap does not. *)
        check_int "gap" 0
          (List.length (touching_pairs [| rect 0 0 2 2; rect 3 0 5 2 |])));
    Alcotest.test_case "touching_pairs duplicates and singleton" `Quick
      (fun () ->
        let r = rect 0 0 2 2 in
        check_bool "dups" true (touching_pairs [| r; r |] = [ (0, 1) ]);
        check_int "single" 0 (List.length (touching_pairs [| r |]));
        check_int "empty" 0 (List.length (touching_pairs [||])));
    Alcotest.test_case "close_pairs excludes touching" `Quick (fun () ->
        (* Abutting conductors are connected, not a bridge site. *)
        check_int "abutting" 0
          (List.length (close_pairs ~within:5 [| rect 0 0 2 10; rect 2 0 4 10 |]));
        (* Spacing exactly at the bound is included... *)
        check_bool "at bound" true
          (close_pairs ~within:3 [| rect 0 0 2 10; rect 5 0 7 10 |]
          = [ (0, 1, 3, 10) ]);
        (* ...one past it is not. *)
        check_int "past bound" 0
          (List.length (close_pairs ~within:2 [| rect 0 0 2 10; rect 5 0 7 10 |])));
    Alcotest.test_case "close_pairs output sorted ascending" `Quick (fun () ->
        (* The documented determinism contract: pairs come out sorted by
           (i, j) whatever the bucket traversal order was. *)
        let rs =
          [|
            rect 0 0 2 10; rect 5 0 7 10; rect 10 0 12 10; rect 15 0 17 10;
          |]
        in
        let pairs = close_pairs ~within:3 rs in
        check_bool "sorted" true (List.sort compare pairs = pairs);
        check_int "count" 3 (List.length pairs));
  ]

let ca_tests =
  let open Geom.Critical_area in
  let checkf = Alcotest.(check (float 1e-6)) in
  [
    Alcotest.test_case "short_area below spacing is 0" `Quick (fun () ->
        checkf "zero" 0.0 (short_area ~spacing:1000 ~length:5000 800.0));
    Alcotest.test_case "short_area linear above spacing" `Quick (fun () ->
        checkf "lin" (5000.0 *. 500.0) (short_area ~spacing:1000 ~length:5000 1500.0));
    Alcotest.test_case "cubic pdf normalised" `Quick (fun () ->
        let d = Cubic { x_min = 1000.0 } in
        let mass = weighted d (fun _ -> 1.0) in
        Alcotest.(check (float 1e-3)) "mass" 1.0 mass);
    Alcotest.test_case "uniform pdf normalised" `Quick (fun () ->
        let d = Uniform { x_min = 1000.0; x_max = 5000.0 } in
        Alcotest.(check (float 1e-6)) "mass" 1.0 (weighted d (fun _ -> 1.0)));
    Alcotest.test_case "closed form matches numeric (short)" `Quick (fun () ->
        let d = Cubic { x_min = 1000.0 } in
        let exact = weighted_short_cubic ~x_min:1000.0 ~spacing:2000 ~length:7000 () in
        let numeric = weighted d (short_area ~spacing:2000 ~length:7000) in
        Alcotest.(check (float 1.0)) "match" exact numeric);
    Alcotest.test_case "closed form matches numeric (open)" `Quick (fun () ->
        let d = Cubic { x_min = 1000.0 } in
        let exact = weighted_open_cubic ~x_min:1000.0 ~width:1500 ~length:9000 () in
        let numeric = weighted d (open_area ~width:1500 ~length:9000) in
        Alcotest.(check (float 1.0)) "match" exact numeric);
    Alcotest.test_case "tighter spacing has larger weighted CA" `Quick (fun () ->
        let ca s = weighted_short_cubic ~x_min:1000.0 ~spacing:s ~length:5000 () in
        check_bool "monotone" true (ca 1500 > ca 3000));
    Alcotest.test_case "nm2_to_cm2" `Quick (fun () ->
        checkf "conv" 1.0 (nm2_to_cm2 1e14));
  ]

(* Property tests on the geometric primitives. *)
let qcheck_tests =
  let open QCheck in
  let coord = Gen.int_range (-50) 50 in
  let rect_gen =
    Gen.map (fun (a, b, c, d) -> rect a b c d) (Gen.quad coord coord coord coord)
  in
  let arb_rect = make ~print:Geom.Rect.to_string rect_gen in
  let arb_pair = pair arb_rect arb_rect in
  [
    Test.make ~name:"subtract preserves area" ~count:500 arb_pair (fun (a, b) ->
        let pieces = Geom.Rect.subtract a b in
        let inter_area =
          match Geom.Rect.inter a b with
          | Some i -> Geom.Rect.area i
          | None -> 0
        in
        List.fold_left (fun acc r -> acc + Geom.Rect.area r) 0 pieces
        = Geom.Rect.area a - inter_area);
    Test.make ~name:"subtract pieces are disjoint from cut" ~count:500 arb_pair
      (fun (a, b) ->
        List.for_all (fun p -> not (Geom.Rect.overlaps p b)) (Geom.Rect.subtract a b));
    Test.make ~name:"inter is commutative" ~count:500 arb_pair (fun (a, b) ->
        Geom.Rect.inter a b = Geom.Rect.inter b a);
    Test.make ~name:"hull contains both" ~count:500 arb_pair (fun (a, b) ->
        let h = Geom.Rect.hull a b in
        Geom.Rect.contains h a && Geom.Rect.contains h b);
    Test.make ~name:"union_area bounded by sum and parts" ~count:200
      (list_of_size (Gen.int_range 0 8) arb_rect) (fun rs ->
        let u = Geom.Rect_set.union_area rs in
        let sum = List.fold_left (fun acc r -> acc + Geom.Rect.area r) 0 rs in
        u <= sum && List.for_all (fun r -> u >= Geom.Rect.area r) rs);
    Test.make ~name:"facing symmetric" ~count:500 arb_pair (fun (a, b) ->
        Geom.Rect.facing a b = Geom.Rect.facing b a);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("geom.interval", interval_tests);
    ("geom.rect", rect_tests);
    ("geom.union_find", union_find_tests);
    ("geom.rect_set", rect_set_tests);
    ("geom.critical_area", ca_tests);
    ("geom.properties", qcheck_tests);
  ]
