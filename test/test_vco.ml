(* Tests for the VCO demonstrator: schematic behaviour, layout integrity,
   and the schematic/layout correspondence (LVS). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_edges wf signal =
  let s = Sim.Waveform.samples wf signal in
  let c = ref 0 in
  for i = 1 to Array.length s - 1 do
    if s.(i - 1) < 2.5 && s.(i) >= 2.5 then incr c
  done;
  !c

let simulate ?(vctl = 3.0) ?(mutate = fun c -> c) () =
  let c = mutate (Vco.Schematic.schematic ~vctl ()) in
  Compat.transient c ~tstep:Vco.Schematic.tran.Netlist.Parser.tstep
    ~tstop:Vco.Schematic.tran.Netlist.Parser.tstop ~uic:true

let schematic_tests =
  [
    Alcotest.test_case "26 transistors and one capacitor" `Quick (fun () ->
        let c = Vco.Schematic.schematic () in
        let mos, cap =
          List.fold_left
            (fun (m, k) d ->
              match d with
              | Netlist.Device.M _ -> (m + 1, k)
              | Netlist.Device.C _ -> (m, k + 1)
              | _ -> (m, k))
            (0, 0) (Netlist.Circuit.devices c)
        in
        check_int "mos" Vco.Schematic.transistor_count mos;
        check_int "mos is 26" 26 mos;
        check_int "cap" 1 cap);
    Alcotest.test_case "six devices are gate-drain connected" `Quick (fun () ->
        let c = Vco.Schematic.schematic () in
        let diode_like name =
          match Netlist.Circuit.find c name with
          | Some (Netlist.Device.M { d; g; _ }) -> String.equal d g
          | _ -> false
        in
        check_int "count" 6 (List.length Vco.Schematic.diode_connected);
        List.iter
          (fun n -> check_bool (n ^ " diode") true (diode_like n))
          Vco.Schematic.diode_connected);
    Alcotest.test_case "oscillates from a cold start" `Slow (fun () ->
        let wf = simulate () in
        let edges = count_edges wf Vco.Schematic.out_node in
        check_bool "several cycles" true (edges >= 3 && edges <= 12);
        check_bool "full swing" true
          (Sim.Waveform.signal_max wf Vco.Schematic.out_node > 4.5
          && Sim.Waveform.signal_min wf Vco.Schematic.out_node < 0.5));
    Alcotest.test_case "frequency rises with control voltage" `Slow (fun () ->
        let edges v = count_edges (simulate ~vctl:v ()) Vco.Schematic.out_node in
        check_bool "monotone" true (edges 4.0 > edges 2.5));
    Alcotest.test_case "capacitor swings inside the schmitt window" `Slow (fun () ->
        let wf = simulate () in
        let lo = Sim.Waveform.signal_min wf Vco.Schematic.cap_node
        and hi = Sim.Waveform.signal_max wf Vco.Schematic.cap_node in
        check_bool "window" true (lo >= -0.1 && hi <= 4.0 && hi -. lo > 1.0));
  ]

let layout_tests =
  [
    Alcotest.test_case "mask is DRC clean" `Slow (fun () ->
        let violations = Layout.Drc.check (Cat.Demo.mask ()) in
        Alcotest.(check (list string))
          "clean" []
          (List.map (Format.asprintf "%a" Layout.Drc.pp_violation) violations));
    Alcotest.test_case "extraction recovers the schematic (LVS)" `Slow (fun () ->
        let ext = Extract.Extractor.extract ~options:Cat.Demo.extractor_options (Cat.Demo.mask ()) in
        let mism =
          Extract.Compare.run ~golden:(Cat.Demo.schematic ())
            ~extracted:ext.Extract.Extraction.circuit ()
        in
        Alcotest.(check (list string))
          "lvs clean" []
          (List.map (Format.asprintf "%a" Extract.Compare.pp_mismatch) mism));
    Alcotest.test_case "net names follow the paper numbering" `Slow (fun () ->
        let ext = Extract.Extractor.extract ~options:Cat.Demo.extractor_options (Cat.Demo.mask ()) in
        let names = Array.to_list ext.Extract.Extraction.net_names in
        List.iter
          (fun n -> check_bool ("net " ^ n) true (List.mem n names))
          [ "1"; "2"; "5"; "6"; "11"; "12" ]);
    Alcotest.test_case "cif round-trips the vco mask" `Slow (fun () ->
        let m = Cat.Demo.mask () in
        let m2 = Layout.Cif.of_string ~tech:Layout.Tech.default (Layout.Cif.to_string m) in
        check_int "shapes" (Layout.Mask.shape_count m) (Layout.Mask.shape_count m2));
  ]

let flow_tests =
  [
    Alcotest.test_case "cat glrfm flow end to end" `Slow (fun () ->
        let g =
          Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options
            ~golden:(Cat.Demo.schematic ()) (Cat.Demo.mask ())
        in
        check_int "lvs clean" 0 (List.length g.Cat.lvs);
        check_bool "faults found" true (g.Cat.lift.Defects.Lift.faults <> []));
    Alcotest.test_case "fault simulation of the top-ranked faults" `Slow (fun () ->
        let g =
          Cat.run_glrfm ~extractor_options:Cat.Demo.extractor_options
            ~golden:(Cat.Demo.schematic ()) (Cat.Demo.mask ())
        in
        let top =
          List.filteri (fun i _ -> i < 5) (Defects.Lift.ranked g.Cat.lift)
        in
        let run = Cat.run_fault_simulation Cat.Demo.config (Cat.Demo.schematic ()) top in
        let detected, _, failed = Anafault.Simulate.tally run in
        check_int "no failures" 0 failed;
        check_bool "most likely faults detected" true (detected >= 4));
  ]

let suites =
  [
    ("vco.schematic", schematic_tests);
    ("vco.layout", layout_tests);
    ("vco.flow", flow_tests);
  ]
